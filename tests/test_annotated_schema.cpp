// The §7 annotated-schema framework: one document configures schema,
// partition annotations, and dynamic conventions.
#include <gtest/gtest.h>

#include "core/annotated_schema.hpp"
#include "core/catalog.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace hxrc::core {
namespace {

const char* kAnnotated = R"(
<schema root="res">
  <element name="id" type="string" metadata="attribute"/>
  <element name="data">
    <element name="tag" maxOccurs="unbounded" metadata="attribute">
      <element name="word" type="string" maxOccurs="unbounded"/>
    </element>
    <element name="params" maxOccurs="unbounded" metadata="dynamic">
      <element name="enttyp">
        <element name="enttypl" type="string"/>
        <element name="enttypds" type="string"/>
      </element>
      <element name="attr" maxOccurs="unbounded" recursive="true">
        <element name="attrlabl" type="string"/>
        <element name="attrdefs" type="string"/>
        <element name="attrv" type="string"/>
      </element>
    </element>
    <element name="internal" metadata="attribute" queryable="false">
      <element name="note" type="string"/>
    </element>
  </element>
</schema>)";

TEST(AnnotatedSchema, LoadsAnnotationsAndStructure) {
  const AnnotatedSchema loaded = load_annotated_schema(kAnnotated);
  EXPECT_EQ(loaded.schema.root().name(), "res");
  ASSERT_EQ(loaded.annotations.attributes.size(), 4u);
  EXPECT_EQ(loaded.annotations.attributes[0].path, "id");
  EXPECT_FALSE(loaded.annotations.attributes[0].dynamic);
  EXPECT_EQ(loaded.annotations.attributes[2].path, "data/params");
  EXPECT_TRUE(loaded.annotations.attributes[2].dynamic);
  EXPECT_FALSE(loaded.annotations.attributes[3].queryable);
}

TEST(AnnotatedSchema, AnnotationsSatisfyPartitionRules) {
  const AnnotatedSchema loaded = load_annotated_schema(kAnnotated);
  EXPECT_NO_THROW(Partition::build(loaded.schema, loaded.annotations));
}

TEST(AnnotatedSchema, DrivesAWorkingCatalog) {
  const AnnotatedSchema loaded = load_annotated_schema(kAnnotated);
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  MetadataCatalog catalog(loaded.schema, loaded.annotations, config);

  const ObjectId id = catalog.ingest_xml(
      "<res><id>r1</id><data>"
      "<tag><word>storm</word><word>severe</word></tag>"
      "<params><enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>"
      "<attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>1000</attrv></attr>"
      "</params>"
      "<internal><note>secret</note></internal>"
      "</data></res>",
      "r1", "alice");

  ObjectQuery by_tag;
  AttrQuery tag("tag");
  tag.add_element("word", rel::Value("storm"), CompareOp::kEq);
  by_tag.add_attribute(std::move(tag));
  EXPECT_EQ(catalog.query(by_tag), std::vector<ObjectId>{id});

  ObjectQuery by_param = workload::dynamic_param_query("grid", "ARPS", "dx", 1000.0);
  EXPECT_EQ(catalog.query(by_param), std::vector<ObjectId>{id});

  // The non-queryable attribute stays CLOB-only...
  ObjectQuery internal;
  AttrQuery internal_attr("internal");
  internal_attr.add_element("note", rel::Value("secret"), CompareOp::kEq);
  internal.add_attribute(std::move(internal_attr));
  EXPECT_TRUE(catalog.query(internal).empty());

  // ...but is still returned in responses.
  const xml::Document doc = catalog.fetch(id);
  EXPECT_EQ(xml::select(*doc.root, "data/internal/note")[0]->text_content(), "secret");
}

TEST(AnnotatedSchema, ConventionOverride) {
  const AnnotatedSchema loaded = load_annotated_schema(R"(
    <schema root="r">
      <element name="dyn" maxOccurs="unbounded" metadata="dynamic">
        <element name="head"><element name="n" type="string"/>
          <element name="s" type="string"/></element>
        <element name="p" maxOccurs="unbounded" recursive="true">
          <element name="k" type="string"/>
          <element name="src" type="string"/>
          <element name="v" type="string"/>
        </element>
      </element>
      <convention container="head" name="n" source="s" item="p" itemName="k"
                  itemSource="src" itemValue="v"/>
    </schema>)");
  EXPECT_EQ(loaded.annotations.convention.def_container, "head");
  EXPECT_EQ(loaded.annotations.convention.item_value, "v");

  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  MetadataCatalog catalog(loaded.schema, loaded.annotations, config);
  const ObjectId id = catalog.ingest_xml(
      "<r><dyn><head><n>grid</n><s>ARPS</s></head>"
      "<p><k>dx</k><src>ARPS</src><v>42</v></p></dyn></r>",
      "r1", "u");
  EXPECT_EQ(catalog.query(workload::dynamic_param_query("grid", "ARPS", "dx", 42.0)),
            std::vector<ObjectId>{id});
}

TEST(AnnotatedSchema, SaveLoadRoundTrip) {
  const AnnotatedSchema original = load_annotated_schema(kAnnotated);
  const std::string text =
      save_annotated_schema(original.schema, original.annotations);
  const AnnotatedSchema reloaded = load_annotated_schema(text);
  ASSERT_EQ(reloaded.annotations.attributes.size(),
            original.annotations.attributes.size());
  for (std::size_t i = 0; i < original.annotations.attributes.size(); ++i) {
    EXPECT_EQ(reloaded.annotations.attributes[i].path,
              original.annotations.attributes[i].path);
    EXPECT_EQ(reloaded.annotations.attributes[i].dynamic,
              original.annotations.attributes[i].dynamic);
    EXPECT_EQ(reloaded.annotations.attributes[i].queryable,
              original.annotations.attributes[i].queryable);
  }
  EXPECT_EQ(reloaded.schema.node_count(), original.schema.node_count());
}

TEST(AnnotatedSchema, LeadSchemaRoundTripsWithAnnotations) {
  const xml::Schema schema = workload::lead_schema();
  const PartitionAnnotations annotations = workload::lead_annotations();
  const std::string text = save_annotated_schema(schema, annotations);
  const AnnotatedSchema reloaded = load_annotated_schema(text);
  EXPECT_EQ(reloaded.annotations.attributes.size(), annotations.attributes.size());
  EXPECT_NO_THROW(Partition::build(reloaded.schema, reloaded.annotations));
}

TEST(AnnotatedSchema, RejectsBadAnnotation) {
  EXPECT_THROW(load_annotated_schema(
                   R"(<schema root="r"><element name="x" metadata="bogus"/></schema>)"),
               xml::SchemaError);
}

}  // namespace
}  // namespace hxrc::core
