// Parser/writer round-trip properties, in BOTH parse modes.
//
// For any well-formed input: parse → write → reparse must be canonically
// equal to the first parse, and the arena parser (xml::parse_arena) must
// agree node-for-node with the owned parser (xml::parse) — same canonical
// form, same serialization. Exercises the corners the ingest path depends
// on: predefined entities, numeric character references, CDATA sections,
// comments/PIs merging surrounding text, and both whitespace modes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/prng.hpp"
#include "workload/generator.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc {
namespace {

struct NamedInput {
  const char* label;
  const char* text;
};

const std::vector<NamedInput>& tricky_inputs() {
  static const std::vector<NamedInput> inputs = {
      {"entities", "<r><a>fish &amp; chips &lt;tag&gt; &quot;q&quot; &apos;a&apos;</a></r>"},
      {"charrefs", "<r><a>&#65;&#x42;&#x2603;</a><b attr=\"&#169;\"/></r>"},
      {"cdata", "<r><c><![CDATA[literal <unescaped> & raw]]></c></r>"},
      {"cdata_blank", "<r><c><![CDATA[   ]]></c></r>"},
      {"comment_split_text",
       "<r><t>before<!-- note -->after</t><u>one<?pi data?>two</u></t0></r>"},
      {"attributes", "<r a=\"1\" b='two &amp; three' c=\"&#x26;\"><leaf/></r>"},
      {"mixed_whitespace", "<r>\n  <a>  padded  </a>\n  <b>x</b>\n</r>"},
      {"nested", "<r><l1><l2><l3 deep=\"yes\">v</l3></l2></l1></r>"},
      {"empty_variants", "<r><a/><b></b><c> </c></r>"},
      {"declaration", "<?xml version=\"1.0\" encoding=\"UTF-8\"?><r><a>x</a></r>"},
  };
  return inputs;
}

// comment_split_text above is intentionally malformed (</t0>); the property
// must hold for the well-formed subset, so filter by parseability.
bool parses(const std::string& text) {
  try {
    (void)xml::parse(text);
    return true;
  } catch (const xml::ParseError&) {
    return false;
  }
}

void expect_roundtrip(const std::string& input, const xml::ParseOptions& options) {
  const xml::Document owned = xml::parse(input, options);
  const xml::Document arena = xml::parse_arena(input, options);

  // Arena and owned parses agree exactly.
  EXPECT_EQ(xml::canonical(owned), xml::canonical(arena)) << input;
  EXPECT_EQ(xml::write(owned), xml::write(arena)) << input;

  // write → reparse is canonical-identity, in both modes.
  const xml::Document owned_again = xml::parse(xml::write(owned), options);
  EXPECT_EQ(xml::canonical(owned), xml::canonical(owned_again)) << input;
  const xml::Document arena_again = xml::parse_arena(xml::write(arena), options);
  EXPECT_EQ(xml::canonical(arena), xml::canonical(arena_again)) << input;
}

TEST(XmlRoundTrip, TrickyInputsBothModesBothWhitespaceOptions) {
  for (const NamedInput& input : tricky_inputs()) {
    SCOPED_TRACE(input.label);
    const std::string text = input.text;
    if (!parses(text)) continue;
    expect_roundtrip(text, {});
    xml::ParseOptions keep;
    keep.keep_whitespace_text = true;
    expect_roundtrip(text, keep);
  }
}

TEST(XmlRoundTrip, CommentAndPiMergeSurroundingTextIdenticallyInBothModes) {
  const std::string text = "<r><t>before<!-- note -->after</t><u>one<?pi d?>two</u></r>";
  const xml::Document owned = xml::parse(text);
  const xml::Document arena = xml::parse_arena(text);
  // Comments/PIs are discarded and the flanking text becomes ONE node.
  for (const xml::Document* doc : {&owned, &arena}) {
    const xml::Node* t = doc->root->first_child("t");
    ASSERT_NE(t, nullptr);
    ASSERT_EQ(t->children().size(), 1u);
    EXPECT_EQ(t->children().front()->value(), "beforeafter");
    const xml::Node* u = doc->root->first_child("u");
    ASSERT_NE(u, nullptr);
    ASSERT_EQ(u->children().size(), 1u);
    EXPECT_EQ(u->children().front()->value(), "onetwo");
  }
}

TEST(XmlRoundTrip, CdataIsItsOwnNodeAndSurvivesBlankCheck) {
  const std::string text = "<r><c>pre<![CDATA[ <raw> & ]]>post</c><d><![CDATA[  ]]></d></r>";
  const xml::Document owned = xml::parse(text);
  const xml::Document arena = xml::parse_arena(text);
  for (const xml::Document* doc_ptr : {&owned, &arena}) {
    const xml::Document& doc = *doc_ptr;
    const xml::Node* c = doc.root->first_child("c");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->children().size(), 3u);
    EXPECT_EQ(c->children()[1]->value(), " <raw> & ");
    // Whitespace-only CDATA is kept even with keep_whitespace_text = false.
    const xml::Node* d = doc.root->first_child("d");
    ASSERT_NE(d, nullptr);
    ASSERT_EQ(d->children().size(), 1u);
    EXPECT_EQ(d->children().front()->value(), "  ");
  }
}

TEST(XmlRoundTrip, GeneratedCorpusAgreesAcrossModes) {
  workload::DocumentGenerator generator;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const std::string text = xml::write(generator.generate(seed));
    SCOPED_TRACE(seed);
    expect_roundtrip(text, {});
  }
}

TEST(XmlRoundTrip, ArenaDocumentOutlivesInputBuffer) {
  std::string input = "<r><a k=\"v &amp; w\">body &gt; text</a></r>";
  xml::Document doc = xml::parse_arena(input);
  const std::string before = xml::canonical(doc);
  // Clobber and free the caller's buffer; the arena holds its own copy.
  input.assign(input.size(), 'x');
  input.clear();
  input.shrink_to_fit();
  EXPECT_EQ(xml::canonical(doc), before);
  EXPECT_GT(doc.arena_bytes(), 0u);

  // Cloning detaches from the arena entirely.
  const xml::Document detached = doc.clone();
  EXPECT_EQ(detached.storage, nullptr);
  EXPECT_EQ(xml::canonical(detached), before);
}

TEST(XmlRoundTrip, MutatedSurvivorsAgreeAcrossModes) {
  // Mutation fuzz focused on mode agreement: any input BOTH parsers accept
  // must produce identical canonical forms; acceptance itself must agree.
  util::Prng rng(7);
  workload::DocumentGenerator generator;
  const std::string original = xml::write(generator.generate(7));
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = original;
    const int edits = static_cast<int>(rng.uniform(1, 6));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.uniform(32, 126));
    }
    bool owned_ok = false;
    bool arena_ok = false;
    std::string owned_canon;
    std::string arena_canon;
    try {
      owned_canon = xml::canonical(xml::parse(mutated));
      owned_ok = true;
    } catch (const xml::ParseError&) {
    }
    try {
      arena_canon = xml::canonical(xml::parse_arena(mutated));
      arena_ok = true;
    } catch (const xml::ParseError&) {
    }
    EXPECT_EQ(owned_ok, arena_ok) << mutated;
    if (owned_ok && arena_ok) EXPECT_EQ(owned_canon, arena_canon) << mutated;
  }
}

}  // namespace
}  // namespace hxrc
