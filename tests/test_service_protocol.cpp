// Wire-protocol conformance: every request type in → tagged response out,
// every error code reachable, pagination/cursor semantics, and the
// dispatcher disciplines (deadline, admission queue, metrics).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/dispatcher.hpp"
#include "core/service.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/parser.hpp"

namespace hxrc::core {
namespace {

CatalogConfig auto_define_config() {
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest()
      : schema_(workload::lead_schema()),
        catalog_(schema_, workload::lead_annotations(), auto_define_config()),
        service_(catalog_) {}

  xml::Document send(const std::string& request) {
    return xml::parse(service_.handle(request));
  }

  /// The response's error code attribute ("" for ok responses).
  std::string code_of(const xml::Document& response) {
    const std::string_view* code = response.root->attribute("code");
    return code == nullptr ? std::string{} : std::string(*code);
  }

  void ingest_fig3(int count = 1) {
    for (int i = 0; i < count; ++i) {
      send("<catalogRequest type=\"ingest\" user=\"u\">" + workload::fig3_document() +
           "</catalogRequest>");
    }
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  CatalogService service_;
};

// ---- ok paths: every request type round-trips to a tagged response ----

TEST_F(ProtocolTest, EveryRequestTypeRoundTrips) {
  // ingest
  xml::Document response = send("<catalogRequest type=\"ingest\" name=\"fig3\">" +
                                workload::fig3_document() + "</catalogRequest>");
  EXPECT_EQ(*response.root->attribute("status"), "ok");
  EXPECT_EQ(response.root->child_text("objectID"), "0");

  // define
  response = send(
      "<catalogRequest type=\"define\" name=\"radiation\" source=\"WRF\">"
      "<element name=\"ra_lw_physics\" type=\"int\"/></catalogRequest>");
  EXPECT_EQ(*response.root->attribute("status"), "ok");
  EXPECT_FALSE(response.root->child_text("attributeID").empty());

  // addAttribute
  response = send(
      "<catalogRequest type=\"addAttribute\" objectID=\"0\" "
      "path=\"data/idinfo/keywords/theme\">"
      "<theme><themekt>CF</themekt><themekey>air_temperature</themekey></theme>"
      "</catalogRequest>");
  EXPECT_EQ(*response.root->attribute("status"), "ok");
  ASSERT_NE(response.root->first_child("added"), nullptr);

  // query (full tagged documents)
  response = send(query_to_xml(workload::paper_example_query()));
  EXPECT_EQ(*response.root->attribute("status"), "ok");
  ASSERT_NE(response.root->first_child("results"), nullptr);
  EXPECT_EQ(response.root->first_child("results")->children_named("result").size(), 1u);

  // queryIds
  ObjectQuery ids_query = workload::paper_example_query();
  std::string wire = query_to_xml(ids_query);
  wire.replace(wire.find("type=\"query\""), 12, "type=\"queryIds\"");
  response = send(wire);
  EXPECT_EQ(*response.root->attribute("status"), "ok");
  ASSERT_NE(response.root->first_child("objectIDs"), nullptr);

  // fetch
  response = send("<catalogRequest type=\"fetch\" objectID=\"0\"/>");
  EXPECT_EQ(*response.root->attribute("status"), "ok");
  EXPECT_FALSE(xml::select(*response.root, "results/result/LEADresource").empty());

  // stats
  response = send("<catalogRequest type=\"stats\"/>");
  EXPECT_EQ(*response.root->attribute("status"), "ok");
  const xml::Node* stats = response.root->first_child("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(*stats->attribute("objects"), "1");
  EXPECT_NE(stats->attribute("version"), nullptr);
  EXPECT_NE(stats->attribute("deleted"), nullptr);

  // MVCC counters: the epoch matches the catalog version, the handler's
  // own pinned guard is visible, and every superseded snapshot so far has
  // been reclaimed (the single-threaded sequence leaves no reader pinning
  // old epochs).
  const xml::Node* mvcc = stats->first_child("mvcc");
  ASSERT_NE(mvcc, nullptr);
  EXPECT_EQ(std::stoull(std::string(*mvcc->attribute("epoch"))), catalog_.version());
  EXPECT_GE(std::stoull(std::string(*mvcc->attribute("pinned_readers"))), 1u);
  EXPECT_GT(std::stoull(std::string(*mvcc->attribute("snapshots"))), 0u);
  const auto pending = std::stoull(std::string(*mvcc->attribute("retired_pending")));
  const auto reclaimed = std::stoull(std::string(*mvcc->attribute("reclamations")));
  EXPECT_EQ(pending, 0u);
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(catalog_.mvcc_stats().retired_pending, 0u);

  // delete
  response = send("<catalogRequest type=\"delete\" objectID=\"0\"/>");
  EXPECT_EQ(*response.root->attribute("status"), "ok");
  ASSERT_NE(response.root->first_child("deleted"), nullptr);
}

TEST_F(ProtocolTest, OkResponsesCarryTheCatalogVersion) {
  const std::uint64_t before = catalog_.version();
  const xml::Document response = send("<catalogRequest type=\"ingest\">" +
                                      workload::fig3_document() + "</catalogRequest>");
  const std::string_view* version = response.root->attribute("version");
  ASSERT_NE(version, nullptr);
  EXPECT_GT(std::stoull(std::string(*version)), before);
  EXPECT_EQ(std::stoull(std::string(*version)), catalog_.version());
}

// ---- error codes: every enumerated code is reachable on the wire ----

TEST_F(ProtocolTest, ParseErrorCode) {
  EXPECT_EQ(code_of(send("<not closed")), "parse_error");
  EXPECT_EQ(code_of(send("<somethingElse/>")), "parse_error");
  EXPECT_EQ(code_of(send("<catalogRequest/>")), "parse_error");  // missing type
}

TEST_F(ProtocolTest, UnknownTypeCode) {
  const xml::Document response = send("<catalogRequest type=\"bogus\"/>");
  EXPECT_EQ(code_of(response), "unknown_type");
  EXPECT_FALSE(response.root->child_text("message").empty());
}

TEST_F(ProtocolTest, ValidationCodeNamesTheFailingCriterion) {
  ingest_fig3();
  // Bad operator inside a nested criterion: the message carries the path.
  const xml::Document response = send(
      "<catalogRequest type=\"query\">"
      "<attribute name=\"grid\" source=\"ARPS\">"
      "<attribute name=\"grid-stretching\" source=\"ARPS\">"
      "<element name=\"dzmin\" op=\"almost\">100</element>"
      "</attribute></attribute></catalogRequest>");
  EXPECT_EQ(code_of(response), "validation");
  const std::string message = response.root->child_text("message");
  EXPECT_NE(message.find("grid/grid-stretching"), std::string::npos) << message;
  EXPECT_NE(message.find("almost"), std::string::npos) << message;

  // Nameless criteria are called out, with their parent context.
  EXPECT_EQ(code_of(send("<catalogRequest type=\"query\"><attribute/></catalogRequest>")),
            "validation");
  const xml::Document nameless = send(
      "<catalogRequest type=\"query\"><attribute name=\"grid\">"
      "<element/></attribute></catalogRequest>");
  EXPECT_NE(nameless.root->child_text("message").find("criterion 'grid'"),
            std::string::npos);
}

TEST_F(ProtocolTest, NotFoundCode) {
  ingest_fig3();
  EXPECT_EQ(code_of(send("<catalogRequest type=\"fetch\" objectID=\"99\"/>")),
            "not_found");
  EXPECT_EQ(code_of(send("<catalogRequest type=\"delete\" objectID=\"99\"/>")),
            "not_found");
  EXPECT_EQ(code_of(send("<catalogRequest type=\"addAttribute\" objectID=\"99\" "
                         "path=\"data/idinfo/keywords/theme\"><theme/>"
                         "</catalogRequest>")),
            "not_found");
  // Deleted objects are not_found too.
  send("<catalogRequest type=\"delete\" objectID=\"0\"/>");
  EXPECT_EQ(code_of(send("<catalogRequest type=\"fetch\" objectID=\"0\"/>")),
            "not_found");
}

// ---- protocol versioning: the wire handshake ----

TEST_F(ProtocolTest, VersionHandshakeAcceptsOurMajor) {
  // Bare major, major.minor (unknown minors are additive), and absent
  // (requests predating the attribute are v1) are all served.
  EXPECT_EQ(code_of(send("<catalogRequest type=\"stats\" version=\"1\"/>")), "");
  EXPECT_EQ(code_of(send("<catalogRequest type=\"stats\" version=\"1.3\"/>")), "");
  EXPECT_EQ(code_of(send("<catalogRequest type=\"stats\"/>")), "");
}

TEST_F(ProtocolTest, EveryResponseCarriesTheProtocolMajor) {
  for (const char* request :
       {"<catalogRequest type=\"stats\"/>", "<catalogRequest type=\"bogus\"/>",
        "<not closed"}) {
    const xml::Document response = send(request);
    const std::string_view* protocol = response.root->attribute("protocol");
    ASSERT_NE(protocol, nullptr) << request;
    EXPECT_EQ(*protocol, std::to_string(kProtocolMajor)) << request;
  }
}

TEST_F(ProtocolTest, UnsupportedVersionCode) {
  const xml::Document response =
      send("<catalogRequest type=\"stats\" version=\"2\"/>");
  EXPECT_EQ(code_of(response), "unsupported_version");
  EXPECT_NE(response.root->child_text("message").find("server speaks 1.x"),
            std::string::npos);
  EXPECT_EQ(code_of(send("<catalogRequest type=\"stats\" version=\"2.0\"/>")),
            "unsupported_version");
  // The handshake runs before the type is even considered.
  EXPECT_EQ(code_of(send("<catalogRequest type=\"bogus\" version=\"3\"/>")),
            "unsupported_version");
}

TEST_F(ProtocolTest, MalformedVersionIsValidationNotMismatch) {
  EXPECT_EQ(code_of(send("<catalogRequest type=\"stats\" version=\"abc\"/>")),
            "validation");
  EXPECT_EQ(code_of(send("<catalogRequest type=\"stats\" version=\"1.x\"/>")),
            "validation");
  EXPECT_EQ(code_of(send("<catalogRequest type=\"stats\" version=\"0\"/>")),
            "validation");
}

// ---- the ErrorCode ↔ wire-string table (single source of truth) ----

TEST(ErrorCodeTable, RoundTripsEveryCode) {
  // The static_assert in service.hpp pins one row per enumerator; here:
  // rows are in enum order, and name → code inverts exactly.
  for (std::size_t i = 0; i < std::size(kErrorCodeNames); ++i) {
    const ErrorCodeName& row = kErrorCodeNames[i];
    EXPECT_EQ(static_cast<std::size_t>(row.code), i) << row.name;
    EXPECT_EQ(error_code_name(row.code), row.name);
    const std::optional<ErrorCode> back = error_code_from_name(row.name);
    ASSERT_TRUE(back.has_value()) << row.name;
    EXPECT_EQ(static_cast<int>(*back), static_cast<int>(row.code)) << row.name;
  }
  EXPECT_FALSE(error_code_from_name("not_a_code").has_value());
  EXPECT_FALSE(error_code_from_name("").has_value());
}

TEST(ErrorCodeTable, WireResponsesUseTheTableSpelling) {
  for (const ErrorCodeName& row : kErrorCodeNames) {
    const xml::Document response = xml::parse(error_response(row.code, "boom"));
    EXPECT_EQ(*response.root->attribute("status"), "error");
    EXPECT_EQ(*response.root->attribute("code"), row.name);
  }
}

// ---- pagination ----

TEST_F(ProtocolTest, PaginatedQueryIdsWalksAllPagesInOrder) {
  ingest_fig3(5);
  ObjectQuery query = workload::theme_keyword_query("convective_precipitation_flux");
  query.set_limit(2);
  std::string wire = query_to_xml(query);
  wire.replace(wire.find("type=\"query\""), 12, "type=\"queryIds\"");

  std::vector<std::string> seen;
  std::string cursor;
  for (int page = 0; page < 10; ++page) {
    xml::Document response = send(wire);
    ASSERT_EQ(*response.root->attribute("status"), "ok");
    const xml::Node* ids = response.root->first_child("objectIDs");
    ASSERT_NE(ids, nullptr);
    std::size_t page_size = 0;
    for (const xml::Node* id : ids->children_named("objectID")) {
      seen.push_back(id->text_content());
      ++page_size;
    }
    const std::string next = response.root->child_text("nextCursor");
    if (next.empty()) {
      EXPECT_LE(page_size, 2u);
      break;
    }
    EXPECT_EQ(page_size, 2u);
    // Continue from the cursor.
    ObjectQuery continued = workload::theme_keyword_query("convective_precipitation_flux");
    continued.set_limit(2).set_cursor(next);
    wire = query_to_xml(continued);
    wire.replace(wire.find("type=\"query\""), 12, "type=\"queryIds\"");
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

TEST_F(ProtocolTest, QueryIdsOrderIsDeterministicAndSorted) {
  ingest_fig3(4);
  ObjectQuery query = workload::theme_keyword_query("convective_precipitation_flux");
  std::string wire = query_to_xml(query);
  wire.replace(wire.find("type=\"query\""), 12, "type=\"queryIds\"");
  const std::string first = service_.handle(wire);
  const std::string second = service_.handle(wire);
  EXPECT_EQ(first, second);

  const xml::Document response = xml::parse(first);
  long previous = -1;
  for (const xml::Node* id :
       response.root->first_child("objectIDs")->children_named("objectID")) {
    const long value = std::stol(id->text_content());
    EXPECT_GT(value, previous);
    previous = value;
  }
}

TEST_F(ProtocolTest, StaleCursorCodeAfterMutation) {
  ingest_fig3(5);
  ObjectQuery query = workload::theme_keyword_query("convective_precipitation_flux");
  query.set_limit(2);
  const xml::Document page = send(query_to_xml(query));
  const std::string cursor = page.root->child_text("nextCursor");
  ASSERT_FALSE(cursor.empty());

  // Any mutation bumps the epoch…
  ingest_fig3();

  // …and outstanding cursors go stale.
  ObjectQuery continued = workload::theme_keyword_query("convective_precipitation_flux");
  continued.set_limit(2).set_cursor(cursor);
  const xml::Document response = send(query_to_xml(continued));
  EXPECT_EQ(*response.root->attribute("status"), "error");
  EXPECT_EQ(code_of(response), "stale_cursor");
}

TEST_F(ProtocolTest, MalformedCursorIsValidationNotStale) {
  ingest_fig3();
  ObjectQuery query = workload::theme_keyword_query("convective_precipitation_flux");
  query.set_limit(1).set_cursor("garbage");
  EXPECT_EQ(code_of(send(query_to_xml(query))), "validation");
}

TEST_F(ProtocolTest, PaginationSurvivesWireRoundTrip) {
  ObjectQuery query = workload::paper_example_query().set_user("alice");
  query.set_limit(7).set_cursor("HXC1.0.3");
  const xml::Document doc = xml::parse(query_to_xml(query));
  const ObjectQuery parsed = query_from_xml(*doc.root);
  EXPECT_EQ(parsed.limit(), 7u);
  EXPECT_EQ(parsed.cursor(), "HXC1.0.3");
  EXPECT_EQ(query_to_xml(parsed), query_to_xml(query));
}

// ---- catalog-level pagination API ----

TEST_F(ProtocolTest, QueryPagedMatchesUnpagedUnion) {
  ingest_fig3(6);
  ObjectQuery base = workload::theme_keyword_query("convective_precipitation_flux");
  const std::vector<ObjectId> all = catalog_.query(base);
  ASSERT_EQ(all.size(), 6u);

  std::vector<ObjectId> collected;
  ObjectQuery paged = base;
  paged.set_limit(4);
  QueryPage page = catalog_.query_paged(paged);
  collected.insert(collected.end(), page.ids.begin(), page.ids.end());
  while (!page.next_cursor.empty()) {
    ObjectQuery next = base;
    next.set_limit(4).set_cursor(page.next_cursor);
    page = catalog_.query_paged(next);
    collected.insert(collected.end(), page.ids.begin(), page.ids.end());
  }
  EXPECT_EQ(collected, all);
  EXPECT_EQ(page.version, catalog_.version());
}

// ---- dispatcher: deadline, admission queue, metrics ----

TEST(DispatcherProtocol, TimeoutCodeWithoutTouchingTheCatalog) {
  static xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  ServiceDispatcher dispatcher(catalog, DispatcherConfig{.workers = 1, .max_queue = 8});

  // timeoutMs="0" expires at admission: answered code="timeout", and the
  // ingest never executes.
  const std::string response =
      dispatcher.call("<catalogRequest type=\"ingest\" timeoutMs=\"0\">" +
                      workload::fig3_document() + "</catalogRequest>");
  const xml::Document doc = xml::parse(response);
  EXPECT_EQ(*doc.root->attribute("status"), "error");
  EXPECT_EQ(*doc.root->attribute("code"), "timeout");
  EXPECT_EQ(catalog.object_count(), 0u);

  const util::MetricsRegistry& metrics = dispatcher.metrics();
  const int slot = metrics.find("ingest");
  ASSERT_GE(slot, 0);
  EXPECT_EQ(metrics.at(static_cast<std::size_t>(slot)).timeouts.load(), 1u);
}

TEST(DispatcherProtocol, OverloadedCodeWhenAdmissionQueueIsFull) {
  static xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());

  std::atomic<bool> release{false};
  DispatcherConfig config;
  config.workers = 1;
  config.max_queue = 1;
  config.before_execute = [&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ServiceDispatcher dispatcher(catalog, config);

  // First request occupies the single worker (held at the gate)…
  auto held = dispatcher.submit("<catalogRequest type=\"stats\"/>");
  while (dispatcher.queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // …second fills the admission queue…
  auto queued = dispatcher.submit("<catalogRequest type=\"stats\"/>");
  // …third is rejected immediately, without blocking.
  auto rejected = dispatcher.submit("<catalogRequest type=\"stats\"/>");
  const xml::Document response = xml::parse(rejected.get());
  EXPECT_EQ(*response.root->attribute("status"), "error");
  EXPECT_EQ(*response.root->attribute("code"), "overloaded");

  release.store(true, std::memory_order_release);
  EXPECT_EQ(*xml::parse(held.get()).root->attribute("status"), "ok");
  EXPECT_EQ(*xml::parse(queued.get()).root->attribute("status"), "ok");

  const util::MetricsRegistry& metrics = dispatcher.metrics();
  const auto& stats_slot = metrics.at(static_cast<std::size_t>(metrics.find("stats")));
  EXPECT_EQ(stats_slot.rejected.load(), 1u);
  EXPECT_EQ(stats_slot.ok.load(), 2u);
}

TEST(DispatcherProtocol, StatsReportsPerRequestTypeMetrics) {
  static xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  ServiceDispatcher dispatcher(catalog, DispatcherConfig{.workers = 2, .max_queue = 32});

  dispatcher.call("<catalogRequest type=\"ingest\">" + workload::fig3_document() +
                  "</catalogRequest>");
  dispatcher.call(query_to_xml(workload::paper_example_query()));
  dispatcher.call(query_to_xml(workload::paper_example_query()));
  dispatcher.call("<catalogRequest type=\"fetch\" objectID=\"42\"/>");  // not_found
  dispatcher.call("<catalogRequest type=\"nonsense\"/>");               // unknown_type

  const xml::Document stats =
      xml::parse(dispatcher.call("<catalogRequest type=\"stats\"/>"));
  ASSERT_EQ(*stats.root->attribute("status"), "ok");
  const xml::Node* requests = stats.root->first_child("stats")->first_child("requests");
  ASSERT_NE(requests, nullptr);

  bool saw_query = false, saw_fetch = false, saw_other = false;
  for (const xml::Node* request : requests->children_named("request")) {
    const std::string_view type = *request->attribute("type");
    if (type == "query") {
      saw_query = true;
      EXPECT_EQ(*request->attribute("handled"), "2");
      EXPECT_EQ(*request->attribute("ok"), "2");
      EXPECT_NE(request->attribute("p50_us"), nullptr);
    } else if (type == "fetch") {
      saw_fetch = true;
      EXPECT_EQ(*request->attribute("errors"), "1");
    } else if (type == "other") {
      saw_other = true;  // the unknown_type request lands in the catch-all
      EXPECT_EQ(*request->attribute("errors"), "1");
    }
  }
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_fetch);
  EXPECT_TRUE(saw_other);
}

TEST(DispatcherProtocol, DefaultTimeoutFromConfigApplies) {
  static xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());

  std::atomic<bool> release{false};
  DispatcherConfig config;
  config.workers = 1;
  config.max_queue = 8;
  config.default_timeout = std::chrono::milliseconds(20);
  config.before_execute = [&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ServiceDispatcher dispatcher(catalog, config);

  auto held = dispatcher.submit("<catalogRequest type=\"stats\"/>");
  std::this_thread::sleep_for(std::chrono::milliseconds(40));  // let the deadline lapse
  release.store(true, std::memory_order_release);
  const xml::Document response = xml::parse(held.get());
  EXPECT_EQ(*response.root->attribute("status"), "error");
  EXPECT_EQ(*response.root->attribute("code"), "timeout");
}

TEST(DispatcherProtocol, DrainRejectsNewWorkAndQuiesces) {
  static xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());

  std::atomic<bool> release{false};
  DispatcherConfig config;
  config.workers = 1;
  config.max_queue = 8;
  config.before_execute = [&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ServiceDispatcher dispatcher(catalog, config);

  // An in-flight request must still complete after drain() is called.
  auto held = dispatcher.submit("<catalogRequest type=\"ingest\">" +
                                workload::fig3_document() + "</catalogRequest>");

  std::thread drainer([&dispatcher] { dispatcher.drain(); });
  while (!dispatcher.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Past the gate: new work is refused immediately, even with queue space.
  const xml::Document rejected =
      xml::parse(dispatcher.call("<catalogRequest type=\"stats\"/>"));
  EXPECT_EQ(*rejected.root->attribute("status"), "error");
  EXPECT_EQ(*rejected.root->attribute("code"), "draining");

  release.store(true, std::memory_order_release);
  drainer.join();  // drain() returns only once the in-flight request landed
  EXPECT_EQ(dispatcher.queue_depth(), 0u);
  EXPECT_EQ(*xml::parse(held.get()).root->attribute("status"), "ok");
  EXPECT_EQ(catalog.object_count(), 1u);

  dispatcher.drain();  // idempotent
  const xml::Document again =
      xml::parse(dispatcher.call("<catalogRequest type=\"query\"/>"));
  EXPECT_EQ(*again.root->attribute("code"), "draining");
}

TEST_F(ProtocolTest, StatsReportDurabilityCountersWhenAttached) {
  // Without a storage layer attached, stats omits the durability element.
  xml::Document plain = send("<catalogRequest type=\"stats\"/>");
  EXPECT_EQ(plain.root->first_child("stats")->first_child("durability"), nullptr);

  util::DurabilityMetrics wal;
  wal.wal_records.store(12);
  wal.wal_bytes.store(3456);
  wal.wal_fsyncs.store(2);
  wal.replayed_records.store(5);
  wal.torn_tail_truncations.store(1);
  wal.recovery_micros.store(7500);
  catalog_.set_durability_metrics(&wal);

  xml::Document stats = send("<catalogRequest type=\"stats\"/>");
  const xml::Node* durability =
      stats.root->first_child("stats")->first_child("durability");
  ASSERT_NE(durability, nullptr);
  EXPECT_EQ(*durability->attribute("wal_records"), "12");
  EXPECT_EQ(*durability->attribute("wal_bytes"), "3456");
  EXPECT_EQ(*durability->attribute("wal_fsyncs"), "2");
  EXPECT_EQ(*durability->attribute("replayed_records"), "5");
  EXPECT_EQ(*durability->attribute("torn_tail_truncations"), "1");
  EXPECT_EQ(*durability->attribute("recovery_ms"), "7");
  catalog_.set_durability_metrics(nullptr);
}

}  // namespace
}  // namespace hxrc::core
