// Ontology-backed query resolution (§3: definitions "could also be
// connected to an ontology for enhanced search capabilities").
#include <gtest/gtest.h>

#include "core/catalog.hpp"
#include "core/thesaurus.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace hxrc::core {
namespace {

TEST(Thesaurus, ResolvesSynonymsAndChains) {
  Thesaurus thesaurus;
  thesaurus.add_synonym("horizontal-resolution", "CF", "dx", "ARPS");
  thesaurus.add_synonym("grid-spacing", "", "horizontal-resolution", "CF");

  const auto direct = thesaurus.resolve("horizontal-resolution", "CF");
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->name, "dx");
  EXPECT_EQ(direct->source, "ARPS");

  // Transitive chain: grid-spacing -> horizontal-resolution -> dx.
  const auto chained = thesaurus.resolve("grid-spacing", "");
  ASSERT_TRUE(chained.has_value());
  EXPECT_EQ(chained->name, "dx");

  EXPECT_FALSE(thesaurus.resolve("unknown", "").has_value());
}

TEST(Thesaurus, VersionBumpsOnOverwrite) {
  Thesaurus thesaurus;
  thesaurus.add_synonym("alias", "", "dx", "ARPS");
  const std::uint64_t v1 = thesaurus.version();
  // Remapping an existing alias leaves size() unchanged but must still
  // advance the mutation counter — canonical query keys fingerprint it.
  thesaurus.add_synonym("alias", "", "dzmin", "ARPS");
  EXPECT_EQ(thesaurus.size(), 1u);
  EXPECT_GT(thesaurus.version(), v1);
}

TEST(Thesaurus, CyclesTerminate) {
  Thesaurus thesaurus;
  thesaurus.add_synonym("a", "", "b", "");
  thesaurus.add_synonym("b", "", "a", "");
  const auto resolved = thesaurus.resolve("a", "");
  ASSERT_TRUE(resolved.has_value());  // bounded walk, no hang
}

class OntologyQuery : public ::testing::Test {
 protected:
  OntologyQuery()
      : schema_(workload::lead_schema()),
        catalog_(schema_, workload::lead_annotations(), [] {
          CatalogConfig config;
          config.shred.auto_define_dynamic = true;
          return config;
        }()) {
    id_ = catalog_.ingest_xml(workload::fig3_document(), "fig3", "alice");
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  ObjectId id_ = -1;
};

TEST_F(OntologyQuery, ElementSynonymResolvesInQueries) {
  // "horizontal-resolution" is not a registered element; with a synonym it
  // resolves to grid/ARPS's dx.
  ObjectQuery query;
  AttrQuery grid("grid", "ARPS");
  grid.add_element("horizontal-resolution", "CF", rel::Value(1000.0), CompareOp::kEq);
  query.add_attribute(std::move(grid));

  EXPECT_TRUE(catalog_.query(query).empty());  // no synonym yet
  catalog_.thesaurus().add_synonym("horizontal-resolution", "CF", "dx", "ARPS");
  EXPECT_EQ(catalog_.query(query), std::vector<ObjectId>{id_});
}

TEST_F(OntologyQuery, AttributeSynonymResolvesInQueries) {
  catalog_.thesaurus().add_synonym("model-grid", "community", "grid", "ARPS");
  ObjectQuery query;
  AttrQuery grid("model-grid", "community");
  grid.add_element("dx", "ARPS", rel::Value(1000.0), CompareOp::kEq);
  query.add_attribute(std::move(grid));
  EXPECT_EQ(catalog_.query(query), std::vector<ObjectId>{id_});
}

TEST_F(OntologyQuery, DirectDefinitionsWinOverSynonyms) {
  // A synonym must not shadow an exact definition.
  catalog_.thesaurus().add_synonym("grid", "ARPS", "dz", "ARPS");  // nonsense mapping
  EXPECT_EQ(catalog_.query(workload::paper_example_query()).size(), 1u);
}

TEST_F(OntologyQuery, SynonymInsideSubAttribute) {
  catalog_.thesaurus().add_synonym("min-vertical-spacing", "CF", "dzmin", "ARPS");
  ObjectQuery query;
  AttrQuery grid("grid", "ARPS");
  AttrQuery stretching("grid-stretching", "ARPS");
  stretching.add_element("min-vertical-spacing", "CF", rel::Value(100.0), CompareOp::kEq);
  grid.add_attribute(std::move(stretching));
  query.add_attribute(std::move(grid));
  EXPECT_EQ(catalog_.query(query), std::vector<ObjectId>{id_});
}

}  // namespace
}  // namespace hxrc::core
