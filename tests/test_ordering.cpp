// The materialized global-ordering tables (§2, §5): schema_order and
// order_ancestors contents and invariants, checked against the Partition.
#include <gtest/gtest.h>

#include "core/ordering.hpp"
#include "core/partition.hpp"
#include "rel/database.hpp"
#include "workload/lead_schema.hpp"

namespace hxrc::core {
namespace {

class OrderingTest : public ::testing::Test {
 protected:
  OrderingTest()
      : schema_(workload::lead_schema()),
        partition_(Partition::build(schema_, workload::lead_annotations())) {
    install_ordering(db_, partition_);
  }

  xml::Schema schema_;
  Partition partition_;
  rel::Database db_;
};

TEST_F(OrderingTest, SchemaOrderTableMirrorsTheOrderedRegion) {
  const rel::Table& table = db_.require_table(kSchemaOrderTable);
  ASSERT_EQ(table.row_count(), partition_.ordered_nodes().size());
  for (const OrderedNode& node : partition_.ordered_nodes()) {
    const rel::Row& row = table.row(static_cast<std::size_t>(node.order));
    EXPECT_EQ(row[0].as_int(), node.order);
    EXPECT_EQ(row[1].as_string(), node.tag);
    if (node.parent == kNoOrder) {
      EXPECT_TRUE(row[2].is_null());
    } else {
      EXPECT_EQ(row[2].as_int(), node.parent);
    }
    EXPECT_EQ(row[3].as_int(), node.last_child);
    EXPECT_EQ(row[4].as_int(), node.depth);
    EXPECT_EQ(row[5].as_int() != 0, node.is_attribute_root);
  }
}

TEST_F(OrderingTest, AttributeRootsCloseImmediately) {
  // §2: "which for metadata attribute nodes is the same as the node order".
  const rel::Table& table = db_.require_table(kSchemaOrderTable);
  for (const rel::Row& row : table.rows()) {
    if (row[5].as_int() == 1) {
      EXPECT_EQ(row[0].as_int(), row[3].as_int());
    }
  }
}

TEST_F(OrderingTest, LastChildBracketsNestSubtrees) {
  // For every node: parent.order < node.order <= parent.last_child — the
  // bracket structure that lets close tags be emitted set-based (§5).
  const auto& nodes = partition_.ordered_nodes();
  for (const OrderedNode& node : nodes) {
    if (node.parent == kNoOrder) continue;
    const OrderedNode& parent = nodes[static_cast<std::size_t>(node.parent)];
    EXPECT_LT(parent.order, node.order);
    EXPECT_LE(node.last_child, parent.last_child);
  }
}

TEST_F(OrderingTest, AncestorTableIsCompleteAndDistanceOrdered) {
  const rel::Table& ancestors = db_.require_table(kOrderAncestorsTable);
  // Sum over all nodes of their depth = total ancestor rows.
  std::size_t expected_rows = 0;
  for (const OrderedNode& node : partition_.ordered_nodes()) {
    expected_rows += static_cast<std::size_t>(node.depth);
  }
  EXPECT_EQ(ancestors.row_count(), expected_rows);

  // Each (node, distance d) ancestor is the node's d-th parent.
  const auto& nodes = partition_.ordered_nodes();
  for (const rel::Row& row : ancestors.rows()) {
    const auto order = row[0].as_int();
    const auto anc = row[1].as_int();
    const auto distance = row[2].as_int();
    OrderId walk = order;
    for (std::int64_t d = 0; d < distance; ++d) {
      walk = nodes[static_cast<std::size_t>(walk)].parent;
    }
    EXPECT_EQ(walk, anc);
  }
}

TEST_F(OrderingTest, IndexesProbeCorrectly) {
  const rel::Table& ancestors = db_.require_table(kOrderAncestorsTable);
  const rel::Index* index = ancestors.index("idx_anc_by_node");
  ASSERT_NE(index, nullptr);
  // The theme attribute root has 4 ancestors.
  const xml::SchemaNode* theme = schema_.find("data/idinfo/keywords/theme");
  const OrderId theme_order = partition_.order_of(*theme);
  EXPECT_EQ(index->lookup(rel::Key{{rel::Value(theme_order)}}).size(), 4u);
  // The root (order 0) has none.
  EXPECT_TRUE(index->lookup(rel::Key{{rel::Value(std::int64_t{0})}}).empty());
}

TEST_F(OrderingTest, OrderingIsBuiltOncePerSchemaNotPerDocument) {
  // Ingest-independence: the tables never grow with data. (The catalog
  // fixture ingests through MetadataCatalog; here it suffices that
  // install_ordering is a pure function of the partition.)
  const std::size_t rows_before =
      db_.require_table(kSchemaOrderTable).row_count();
  rel::Database db2;
  install_ordering(db2, partition_);
  EXPECT_EQ(db2.require_table(kSchemaOrderTable).row_count(), rows_before);
}

}  // namespace
}  // namespace hxrc::core
