#include <gtest/gtest.h>

#include "rel/expr.hpp"

namespace hxrc::rel {
namespace {

const Row kRow{Value(std::int64_t{5}), Value("abc"), Value(2.5), Value::null()};

TEST(Expr, ColumnAndConst) {
  EXPECT_EQ(col(0)->eval(kRow).as_int(), 5);
  EXPECT_EQ(lit(Value("x"))->eval(kRow).as_string(), "x");
}

TEST(Expr, Comparisons) {
  EXPECT_EQ(eq(col(0), lit(Value(std::int64_t{5})))->eval(kRow).as_int(), 1);
  EXPECT_EQ(eq(col(0), lit(Value(5.0)))->eval(kRow).as_int(), 1);  // cross-type
  EXPECT_EQ(ne(col(0), lit(Value(std::int64_t{5})))->eval(kRow).as_int(), 0);
  EXPECT_EQ(lt(col(2), lit(Value(3.0)))->eval(kRow).as_int(), 1);
  EXPECT_EQ(le(col(2), lit(Value(2.5)))->eval(kRow).as_int(), 1);
  EXPECT_EQ(gt(col(1), lit(Value("abb")))->eval(kRow).as_int(), 1);
  EXPECT_EQ(ge(col(1), lit(Value("abc")))->eval(kRow).as_int(), 1);
}

TEST(Expr, NullPropagatesThroughComparisons) {
  EXPECT_TRUE(eq(col(3), lit(Value(std::int64_t{1})))->eval(kRow).is_null());
  EXPECT_FALSE(eq(col(3), lit(Value(std::int64_t{1})))->eval_bool(kRow));
}

TEST(Expr, ThreeValuedAnd) {
  const auto t = lit(Value(std::int64_t{1}));
  const auto f = lit(Value(std::int64_t{0}));
  const auto n = lit(Value::null());
  EXPECT_EQ(and_(t, t)->eval(kRow).as_int(), 1);
  EXPECT_EQ(and_(t, f)->eval(kRow).as_int(), 0);
  EXPECT_EQ(and_(f, n)->eval(kRow).as_int(), 0);   // false AND unknown = false
  EXPECT_TRUE(and_(t, n)->eval(kRow).is_null());   // true AND unknown = unknown
}

TEST(Expr, ThreeValuedOr) {
  const auto t = lit(Value(std::int64_t{1}));
  const auto f = lit(Value(std::int64_t{0}));
  const auto n = lit(Value::null());
  EXPECT_EQ(or_(f, t)->eval(kRow).as_int(), 1);
  EXPECT_EQ(or_(t, n)->eval(kRow).as_int(), 1);    // true OR unknown = true
  EXPECT_TRUE(or_(f, n)->eval(kRow).is_null());    // false OR unknown = unknown
  EXPECT_EQ(or_(f, f)->eval(kRow).as_int(), 0);
}

TEST(Expr, NotAndIsNull) {
  EXPECT_EQ(not_(lit(Value(std::int64_t{0})))->eval(kRow).as_int(), 1);
  EXPECT_TRUE(not_(lit(Value::null()))->eval(kRow).is_null());
  EXPECT_EQ(is_null(col(3))->eval(kRow).as_int(), 1);
  EXPECT_EQ(is_null(col(0))->eval(kRow).as_int(), 0);
}

TEST(Expr, Arithmetic) {
  const auto two = lit(Value(std::int64_t{2}));
  EXPECT_EQ(binary(BinOp::kAdd, col(0), two)->eval(kRow).as_int(), 7);
  EXPECT_EQ(binary(BinOp::kSub, col(0), two)->eval(kRow).as_int(), 3);
  EXPECT_EQ(binary(BinOp::kMul, col(0), two)->eval(kRow).as_int(), 10);
  EXPECT_DOUBLE_EQ(binary(BinOp::kDiv, col(0), two)->eval(kRow).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(binary(BinOp::kAdd, col(2), two)->eval(kRow).as_double(), 4.5);
}

TEST(Expr, StringConcatenationViaAdd) {
  EXPECT_EQ(binary(BinOp::kAdd, col(1), lit(Value("!")))->eval(kRow).as_string(), "abc!");
}

TEST(Expr, ArithmeticTypeErrors) {
  EXPECT_THROW(binary(BinOp::kMul, col(1), lit(Value(std::int64_t{2})))->eval(kRow),
               TypeError);
}

TEST(Expr, EvalBoolSemantics) {
  EXPECT_TRUE(lit(Value(std::int64_t{2}))->eval_bool(kRow));
  EXPECT_FALSE(lit(Value(std::int64_t{0}))->eval_bool(kRow));
  EXPECT_TRUE(lit(Value(0.5))->eval_bool(kRow));
  EXPECT_FALSE(lit(Value(0.0))->eval_bool(kRow));
  EXPECT_TRUE(lit(Value("x"))->eval_bool(kRow));
  EXPECT_FALSE(lit(Value(""))->eval_bool(kRow));
  EXPECT_FALSE(lit(Value::null())->eval_bool(kRow));
}

TEST(Expr, ConjunctionBuilder) {
  EXPECT_TRUE(conjunction({})->eval_bool(kRow));
  const auto both = conjunction({gt(col(0), lit(Value(std::int64_t{1}))),
                                 eq(col(1), lit(Value("abc")))});
  EXPECT_TRUE(both->eval_bool(kRow));
}

TEST(Expr, ColumnIndexIntrospection) {
  EXPECT_EQ(column_index(*col(3)), 3u);
  EXPECT_FALSE(column_index(*lit(Value(std::int64_t{1}))).has_value());
}

TEST(Expr, Describe) {
  EXPECT_EQ(eq(col(0, "id"), lit(Value(std::int64_t{5})))->describe(), "(id = 5)");
}

}  // namespace
}  // namespace hxrc::rel
