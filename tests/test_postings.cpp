// Unit tests for the delta/varint-compressed posting lists that back the
// generation-versioned indexes (rel/postings.hpp).
#include "rel/postings.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace hxrc::rel {
namespace {

std::vector<RowId> decode(const PostingList& pl) {
  std::vector<RowId> out;
  pl.append_to(out);
  return out;
}

class PostingsTest : public ::testing::Test {
 protected:
  void TearDown() override { PostingList::set_compression(true); }
};

TEST_F(PostingsTest, RoundTripSmall) {
  PostingList pl;
  const std::vector<RowId> ids = {0, 1, 5, 6, 1000, 1000000, 1000001};
  for (const RowId id : ids) pl.push_back(id);
  EXPECT_EQ(pl.size(), ids.size());
  EXPECT_EQ(decode(pl), ids);
}

TEST_F(PostingsTest, RoundTripAcrossBlocks) {
  // Enough ids to span several blocks, with mixed small and large gaps.
  std::mt19937_64 rng(42);
  std::vector<RowId> ids;
  RowId id = 0;
  for (int i = 0; i < 5000; ++i) {
    id += 1 + (rng() % (i % 7 == 0 ? 100000 : 3));
    ids.push_back(id);
  }
  PostingList pl;
  for (const RowId v : ids) pl.push_back(v);
  EXPECT_EQ(decode(pl), ids);
}

TEST_F(PostingsTest, CountAndAppendBelowAgreeWithReference) {
  std::mt19937_64 rng(7);
  std::vector<RowId> ids;
  RowId id = 0;
  for (int i = 0; i < 1000; ++i) {
    id += 1 + rng() % 50;
    ids.push_back(id);
  }
  PostingList pl;
  for (const RowId v : ids) pl.push_back(v);

  const std::vector<std::size_t> limits = {0,         1,          ids.front(),
                                           ids[499],  ids[500] + 1, ids.back(),
                                           ids.back() + 1, SIZE_MAX};
  for (const std::size_t limit : limits) {
    std::vector<RowId> expect;
    for (const RowId v : ids) {
      if (v < limit) expect.push_back(v);
    }
    EXPECT_EQ(pl.count_below(limit), expect.size()) << "limit=" << limit;
    std::vector<RowId> got;
    pl.append_below(limit, got);
    EXPECT_EQ(got, expect) << "limit=" << limit;
  }
}

TEST_F(PostingsTest, WatermarkInsideEveryBlockPosition) {
  // Sweep a watermark across a multi-block list one id at a time; catches
  // off-by-ones at block boundaries (first id of a block lives only in the
  // skip table).
  std::vector<RowId> ids;
  for (RowId v = 0; v < 3 * PostingList::kBlockSize + 5; ++v) ids.push_back(v * 2);
  PostingList pl;
  for (const RowId v : ids) pl.push_back(v);
  for (std::size_t limit = 0; limit <= ids.back() + 2; ++limit) {
    const std::size_t expect =
        static_cast<std::size_t>(std::lower_bound(ids.begin(), ids.end(), limit) -
                                 ids.begin());
    ASSERT_EQ(pl.count_below(limit), expect) << "limit=" << limit;
  }
}

TEST_F(PostingsTest, AppendAllConcatenatesDisjointRuns) {
  PostingList older, newer;
  std::vector<RowId> all;
  for (RowId v = 0; v < 300; ++v) {
    older.push_back(v * 3);
    all.push_back(v * 3);
  }
  for (RowId v = 300; v < 650; ++v) {
    newer.push_back(v * 3);
    all.push_back(v * 3);
  }
  older.append_all(newer);
  EXPECT_EQ(older.size(), all.size());
  EXPECT_EQ(decode(older), all);
  // The concatenated list still answers watermark cuts correctly.
  EXPECT_EQ(older.count_below(900), 300u);
  EXPECT_EQ(older.count_below(901), 301u);
}

TEST_F(PostingsTest, AppendAllIntoEmpty) {
  PostingList a, b;
  b.push_back(10);
  b.push_back(20);
  a.append_all(b);
  EXPECT_EQ(decode(a), (std::vector<RowId>{10, 20}));
}

TEST_F(PostingsTest, CompressionShrinksDensePostings) {
  // Dense ids (gap 1): about one byte per id after the first of each block,
  // against 8 for a raw RowId.
  PostingList pl;
  for (RowId v = 0; v < 10000; ++v) pl.push_back(v);
  EXPECT_LT(pl.heap_bytes(), pl.raw_bytes() / 2);
}

TEST_F(PostingsTest, RawModeRoundTrip) {
  PostingList::set_compression(false);
  PostingList pl;
  const std::vector<RowId> ids = {3, 9, 27, 81};
  for (const RowId v : ids) pl.push_back(v);
  EXPECT_EQ(decode(pl), ids);
  EXPECT_EQ(pl.count_below(28), 3u);
  std::vector<RowId> got;
  pl.append_below(28, got);
  EXPECT_EQ(got, (std::vector<RowId>{3, 9, 27}));
  EXPECT_GE(pl.heap_bytes(), pl.raw_bytes());
}

TEST_F(PostingsTest, ShortListsCarryNoSkipTableOverhead) {
  // Block 0 has no skip entry (its first id lives in the byte stream), so a
  // singleton posting — the common case in value-keyed indexes — must cost
  // strictly less than its raw 8-byte RowId.
  PostingList pl;
  pl.push_back(9'999'999);
  pl.shrink();
  EXPECT_LT(pl.heap_bytes(), pl.raw_bytes());
}

TEST_F(PostingsTest, TieredMergesMatchDirectBuildByteForByte) {
  // Size-tiered merges fuse the appended list's first block into the tail
  // block, so a list assembled by many small merges — how index
  // generations actually grow — costs the same bytes as one built by
  // straight appends, and round-trips identically.
  constexpr RowId kGap = 770;
  PostingList direct;
  for (RowId v = 0; v < 300; ++v) direct.push_back(v * kGap);
  direct.shrink();

  PostingList merged;
  RowId next = 0;
  while (next < 300) {  // merge in runs of 1..7 ids
    PostingList run;
    const RowId stop = std::min<RowId>(next + 1 + next % 7, 300);
    for (; next < stop; ++next) run.push_back(next * kGap);
    run.shrink();
    merged.append_all(run);
    merged.shrink();
  }
  EXPECT_EQ(decode(merged), decode(direct));
  EXPECT_EQ(merged.heap_bytes(), direct.heap_bytes());
  for (const RowId limit : {0u, 1u, 770u, 771u, 120 * 770u, 299 * 770u + 1}) {
    EXPECT_EQ(merged.count_below(limit), direct.count_below(limit)) << limit;
  }
}

TEST_F(PostingsTest, MixedModeAppendAllReencodes) {
  PostingList raw_list;
  PostingList::set_compression(false);
  for (RowId v = 100; v < 200; ++v) raw_list.push_back(v);
  PostingList::set_compression(true);
  PostingList packed;
  for (RowId v = 0; v < 100; ++v) packed.push_back(v);
  packed.append_all(raw_list);
  EXPECT_EQ(packed.size(), 200u);
  std::vector<RowId> expect;
  for (RowId v = 0; v < 200; ++v) expect.push_back(v);
  EXPECT_EQ(decode(packed), expect);
}

}  // namespace
}  // namespace hxrc::rel
