#include <gtest/gtest.h>

#include "workload/namelist.hpp"
#include "xml/writer.hpp"

namespace hxrc::workload {
namespace {

const char* kArps = R"(
! ARPS grid configuration
&grid
  dx = 1000.0,
  dz = 500.0,
  nx = 67, ny = 67          ! two values on one line? no - one entry
  runname = 'may20-supercell',
  grid_stretching%dzmin = 100.0,
  grid_stretching%strhopt = 2,
/
&microphysics
  mphyopt = 2,
  hail_density = 913.0,
/
)";

TEST(Namelist, ParsesGroupsAndEntries) {
  // Note: "nx = 67, ny = 67" is a single entry with values {67, ny = 67}? No:
  // the namelist grammar here treats a line as one key; keep keys on their
  // own lines in real inputs. This input exercises multi-value parsing.
  const auto groups = parse_namelist("&g\n a = 1, 2, 3,\n b = 'x y', 'z',\n/\n");
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].name, "g");
  ASSERT_EQ(groups[0].entries.size(), 2u);
  EXPECT_EQ(groups[0].entries[0].values,
            (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(groups[0].entries[1].values, (std::vector<std::string>{"x y", "z"}));
}

TEST(Namelist, ParsesArpsStyleFile) {
  const auto groups = parse_namelist(kArps);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].name, "grid");
  EXPECT_EQ(groups[1].name, "microphysics");

  const auto& grid = groups[0];
  EXPECT_EQ(grid.entries[0].key, "dx");
  EXPECT_EQ(grid.entries[0].values[0], "1000.0");
  // Quoted strings keep spaces, lose quotes.
  bool found_runname = false;
  for (const auto& entry : grid.entries) {
    if (entry.key == "runname") {
      EXPECT_EQ(entry.values[0], "may20-supercell");
      found_runname = true;
    }
  }
  EXPECT_TRUE(found_runname);
}

TEST(Namelist, CommentsAreStripped) {
  const auto groups = parse_namelist("&g\n a = 5, ! trailing comment\n/\n");
  EXPECT_EQ(groups[0].entries[0].values[0], "5");
  // '!' inside quotes is literal.
  const auto quoted = parse_namelist("&g\n a = 'hi!there',\n/\n");
  EXPECT_EQ(quoted[0].entries[0].values[0], "hi!there");
}

TEST(Namelist, Errors) {
  EXPECT_THROW(parse_namelist("a = 1\n"), NamelistError);
  EXPECT_THROW(parse_namelist("&g\n a = 1\n"), NamelistError);  // unterminated
  EXPECT_THROW(parse_namelist("&g\n&h\n/\n"), NamelistError);   // nested
  EXPECT_THROW(parse_namelist("&g\n justakey\n/\n"), NamelistError);
  EXPECT_THROW(parse_namelist("/\n"), NamelistError);
  EXPECT_THROW(parse_namelist("&g\n a = 'unterminated\n/\n"), NamelistError);
}

TEST(Namelist, WriteRoundTrips) {
  const auto groups = parse_namelist(kArps);
  const std::string text = write_namelist(groups);
  const auto reparsed = parse_namelist(text);
  ASSERT_EQ(reparsed.size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    EXPECT_EQ(reparsed[g].name, groups[g].name);
    ASSERT_EQ(reparsed[g].entries.size(), groups[g].entries.size());
    for (std::size_t e = 0; e < groups[g].entries.size(); ++e) {
      EXPECT_EQ(reparsed[g].entries[e].key, groups[g].entries[e].key);
      EXPECT_EQ(reparsed[g].entries[e].values, groups[g].entries[e].values);
    }
  }
}

TEST(Namelist, ConvertsToDetailedElement) {
  const auto groups = parse_namelist(
      "&grid\n dx = 1000.0,\n grid_stretching%dzmin = 100.0,\n/\n");
  const xml::NodePtr detailed = namelist_group_to_detailed(groups[0], "ARPS");

  EXPECT_EQ(detailed->name(), "detailed");
  const xml::Node* enttyp = detailed->first_child("enttyp");
  ASSERT_NE(enttyp, nullptr);
  EXPECT_EQ(enttyp->child_text("enttypl"), "grid");
  EXPECT_EQ(enttyp->child_text("enttypds"), "ARPS");

  // dx is a scalar element item.
  const auto items = detailed->children_named("attr");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0]->child_text("attrlabl"), "dx");
  EXPECT_EQ(items[0]->child_text("attrv"), "1000.0");
  EXPECT_EQ(items[0]->child_text("attrdefs"), "ARPS");

  // grid_stretching is a nested sub-attribute item.
  EXPECT_EQ(items[1]->child_text("attrlabl"), "grid_stretching");
  const auto nested = items[1]->children_named("attr");
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_EQ(nested[0]->child_text("attrlabl"), "dzmin");
  EXPECT_EQ(nested[0]->child_text("attrv"), "100.0");
}

TEST(Namelist, DeepDerivedTypeNesting) {
  const auto groups = parse_namelist("&g\n a%b%c = 7,\n/\n");
  const xml::NodePtr detailed = namelist_group_to_detailed(groups[0], "WRF");
  const xml::Node* a = detailed->children_named("attr")[0];
  EXPECT_EQ(a->child_text("attrlabl"), "a");
  const xml::Node* b = a->children_named("attr")[0];
  EXPECT_EQ(b->child_text("attrlabl"), "b");
  const xml::Node* c = b->children_named("attr")[0];
  EXPECT_EQ(c->child_text("attrlabl"), "c");
  EXPECT_EQ(c->child_text("attrv"), "7");
}

}  // namespace
}  // namespace hxrc::workload
