// The catalog service protocol: query wire-form round trips and the full
// request/response surface.
#include <gtest/gtest.h>

#include "core/service.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/parser.hpp"

namespace hxrc::core {
namespace {

CatalogConfig auto_define_config() {
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : schema_(workload::lead_schema()),
        catalog_(schema_, workload::lead_annotations(), auto_define_config()),
        service_(catalog_) {}

  /// Sends a request and returns the parsed response root.
  xml::Document send(const std::string& request) {
    return xml::parse(service_.handle(request));
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  CatalogService service_;
};

TEST_F(ServiceTest, QueryWireFormRoundTrips) {
  const ObjectQuery original = workload::paper_example_query().set_user("alice");
  const std::string wire = query_to_xml(original);
  const xml::Document doc = xml::parse(wire);
  const ObjectQuery parsed = query_from_xml(*doc.root);

  EXPECT_EQ(parsed.user(), "alice");
  ASSERT_EQ(parsed.attributes().size(), 1u);
  const AttrQuery& grid = parsed.attributes()[0];
  EXPECT_EQ(grid.name(), "grid");
  EXPECT_EQ(grid.source(), "ARPS");
  ASSERT_EQ(grid.elements().size(), 1u);
  EXPECT_EQ(grid.elements()[0].name, "dx");
  EXPECT_DOUBLE_EQ(grid.elements()[0].value.as_double(), 1000.0);
  ASSERT_EQ(grid.sub_attributes().size(), 1u);
  EXPECT_EQ(grid.sub_attributes()[0].name(), "grid-stretching");

  // Re-serializing yields the same wire form (stable round trip).
  EXPECT_EQ(query_to_xml(parsed), wire);
}

TEST_F(ServiceTest, IngestThenQueryEndToEnd) {
  const std::string ingest_request = "<catalogRequest type=\"ingest\" user=\"alice\" "
                                     "name=\"fig3\">" +
                                     workload::fig3_document() + "</catalogRequest>";
  const xml::Document ingest_response = send(ingest_request);
  EXPECT_EQ(*ingest_response.root->attribute("status"), "ok");
  EXPECT_EQ(ingest_response.root->child_text("objectID"), "0");

  const xml::Document query_response =
      send(query_to_xml(workload::paper_example_query()));
  EXPECT_EQ(*query_response.root->attribute("status"), "ok");
  const xml::Node* results = query_response.root->first_child("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->children_named("result").size(), 1u);
  // The response carries the fully tagged document (§5).
  EXPECT_FALSE(xml::select(*results, "result/LEADresource/resourceID").empty());
}

TEST_F(ServiceTest, QueryIdsReturnsBareIds) {
  send("<catalogRequest type=\"ingest\" user=\"u\">" + workload::fig3_document() +
       "</catalogRequest>");
  ObjectQuery query = workload::theme_keyword_query("convective_precipitation_flux");
  std::string wire = query_to_xml(query);
  // Flip the type to queryIds.
  const auto pos = wire.find("type=\"query\"");
  wire.replace(pos, std::string("type=\"query\"").size(), "type=\"queryIds\"");
  const xml::Document response = send(wire);
  EXPECT_EQ(*response.root->attribute("status"), "ok");
  const xml::Node* ids = response.root->first_child("objectIDs");
  ASSERT_NE(ids, nullptr);
  ASSERT_EQ(ids->children_named("objectID").size(), 1u);
  EXPECT_EQ(ids->child_elements()[0]->text_content(), "0");
}

TEST_F(ServiceTest, FetchAndDelete) {
  send("<catalogRequest type=\"ingest\" user=\"u\">" + workload::fig3_document() +
       "</catalogRequest>");
  const xml::Document fetched =
      send("<catalogRequest type=\"fetch\" objectID=\"0\"/>");
  EXPECT_EQ(*fetched.root->attribute("status"), "ok");
  EXPECT_FALSE(xml::select(*fetched.root, "results/result/LEADresource").empty());

  const xml::Document deleted =
      send("<catalogRequest type=\"delete\" objectID=\"0\"/>");
  EXPECT_EQ(*deleted.root->attribute("status"), "ok");

  const xml::Document refetched =
      send("<catalogRequest type=\"fetch\" objectID=\"0\"/>");
  // Deleted objects are skipped: the results element is empty.
  EXPECT_TRUE(xml::select(*refetched.root, "results/result").empty());
}

TEST_F(ServiceTest, AddAttributeRequest) {
  send("<catalogRequest type=\"ingest\" user=\"u\">" + workload::fig3_document() +
       "</catalogRequest>");
  const xml::Document added = send(
      "<catalogRequest type=\"addAttribute\" objectID=\"0\" "
      "path=\"data/idinfo/keywords/theme\">"
      "<theme><themekt>CF NetCDF</themekt><themekey>air_temperature</themekey></theme>"
      "</catalogRequest>");
  EXPECT_EQ(*added.root->attribute("status"), "ok");
  EXPECT_EQ(catalog_.query(workload::theme_keyword_query("air_temperature")).size(), 1u);
}

TEST_F(ServiceTest, DefineRequest) {
  const xml::Document defined = send(
      "<catalogRequest type=\"define\" name=\"radiation\" source=\"WRF\">"
      "<element name=\"ra_lw_physics\" type=\"int\"/>"
      "<element name=\"ra_sw_physics\" type=\"int\"/>"
      "</catalogRequest>");
  EXPECT_EQ(*defined.root->attribute("status"), "ok");
  const AttributeDef* def = catalog_.registry().find_attribute("radiation", "WRF", kNoAttr);
  ASSERT_NE(def, nullptr);
  EXPECT_NE(catalog_.registry().find_element("ra_lw_physics", "WRF", def->id), nullptr);
}

TEST_F(ServiceTest, PrivateDefineIsUserScoped) {
  send("<catalogRequest type=\"define\" user=\"alice\" name=\"qc\" source=\"mine\"/>");
  EXPECT_EQ(catalog_.registry().find_attribute("qc", "mine", kNoAttr), nullptr);
  EXPECT_NE(catalog_.registry().find_attribute("qc", "mine", kNoAttr, "alice"), nullptr);
}

TEST_F(ServiceTest, StatsRequest) {
  send("<catalogRequest type=\"ingest\" user=\"u\">" + workload::fig3_document() +
       "</catalogRequest>");
  const xml::Document stats = send("<catalogRequest type=\"stats\"/>");
  const xml::Node* payload = stats.root->first_child("stats");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(*payload->attribute("objects"), "1");
  EXPECT_EQ(*payload->attribute("attributes"), "4");
}

TEST_F(ServiceTest, ErrorsBecomeErrorResponsesNotExceptions) {
  // Malformed XML.
  xml::Document response = send("<not closed");
  EXPECT_EQ(*response.root->attribute("status"), "error");
  // Wrong root.
  response = send("<somethingElse/>");
  EXPECT_EQ(*response.root->attribute("status"), "error");
  // Unknown type.
  response = send("<catalogRequest type=\"bogus\"/>");
  EXPECT_EQ(*response.root->attribute("status"), "error");
  // Non-conforming ingest payload.
  response = send("<catalogRequest type=\"ingest\"><wrong/></catalogRequest>");
  EXPECT_EQ(*response.root->attribute("status"), "error");
  EXPECT_FALSE(response.root->child_text("message").empty());
  // Bad object ids.
  response = send("<catalogRequest type=\"delete\" objectID=\"99\"/>");
  EXPECT_EQ(*response.root->attribute("status"), "error");
}

TEST_F(ServiceTest, RandomQueriesSurviveWireRoundTrip) {
  send("<catalogRequest type=\"ingest\" user=\"u\">" + workload::fig3_document() +
       "</catalogRequest>");
  workload::DocumentGenerator generator;
  for (std::uint64_t i = 0; i < 20; ++i) {
    catalog_.ingest(generator.generate(i), "d", "u");
  }
  workload::QueryGenerator queries;
  for (std::uint64_t q = 0; q < 25; ++q) {
    const ObjectQuery original = queries.generate(q);
    const xml::Document doc = xml::parse(query_to_xml(original));
    const ObjectQuery parsed = query_from_xml(*doc.root);
    EXPECT_EQ(catalog_.query(original), catalog_.query(parsed)) << "query " << q;
  }
}

}  // namespace
}  // namespace hxrc::core
