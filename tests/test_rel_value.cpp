#include <gtest/gtest.h>

#include "rel/interner.hpp"
#include "rel/value.hpp"

namespace hxrc::rel {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), Type::kNull);
  EXPECT_EQ(Value(std::int64_t{5}).type(), Type::kInt);
  EXPECT_EQ(Value(2.5).type(), Type::kDouble);
  EXPECT_EQ(Value("s").type(), Type::kString);

  EXPECT_EQ(Value(std::int64_t{5}).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Value(std::int64_t{5}).as_double(), 5.0);  // widening
  EXPECT_EQ(Value("s").as_string(), "s");
}

TEST(Value, AccessorMismatchThrows) {
  EXPECT_THROW(Value("s").as_int(), TypeError);
  EXPECT_THROW(Value(1.0).as_int(), TypeError);
  EXPECT_THROW(Value("s").as_double(), TypeError);
  EXPECT_THROW(Value(std::int64_t{1}).as_string(), TypeError);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value().to_string(), "NULL");
  EXPECT_EQ(Value(std::int64_t{42}).to_string(), "42");
  EXPECT_EQ(Value(2.5).to_string(), "2.5");
  EXPECT_EQ(Value(1000.0).to_string(), "1000");
  EXPECT_EQ(Value("x").to_string(), "x");
}

TEST(Value, CompareNumericCrossType) {
  EXPECT_EQ(Value(std::int64_t{5}).compare(Value(5.0)), 0);
  EXPECT_LT(Value(std::int64_t{4}).compare(Value(4.5)), 0);
  EXPECT_GT(Value(5.5).compare(Value(std::int64_t{5})), 0);
}

TEST(Value, CompareOrderingAcrossKinds) {
  // NULL < numerics < strings.
  EXPECT_LT(Value().compare(Value(std::int64_t{0})), 0);
  EXPECT_LT(Value(std::int64_t{99}).compare(Value("0")), 0);
  EXPECT_GT(Value("a").compare(Value(1e300)), 0);
}

TEST(Value, SqlEqualsTreatsNullAsUnknown) {
  EXPECT_FALSE(Value().sql_equals(Value()));
  EXPECT_FALSE(Value().sql_equals(Value(std::int64_t{1})));
  EXPECT_TRUE(Value(std::int64_t{1}).sql_equals(Value(1.0)));
}

TEST(Value, StructuralEquality) {
  EXPECT_TRUE(Value() == Value());
  EXPECT_TRUE(Value(std::int64_t{3}) == Value(3.0));
  EXPECT_FALSE(Value("3") == Value(3.0));
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(std::int64_t{3}).hash(), Value(3.0).hash());
  EXPECT_EQ(Value("abc").hash(), Value("abc").hash());
}

TEST(Key, OrderingIsLexicographic) {
  const Key a{{Value(std::int64_t{1}), Value("a")}};
  const Key b{{Value(std::int64_t{1}), Value("b")}};
  const Key c{{Value(std::int64_t{2})}};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(b < a);
  const Key prefix{{Value(std::int64_t{1})}};
  EXPECT_TRUE(prefix < a);  // shorter key sorts first on tie
}

TEST(Key, EqualityAndHash) {
  const Key a{{Value(std::int64_t{1}), Value("x")}};
  const Key b{{Value(std::int64_t{1}), Value("x")}};
  EXPECT_TRUE(a == b);
  EXPECT_EQ(KeyHash{}(a), KeyHash{}(b));
}

TEST(TableSchema, NameResolution) {
  const TableSchema schema{{"a", Type::kInt}, {"b", Type::kString}};
  EXPECT_EQ(schema.index_of("b"), 1u);
  EXPECT_FALSE(schema.index_of("z").has_value());
  EXPECT_EQ(schema.require("a"), 0u);
  EXPECT_THROW(schema.require("z"), TypeError);
}

TEST(TypeCompatibility, Rules) {
  EXPECT_TRUE(type_compatible(Type::kInt, Value::null()));
  EXPECT_TRUE(type_compatible(Type::kInt, Value(std::int64_t{1})));
  EXPECT_FALSE(type_compatible(Type::kInt, Value(1.5)));
  EXPECT_TRUE(type_compatible(Type::kDouble, Value(std::int64_t{1})));  // widening
  EXPECT_TRUE(type_compatible(Type::kDouble, Value(1.5)));
  EXPECT_FALSE(type_compatible(Type::kString, Value(1.5)));
  EXPECT_TRUE(type_compatible(Type::kString, Value("x")));
}


TEST(Interner, DeduplicatesAndKeepsPointersStable) {
  Interner interner;
  const std::string* a = interner.intern("alpha");
  const std::string* b = interner.intern("beta");
  // Force storage growth, then re-intern: same pointer back.
  for (int i = 0; i < 1000; ++i) interner.intern("s" + std::to_string(i));
  EXPECT_EQ(interner.intern("alpha"), a);
  EXPECT_EQ(interner.intern("beta"), b);
  EXPECT_EQ(*a, "alpha");
  EXPECT_EQ(interner.size(), 1002u);
  EXPECT_GT(interner.approx_bytes(), 0u);
}

TEST(Value, InternedBehavesLikeOwnedString) {
  Interner interner;
  const Value interned = Value::interned(interner.intern("hello"));
  const Value owned = Value("hello");

  EXPECT_EQ(interned.type(), Type::kString);
  EXPECT_TRUE(interned.is_interned());
  EXPECT_FALSE(owned.is_interned());
  EXPECT_EQ(interned.as_string(), "hello");
  EXPECT_EQ(interned.to_string(), owned.to_string());

  // Mixed-representation equality, ordering, and hashing all agree — rows
  // from interning and non-interning (staging) shredders share indexes.
  EXPECT_TRUE(interned == owned);
  EXPECT_FALSE(interned < owned);
  EXPECT_FALSE(owned < interned);
  EXPECT_EQ(interned.hash(), owned.hash());

  const Value other = Value("world");
  EXPECT_FALSE(interned == other);
  EXPECT_TRUE(interned < other);
}

TEST(Value, InternedPointerEqualityFastPath) {
  Interner interner;
  const Value a = Value::interned(interner.intern("same"));
  const Value b = Value::interned(interner.intern("same"));
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.compare(b), 0);
  EXPECT_EQ(a.hash(), b.hash());
}

}  // namespace
}  // namespace hxrc::rel
