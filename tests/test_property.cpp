// Property tests: for random corpora and random queries, all four backends
// return identical object-id sets, and every set matches the DOM oracle.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/backend.hpp"
#include "baselines/dom_matcher.hpp"
#include "core/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::baselines {
namespace {

struct PropertyCase {
  std::uint64_t corpus_seed;
  std::size_t corpus_size;
  std::uint64_t query_seed;
  std::size_t query_count;
  double sub_attr_probability;
};

class BackendEquivalence : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(BackendEquivalence, AllBackendsMatchTheOracle) {
  const PropertyCase param = GetParam();

  workload::GeneratorConfig gen_config;
  gen_config.seed = param.corpus_seed;
  gen_config.sub_attr_probability = param.sub_attr_probability;
  workload::DocumentGenerator generator(gen_config);
  const auto docs = generator.corpus(param.corpus_size);

  xml::Schema schema = workload::lead_schema();
  const core::Partition partition =
      core::Partition::build(schema, workload::lead_annotations());
  const DomMatcher oracle(partition);

  std::vector<std::unique_ptr<MetadataBackend>> backends;
  for (const BackendKind kind : {BackendKind::kHybrid, BackendKind::kInlining,
                                 BackendKind::kEdge, BackendKind::kClob}) {
    backends.push_back(make_backend(kind, partition));
    for (const auto& doc : docs) backends.back()->ingest(doc, "u");
  }

  workload::QueryGenConfig query_config;
  query_config.seed = param.query_seed;
  query_config.sub_attr_probability = param.sub_attr_probability;
  workload::QueryGenerator queries(query_config);

  for (std::uint64_t q = 0; q < param.query_count; ++q) {
    const core::ObjectQuery query = queries.generate(q);

    // Oracle: evaluate the DOM matcher over the raw documents.
    std::vector<core::ObjectId> expected;
    for (std::size_t d = 0; d < docs.size(); ++d) {
      if (oracle.matches(docs[d], query)) {
        expected.push_back(static_cast<core::ObjectId>(d));
      }
    }

    for (const auto& backend : backends) {
      EXPECT_EQ(backend->query(query), expected)
          << backend->name() << " disagrees with the oracle on query " << q
          << " (corpus seed " << param.corpus_seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackendEquivalence,
    ::testing::Values(PropertyCase{1, 30, 100, 25, 0.25},
                      PropertyCase{2, 50, 200, 25, 0.0},   // no nesting
                      PropertyCase{3, 40, 300, 25, 0.6},   // heavy nesting
                      PropertyCase{4, 60, 400, 25, 0.25},
                      PropertyCase{5, 20, 500, 40, 0.4}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "case" + std::to_string(info.param.corpus_seed);
    });

class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripProperty, HybridRoundTripsRandomDocuments) {
  workload::GeneratorConfig config;
  config.seed = GetParam();
  config.sub_attr_probability = 0.5;
  config.max_nesting = 3;
  workload::DocumentGenerator generator(config);

  xml::Schema schema = workload::lead_schema();
  const core::Partition partition =
      core::Partition::build(schema, workload::lead_annotations());
  const auto backend = make_backend(BackendKind::kHybrid, partition);

  for (std::uint64_t i = 0; i < 15; ++i) {
    const xml::Document doc = generator.generate(i);
    const auto id = backend->ingest(doc, "u");
    const std::string rebuilt = backend->reconstruct(id);
    ASSERT_EQ(xml::canonical(doc), xml::canonical(xml::parse(rebuilt)))
        << "seed " << GetParam() << " doc " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(11, 22, 33, 44, 55));


class ArenaIngestEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaIngestEquivalence, ArenaAndOwnedIngestProduceByteIdenticalCatalogs) {
  // Shredding an arena-parsed document must be indistinguishable from
  // shredding the owned-parse of the same bytes: identical rebuilt
  // responses AND byte-identical catalog save streams (rows, counters,
  // definitions — regardless of interned vs owned string representation).
  workload::GeneratorConfig gen_config;
  gen_config.seed = GetParam();
  workload::DocumentGenerator generator(gen_config);

  xml::Schema schema_owned = workload::lead_schema();
  xml::Schema schema_arena = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  core::MetadataCatalog owned(schema_owned, workload::lead_annotations(), config);
  core::MetadataCatalog arena(schema_arena, workload::lead_annotations(), config);

  for (std::uint64_t i = 0; i < 30; ++i) {
    const std::string text = xml::write(generator.generate(GetParam() * 1000 + i));
    const core::ObjectId a = owned.ingest(xml::parse(text), "d", "u");
    const core::ObjectId b = arena.ingest(xml::parse_arena(text), "d", "u");
    ASSERT_EQ(a, b);
    EXPECT_EQ(xml::canonical(owned.fetch(a)), xml::canonical(arena.fetch(b)))
        << "seed " << GetParam() << " doc " << i;
  }

  std::ostringstream owned_stream;
  std::ostringstream arena_stream;
  owned.save(owned_stream);
  arena.save(arena_stream);
  EXPECT_EQ(owned_stream.str(), arena_stream.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaIngestEquivalence, ::testing::Values(3, 14, 159));

class FastpathEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastpathEquivalence, FastAndGeneralPlansAgree) {
  workload::GeneratorConfig gen_config;
  gen_config.seed = GetParam();
  workload::DocumentGenerator generator(gen_config);
  const auto docs = generator.corpus(40);

  xml::Schema schema_fast = workload::lead_schema();
  xml::Schema schema_slow = workload::lead_schema();
  core::CatalogConfig fast_config;
  fast_config.shred.auto_define_dynamic = true;
  core::CatalogConfig slow_config = fast_config;
  slow_config.engine.enable_fastpath = false;
  core::MetadataCatalog fast(schema_fast, workload::lead_annotations(), fast_config);
  core::MetadataCatalog slow(schema_slow, workload::lead_annotations(), slow_config);
  for (const auto& doc : docs) {
    fast.ingest(doc, "d", "u");
    slow.ingest(doc, "d", "u");
  }

  workload::QueryGenConfig query_config;
  query_config.seed = GetParam() * 31 + 7;
  query_config.dynamic_probability = 0.3;  // favor structural (fastpath) shapes
  workload::QueryGenerator queries(query_config);
  std::size_t fast_hits = 0;
  for (std::uint64_t q = 0; q < 30; ++q) {
    const core::ObjectQuery query = queries.generate(q);
    core::QueryPlanInfo fast_info;
    core::QueryPlanInfo slow_info;
    EXPECT_EQ(fast.query(query, &fast_info), slow.query(query, &slow_info))
        << "seed " << GetParam() << " query " << q;
    EXPECT_FALSE(slow_info.fast_path);
    if (fast_info.fast_path) ++fast_hits;
  }
  EXPECT_GT(fast_hits, 0u);  // the sweep must actually exercise the fast path
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastpathEquivalence, ::testing::Values(7, 8, 9));

class OrderingEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingEquivalence, SelectivityOrderingPreservesResults) {
  // The cardinality-ordered pipeline (criteria evaluated most-selective
  // first, with early exit) must return byte-identical object-id sets to
  // the stated-query-order pipeline, and both must match the DOM oracle.
  workload::GeneratorConfig gen_config;
  gen_config.seed = GetParam();
  gen_config.sub_attr_probability = 0.35;
  workload::DocumentGenerator generator(gen_config);
  const auto docs = generator.corpus(35);

  xml::Schema schema = workload::lead_schema();
  const core::Partition partition =
      core::Partition::build(schema, workload::lead_annotations());
  const DomMatcher oracle(partition);

  xml::Schema schema_ordered = workload::lead_schema();
  xml::Schema schema_stated = workload::lead_schema();
  core::CatalogConfig ordered_config;
  ordered_config.shred.auto_define_dynamic = true;
  core::CatalogConfig stated_config = ordered_config;
  stated_config.engine.force_query_order = true;
  core::MetadataCatalog ordered(schema_ordered, workload::lead_annotations(),
                                ordered_config);
  core::MetadataCatalog stated(schema_stated, workload::lead_annotations(),
                               stated_config);
  for (const auto& doc : docs) {
    ordered.ingest(doc, "d", "u");
    stated.ingest(doc, "d", "u");
  }

  workload::QueryGenConfig query_config;
  query_config.seed = GetParam() * 17 + 3;
  query_config.sub_attr_probability = 0.35;
  workload::QueryGenerator queries(query_config);
  for (std::uint64_t q = 0; q < 30; ++q) {
    const core::ObjectQuery query = queries.generate(q);

    std::vector<core::ObjectId> expected;
    for (std::size_t d = 0; d < docs.size(); ++d) {
      if (oracle.matches(docs[d], query)) {
        expected.push_back(static_cast<core::ObjectId>(d));
      }
    }

    EXPECT_EQ(ordered.query(query), expected)
        << "selectivity-ordered pipeline disagrees with the oracle on query " << q
        << " (seed " << GetParam() << ")";
    EXPECT_EQ(stated.query(query), expected)
        << "query-order pipeline disagrees with the oracle on query " << q
        << " (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingEquivalence,
                         ::testing::Values(13, 14, 15, 16));

}  // namespace
}  // namespace hxrc::baselines
