#include <gtest/gtest.h>

#include "workload/lead_schema.hpp"
#include "xml/schema.hpp"

namespace hxrc::xml {
namespace {

TEST(SchemaModel, FluentBuilding) {
  Schema schema("root");
  auto& child = schema.root().add_child("child");
  child.set_repeatable(true).set_leaf_type(LeafType::kInt);
  EXPECT_EQ(schema.root().name(), "root");
  EXPECT_EQ(schema.node_count(), 2u);
  EXPECT_TRUE(child.repeatable());
  EXPECT_TRUE(child.is_leaf());
  EXPECT_EQ(child.depth(), 1u);
}

TEST(SchemaModel, DuplicateChildThrows) {
  Schema schema("root");
  schema.root().add_child("x");
  EXPECT_THROW(schema.root().add_child("x"), SchemaError);
}

TEST(SchemaModel, FindByPath) {
  Schema schema("r");
  schema.root().add_child("a").add_child("b").add_child("c");
  EXPECT_NE(schema.find("a/b/c"), nullptr);
  EXPECT_EQ(schema.find("a/b/c")->name(), "c");
  EXPECT_EQ(schema.find("a/nope"), nullptr);
  EXPECT_EQ(schema.find(""), &schema.root());
}

TEST(SchemaModel, VisitIsPreorder) {
  Schema schema("r");
  auto& a = schema.root().add_child("a");
  a.add_child("b");
  schema.root().add_child("c");
  std::vector<std::string> names;
  schema.visit([&](const SchemaNode& node) { names.push_back(node.name()); });
  EXPECT_EQ(names, (std::vector<std::string>{"r", "a", "b", "c"}));
}

TEST(SchemaLoader, LoadsCompactFormat) {
  const Schema schema = load_schema(R"(
    <schema root="res">
      <element name="id" type="string" minOccurs="0"/>
      <element name="data" minOccurs="1">
        <element name="item" maxOccurs="unbounded" recursive="true">
          <attribute name="unit" use="optional"/>
          <element name="value" type="double"/>
        </element>
      </element>
    </schema>)");
  EXPECT_EQ(schema.root().name(), "res");
  const SchemaNode* item = schema.find("data/item");
  ASSERT_NE(item, nullptr);
  EXPECT_TRUE(item->repeatable());
  EXPECT_TRUE(item->recursive());
  ASSERT_EQ(item->xml_attributes().size(), 1u);
  EXPECT_EQ(item->xml_attributes()[0].name, "unit");
  EXPECT_FALSE(item->xml_attributes()[0].required);
  const SchemaNode* value = schema.find("data/item/value");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->leaf_type(), LeafType::kDouble);
  const SchemaNode* data = schema.find("data");
  EXPECT_FALSE(data->optional());
}

TEST(SchemaLoader, LeafWithoutTypeDefaultsToString) {
  const Schema schema = load_schema(R"(<schema root="r"><element name="x"/></schema>)");
  EXPECT_EQ(schema.find("x")->leaf_type(), LeafType::kString);
}

TEST(SchemaLoader, RejectsBadInput) {
  EXPECT_THROW(load_schema("<nope/>"), SchemaError);
  EXPECT_THROW(load_schema("<schema/>"), SchemaError);
  EXPECT_THROW(load_schema(R"(<schema root="r"><element/></schema>)"), SchemaError);
  EXPECT_THROW(load_schema(R"(<schema root="r"><bogus name="x"/></schema>)"), SchemaError);
  EXPECT_THROW(
      load_schema(R"(<schema root="r"><element name="x" type="float"/></schema>)"),
      SchemaError);
}

TEST(SchemaLoader, SaveLoadRoundTrip) {
  const Schema original = workload::lead_schema();
  const std::string text = save_schema(original);
  const Schema loaded = load_schema(text);
  EXPECT_EQ(save_schema(loaded), text);
  EXPECT_EQ(loaded.node_count(), original.node_count());
  // Spot-check structural facts survived.
  const SchemaNode* attr = loaded.find("data/geospatial/eainfo/detailed/attr");
  ASSERT_NE(attr, nullptr);
  EXPECT_TRUE(attr->recursive());
  EXPECT_TRUE(attr->repeatable());
  const SchemaNode* theme = loaded.find("data/idinfo/keywords/theme");
  ASSERT_NE(theme, nullptr);
  EXPECT_TRUE(theme->repeatable());
}

TEST(LeafTypes, StringConversions) {
  EXPECT_EQ(to_string(LeafType::kInt), "int");
  EXPECT_EQ(leaf_type_from_string("date"), LeafType::kDate);
  EXPECT_THROW(leaf_type_from_string("bogus"), SchemaError);
}

TEST(LeadSchema, HasExpectedShape) {
  const Schema schema = workload::lead_schema();
  EXPECT_EQ(schema.root().name(), "LEADresource");
  EXPECT_TRUE(schema.find("data/idinfo/keywords/theme")->repeatable());
  EXPECT_TRUE(schema.find("data/idinfo/keywords/theme/themekey")->repeatable());
  EXPECT_TRUE(schema.find("data/geospatial/eainfo/detailed")->repeatable());
  EXPECT_TRUE(schema.find("data/geospatial/eainfo/detailed/attr")->recursive());
  EXPECT_EQ(schema.find("data/idinfo/citation/pubdate")->leaf_type(), LeafType::kDate);
}

}  // namespace
}  // namespace hxrc::xml
