#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "rel/ops.hpp"

namespace hxrc::rel {
namespace {

Table people() {
  Table t("people", TableSchema{{"id", Type::kInt},
                                {"name", Type::kString},
                                {"dept", Type::kInt},
                                {"salary", Type::kDouble}});
  t.append(Row{Value(std::int64_t{1}), Value("ann"), Value(std::int64_t{10}), Value(100.0)});
  t.append(Row{Value(std::int64_t{2}), Value("bob"), Value(std::int64_t{10}), Value(80.0)});
  t.append(Row{Value(std::int64_t{3}), Value("cid"), Value(std::int64_t{20}), Value(120.0)});
  t.append(Row{Value(std::int64_t{4}), Value("dee"), Value(std::int64_t{20}), Value(90.0)});
  t.append(Row{Value(std::int64_t{5}), Value("eve"), Value::null(), Value(70.0)});
  return t;
}

Table departments() {
  Table t("depts", TableSchema{{"dept_id", Type::kInt}, {"dept_name", Type::kString}});
  t.append(Row{Value(std::int64_t{10}), Value("storms")});
  t.append(Row{Value(std::int64_t{20}), Value("grids")});
  t.append(Row{Value(std::int64_t{30}), Value("empty")});
  return t;
}

TEST(Ops, ScanAll) {
  const Table t = people();
  EXPECT_EQ(scan(t).size(), 5u);
}

TEST(Ops, ScanWithPredicate) {
  const Table t = people();
  const auto result = scan(t, gt(col(3), lit(Value(90.0))));
  EXPECT_EQ(result.size(), 2u);
}

TEST(Ops, FilterKeepsMatching) {
  const Table t = people();
  ResultSet all = scan(t);
  const ResultSet young = filter(std::move(all), *le(col(0), lit(Value(std::int64_t{2}))));
  EXPECT_EQ(young.size(), 2u);
}

TEST(Ops, ProjectByName) {
  const Table t = people();
  const ResultSet result = project(scan(t), {"name", "id"});
  EXPECT_EQ(result.schema.size(), 2u);
  EXPECT_EQ(result.schema.column(0).name, "name");
  EXPECT_EQ(result.rows[0][0].as_string(), "ann");
  EXPECT_EQ(result.rows[0][1].as_int(), 1);
  EXPECT_THROW(project(scan(t), {"missing"}), TypeError);
}

TEST(Ops, ProjectExprsComputes) {
  const Table t = people();
  const ResultSet result = project_exprs(
      scan(t), {{binary(BinOp::kMul, col(3), lit(Value(2.0))), Column{"double_salary", Type::kDouble}}});
  EXPECT_DOUBLE_EQ(result.rows[0][0].as_double(), 200.0);
}

TEST(Ops, InnerHashJoin) {
  const ResultSet joined =
      hash_join_named(scan(people()), {"dept"}, scan(departments()), {"dept_id"});
  EXPECT_EQ(joined.size(), 4u);  // eve's NULL dept joins nothing
  const std::size_t dept_name = joined.column("dept_name");
  for (const Row& row : joined.rows) {
    EXPECT_FALSE(row[dept_name].is_null());
  }
}

TEST(Ops, LeftOuterJoinPadsWithNulls) {
  const ResultSet joined = hash_join_named(scan(people()), {"dept"}, scan(departments()),
                                           {"dept_id"}, JoinType::kLeftOuter);
  EXPECT_EQ(joined.size(), 5u);
  const std::size_t dept_name = joined.column("dept_name");
  std::size_t nulls = 0;
  for (const Row& row : joined.rows) {
    if (row[dept_name].is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 1u);  // eve
}

TEST(Ops, JoinRenamesCollidingColumns) {
  const ResultSet left = scan(people());
  const ResultSet joined = hash_join(left, {0}, left, {0});
  EXPECT_EQ(joined.schema.size(), 8u);
  EXPECT_NO_THROW(joined.column("r_id"));
}

TEST(Ops, EmptyKeyJoinIsCrossProduct) {
  const ResultSet joined = hash_join(scan(departments()), {}, scan(departments()), {});
  EXPECT_EQ(joined.size(), 9u);
}

TEST(Ops, IndexJoinProbesIndex) {
  Table d = departments();
  d.create_hash_index("by_id", {"dept_id"});
  const ResultSet joined =
      index_join(scan(people()), {2}, d, *d.index("by_id"));
  EXPECT_EQ(joined.size(), 4u);
}

TEST(Ops, GroupByCountsAndAggregates) {
  const ResultSet grouped =
      group_by(scan(people()), {2},
               {Aggregate{Aggregate::Fn::kCount, 0, "n"},
                Aggregate{Aggregate::Fn::kSum, 3, "total"},
                Aggregate{Aggregate::Fn::kMin, 3, "lo"},
                Aggregate{Aggregate::Fn::kMax, 3, "hi"}});
  EXPECT_EQ(grouped.size(), 3u);  // 10, 20, NULL
  for (const Row& row : grouped.rows) {
    if (!row[0].is_null() && row[0].as_int() == 10) {
      EXPECT_EQ(row[1].as_int(), 2);
      EXPECT_DOUBLE_EQ(row[2].as_double(), 180.0);
      EXPECT_DOUBLE_EQ(row[3].as_double(), 80.0);
      EXPECT_DOUBLE_EQ(row[4].as_double(), 100.0);
    }
  }
}

TEST(Ops, GroupByCountDistinct) {
  ResultSet input;
  input.schema = TableSchema{{"k", Type::kInt}, {"v", Type::kString}};
  input.rows = {Row{Value(std::int64_t{1}), Value("a")},
                Row{Value(std::int64_t{1}), Value("a")},
                Row{Value(std::int64_t{1}), Value("b")},
                Row{Value(std::int64_t{2}), Value("a")}};
  const ResultSet grouped = group_by(
      input, {0}, {Aggregate{Aggregate::Fn::kCountDistinct, 1, "distinct_v"}});
  for (const Row& row : grouped.rows) {
    if (row[0].as_int() == 1) EXPECT_EQ(row[1].as_int(), 2);
    if (row[0].as_int() == 2) EXPECT_EQ(row[1].as_int(), 1);
  }
}

TEST(Ops, GlobalAggregateOverEmptyInputYieldsOneRow) {
  ResultSet empty;
  empty.schema = TableSchema{{"x", Type::kInt}};
  const ResultSet grouped =
      group_by(empty, {}, {Aggregate{Aggregate::Fn::kCount, 0, "n"}});
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped.rows[0][0].as_int(), 0);
}

TEST(Ops, AggregatesIgnoreNullInputs) {
  const ResultSet grouped = group_by(
      scan(people()), {}, {Aggregate{Aggregate::Fn::kCountDistinct, 2, "depts"}});
  EXPECT_EQ(grouped.rows[0][0].as_int(), 2);  // NULL dept not counted
}

TEST(Ops, SortByMultipleKeys) {
  ResultSet sorted = sort_by(scan(people()), {{2, false}, {3, true}});
  // NULL dept first, then dept 10 by salary desc, then dept 20.
  EXPECT_TRUE(sorted.rows[0][2].is_null());
  EXPECT_EQ(sorted.rows[1][1].as_string(), "ann");
  EXPECT_EQ(sorted.rows[2][1].as_string(), "bob");
  EXPECT_EQ(sorted.rows[3][1].as_string(), "cid");
}

TEST(Ops, DistinctRemovesDuplicates) {
  ResultSet input;
  input.schema = TableSchema{{"x", Type::kInt}};
  input.rows = {Row{Value(std::int64_t{1})}, Row{Value(std::int64_t{1})},
                Row{Value(std::int64_t{2})}};
  EXPECT_EQ(distinct(std::move(input)).size(), 2u);
}

TEST(Ops, DistinctOnSubsetKeepsFirst) {
  const ResultSet result = distinct_on(scan(people()), {2});
  EXPECT_EQ(result.size(), 3u);
}

TEST(Ops, LimitTruncates) {
  EXPECT_EQ(limit(scan(people()), 2).size(), 2u);
  EXPECT_EQ(limit(scan(people()), 100).size(), 5u);
}

TEST(Ops, UnionAll) {
  const ResultSet u = union_all(scan(departments()), scan(departments()));
  EXPECT_EQ(u.size(), 6u);
}

TEST(Ops, IndexScan) {
  Table d = departments();
  d.create_hash_index("by_id", {"dept_id"});
  const ResultSet result = index_scan(d, *d.index("by_id"), Key{{Value(std::int64_t{10})}});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.rows[0][1].as_string(), "storms");
}

TEST(Ops, IndexScanIdsAndMaterialize) {
  Table t = people();
  t.create_hash_index("by_dept", {"dept"});
  std::vector<RowId> ids = index_scan_ids(*t.index("by_dept"), Key{{Value(std::int64_t{20})}});
  ASSERT_EQ(ids.size(), 2u);

  // Narrow in place, then copy rows only once at the end of the stage.
  filter_ids(t, *gt(col(3), lit(Value(100.0))), ids);
  ASSERT_EQ(ids.size(), 1u);
  const ResultSet result = materialize(t, ids);
  EXPECT_EQ(result.schema.size(), t.schema().size());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.rows[0][1].as_string(), "cid");
}

TEST(Ops, FilterIdsTreatsNullAsFalse) {
  Table t = people();
  std::vector<RowId> ids;
  for (RowId id = 0; id < t.row_count(); ++id) ids.push_back(id);
  filter_ids(t, *eq(col(2), lit(Value(std::int64_t{10}))), ids);
  EXPECT_EQ(ids.size(), 2u);  // eve's NULL dept is dropped, not matched
}

TEST(Ops, ForEachMatchVisitsBucketWithoutCopying) {
  Table t = people();
  t.create_hash_index("by_dept", {"dept"});
  std::vector<RowId> scratch;
  std::vector<std::string> names;
  for_each_match(t, *t.index("by_dept"), Key{{Value(std::int64_t{10})}}, scratch,
                 [&](const Row& row, RowId) { names.push_back(row[1].as_string()); });
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"ann", "bob"}));

  // The scratch buffer is reused: a second probe does not grow the result.
  names.clear();
  for_each_match(t, *t.index("by_dept"), Key{{Value(std::int64_t{30})}}, scratch,
                 [&](const Row&, RowId) { names.emplace_back(); });
  EXPECT_TRUE(names.empty());
}

TEST(Ops, IndexBucketSizeEstimatesCardinality) {
  Table t = people();
  t.create_hash_index("by_dept", {"dept"});
  t.create_ordered_index("by_id", {"id"});
  EXPECT_EQ(t.index("by_dept")->bucket_size(Key{{Value(std::int64_t{10})}}), 2u);
  EXPECT_EQ(t.index("by_dept")->bucket_size(Key{{Value(std::int64_t{99})}}), 0u);
  EXPECT_EQ(t.index("by_id")->bucket_size(Key{{Value(std::int64_t{3})}}), 1u);
}

TEST(Ops, PrettyRendersHeaderAndRows) {
  const std::string text = scan(departments()).pretty();
  EXPECT_NE(text.find("dept_name"), std::string::npos);
  EXPECT_NE(text.find("storms"), std::string::npos);
}

// ---- Blocked scan kernel: differential check against per-row eval ----

/// A table whose single value column mixes nulls, ints, doubles, and
/// strings (short and long), entered via append_unchecked the way the
/// shredder's unchecked batch path can. Deterministic PRNG so failures
/// reproduce.
Table mixed_values(std::size_t rows) {
  Table t("mixed", TableSchema{{"id", Type::kInt}, {"v", Type::kString}});
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const char* words[] = {"alpha", "beta", "grid", "0730", "730", "",
                         "a-rather-long-uninterned-metadata-string"};
  for (std::size_t i = 0; i < rows; ++i) {
    Value v;
    switch (next() % 6) {
      case 0: v = Value::null(); break;
      case 1: v = Value(static_cast<std::int64_t>(next() % 1000) - 500); break;
      case 2: v = Value((static_cast<double>(next() % 2000) - 1000.0) / 4.0); break;
      case 3: v = Value(static_cast<std::int64_t>(1) << 53); break;  // > 2^53 exactness
      default: v = Value(words[next() % (sizeof(words) / sizeof(words[0]))]); break;
    }
    t.append_unchecked(Row{Value(static_cast<std::int64_t>(i)), std::move(v)});
  }
  return t;
}

TEST(Ops, BlockScanMatchesPerRowEvalOnMixedTypes) {
  const Table t = mixed_values(1000);
  const Value literals[] = {Value(std::int64_t{42}),  Value(std::int64_t{-500}),
                            Value((std::int64_t{1} << 53) + 1),
                            Value(42.0),  Value(-12.25), Value("grid"),
                            Value("0730"), Value("")};
  const BinOp ops[] = {BinOp::kEq, BinOp::kNe, BinOp::kLt,
                       BinOp::kLe, BinOp::kGt, BinOp::kGe};
  for (const Value& literal : literals) {
    for (const BinOp op : ops) {
      for (const bool flipped : {false, true}) {
        const ExprPtr pred = flipped ? binary(op, lit(literal), col(1))
                                     : binary(op, col(1), lit(literal));
        ASSERT_TRUE(block_scannable(*pred));
        std::vector<RowId> fast;
        scan_ids(t, *pred, fast);
        std::vector<RowId> slow;
        for (RowId id = 0; id < t.row_count(); ++id) {
          if (pred->eval_bool(t.row_unchecked(id))) slow.push_back(id);
        }
        EXPECT_EQ(fast, slow) << pred->describe();

        // filter_ids over a sparse id subset must agree too.
        std::vector<RowId> sparse_fast, sparse_slow;
        for (RowId id = 0; id < t.row_count(); id += 3) sparse_fast.push_back(id);
        sparse_slow = sparse_fast;
        filter_ids(t, *pred, sparse_fast);
        std::size_t kept = 0;
        for (const RowId id : sparse_slow) {
          if (pred->eval_bool(t.row_unchecked(id))) sparse_slow[kept++] = id;
        }
        sparse_slow.resize(kept);
        EXPECT_EQ(sparse_fast, sparse_slow) << pred->describe();
      }
    }
  }
}

TEST(Ops, BlockScannableRejectsNonComparisonShapes) {
  EXPECT_FALSE(block_scannable(*and_(gt(col(0), lit(Value(1.0))),
                                     lt(col(0), lit(Value(2.0))))));
  EXPECT_FALSE(block_scannable(*like(col(1), "gr%")));
  EXPECT_FALSE(block_scannable(*is_null(col(1))));
  EXPECT_FALSE(block_scannable(*eq(col(0), col(1))));
  EXPECT_FALSE(block_scannable(*eq(col(1), lit(Value::null()))));
  EXPECT_TRUE(block_scannable(*eq(lit(Value("x")), col(1))));
}

TEST(Ops, ScanUsesKernelAndMatchesMaterializedRows) {
  const Table t = mixed_values(300);
  const ExprPtr pred = ge(col(1), lit(Value(0.0)));
  const ResultSet via_scan = scan(t, pred);
  std::vector<RowId> ids;
  scan_ids(t, *pred, ids);
  const ResultSet via_ids = materialize(t, ids);
  ASSERT_EQ(via_scan.size(), via_ids.size());
  for (std::size_t i = 0; i < via_scan.size(); ++i) {
    for (std::size_t c = 0; c < via_scan.schema.size(); ++c) {
      EXPECT_EQ(via_scan.rows[i][c].compare(via_ids.rows[i][c]), 0);
    }
  }
}

}  // namespace
}  // namespace hxrc::rel
