// Path-query translation (§4): XPath-style expressions rewritten into
// metadata-attribute queries, checked for equivalence against the DOM
// oracle and hand-built queries.
#include <gtest/gtest.h>

#include "baselines/dom_matcher.hpp"
#include "core/catalog.hpp"
#include "core/path_query.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace hxrc::core {
namespace {

class PathQueryTest : public ::testing::Test {
 protected:
  PathQueryTest()
      : schema_(workload::lead_schema()), catalog_(schema_, workload::lead_annotations(), [] {
          CatalogConfig config;
          config.shred.auto_define_dynamic = true;
          return config;
        }()) {
    fig3_ = catalog_.ingest_xml(workload::fig3_document(), "fig3", "alice");
    workload::DocumentGenerator generator;
    for (std::uint64_t i = 0; i < 30; ++i) {
      catalog_.ingest(generator.generate(i), "d", "alice");
    }
  }

  std::vector<ObjectId> run(std::string_view path) {
    return catalog_.query(path_to_query(catalog_.partition(), path));
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  ObjectId fig3_ = -1;
};

TEST_F(PathQueryTest, StructuralDescendantShorthand) {
  const auto via_path = run("//theme[themekey='convective_precipitation_flux']");
  const auto via_api =
      catalog_.query(workload::theme_keyword_query("convective_precipitation_flux"));
  EXPECT_EQ(via_path, via_api);
  EXPECT_FALSE(via_path.empty());
}

TEST_F(PathQueryTest, StructuralFullPath) {
  const auto a = run("data/idinfo/keywords/theme[themekt='CF NetCDF']");
  const auto b = run("LEADresource/data/idinfo/keywords/theme[themekt='CF NetCDF']");
  const auto c = run("//theme[themekt='CF NetCDF']");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST_F(PathQueryTest, MultiplePredicatesAndConjunction) {
  const auto separate = run(
      "//theme[themekt='CF NetCDF'][themekey='convective_precipitation_amount']");
  const auto conjoined = run(
      "//theme[themekt='CF NetCDF' and themekey='convective_precipitation_amount']");
  EXPECT_EQ(separate, conjoined);
}

TEST_F(PathQueryTest, PaperExampleTranslates) {
  // The §4 example, as the path expression a scientist would write.
  const auto via_path = run(
      "//detailed[enttyp/enttypl='grid' and enttyp/enttypds='ARPS']"
      "[attr[attrlabl='dx' and attrdefs='ARPS' and attrv=1000]]"
      "[attr[attrlabl='grid-stretching' and attrdefs='ARPS']"
      "[attr[attrlabl='dzmin' and attrv=100]]]");
  const auto via_api = catalog_.query(workload::paper_example_query());
  EXPECT_EQ(via_path, via_api);
  ASSERT_FALSE(via_path.empty());
  EXPECT_EQ(via_path[0], fig3_);
}

TEST_F(PathQueryTest, DynamicRangePredicate) {
  const auto via_path = run(
      "//detailed[enttyp/enttypl='grid' and enttyp/enttypds='ARPS']"
      "[attr[attrlabl='dx' and attrv>=500]]");
  const auto via_api = catalog_.query(
      workload::dynamic_param_query("grid", "ARPS", "dx", 500.0, CompareOp::kGe));
  EXPECT_EQ(via_path, via_api);
}

TEST_F(PathQueryTest, ExistenceOnlyDynamicItem) {
  const auto via_path = run(
      "//detailed[enttyp/enttypl='grid' and enttyp/enttypds='ARPS']"
      "[attr[attrlabl='dz' and attrdefs='ARPS' and attrv]]");
  ObjectQuery api;
  AttrQuery grid("grid", "ARPS");
  grid.require_element("dz", "ARPS");
  api.add_attribute(std::move(grid));
  EXPECT_EQ(via_path, catalog_.query(api));
}

TEST_F(PathQueryTest, AttributeElementSelfPredicate) {
  const auto via_path = run("//resourceID[.='arps-run-42']");
  ASSERT_EQ(via_path.size(), 1u);
  EXPECT_EQ(via_path[0], fig3_);
}

TEST_F(PathQueryTest, ConjunctionOfMultiplePaths) {
  const ObjectQuery query = paths_to_query(
      catalog_.partition(),
      {"//theme[themekt='CF NetCDF']",
       "//detailed[enttyp/enttypl='grid' and enttyp/enttypds='ARPS']"
       "[attr[attrlabl='dx' and attrv=1000]]"});
  const auto hits = catalog_.query(query);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0], fig3_);
}

TEST_F(PathQueryTest, TranslationErrors) {
  // Not an attribute.
  EXPECT_THROW(run("data/idinfo"), PathQueryError);
  EXPECT_THROW(run("//keywords"), PathQueryError);
  // Predicates above the attribute root.
  EXPECT_THROW(run("data/idinfo[x='y']/keywords/theme"), PathQueryError);
  // Dynamic attribute without an identity constraint.
  EXPECT_THROW(run("//detailed[attr[attrlabl='dx']]"), PathQueryError);
  // Malformed syntax.
  EXPECT_THROW(run("//theme[themekt="), PathQueryError);
  EXPECT_THROW(run(""), PathQueryError);
  EXPECT_THROW(run("//theme[themekt='x' extra]"), PathQueryError);
}

TEST_F(PathQueryTest, StructuralNestedSubAttributePath) {
  // Nested structural predicates through an interior sub-attribute: build a
  // custom schema where status nests a sub-group.
  xml::Schema schema("r");
  auto& block = schema.root().add_child("block");
  block.set_repeatable(true);
  block.add_child("label");
  auto& inner = block.add_child("inner");
  inner.add_child("depth");

  PartitionAnnotations annotations;
  annotations.attributes.push_back(AttributeAnnotation{"block", false, true});
  CatalogConfig config;
  MetadataCatalog catalog(schema, annotations, config);
  const ObjectId id = catalog.ingest_xml(
      "<r><block><label>a</label><inner><depth>5</depth></inner></block></r>", "x", "u");
  catalog.ingest_xml(
      "<r><block><label>b</label><inner><depth>9</depth></inner></block></r>", "y", "u");

  const ObjectQuery query =
      path_to_query(catalog.partition(), "//block[label='a' and inner/depth=5]");
  EXPECT_EQ(catalog.query(query), std::vector<ObjectId>{id});

  const ObjectQuery nested =
      path_to_query(catalog.partition(), "//block[inner[depth>7]]");
  EXPECT_EQ(catalog.query(nested).size(), 1u);
}

TEST_F(PathQueryTest, RandomizedOracleEquivalence) {
  // Path-translated dynamic queries agree with the DOM oracle.
  const baselines::DomMatcher oracle(catalog_.partition());
  const char* params[] = {"dx", "dz", "nx", "dtbig"};
  for (const char* param : params) {
    for (int v = 0; v < 3; ++v) {
      const double value = workload::parameter_value(param, v);
      const std::string path =
          std::string("//detailed[enttyp/enttypl='grid' and enttyp/enttypds='ARPS']"
                      "[attr[attrlabl='") +
          param + "' and attrv=" + std::to_string(value) + "]]";
      const ObjectQuery query = path_to_query(catalog_.partition(), path);
      const auto hits = catalog_.query(query);
      // Verify each hit against the oracle by re-fetching the document.
      for (const ObjectId id : hits) {
        EXPECT_TRUE(oracle.matches(catalog_.fetch(id), query))
            << param << " v" << v << " object " << id;
      }
    }
  }
}

}  // namespace
}  // namespace hxrc::core
