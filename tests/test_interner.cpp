// The string interner (rel/interner.hpp): dictionary-encoded columns rely
// on canonical-pointer stability, the shredder's SSO bypass, and the MVCC
// read contract (readers deref published canonical pointers while a writer
// interns new strings under the catalog's exclusive lock).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/catalog.hpp"
#include "core/storage.hpp"
#include "rel/interner.hpp"
#include "rel/value.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"

namespace hxrc {
namespace {

// Mirrors Shredder::string_value's threshold (shredder.cpp): strings at or
// below this length stay owned (they fit std::string's SSO buffer), longer
// ones go through the interner.
constexpr std::size_t kInternMinLength = 15;

TEST(Interner, DedupsToOneCanonicalPointer) {
  rel::Interner interner;
  const std::string* a = interner.intern("forecast-run-title-alpha");
  const std::string* b = interner.intern("forecast-run-title-alpha");
  const std::string* c = interner.intern("forecast-run-title-beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(*a, "forecast-run-title-alpha");
  EXPECT_EQ(interner.size(), 2u);

  // Short (SSO-range) strings still dedup — the interner itself has no
  // length cutoff; the bypass lives in the shredder.
  const std::string* s1 = interner.intern("wrf");
  const std::string* s2 = interner.intern("wrf");
  EXPECT_EQ(s1, s2);

  // Value::interned behaves like an owned string of the same content.
  const rel::Value dict = rel::Value::interned(a);
  const rel::Value owned("forecast-run-title-alpha");
  EXPECT_TRUE(dict.is_interned());
  EXPECT_FALSE(owned.is_interned());
  EXPECT_EQ(dict.type(), rel::Type::kString);
  EXPECT_TRUE(dict == owned);
  EXPECT_EQ(dict.hash(), owned.hash());
  EXPECT_EQ(&dict.as_string(), a);
}

TEST(Interner, PointersAndContentStableAcrossRehash) {
  rel::Interner interner;
  std::vector<const std::string*> handles;
  std::vector<const char*> payloads;
  for (int i = 0; i < 100; ++i) {
    const std::string* p = interner.intern("early-key-" + std::to_string(i));
    handles.push_back(p);
    payloads.push_back(p->data());
  }
  // Force many rehashes of the map and growth of the backing deque.
  for (int i = 0; i < 50'000; ++i) {
    interner.intern("late-key-" + std::to_string(i));
  }
  EXPECT_EQ(interner.size(), 50'100u);
  for (int i = 0; i < 100; ++i) {
    const std::string expected = "early-key-" + std::to_string(i);
    EXPECT_EQ(*handles[i], expected);
    EXPECT_EQ(handles[i]->data(), payloads[i]);  // string buffer never moved
    EXPECT_EQ(interner.intern(expected), handles[i]);  // re-intern hits
  }
}

// The shredder's SSO bypass, observed through real ingest: strings longer
// than the threshold land in elem_data as dictionary-encoded values and
// repeats across documents share ONE canonical pointer; short strings stay
// owned (no dictionary probe, no pointer aliasing).
TEST(Interner, ShredderBypassesSsoStringsAndDedupsLongOnes) {
  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  core::MetadataCatalog catalog(schema, workload::lead_annotations(), config);
  catalog.ingest_xml(workload::fig3_document(), "a", "u");
  catalog.ingest_xml(workload::fig3_document(), "b", "u");

  const rel::Table& elems = catalog.database().require_table(core::kElemDataTable);
  const std::size_t value_str = elems.schema().require("value_str");
  std::unordered_map<std::string, std::unordered_set<const std::string*>> canonical;
  std::size_t interned_rows = 0;
  for (std::size_t r = 0; r < elems.row_count(); ++r) {
    const rel::Value& v = elems.row_unchecked(r)[value_str];
    if (v.is_null() || v.type() != rel::Type::kString) continue;
    if (v.is_interned()) {
      ++interned_rows;
      EXPECT_GT(v.as_string().size(), kInternMinLength);
      canonical[v.as_string()].insert(&v.as_string());
    } else {
      EXPECT_LE(v.as_string().size(), kInternMinLength);
    }
  }
  ASSERT_GT(interned_rows, 0u);
  // Identical content — including the duplicate document — always resolves
  // to the same canonical string object.
  for (const auto& [content, pointers] : canonical) {
    EXPECT_EQ(pointers.size(), 1u) << "duplicated storage for: " << content;
  }
}

// MVCC read contract: published rows hold canonical pointers; readers deref
// and compare them lock-free while a writer (serialized by the catalog's
// exclusive lock in real use) keeps interning fresh strings. Existing
// pointers and payloads must stay untouched by concurrent map rehash /
// deque growth.
TEST(Interner, ConcurrentReadersWhileWriterInterns) {
  rel::Interner interner;
  std::vector<const std::string*> published;
  for (int i = 0; i < 256; ++i) {
    published.push_back(interner.intern("published-value-" + std::to_string(i)));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (int i = 0; i < 256; ++i) {
          const std::string expected = "published-value-" + std::to_string(i);
          const rel::Value dict = rel::Value::interned(published[i]);
          if (dict.as_string() != expected || !(dict == rel::Value(expected))) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int i = 0; i < 30'000; ++i) {
    interner.intern("writer-churn-" + std::to_string(i));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(interner.size(), 30'256u);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(interner.intern("published-value-" + std::to_string(i)), published[i]);
  }
}

}  // namespace
}  // namespace hxrc
