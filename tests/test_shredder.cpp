// Hybrid shredding (§3): Fig. 3 document, dynamic validation, CLOB storage.
#include <gtest/gtest.h>

#include "core/catalog.hpp"
#include "core/ordering.hpp"
#include "core/storage.hpp"
#include "workload/lead_schema.hpp"
#include "xml/parser.hpp"

namespace hxrc {
namespace {

using core::MetadataCatalog;

core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

class ShredderFig3 : public ::testing::Test {
 protected:
  ShredderFig3()
      : schema_(workload::lead_schema()),
        catalog_(schema_, workload::lead_annotations(), auto_define_config()) {
    id_ = catalog_.ingest_xml(workload::fig3_document(), "fig3", "alice");
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  core::ObjectId id_ = -1;
};

TEST_F(ShredderFig3, StoresOneClobPerAttributeInstance) {
  // Fig. 3 has: resourceID, two themes, one detailed => 4 attribute
  // instances => 4 CLOBs.
  const rel::Table& clobs = catalog_.database().require_table(core::kAttrClobsTable);
  EXPECT_EQ(clobs.row_count(), 4u);
  EXPECT_EQ(catalog_.database().clobs().count(), 4u);
}

TEST_F(ShredderFig3, ThemesGetSameSiblingClobSequence) {
  const rel::Table& clobs = catalog_.database().require_table(core::kAttrClobsTable);
  // Find the two rows sharing an order id (the theme instances).
  std::map<std::int64_t, std::vector<std::int64_t>> seqs_by_order;
  for (const rel::Row& row : clobs.rows()) {
    seqs_by_order[row[1].as_int()].push_back(row[2].as_int());
  }
  bool found_pair = false;
  for (auto& [order, seqs] : seqs_by_order) {
    (void)order;
    if (seqs.size() == 2) {
      std::sort(seqs.begin(), seqs.end());
      EXPECT_EQ(seqs[0], 1);
      EXPECT_EQ(seqs[1], 2);
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST_F(ShredderFig3, ShredsDynamicAttributesByNameAndSource) {
  // grid (ARPS) with sub-attribute grid-stretching: definitions must exist.
  const core::AttributeDef* grid =
      catalog_.registry().find_attribute("grid", "ARPS", core::kNoAttr);
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(grid->kind, core::AttrKind::kDynamic);

  const core::AttributeDef* stretching =
      catalog_.registry().find_attribute("grid-stretching", "ARPS", grid->id);
  ASSERT_NE(stretching, nullptr);
  EXPECT_EQ(stretching->parent, grid->id);

  // Elements dx, dz under grid; dzmin, reference-height under stretching.
  EXPECT_NE(catalog_.registry().find_element("dx", "ARPS", grid->id), nullptr);
  EXPECT_NE(catalog_.registry().find_element("dz", "ARPS", grid->id), nullptr);
  EXPECT_NE(catalog_.registry().find_element("dzmin", "ARPS", stretching->id), nullptr);
  EXPECT_NE(catalog_.registry().find_element("reference-height", "ARPS", stretching->id),
            nullptr);
}

TEST_F(ShredderFig3, BuildsInstanceInvertedList) {
  const rel::Table& inverted = catalog_.database().require_table(core::kAttrInvertedTable);
  // grid-stretching instance -> grid instance at distance 1.
  const core::AttributeDef* grid =
      catalog_.registry().find_attribute("grid", "ARPS", core::kNoAttr);
  const core::AttributeDef* stretching =
      catalog_.registry().find_attribute("grid-stretching", "ARPS", grid->id);
  bool found = false;
  for (const rel::Row& row : inverted.rows()) {
    if (row[1].as_int() == stretching->id && row[3].as_int() == grid->id) {
      EXPECT_EQ(row[5].as_int(), 1);  // distance
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ShredderFig3, ElementRowsCarryNumericMirror) {
  const rel::Table& elems = catalog_.database().require_table(core::kElemDataTable);
  bool found_dx = false;
  for (const rel::Row& row : elems.rows()) {
    if (!row[5].is_null() && row[5].as_string() == "1000.000") {
      EXPECT_FALSE(row[6].is_null());
      EXPECT_DOUBLE_EQ(row[6].as_double(), 1000.0);
      found_dx = true;
    }
  }
  EXPECT_TRUE(found_dx);
}

TEST_F(ShredderFig3, StatsAreAccurate) {
  const core::ShredStats& stats = catalog_.total_stats();
  // Top instances: resourceID, theme x2, grid (detailed).
  EXPECT_EQ(stats.attribute_instances, 4u);
  // Sub-attribute instances: grid-stretching.
  EXPECT_EQ(stats.sub_attribute_instances, 1u);
  // Elements: resourceID(1) + themes(3+3) + dx,dz + dzmin,reference-height.
  EXPECT_EQ(stats.element_rows, 11u);
  EXPECT_EQ(stats.clobs, 4u);
  EXPECT_GT(stats.clob_bytes, 0u);
}

TEST(Shredder, UnknownDynamicStaysClobOnlyWithoutAutoDefine) {
  const xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations());  // no auto-define
  catalog.ingest_xml(workload::fig3_document(), "fig3", "alice");

  // The detailed CLOB is stored, but nothing was shredded for it.
  EXPECT_EQ(catalog.total_stats().unshredded_dynamic, 1u);
  EXPECT_EQ(catalog.registry().find_attribute("grid", "ARPS", core::kNoAttr), nullptr);
  const rel::Table& clobs = catalog.database().require_table(core::kAttrClobsTable);
  EXPECT_EQ(clobs.row_count(), 4u);  // CLOBs still complete
}

TEST(Shredder, PreregisteredDynamicDefinitionsAreUsed) {
  const xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations());
  const core::AttrDefId grid = catalog.define_dynamic_attribute(
      "grid", "ARPS",
      {{"dx", xml::LeafType::kDouble, ""}, {"dz", xml::LeafType::kDouble, ""}});
  catalog.define_dynamic_sub_attribute(grid, "grid-stretching", "ARPS",
                                       {{"dzmin", xml::LeafType::kDouble, ""},
                                        {"reference-height", xml::LeafType::kDouble, ""}});
  catalog.ingest_xml(workload::fig3_document(), "fig3", "alice");
  EXPECT_EQ(catalog.total_stats().unshredded_dynamic, 0u);
  EXPECT_EQ(catalog.total_stats().attribute_instances, 4u);
}

TEST(Shredder, RejectsNonConformingDocument) {
  const xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations());
  EXPECT_THROW(catalog.ingest_xml("<wrong/>", "bad", "alice"), core::ValidationError);
  EXPECT_THROW(
      catalog.ingest_xml("<LEADresource><bogus>x</bogus></LEADresource>", "bad", "alice"),
      core::ValidationError);
}

TEST(Shredder, UserLevelDefinitionsArePrivate) {
  const xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  config.shred.auto_define_visibility = core::Visibility::kUser;
  MetadataCatalog catalog(schema, workload::lead_annotations(), config);
  catalog.ingest_xml(workload::fig3_document(), "fig3", "alice");

  // alice sees her private definition; bob does not.
  EXPECT_NE(catalog.registry().find_attribute("grid", "ARPS", core::kNoAttr, "alice"),
            nullptr);
  EXPECT_EQ(catalog.registry().find_attribute("grid", "ARPS", core::kNoAttr, "bob"),
            nullptr);
  EXPECT_EQ(catalog.registry().find_attribute("grid", "ARPS", core::kNoAttr), nullptr);
}

TEST(Shredder, MultipleDocumentsGetDistinctObjects) {
  const xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  const auto a = catalog.ingest_xml(workload::fig3_document(), "a", "alice");
  const auto b = catalog.ingest_xml(workload::fig3_document(), "b", "alice");
  EXPECT_NE(a, b);
  const rel::Table& objects = catalog.database().require_table(core::kObjectsTable);
  EXPECT_EQ(objects.row_count(), 2u);
}

}  // namespace
}  // namespace hxrc
