#include <gtest/gtest.h>

#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::xml {
namespace {

TEST(Escape, TextEscapesMarkup) {
  EXPECT_EQ(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
  EXPECT_EQ(escape_text("plain"), "plain");
}

TEST(Escape, AttributeEscapesQuotes) {
  EXPECT_EQ(escape_attribute("say \"hi\" & go"), "say &quot;hi&quot; &amp; go");
  EXPECT_EQ(escape_attribute("tab\there"), "tab&#9;here");
}

TEST(Writer, EmptyElementSelfCloses) {
  const NodePtr node = Node::element("empty");
  EXPECT_EQ(write(*node), "<empty/>");
}

TEST(Writer, AttributesAreRendered) {
  NodePtr node = Node::element("a");
  node->add_attribute("k", "v<1>");
  node->add_text("t");
  EXPECT_EQ(write(*node), R"(<a k="v&lt;1&gt;">t</a>)");
}

TEST(Writer, DeclarationOption) {
  const NodePtr node = Node::element("a");
  WriteOptions options;
  options.declaration = true;
  EXPECT_EQ(write(*node, options), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

TEST(Writer, PrettyPrintIndents) {
  const Document doc = parse("<a><b>x</b><c><d>y</d></c></a>");
  WriteOptions options;
  options.indent = 2;
  const std::string out = write(doc, options);
  EXPECT_NE(out.find("\n  <b>x</b>\n"), std::string::npos);
  EXPECT_NE(out.find("\n    <d>y</d>\n"), std::string::npos);
  // Pretty output re-parses to the same document.
  const Document again = parse(out);
  EXPECT_EQ(write(again), write(doc));
}

TEST(Writer, RoundTripSpecialCharacters) {
  NodePtr node = Node::element("a");
  node->add_text("5 < 6 && \"x\"");
  const Document doc = parse(write(*node));
  EXPECT_EQ(doc.root->text_content(), "5 < 6 && \"x\"");
}

TEST(Writer, OpenCloseTagHelpers) {
  std::string out;
  append_open_tag(out, "tag", {Attribute{"a", "1"}});
  out += "body";
  append_close_tag(out, "tag");
  EXPECT_EQ(out, R"(<tag a="1">body</tag>)");
}

}  // namespace
}  // namespace hxrc::xml
