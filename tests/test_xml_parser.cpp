#include <gtest/gtest.h>

#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::xml {
namespace {

TEST(Parser, SimpleElementTree) {
  const Document doc = parse("<a><b>hello</b><c/></a>");
  ASSERT_TRUE(doc.root != nullptr);
  EXPECT_EQ(doc.root->name(), "a");
  ASSERT_EQ(doc.root->child_elements().size(), 2u);
  EXPECT_EQ(doc.root->child_text("b"), "hello");
  EXPECT_TRUE(doc.root->first_child("c")->children().empty());
}

TEST(Parser, Attributes) {
  const Document doc = parse(R"(<a x="1" y='two'><b z="a&amp;b"/></a>)");
  EXPECT_EQ(*doc.root->attribute("x"), "1");
  EXPECT_EQ(*doc.root->attribute("y"), "two");
  EXPECT_EQ(*doc.root->first_child("b")->attribute("z"), "a&b");
  EXPECT_EQ(doc.root->attribute("missing"), nullptr);
}

TEST(Parser, EntitiesAndCharRefs) {
  const Document doc = parse("<a>&lt;x&gt; &amp; &quot;q&quot; &apos;s&apos; &#65;&#x42;</a>");
  EXPECT_EQ(doc.root->text_content(), "<x> & \"q\" 's' AB");
}

TEST(Parser, CdataIsLiteral) {
  const Document doc = parse("<a><![CDATA[<not-a-tag> & raw]]></a>");
  EXPECT_EQ(doc.root->text_content(), "<not-a-tag> & raw");
}

TEST(Parser, CommentsAndPisAreSkipped) {
  const Document doc =
      parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/><?pi data?></a>");
  EXPECT_EQ(doc.root->name(), "a");
  EXPECT_EQ(doc.root->child_elements().size(), 1u);
}

TEST(Parser, DoctypeIsSkipped) {
  const Document doc = parse("<!DOCTYPE a><a/>");
  EXPECT_EQ(doc.root->name(), "a");
}

TEST(Parser, WhitespaceTextDroppedByDefault) {
  const Document doc = parse("<a>\n  <b>x</b>\n</a>");
  // Only the element child; whitespace runs are not text nodes.
  EXPECT_EQ(doc.root->children().size(), 1u);

  ParseOptions keep;
  keep.keep_whitespace_text = true;
  const Document kept = parse("<a>\n  <b>x</b>\n</a>", keep);
  EXPECT_EQ(kept.root->children().size(), 3u);
}

TEST(Parser, MismatchedCloseTagThrows) {
  EXPECT_THROW(parse("<a><b></a></b>"), ParseError);
}

TEST(Parser, UnterminatedElementThrows) {
  EXPECT_THROW(parse("<a><b>"), ParseError);
}

TEST(Parser, TrailingContentThrows) {
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
}

TEST(Parser, BadEntityThrows) {
  EXPECT_THROW(parse("<a>&nope;</a>"), ParseError);
  EXPECT_THROW(parse("<a>&unterminated</a>"), ParseError);
}

TEST(Parser, ErrorCarriesLineAndColumn) {
  try {
    parse("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_GT(e.column(), 0u);
  }
}

TEST(Parser, FragmentParsing) {
  const NodePtr node = parse_fragment("<theme><themekt>CF</themekt></theme>");
  EXPECT_EQ(node->name(), "theme");
  EXPECT_EQ(node->child_text("themekt"), "CF");
}

TEST(Parser, DeeplyNested) {
  std::string text;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) text += "<d>";
  text += "x";
  for (int i = 0; i < kDepth; ++i) text += "</d>";
  const Document doc = parse(text);
  const Node* node = doc.root.get();
  int depth = 1;
  while (node->first_child("d") != nullptr) {
    node = node->first_child("d");
    ++depth;
  }
  EXPECT_EQ(depth, kDepth);
  EXPECT_EQ(node->text_content(), "x");
}

TEST(Parser, RoundTripThroughWriter) {
  const std::string text =
      R"(<a x="1"><b>text &amp; more</b><c><d>1</d><d>2</d></c></a>)";
  const Document doc = parse(text);
  EXPECT_EQ(write(doc), text);
}

TEST(Dom, CloneIsDeepAndIndependent) {
  const Document doc = parse("<a><b k=\"v\">x</b></a>");
  const NodePtr copy = doc.root->clone();
  EXPECT_EQ(write(*copy), write(*doc.root));
  EXPECT_EQ(copy->parent(), nullptr);
}

TEST(Dom, SubtreeElementCount) {
  const Document doc = parse("<a><b>x</b><c><d/></c></a>");
  EXPECT_EQ(doc.root->subtree_element_count(), 4u);
}

TEST(Dom, ChildrenNamed) {
  const Document doc = parse("<a><k>1</k><j/><k>2</k></a>");
  const auto ks = doc.root->children_named("k");
  ASSERT_EQ(ks.size(), 2u);
  EXPECT_EQ(ks[0]->text_content(), "1");
  EXPECT_EQ(ks[1]->text_content(), "2");
}

TEST(Dom, TextContentTrimsAndConcatenates) {
  ParseOptions keep;
  keep.keep_whitespace_text = true;
  const Document doc = parse("<a>  hello\n  world  </a>", keep);
  EXPECT_EQ(doc.root->text_content(), "hello\n  world");
}

}  // namespace
}  // namespace hxrc::xml
