// The TCP front end: framing, the connection state machine, pipelining,
// dispatcher backpressure as *socket* backpressure, graceful drain, and
// idle reaping — all over real sockets against an in-process CatalogServer.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "net/socket.hpp"

#include "core/dispatcher.hpp"
#include "core/service.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "workload/lead_schema.hpp"
#include "xml/parser.hpp"

namespace hxrc::net {
namespace {

using namespace std::chrono_literals;

// ---- framing unit tests ----

TEST(Framing, RoundTrip) {
  std::string wire;
  append_frame(wire, FrameType::kRequest, 7, "<catalogRequest type=\"stats\"/>");
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 30);

  const DecodeResult result = decode_frame(wire, 1 << 20);
  ASSERT_EQ(result.status, DecodeStatus::kFrame);
  EXPECT_EQ(result.frame.type, FrameType::kRequest);
  EXPECT_EQ(result.frame.version, kFrameVersion);
  EXPECT_EQ(result.frame.request_id, 7u);
  EXPECT_EQ(result.frame.payload, "<catalogRequest type=\"stats\"/>");
  EXPECT_EQ(result.consumed, wire.size());
}

TEST(Framing, PartialInputNeedsMoreAtEveryPrefix) {
  std::string wire;
  append_frame(wire, FrameType::kResponse, 42, "payload bytes");
  // Every strict prefix decodes to kNeedMore — partial reads are the normal
  // case on a socket, never an error.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const DecodeResult result = decode_frame(std::string_view(wire).substr(0, len), 1 << 20);
    EXPECT_EQ(result.status, DecodeStatus::kNeedMore) << "prefix length " << len;
  }
  // Trailing bytes of the next frame don't disturb the first.
  const DecodeResult result = decode_frame(wire + "HX", 1 << 20);
  ASSERT_EQ(result.status, DecodeStatus::kFrame);
  EXPECT_EQ(result.consumed, wire.size());
}

TEST(Framing, BadMagicIsRejectedOnTheFirstByte) {
  EXPECT_EQ(decode_frame("G", 1 << 20).status, DecodeStatus::kBadMagic);
  EXPECT_EQ(decode_frame("GET / HTTP/1.1", 1 << 20).status, DecodeStatus::kBadMagic);
  std::string wire;
  append_frame(wire, FrameType::kRequest, 1, "x");
  wire[1] = 'Q';
  EXPECT_EQ(decode_frame(wire, 1 << 20).status, DecodeStatus::kBadMagic);
}

TEST(Framing, OversizedPayloadReportsTheRequestId) {
  std::string wire;
  append_frame(wire, FrameType::kRequest, 99, std::string(2048, 'a'));
  const DecodeResult result = decode_frame(wire, 1024);
  EXPECT_EQ(result.status, DecodeStatus::kTooLarge);
  EXPECT_EQ(result.request_id, 99u);
}

// ---- server fixture ----

core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

/// Catalog + dispatcher + server wired together on an ephemeral port.
struct TestServer {
  TestServer(core::DispatcherConfig dispatch, ServerConfig net)
      : schema(workload::lead_schema()),
        catalog(schema, workload::lead_annotations(), auto_define_config()),
        dispatcher(catalog, std::move(dispatch)) {
    net.port = 0;
    server = std::make_unique<CatalogServer>(dispatcher, net);
    server->start();
  }

  BlockingClient connect() { return BlockingClient("127.0.0.1", server->port()); }

  xml::Schema schema;
  core::MetadataCatalog catalog;
  core::ServiceDispatcher dispatcher;
  std::unique_ptr<CatalogServer> server;
};

std::string code_of(const std::string& response_xml) {
  const xml::Document doc = xml::parse(response_xml);
  const std::string_view* code = doc.root->attribute("code");
  return code == nullptr ? std::string{} : std::string(*code);
}

std::string status_of(const std::string& response_xml) {
  return std::string(*xml::parse(response_xml).root->attribute("status"));
}

// ---- request/response over real sockets ----

TEST(NetServer, CallRoundTripsWithProtocolHandshake) {
  TestServer ts({.workers = 2, .max_queue = 32}, {});
  BlockingClient client = ts.connect();

  const std::string response =
      client.call("<catalogRequest type=\"stats\" version=\"1\"/>");
  EXPECT_EQ(status_of(response), "ok");
  const xml::Document doc = xml::parse(response);
  ASSERT_NE(doc.root->attribute("protocol"), nullptr);
  EXPECT_EQ(*doc.root->attribute("protocol"), "1");

  // Mutations work over the wire too, and land in the shared catalog.
  const std::string ingest =
      client.call("<catalogRequest type=\"ingest\">" + workload::fig3_document() +
                  "</catalogRequest>");
  EXPECT_EQ(status_of(ingest), "ok");
  EXPECT_EQ(ts.catalog.object_count(), 1u);

  EXPECT_EQ(code_of(client.call("<catalogRequest type=\"stats\" version=\"7\"/>")),
            "unsupported_version");
}

TEST(NetServer, PipelinedRequestsMatchResponsesById) {
  TestServer ts({.workers = 4, .max_queue = 64}, {});
  BlockingClient client = ts.connect();

  // 32 requests on the wire before the first response is read; even ids are
  // valid stats calls, odd ids unknown types — the echoed id must carry
  // each response to its request even when completion reorders them.
  constexpr std::uint32_t kCount = 32;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    client.send_frame(FrameType::kRequest, i,
                      i % 2 == 0 ? "<catalogRequest type=\"stats\"/>"
                                 : "<catalogRequest type=\"bogus\"/>");
  }
  std::vector<bool> seen(kCount, false);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const Frame frame = client.recv_frame();
    ASSERT_LT(frame.request_id, kCount);
    EXPECT_FALSE(seen[frame.request_id]) << "duplicate response id";
    seen[frame.request_id] = true;
    if (frame.request_id % 2 == 0) {
      EXPECT_EQ(status_of(frame.payload), "ok") << frame.request_id;
    } else {
      EXPECT_EQ(code_of(frame.payload), "unknown_type") << frame.request_id;
    }
  }
}

TEST(NetServer, ManyConnectionsShareTheCatalog) {
  TestServer ts({.workers = 4, .max_queue = 128}, {.event_threads = 2});
  std::vector<BlockingClient> clients;
  for (int i = 0; i < 16; ++i) clients.push_back(ts.connect());
  for (auto& client : clients) {
    EXPECT_EQ(status_of(client.call("<catalogRequest type=\"ingest\">" +
                                    workload::fig3_document() + "</catalogRequest>")),
              "ok");
  }
  EXPECT_EQ(ts.catalog.object_count(), 16u);
  EXPECT_EQ(ts.server->stats().connections_accepted.load(), 16u);
}

// ---- protocol errors on the wire ----

TEST(NetServer, ForeignFrameVersionGetsErrorFrameAndConnectionSurvives) {
  TestServer ts({.workers = 1, .max_queue = 8}, {});
  BlockingClient client = ts.connect();

  // Hand-craft a frame with protocol version 9: header layout is fixed for
  // all majors, so the server can answer instead of desyncing.
  std::string wire;
  append_frame(wire, FrameType::kRequest, 5, "<catalogRequest type=\"stats\"/>");
  wire[2] = 9;
  client.send_raw(wire);

  const Frame reply = client.recv_frame();
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.request_id, 5u);
  EXPECT_EQ(code_of(reply.payload), "unsupported_version");

  // The stream is still framed — the next well-formed request is served.
  EXPECT_EQ(status_of(client.call("<catalogRequest type=\"stats\"/>")), "ok");
}

TEST(NetServer, BadMagicClosesTheConnection) {
  TestServer ts({.workers = 1, .max_queue = 8}, {});
  BlockingClient client = ts.connect();
  client.send_raw("GET / HTTP/1.1\r\n\r\n");
  EXPECT_THROW(client.recv_frame(), SocketError);
  // Wait for the server side to account the close.
  for (int i = 0; i < 200 && ts.server->open_connections() != 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(ts.server->open_connections(), 0u);
  EXPECT_GE(ts.server->stats().protocol_errors.load(), 1u);
}

TEST(NetServer, OversizedFrameIsAnsweredThenCut) {
  TestServer ts({.workers = 1, .max_queue = 8}, {.max_frame_payload = 1024});
  BlockingClient client = ts.connect();
  client.send_frame(FrameType::kRequest, 3, std::string(4096, 'x'));

  const Frame reply = client.recv_frame();
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.request_id, 3u);
  EXPECT_EQ(code_of(reply.payload), "validation");
  // The declared payload was never read; the stream cannot be resynced.
  EXPECT_THROW(client.recv_frame(), SocketError);
}

// ---- backpressure: dispatcher saturation pauses reads, never floods ----

TEST(NetServer, QueueSaturationPausesReadsInsteadOfOverloadedFlood) {
  std::atomic<bool> release{false};
  core::DispatcherConfig dispatch;
  dispatch.workers = 1;
  dispatch.max_queue = 4;
  dispatch.before_execute = [&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(1ms);
    }
  };
  ServerConfig net;
  net.event_threads = 1;
  net.pause_high_watermark = 2;
  net.pause_low_watermark = 1;
  TestServer ts(std::move(dispatch), net);

  BlockingClient client = ts.connect();
  constexpr std::uint32_t kBurst = 50;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    client.send_frame(FrameType::kRequest, i, "<catalogRequest type=\"stats\"/>");
  }

  // With the worker held, the loop must hit the high watermark and stop
  // reading — the burst stays in socket buffers, the queue stays bounded.
  for (int i = 0; i < 1000 && ts.server->stats().pauses.read_pauses.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(ts.server->stats().pauses.read_pauses.load(), 1u);
  EXPECT_LE(ts.dispatcher.queue_depth(), 4u);

  // Release: every one of the 50 requests completes ok. Saturation never
  // produced a single overloaded rejection.
  release.store(true, std::memory_order_release);
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    const Frame frame = client.recv_frame();
    EXPECT_EQ(status_of(frame.payload), "ok") << "response " << i;
  }
  const util::MetricsRegistry& metrics = ts.dispatcher.metrics();
  const int slot = metrics.find("stats");
  ASSERT_GE(slot, 0);
  EXPECT_EQ(metrics.at(static_cast<std::size_t>(slot)).rejected.load(), 0u);
}

// ---- graceful drain over real sockets ----

TEST(NetServer, DrainCompletesInFlightAndRejectsNewFrames) {
  std::atomic<bool> release{false};
  std::atomic<int> entered{0};
  core::DispatcherConfig dispatch;
  dispatch.workers = 1;
  dispatch.max_queue = 8;
  dispatch.before_execute = [&release, &entered] {
    entered.fetch_add(1, std::memory_order_acq_rel);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(1ms);
    }
  };
  ServerConfig net;
  net.drain_linger = std::chrono::milliseconds(10000);
  TestServer ts(std::move(dispatch), net);

  // In-flight: picked up by the (held) worker before the drain begins.
  BlockingClient in_flight = ts.connect();
  in_flight.send_request("<catalogRequest type=\"stats\"/>");
  while (entered.load(std::memory_order_acquire) == 0) std::this_thread::sleep_for(1ms);

  BlockingClient late = ts.connect();

  std::thread drainer([&ts] { ts.server->drain(); });
  while (!ts.server->draining()) std::this_thread::sleep_for(1ms);

  // A frame arriving during the drain is answered code="draining", flushed,
  // and the connection is closed.
  late.send_request("<catalogRequest type=\"stats\"/>");
  const Frame rejected = late.recv_frame();
  EXPECT_EQ(code_of(rejected.payload), "draining");
  EXPECT_THROW(late.recv_frame(), SocketError);  // EOF after the flush

  // The in-flight request still completes with its real response.
  release.store(true, std::memory_order_release);
  const Frame completed = in_flight.recv_frame();
  EXPECT_EQ(status_of(completed.payload), "ok");
  EXPECT_THROW(in_flight.recv_frame(), SocketError);

  drainer.join();
  EXPECT_EQ(ts.server->open_connections(), 0u);
  EXPECT_TRUE(ts.dispatcher.draining());
}

TEST(NetServer, DrainLingerCutsOffConnectionsThatNeverGoQuiet) {
  ServerConfig net;
  net.drain_linger = std::chrono::milliseconds(100);
  TestServer ts({.workers = 1, .max_queue = 8}, net);

  BlockingClient idle = ts.connect();  // never sends, never quiet by itself
  // Ensure the server has registered the connection before draining.
  while (ts.server->open_connections() == 0) std::this_thread::sleep_for(1ms);

  const auto start = std::chrono::steady_clock::now();
  ts.server->drain();
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
  EXPECT_EQ(ts.server->open_connections(), 0u);
  EXPECT_THROW(idle.recv_frame(), SocketError);
}

// ---- idle reaping ----

TEST(NetServer, IdleConnectionsAreClosed) {
  ServerConfig net;
  net.idle_timeout = std::chrono::milliseconds(50);
  TestServer ts({.workers = 1, .max_queue = 8}, net);

  BlockingClient client = ts.connect();
  EXPECT_EQ(status_of(client.call("<catalogRequest type=\"stats\"/>")), "ok");
  // Quiet past the timeout: the server reaps the connection.
  EXPECT_THROW(client.recv_frame(), SocketError);
  EXPECT_GE(ts.server->stats().idle_closes.load(), 1u);
}

// ---- client resilience against a misbehaving server ----

/// A server that speaks garbage: accepts one connection, writes the given
/// bytes, and closes. Every client failure mode must be a clean
/// SocketError — never a hang, never a bad allocation.
struct MaliciousServer {
  explicit MaliciousServer(std::string bytes, int hold_open_ms = 0)
      : listener(listen_tcp(0)), port(local_port(listener.fd())) {
    worker = std::thread([this, bytes = std::move(bytes), hold_open_ms] {
      const Socket conn(::accept(listener.fd(), nullptr, nullptr));
      if (!conn.valid()) return;
      if (!bytes.empty()) {
        (void)::send(conn.fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
      }
      // Hold the connection open (for timeout tests), then the destructor
      // closes: the client sees EOF after `bytes`.
      if (hold_open_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(hold_open_ms));
      }
    });
  }
  ~MaliciousServer() { worker.join(); }

  BlockingClient connect() {
    BlockingClient client("127.0.0.1", port);
    client.set_io_timeout(2000);  // a hang fails the test, not the suite
    return client;
  }

  Socket listener;
  std::uint16_t port;
  std::thread worker;
};

TEST(NetClient, TruncatedHeaderIsACleanError) {
  std::string wire;
  append_frame(wire, FrameType::kResponse, 1, "payload");
  MaliciousServer server(wire.substr(0, kFrameHeaderBytes - 4));
  BlockingClient client = server.connect();
  // The server may have closed before the send lands, so the send itself is
  // allowed to be the clean error.
  EXPECT_THROW(
      {
        client.send_request("<catalogRequest type=\"stats\"/>");
        client.recv_frame();
      },
      SocketError);
}

TEST(NetClient, OversizeLengthAnnouncementIsRefusedUpFront) {
  // A full header announcing a payload far past the client's cap, followed
  // by nothing: the client must refuse on the header alone instead of
  // trying to allocate or waiting for bytes that never come.
  std::string wire;
  append_frame(wire, FrameType::kResponse, 1, std::string(64 << 10, 'x'));
  MaliciousServer server(wire.substr(0, kFrameHeaderBytes));
  BlockingClient client = server.connect();
  client.set_max_payload(1024);
  // The server may have closed before the send lands, so the send itself is
  // allowed to be the clean error.
  EXPECT_THROW(
      {
        client.send_request("<catalogRequest type=\"stats\"/>");
        client.recv_frame();
      },
      SocketError);
}

TEST(NetClient, ConnectionClosedMidBodyIsACleanError) {
  std::string wire;
  append_frame(wire, FrameType::kResponse, 1, std::string(4096, 'y'));
  MaliciousServer server(wire.substr(0, kFrameHeaderBytes + 100));
  BlockingClient client = server.connect();
  // The server may have closed before the send lands, so the send itself is
  // allowed to be the clean error.
  EXPECT_THROW(
      {
        client.send_request("<catalogRequest type=\"stats\"/>");
        client.recv_frame();
      },
      SocketError);
}

TEST(NetClient, NonProtocolBytesAreACleanError) {
  MaliciousServer server("HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nhi");
  BlockingClient client = server.connect();
  // The server may have closed before the send lands, so the send itself is
  // allowed to be the clean error.
  EXPECT_THROW(
      {
        client.send_request("<catalogRequest type=\"stats\"/>");
        client.recv_frame();
      },
      SocketError);
}

TEST(NetClient, SilentServerTimesOutInsteadOfHangingForever) {
  // Accepts, sends nothing, and holds the connection open well past the
  // client's timeout — the recv must give up, not wait for EOF.
  MaliciousServer server({}, /*hold_open_ms=*/1000);
  BlockingClient client = server.connect();
  client.set_io_timeout(100);
  client.send_request("<catalogRequest type=\"stats\"/>");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.recv_frame(), SocketError);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 1500ms);
}

}  // namespace
}  // namespace hxrc::net
