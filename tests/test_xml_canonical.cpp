#include <gtest/gtest.h>

#include "xml/canonical.hpp"
#include "xml/parser.hpp"

namespace hxrc::xml {
namespace {

TEST(Canonical, AttributesAreSorted) {
  const Document a = parse(R"(<x b="2" a="1"/>)");
  const Document b = parse(R"(<x a="1" b="2"/>)");
  EXPECT_TRUE(semantically_equal(a, b));
}

TEST(Canonical, WhitespaceIsCollapsed) {
  const Document a = parse("<x>  hello   world </x>");
  const Document b = parse("<x>hello world</x>");
  EXPECT_TRUE(semantically_equal(a, b));
}

TEST(Canonical, ElementOrderMatters) {
  const Document a = parse("<x><a/><b/></x>");
  const Document b = parse("<x><b/><a/></x>");
  EXPECT_FALSE(semantically_equal(a, b));
}

TEST(Canonical, ValuesMatter) {
  const Document a = parse("<x><a>1</a></x>");
  const Document b = parse("<x><a>2</a></x>");
  EXPECT_FALSE(semantically_equal(a, b));
}

TEST(Canonical, AttributeValuesMatter) {
  const Document a = parse(R"(<x a="1"/>)");
  const Document b = parse(R"(<x a="2"/>)");
  EXPECT_FALSE(semantically_equal(a, b));
}

TEST(Canonical, PrettyPrintedEqualsCompact) {
  const Document a = parse("<x>\n  <a>v</a>\n  <b>\n    <c>w</c>\n  </b>\n</x>");
  const Document b = parse("<x><a>v</a><b><c>w</c></b></x>");
  EXPECT_TRUE(semantically_equal(a, b));
}

TEST(Canonical, EmptyDocument) {
  Document empty;
  EXPECT_EQ(canonical(empty), "");
}

TEST(Canonical, EscapesSpecialCharacters) {
  const Document doc = parse("<x>&lt;tag&gt;</x>");
  EXPECT_EQ(canonical(doc), "<x>&lt;tag&gt;</x>");
}

}  // namespace
}  // namespace hxrc::xml
