#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "workload/lead_schema.hpp"

namespace hxrc::core {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest()
      : schema_(workload::lead_schema()),
        partition_(Partition::build(schema_, workload::lead_annotations())) {
    registry_.install_structural(partition_);
  }

  xml::Schema schema_;
  Partition partition_;
  DefinitionRegistry registry_;
};

TEST_F(RegistryTest, InstallsStructuralAttributeDefinitions) {
  const AttributeDef* theme = registry_.find_attribute("theme", "", kNoAttr);
  ASSERT_NE(theme, nullptr);
  EXPECT_EQ(theme->kind, AttrKind::kStructural);
  EXPECT_NE(theme->schema_order, kNoOrder);

  // Elements under theme.
  const ElementDef* themekt = registry_.find_element("themekt", "", theme->id);
  ASSERT_NE(themekt, nullptr);
  EXPECT_EQ(themekt->attribute, theme->id);
  EXPECT_NE(registry_.find_element("themekey", "", theme->id), nullptr);
}

TEST_F(RegistryTest, AttributeElementGetsSelfNamedElement) {
  const AttributeDef* rid = registry_.find_attribute("resourceID", "", kNoAttr);
  ASSERT_NE(rid, nullptr);
  EXPECT_NE(registry_.find_element("resourceID", "", rid->id), nullptr);
}

TEST_F(RegistryTest, DynamicRootHasNoStructuralDefinitions) {
  // "detailed" is dynamic: neither it nor its enttyp/attr structure is
  // registered structurally — its identity comes from document values (§3).
  EXPECT_EQ(registry_.find_attribute("detailed", "", kNoAttr), nullptr);
}

TEST_F(RegistryTest, StructuralForOrderMapsNonDynamicRoots) {
  for (const AttributeRootInfo& root : partition_.attribute_roots()) {
    const auto def = registry_.structural_for_order(root.order);
    if (root.dynamic) {
      EXPECT_FALSE(def.has_value()) << root.path;
      continue;
    }
    ASSERT_TRUE(def.has_value()) << root.path;
    EXPECT_EQ(registry_.attribute(*def).name, root.tag);
  }
  EXPECT_FALSE(registry_.structural_for_order(9999).has_value());
}

TEST_F(RegistryTest, DefineAttributeIsIdempotent) {
  const AttrDefId a = registry_.define_attribute("grid", "ARPS", AttrKind::kDynamic);
  const AttrDefId b = registry_.define_attribute("grid", "ARPS", AttrKind::kDynamic);
  EXPECT_EQ(a, b);
}

TEST_F(RegistryTest, NameAndSourceDisambiguateModels) {
  // §3: ARPS and WRF may define parameters with the same name.
  const AttrDefId arps = registry_.define_attribute("grid", "ARPS", AttrKind::kDynamic);
  const AttrDefId wrf = registry_.define_attribute("grid", "WRF", AttrKind::kDynamic);
  EXPECT_NE(arps, wrf);
  EXPECT_EQ(registry_.find_attribute("grid", "ARPS", kNoAttr)->id, arps);
  EXPECT_EQ(registry_.find_attribute("grid", "WRF", kNoAttr)->id, wrf);
}

TEST_F(RegistryTest, SubAttributesAreScopedByParent) {
  const AttrDefId grid = registry_.define_attribute("grid", "ARPS", AttrKind::kDynamic);
  const AttrDefId micro = registry_.define_attribute("microphysics", "ARPS", AttrKind::kDynamic);
  const AttrDefId sub_grid =
      registry_.define_attribute("damping", "ARPS", AttrKind::kDynamic, grid);
  const AttrDefId sub_micro =
      registry_.define_attribute("damping", "ARPS", AttrKind::kDynamic, micro);
  EXPECT_NE(sub_grid, sub_micro);
  EXPECT_EQ(registry_.find_attribute("damping", "ARPS", grid)->id, sub_grid);
}

TEST_F(RegistryTest, UserVisibilityScoping) {
  registry_.define_attribute("private-attr", "ARPS", AttrKind::kDynamic, kNoAttr, kNoOrder,
                             Visibility::kUser, "alice");
  EXPECT_EQ(registry_.find_attribute("private-attr", "ARPS", kNoAttr), nullptr);
  EXPECT_EQ(registry_.find_attribute("private-attr", "ARPS", kNoAttr, "bob"), nullptr);
  const AttributeDef* def = registry_.find_attribute("private-attr", "ARPS", kNoAttr, "alice");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->owner, "alice");
}

TEST_F(RegistryTest, AdminDefinitionWinsOverUserDefinition) {
  registry_.define_attribute("shared", "ARPS", AttrKind::kDynamic, kNoAttr, kNoOrder,
                             Visibility::kUser, "alice");
  const AttrDefId admin = registry_.define_attribute("shared", "ARPS", AttrKind::kDynamic);
  const AttributeDef* found = registry_.find_attribute("shared", "ARPS", kNoAttr, "alice");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, admin);
}

TEST_F(RegistryTest, ElementDefinitionsAreIdempotent) {
  const AttrDefId grid = registry_.define_attribute("grid", "ARPS", AttrKind::kDynamic);
  const ElemDefId a = registry_.define_element("dx", "ARPS", grid, xml::LeafType::kDouble);
  const ElemDefId b = registry_.define_element("dx", "ARPS", grid);
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry_.element(a).type, xml::LeafType::kDouble);
}

TEST_F(RegistryTest, CountsTrackDefinitions) {
  const std::size_t attrs_before = registry_.attribute_count();
  const std::size_t elems_before = registry_.element_count();
  const AttrDefId grid = registry_.define_attribute("grid", "ARPS", AttrKind::kDynamic);
  registry_.define_element("dx", "ARPS", grid);
  EXPECT_EQ(registry_.attribute_count(), attrs_before + 1);
  EXPECT_EQ(registry_.element_count(), elems_before + 1);
}

}  // namespace
}  // namespace hxrc::core
