// The Fig. 4 object query process: the paper's §4 example, fast path,
// multi-instance semantics, ranges, and visibility.
#include <gtest/gtest.h>

#include "core/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace hxrc {
namespace {

using core::AttrQuery;
using core::CompareOp;
using core::MetadataCatalog;
using core::ObjectQuery;

core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

class EngineFig3 : public ::testing::Test {
 protected:
  EngineFig3()
      : schema_(workload::lead_schema()),
        catalog_(schema_, workload::lead_annotations(), auto_define_config()) {
    fig3_ = catalog_.ingest_xml(workload::fig3_document(), "fig3", "alice");

    // A near-miss document: same structure, different dzmin.
    std::string other = workload::fig3_document();
    const auto pos = other.find("<attrv>100.000</attrv>");
    EXPECT_NE(pos, std::string::npos);
    other.replace(pos, std::string("<attrv>100.000</attrv>").size(),
                  "<attrv>250.000</attrv>");
    near_miss_ = catalog_.ingest_xml(other, "near-miss", "alice");
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  core::ObjectId fig3_ = -1;
  core::ObjectId near_miss_ = -1;
};

TEST_F(EngineFig3, PaperExampleQueryMatchesFig3Only) {
  // §4: dx = 1000 AND grid-stretching/dzmin = 100.
  const auto ids = catalog_.query(workload::paper_example_query());
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], fig3_);
}

TEST_F(EngineFig3, SubAttributePredicateDiscriminates) {
  // dzmin = 250 matches only the near-miss document.
  const auto ids = catalog_.query(workload::paper_example_query(1000.0, 250.0));
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], near_miss_);
}

TEST_F(EngineFig3, TopLevelElementOnlyQuery) {
  ObjectQuery query;
  AttrQuery grid("grid", "ARPS");
  grid.add_element("dx", "ARPS", rel::Value(1000.0), CompareOp::kEq);
  query.add_attribute(std::move(grid));
  const auto ids = catalog_.query(query);
  EXPECT_EQ(ids.size(), 2u);  // both documents carry dx = 1000
}

TEST_F(EngineFig3, RangePredicates) {
  ObjectQuery query;
  AttrQuery grid("grid", "ARPS");
  AttrQuery stretching("grid-stretching", "ARPS");
  stretching.add_element("dzmin", rel::Value(200.0), CompareOp::kGt);
  grid.add_attribute(std::move(stretching));
  query.add_attribute(std::move(grid));
  const auto ids = catalog_.query(query);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], near_miss_);
}

TEST_F(EngineFig3, StructuralThemeQuery) {
  const auto ids =
      catalog_.query(workload::theme_keyword_query("air_pressure_at_cloud_base"));
  EXPECT_EQ(ids.size(), 2u);
  const auto none = catalog_.query(workload::theme_keyword_query("no_such_keyword"));
  EXPECT_TRUE(none.empty());
}

TEST_F(EngineFig3, MultipleInstancesWithinOneObject) {
  // Criteria spread across the two theme instances of one document: each
  // instance must satisfy its own criterion (two separate attribute
  // criteria), which an object-level count alone would conflate.
  ObjectQuery query;
  AttrQuery theme1("theme");
  theme1.add_element("themekey", rel::Value("convective_precipitation_amount"),
                     CompareOp::kEq);
  AttrQuery theme2("theme");
  theme2.add_element("themekey", rel::Value("air_pressure_at_cloud_base"), CompareOp::kEq);
  query.add_attribute(std::move(theme1));
  query.add_attribute(std::move(theme2));
  EXPECT_EQ(catalog_.query(query).size(), 2u);

  // Both criteria within ONE instance: no single theme holds both keywords.
  ObjectQuery conjunct;
  AttrQuery theme("theme");
  theme.add_element("themekey", rel::Value("convective_precipitation_amount"),
                    CompareOp::kEq);
  theme.add_element("themekey", rel::Value("air_pressure_at_cloud_base"), CompareOp::kEq);
  conjunct.add_attribute(std::move(theme));
  EXPECT_TRUE(catalog_.query(conjunct).empty());

  // ...but two keywords of the SAME instance do match.
  ObjectQuery same;
  AttrQuery theme_same("theme");
  theme_same.add_element("themekey", rel::Value("convective_precipitation_amount"),
                         CompareOp::kEq);
  theme_same.add_element("themekey", rel::Value("convective_precipitation_flux"),
                         CompareOp::kEq);
  same.add_attribute(std::move(theme_same));
  EXPECT_EQ(catalog_.query(same).size(), 2u);
}

TEST_F(EngineFig3, UnknownDefinitionYieldsEmpty) {
  ObjectQuery query;
  query.add_attribute(AttrQuery("nonexistent", "ARPS"));
  EXPECT_TRUE(catalog_.query(query).empty());
}

TEST_F(EngineFig3, ExistenceOnlyCriteria) {
  ObjectQuery query;
  AttrQuery grid("grid", "ARPS");
  grid.require_element("dz", "ARPS");
  query.add_attribute(std::move(grid));
  EXPECT_EQ(catalog_.query(query).size(), 2u);
}

TEST_F(EngineFig3, AttributeExistenceWithoutElements) {
  // An attribute criterion with no element predicates requires only that an
  // instance of the definition exists.
  ObjectQuery query;
  query.add_attribute(AttrQuery("grid", "ARPS"));
  EXPECT_EQ(catalog_.query(query).size(), 2u);
}

TEST_F(EngineFig3, FastPathUsedForSingleInstanceStructural) {
  ObjectQuery query;
  AttrQuery status("status");
  status.require_element("progress");
  query.add_attribute(std::move(status));
  core::QueryPlanInfo info;
  catalog_.query(query, &info);
  EXPECT_TRUE(info.fast_path);

  // Repeatable (theme) and dynamic (grid) criteria must NOT take it.
  core::QueryPlanInfo info2;
  catalog_.query(workload::theme_keyword_query("air_temperature"), &info2);
  EXPECT_FALSE(info2.fast_path);
  core::QueryPlanInfo info3;
  catalog_.query(workload::paper_example_query(), &info3);
  EXPECT_FALSE(info3.fast_path);
}

TEST_F(EngineFig3, FastPathAndGeneralPathAgree) {
  core::CatalogConfig no_fast = auto_define_config();
  no_fast.engine.enable_fastpath = false;
  xml::Schema schema2 = workload::lead_schema();
  MetadataCatalog slow(schema2, workload::lead_annotations(), no_fast);
  slow.ingest_xml(workload::fig3_document(), "fig3", "alice");

  ObjectQuery query;
  AttrQuery citation("citation");
  citation.add_element("title", rel::Value("Forecast run 0"), CompareOp::kNe);
  query.add_attribute(std::move(citation));

  // Fig. 3 has no citation: both paths must return empty.
  core::QueryPlanInfo fast_info;
  core::QueryPlanInfo slow_info;
  // (catalog_ holds fig3 + near-miss; slow holds just fig3 — compare shapes
  // on the common document set via a fresh fast catalog.)
  xml::Schema schema3 = workload::lead_schema();
  MetadataCatalog fast(schema3, workload::lead_annotations(), auto_define_config());
  fast.ingest_xml(workload::fig3_document(), "fig3", "alice");
  EXPECT_EQ(fast.query(query, &fast_info), slow.query(query, &slow_info));
  EXPECT_TRUE(fast_info.fast_path);
  EXPECT_FALSE(slow_info.fast_path);
}

TEST(EngineDeepNesting, ThreeLevelSubAttributeRollup) {
  // grid > damping > filtering > cutoff: the rollup loop must run once per
  // query level, deepest first.
  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  MetadataCatalog catalog(schema, workload::lead_annotations(), config);

  auto doc_with_cutoff = [](const char* cutoff) {
    return std::string(
               "<LEADresource><resourceID>r</resourceID><data><geospatial><eainfo>"
               "<detailed><enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds>"
               "</enttyp>"
               "<attr><attrlabl>damping</attrlabl><attrdefs>ARPS</attrdefs>"
               "<attr><attrlabl>filtering</attrlabl><attrdefs>ARPS</attrdefs>"
               "<attr><attrlabl>cutoff</attrlabl><attrdefs>ARPS</attrdefs><attrv>") +
           cutoff +
           "</attrv></attr></attr></attr>"
           "</detailed></eainfo></geospatial></data></LEADresource>";
  };
  const auto hit = catalog.ingest_xml(doc_with_cutoff("5"), "hit", "u");
  catalog.ingest_xml(doc_with_cutoff("9"), "miss", "u");

  ObjectQuery query;
  AttrQuery grid("grid", "ARPS");
  AttrQuery damping("damping", "ARPS");
  AttrQuery filtering("filtering", "ARPS");
  filtering.add_element("cutoff", "ARPS", rel::Value(5.0), CompareOp::kEq);
  damping.add_attribute(std::move(filtering));
  grid.add_attribute(std::move(damping));
  query.add_attribute(std::move(grid));

  core::QueryPlanInfo info;
  const auto ids = catalog.query(query, &info);
  EXPECT_EQ(ids, std::vector<core::ObjectId>{hit});
  EXPECT_EQ(info.rollup_levels, 2u);
  EXPECT_FALSE(info.fast_path);

  // Skipping the middle level must NOT match (definitions nest strictly).
  ObjectQuery skip_middle;
  AttrQuery grid2("grid", "ARPS");
  AttrQuery filtering2("filtering", "ARPS");
  filtering2.add_element("cutoff", "ARPS", rel::Value(5.0), CompareOp::kEq);
  grid2.add_attribute(std::move(filtering2));
  skip_middle.add_attribute(std::move(grid2));
  EXPECT_TRUE(catalog.query(skip_middle).empty());
}

TEST_F(EngineFig3, PlanCountersObservePipelineWork) {
  // Fast path: one probe per criterion, bucket rows evaluated in place, and
  // only the final object ids copied out of the pipeline.
  ObjectQuery query;
  AttrQuery res("resourceID");
  res.require_element("resourceID");
  query.add_attribute(std::move(res));
  core::QueryPlanInfo info;
  const auto ids = catalog_.query(query, &info);
  EXPECT_TRUE(info.fast_path);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(info.index_probes, 1u);
  EXPECT_EQ(info.rows_scanned, 2u);  // one resourceID row per document
  EXPECT_EQ(info.candidate_rows, 2u);
  EXPECT_EQ(info.rows_materialized, ids.size());

  // General path: rows copied out stay bounded by the retained candidate
  // instances plus the result, never the rows visited.
  core::QueryPlanInfo theme_info;
  const auto theme_ids =
      catalog_.query(workload::theme_keyword_query("air_pressure_at_cloud_base"),
                     &theme_info);
  EXPECT_FALSE(theme_info.fast_path);
  EXPECT_EQ(theme_ids.size(), 2u);
  EXPECT_GE(theme_info.index_probes, 1u);
  EXPECT_GT(theme_info.rows_scanned, 0u);
  EXPECT_GE(theme_info.rows_materialized, theme_ids.size());
  EXPECT_LE(theme_info.rows_materialized, theme_info.rows_scanned + theme_ids.size());
}

TEST_F(EngineFig3, EmptyIntersectionStopsProbing) {
  // dx = 9999 matches nothing; once the running candidate set is empty the
  // remaining criterion is never probed (early exit in the ordered
  // conjunction).
  ObjectQuery query;
  AttrQuery grid("grid", "ARPS");
  grid.add_element("dx", "ARPS", rel::Value(9999.0), CompareOp::kEq);
  grid.add_element("dz", "ARPS", rel::Value(500.0), CompareOp::kEq);
  query.add_attribute(std::move(grid));
  core::QueryPlanInfo info;
  EXPECT_TRUE(catalog_.query(query, &info).empty());
  EXPECT_EQ(info.index_probes, 1u);
  EXPECT_EQ(info.candidate_rows, 0u);
  EXPECT_EQ(info.rows_materialized, 0u);
}

TEST_F(EngineFig3, ForcedQueryOrderMatchesDefaultPipeline) {
  core::CatalogConfig forced = auto_define_config();
  forced.engine.force_query_order = true;
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog ordered(schema, workload::lead_annotations(), forced);
  ordered.ingest_xml(workload::fig3_document(), "fig3", "alice");

  xml::Schema schema2 = workload::lead_schema();
  MetadataCatalog reordered(schema2, workload::lead_annotations(), auto_define_config());
  reordered.ingest_xml(workload::fig3_document(), "fig3", "alice");

  for (const auto& query :
       {workload::paper_example_query(),
        workload::theme_keyword_query("air_pressure_at_cloud_base")}) {
    EXPECT_EQ(ordered.query(query), reordered.query(query));
  }
}

TEST(EngineVisibility, PrivateDefinitionsRequireTheOwner) {
  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  config.shred.auto_define_visibility = core::Visibility::kUser;
  MetadataCatalog catalog(schema, workload::lead_annotations(), config);
  catalog.ingest_xml(workload::fig3_document(), "fig3", "alice");

  core::ObjectQuery query = workload::paper_example_query();
  EXPECT_TRUE(catalog.query(query).empty());  // anonymous: invisible

  query.set_user("alice");
  EXPECT_EQ(catalog.query(query).size(), 1u);

  query.set_user("bob");
  EXPECT_TRUE(catalog.query(query).empty());
}

TEST(EngineConjunction, MixedStructuralAndDynamicCriteria) {
  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  MetadataCatalog catalog(schema, workload::lead_annotations(), config);
  catalog.ingest_xml(workload::fig3_document(), "fig3", "alice");

  core::ObjectQuery query;
  core::AttrQuery theme("theme");
  theme.add_element("themekt", rel::Value("CF NetCDF"), CompareOp::kEq);
  query.add_attribute(std::move(theme));
  core::AttrQuery grid("grid", "ARPS");
  grid.add_element("dx", "ARPS", rel::Value(1000.0), CompareOp::kEq);
  query.add_attribute(std::move(grid));
  EXPECT_EQ(catalog.query(query).size(), 1u);

  // Make one criterion fail: the conjunction must fail.
  core::ObjectQuery failing;
  core::AttrQuery theme2("theme");
  theme2.add_element("themekt", rel::Value("GCMD"), CompareOp::kEq);
  failing.add_attribute(std::move(theme2));
  core::AttrQuery grid2("grid", "ARPS");
  grid2.add_element("dx", "ARPS", rel::Value(1000.0), CompareOp::kEq);
  failing.add_attribute(std::move(grid2));
  EXPECT_TRUE(catalog.query(failing).empty());
}

}  // namespace
}  // namespace hxrc
