#include <gtest/gtest.h>

#include "util/string_util.hpp"

namespace hxrc::util {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  const auto parts = split("abc", '/');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Join, InsertsSeparators) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("SELECT", "select"));
  EXPECT_FALSE(iequals("SELECT", "selec"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("abc/def", "abc"));
  EXPECT_FALSE(starts_with("ab", "abc"));
}

TEST(ParseInt, StrictWholeString) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int(" 42 "), 42);  // trimmed
  EXPECT_FALSE(parse_int("42x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4.2").has_value());
}

TEST(ParseDouble, StrictWholeString) {
  EXPECT_DOUBLE_EQ(*parse_double("4.25"), 4.25);
  EXPECT_DOUBLE_EQ(*parse_double("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*parse_double("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(*parse_double("100.000"), 100.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(IsBlank, WhitespaceOnly) {
  EXPECT_TRUE(is_blank(""));
  EXPECT_TRUE(is_blank(" \t\n"));
  EXPECT_FALSE(is_blank(" x "));
}

}  // namespace
}  // namespace hxrc::util
