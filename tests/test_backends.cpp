// The four storage backends: basic behaviour and cross-backend agreement on
// canned queries and reconstruction.
#include <gtest/gtest.h>

#include "baselines/backend.hpp"
#include "baselines/dom_matcher.hpp"
#include "baselines/edge_backend.hpp"
#include "baselines/inlining_backend.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"

namespace hxrc::baselines {
namespace {

constexpr BackendKind kAllKinds[] = {BackendKind::kHybrid, BackendKind::kInlining,
                                     BackendKind::kEdge, BackendKind::kClob};

class BackendFixture {
 public:
  BackendFixture()
      : schema_(workload::lead_schema()),
        partition_(core::Partition::build(schema_, workload::lead_annotations())) {}

  const core::Partition& partition() const { return partition_; }

 private:
  xml::Schema schema_;
  core::Partition partition_;
};

class BackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  BackendTest() : backend_(make_backend(GetParam(), fixture_.partition())) {}

  BackendFixture fixture_;
  std::unique_ptr<MetadataBackend> backend_;
};

TEST_P(BackendTest, IngestAssignsDenseIds) {
  const xml::Document doc = xml::parse(workload::fig3_document());
  EXPECT_EQ(backend_->ingest(doc, "u"), 0);
  EXPECT_EQ(backend_->ingest(doc, "u"), 1);
  EXPECT_EQ(backend_->object_count(), 2u);
}

TEST_P(BackendTest, PaperExampleQuery) {
  const xml::Document doc = xml::parse(workload::fig3_document());
  backend_->ingest(doc, "u");
  const auto hits = backend_->query(workload::paper_example_query());
  ASSERT_EQ(hits.size(), 1u) << backend_->name();
  EXPECT_EQ(hits[0], 0);
  EXPECT_TRUE(backend_->query(workload::paper_example_query(1000.0, 999.0)).empty());
}

TEST_P(BackendTest, ThemeQuery) {
  const xml::Document doc = xml::parse(workload::fig3_document());
  backend_->ingest(doc, "u");
  EXPECT_EQ(backend_->query(
                    workload::theme_keyword_query("convective_precipitation_flux"))
                .size(),
            1u)
      << backend_->name();
  EXPECT_TRUE(
      backend_->query(workload::theme_keyword_query("not_a_keyword")).empty());
}

TEST_P(BackendTest, ReconstructionIsSemanticallyFaithful) {
  const xml::Document doc = xml::parse(workload::fig3_document());
  const auto id = backend_->ingest(doc, "u");
  const std::string rebuilt = backend_->reconstruct(id);
  ASSERT_FALSE(rebuilt.empty());
  EXPECT_EQ(xml::canonical(doc), xml::canonical(xml::parse(rebuilt)))
      << backend_->name();
}

TEST_P(BackendTest, StorageBytesGrowWithIngest) {
  const xml::Document doc = xml::parse(workload::fig3_document());
  const std::size_t before = backend_->storage_bytes();
  backend_->ingest(doc, "u");
  EXPECT_GT(backend_->storage_bytes(), before);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest, ::testing::ValuesIn(kAllKinds),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(DomMatcherTest, MatchesPaperExample) {
  BackendFixture fixture;
  const DomMatcher matcher(fixture.partition());
  const xml::Document doc = xml::parse(workload::fig3_document());
  EXPECT_TRUE(matcher.matches(doc, workload::paper_example_query()));
  EXPECT_FALSE(matcher.matches(doc, workload::paper_example_query(2000.0)));

  // Element vs sub-attribute distinction: "grid-stretching" is a
  // sub-attribute; a query treating it as an element must not match.
  core::ObjectQuery as_element;
  core::AttrQuery grid("grid", "ARPS");
  grid.add_element("grid-stretching", "ARPS", rel::Value("x"), core::CompareOp::kEq);
  as_element.add_attribute(std::move(grid));
  EXPECT_FALSE(matcher.matches(doc, as_element));
}

TEST(DomMatcherTest, StructuralSourceMustBeEmpty) {
  BackendFixture fixture;
  const DomMatcher matcher(fixture.partition());
  const xml::Document doc = xml::parse(workload::fig3_document());
  core::ObjectQuery query;
  query.add_attribute(core::AttrQuery("theme", "bogus-source"));
  EXPECT_FALSE(matcher.matches(doc, query));
}

TEST(EdgeBackendTest, CountsProbes) {
  BackendFixture fixture;
  EdgeBackend backend(fixture.partition());
  backend.ingest(xml::parse(workload::fig3_document()), "u");
  backend.query(workload::paper_example_query());
  EXPECT_GT(backend.last_query_probes(), 5u);  // self-join work happened
}

TEST(InliningBackendTest, DerivesFragmentTables) {
  BackendFixture fixture;
  InliningBackend backend(fixture.partition());
  // Root + theme + themekey + place/stratum/temporal keys + detailed + attr
  // + overview: at least 8 fragment tables.
  EXPECT_GE(backend.fragment_count(), 8u);
}

TEST(InliningBackendTest, InlinedColumnQueryWorks) {
  BackendFixture fixture;
  InliningBackend backend(fixture.partition());
  backend.ingest(
      xml::parse("<LEADresource><resourceID>r</resourceID><data><idinfo>"
                 "<status><progress>Complete</progress><update>None planned</update>"
                 "</status></idinfo></data></LEADresource>"),
      "u");
  core::ObjectQuery query;
  core::AttrQuery status("status");
  status.add_element("progress", rel::Value("Complete"), core::CompareOp::kEq);
  query.add_attribute(std::move(status));
  EXPECT_EQ(backend.query(query).size(), 1u);

  core::ObjectQuery miss;
  core::AttrQuery status2("status");
  status2.add_element("progress", rel::Value("Planned"), core::CompareOp::kEq);
  miss.add_attribute(std::move(status2));
  EXPECT_TRUE(backend.query(miss).empty());
}

TEST(CrossBackend, CannedQueriesAgreeOnGeneratedCorpus) {
  BackendFixture fixture;
  workload::DocumentGenerator generator;
  const auto docs = generator.corpus(40);

  std::vector<std::unique_ptr<MetadataBackend>> backends;
  for (const BackendKind kind : kAllKinds) {
    backends.push_back(make_backend(kind, fixture.partition()));
    for (const auto& doc : docs) backends.back()->ingest(doc, "u");
  }

  std::vector<core::ObjectQuery> queries;
  queries.push_back(workload::theme_keyword_query("air_temperature"));
  queries.push_back(workload::theme_keyword_query("eastward_wind"));
  queries.push_back(workload::dynamic_param_query(
      "grid", "ARPS", "dx", workload::parameter_value("dx", 0)));
  queries.push_back(workload::dynamic_param_query(
      "microphysics", "WRF", "dtbig", workload::parameter_value("dtbig", 1),
      core::CompareOp::kGe));
  queries.push_back(workload::paper_example_query());

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = backends[0]->query(queries[q]);
    for (std::size_t b = 1; b < backends.size(); ++b) {
      EXPECT_EQ(backends[b]->query(queries[q]), expected)
          << "query " << q << ": " << backends[b]->name() << " vs "
          << backends[0]->name();
    }
  }
}

TEST(CrossBackend, ReconstructionAgreesOnGeneratedCorpus) {
  BackendFixture fixture;
  workload::DocumentGenerator generator;
  const auto docs = generator.corpus(10);

  for (const BackendKind kind : kAllKinds) {
    const auto backend = make_backend(kind, fixture.partition());
    for (std::size_t i = 0; i < docs.size(); ++i) {
      const auto id = backend->ingest(docs[i], "u");
      const std::string rebuilt = backend->reconstruct(id);
      EXPECT_EQ(xml::canonical(docs[i]), xml::canonical(xml::parse(rebuilt)))
          << backend->name() << " doc " << i;
    }
  }
}

}  // namespace
}  // namespace hxrc::baselines
