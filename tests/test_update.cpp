// Late attribute insertion (§5: "as metadata attributes were inserted
// later"): sequences continue, responses stay ordered, queries see the new
// data.
#include <gtest/gtest.h>

#include "core/catalog.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"

namespace hxrc::core {
namespace {

CatalogConfig auto_define_config() {
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

class UpdateTest : public ::testing::Test {
 protected:
  UpdateTest()
      : schema_(workload::lead_schema()),
        catalog_(schema_, workload::lead_annotations(), auto_define_config()) {
    id_ = catalog_.ingest_xml(workload::fig3_document(), "fig3", "alice");
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  ObjectId id_ = -1;
};

TEST_F(UpdateTest, AddedThemeBecomesQueryable) {
  EXPECT_TRUE(catalog_.query(workload::theme_keyword_query("air_temperature")).empty());
  catalog_.add_attribute_xml(
      id_, "data/idinfo/keywords/theme",
      "<theme><themekt>CF NetCDF</themekt><themekey>air_temperature</themekey></theme>");
  const auto hits = catalog_.query(workload::theme_keyword_query("air_temperature"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], id_);
}

TEST_F(UpdateTest, AddedThemeSequencesAfterExistingSiblings) {
  catalog_.add_attribute_xml(
      id_, "data/idinfo/keywords/theme",
      "<theme><themekt>CF NetCDF</themekt><themekey>air_temperature</themekey></theme>");
  const xml::Document doc = catalog_.fetch(id_);
  const auto themes = xml::select(*doc.root, "data/idinfo/keywords/theme");
  ASSERT_EQ(themes.size(), 3u);
  // The new theme is the LAST sibling (same-sibling ordering continues).
  EXPECT_EQ(themes[2]->child_text("themekey"), "air_temperature");
  EXPECT_EQ(themes[0]->child_text("themekey"), "convective_precipitation_amount");
}

TEST_F(UpdateTest, AddedAttributeInOrderedPosition) {
  // Fig. 3 has no citation; adding one must appear in schema position
  // (inside idinfo, before keywords).
  catalog_.add_attribute_xml(id_, "data/idinfo/citation",
                             "<citation><origin>LEAD</origin><pubdate>2006-07-01"
                             "</pubdate><title>t</title></citation>");
  const xml::Document doc = catalog_.fetch(id_);
  const xml::Node* idinfo = xml::select(*doc.root, "data/idinfo")[0];
  const auto children = idinfo->child_elements();
  ASSERT_GE(children.size(), 2u);
  EXPECT_EQ(children[0]->name(), "citation");  // schema order restored
  EXPECT_EQ(children[1]->name(), "keywords");
}

TEST_F(UpdateTest, AddedDynamicAttribute) {
  catalog_.add_attribute_xml(
      id_, "data/geospatial/eainfo/detailed",
      "<detailed><enttyp><enttypl>microphysics</enttypl><enttypds>WRF</enttypds>"
      "</enttyp><attr><attrlabl>mphyopt</attrlabl><attrdefs>WRF</attrdefs>"
      "<attrv>2</attrv></attr></detailed>");
  const auto hits = catalog_.query(
      workload::dynamic_param_query("microphysics", "WRF", "mphyopt", 2.0));
  ASSERT_EQ(hits.size(), 1u);

  // The original grid attribute still matches too.
  EXPECT_EQ(catalog_.query(workload::paper_example_query()).size(), 1u);
}

TEST_F(UpdateTest, SingleInstanceAttributeCannotBeDuplicated) {
  catalog_.add_attribute_xml(id_, "data/idinfo/status",
                             "<status><progress>Complete</progress></status>");
  EXPECT_THROW(
      catalog_.add_attribute_xml(id_, "data/idinfo/status",
                                 "<status><progress>In work</progress></status>"),
      ValidationError);
}

TEST_F(UpdateTest, RejectsBadPathsAndMismatchedContent) {
  EXPECT_THROW(catalog_.add_attribute_xml(id_, "data/nope", "<x/>"), ValidationError);
  EXPECT_THROW(
      catalog_.add_attribute_xml(id_, "data/idinfo/keywords/theme", "<place/>"),
      ValidationError);
}

TEST_F(UpdateTest, SequencesContinueAfterParallelIngest) {
  // Objects ingested in parallel must keep correct sequences for later
  // inserts (the catalog absorbs the staging shredders' counters).
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations());
  catalog.define_dynamic_attribute("grid", "ARPS",
                                   {{"dx", xml::LeafType::kDouble, ""},
                                    {"dz", xml::LeafType::kDouble, ""}});
  const AttrDefId grid = catalog.registry().find_attribute("grid", "ARPS", kNoAttr)->id;
  catalog.define_dynamic_sub_attribute(grid, "grid-stretching", "ARPS",
                                       {{"dzmin", xml::LeafType::kDouble, ""},
                                        {"reference-height", xml::LeafType::kDouble, ""}});

  util::ThreadPool pool(2);
  std::vector<xml::Document> docs;
  docs.push_back(xml::parse(workload::fig3_document()));
  docs.push_back(xml::parse(workload::fig3_document()));
  const auto ids = catalog.ingest_parallel(pool, docs, "alice");

  catalog.add_attribute_xml(
      ids[0], "data/idinfo/keywords/theme",
      "<theme><themekt>CF NetCDF</themekt><themekey>air_temperature</themekey></theme>");
  const xml::Document doc = catalog.fetch(ids[0]);
  const auto themes = xml::select(*doc.root, "data/idinfo/keywords/theme");
  ASSERT_EQ(themes.size(), 3u);
  EXPECT_EQ(themes[2]->child_text("themekey"), "air_temperature");
}

TEST_F(UpdateTest, RoundTripAfterManyInserts) {
  for (int i = 0; i < 5; ++i) {
    catalog_.add_attribute_xml(
        id_, "data/idinfo/keywords/theme",
        "<theme><themekt>CF NetCDF</themekt><themekey>key-" + std::to_string(i) +
            "</themekey></theme>");
  }
  const xml::Document doc = catalog_.fetch(id_);
  const auto themes = xml::select(*doc.root, "data/idinfo/keywords/theme");
  ASSERT_EQ(themes.size(), 7u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(themes[static_cast<std::size_t>(2 + i)]->child_text("themekey"),
              "key-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace hxrc::core
