// The MetadataCatalog facade: ingest paths, parallel ingest, definitions.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"

namespace hxrc::core {
namespace {

CatalogConfig auto_define_config() {
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

TEST(Catalog, IngestAssignsSequentialIds) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  EXPECT_EQ(catalog.ingest_xml(workload::fig3_document(), "a", "u"), 0);
  EXPECT_EQ(catalog.ingest_xml(workload::fig3_document(), "b", "u"), 1);
  EXPECT_EQ(catalog.object_count(), 2u);
}

TEST(Catalog, DatabaseIsQueryableViaSql) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  catalog.ingest_xml(workload::fig3_document(), "a", "u");

  const rel::ResultSet result = catalog.database().execute(
      "SELECT COUNT(*) AS n FROM attr_instances WHERE top = 1");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 4);

  const rel::ResultSet order = catalog.database().execute(
      "SELECT COUNT(*) FROM schema_order WHERE is_attr = 1");
  EXPECT_EQ(order.rows[0][0].as_int(), 14);
}

TEST(Catalog, ParallelIngestMatchesSerialIngest) {
  workload::DocumentGenerator generator;
  const auto docs = generator.corpus(60);

  xml::Schema schema_a = workload::lead_schema();
  MetadataCatalog serial(schema_a, workload::lead_annotations(), auto_define_config());
  // Pre-register the dynamic definitions by serially ingesting everything.
  for (std::size_t i = 0; i < docs.size(); ++i) {
    serial.ingest(docs[i], "doc-" + std::to_string(i), "u");
  }

  // Parallel catalog: dynamic definitions must be pre-registered; copy them
  // from the serial catalog.
  xml::Schema schema_b = workload::lead_schema();
  MetadataCatalog parallel(schema_b, workload::lead_annotations());
  std::vector<AttrDefId> id_map(serial.registry().attributes().size(), kNoAttr);
  for (const AttributeDef& def : serial.registry().attributes()) {
    if (def.kind != AttrKind::kDynamic) continue;
    const AttrDefId parent =
        def.parent == kNoAttr ? kNoAttr : id_map[static_cast<std::size_t>(def.parent)];
    const AttrDefId new_id =
        def.parent == kNoAttr
            ? parallel.define_dynamic_attribute(def.name, def.source)
            : parallel.define_dynamic_sub_attribute(parent, def.name, def.source);
    id_map[static_cast<std::size_t>(def.id)] = new_id;
  }
  for (const ElementDef& elem : serial.registry().elements()) {
    const AttributeDef& owner =
        serial.registry().attribute(elem.attribute);
    if (owner.kind != AttrKind::kDynamic) continue;
    // Re-register elements under the mapped definition.
    const AttrDefId mapped = id_map[static_cast<std::size_t>(owner.id)];
    ASSERT_NE(mapped, kNoAttr);
    parallel.registry().define_element(elem.name, elem.source, mapped, elem.type);
  }

  util::ThreadPool pool(4);
  const auto ids = parallel.ingest_parallel(pool, docs, "u");
  EXPECT_EQ(ids.size(), docs.size());

  // Same query results on both catalogs.
  workload::QueryGenerator queries;
  for (std::uint64_t q = 0; q < 20; ++q) {
    const ObjectQuery query = queries.generate(q);
    EXPECT_EQ(serial.query(query), parallel.query(query)) << "query " << q;
  }

  // Documents reconstruct identically.
  for (std::size_t i = 0; i < docs.size(); i += 7) {
    EXPECT_EQ(xml::canonical(docs[i]), xml::canonical(parallel.fetch(ids[i])));
  }
}

TEST(Catalog, ParallelIngestRejectsAutoDefine) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  util::ThreadPool pool(2);
  workload::DocumentGenerator generator;
  const auto docs = generator.corpus(4);
  EXPECT_THROW(catalog.ingest_parallel(pool, docs, "u"), ValidationError);
}

TEST(Catalog, DefineDynamicAttributeWithElements) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations());
  const AttrDefId grid = catalog.define_dynamic_attribute(
      "grid", "ARPS", {{"dx", xml::LeafType::kDouble, ""}});
  const AttributeDef& def = catalog.registry().attribute(grid);
  EXPECT_EQ(def.kind, AttrKind::kDynamic);
  // Anchored at the dynamic root's order for response building.
  EXPECT_NE(def.schema_order, kNoOrder);
  EXPECT_NE(catalog.registry().find_element("dx", "ARPS", grid), nullptr);
}

TEST(Catalog, StatsAccumulateAcrossIngests) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  catalog.ingest_xml(workload::fig3_document(), "a", "u");
  const std::size_t after_one = catalog.total_stats().element_rows;
  catalog.ingest_xml(workload::fig3_document(), "b", "u");
  EXPECT_EQ(catalog.total_stats().element_rows, after_one * 2);
}

}  // namespace
}  // namespace hxrc::core
