// §5 response construction: set-based tag generation from the global
// ordering, round-trip fidelity, ordering of multi-instance attributes.
#include <gtest/gtest.h>

#include "core/catalog.hpp"
#include "core/response.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"

namespace hxrc {
namespace {

core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

TEST(Response, Fig3RoundTripsSemantically) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  const auto id = catalog.ingest_xml(workload::fig3_document(), "fig3", "alice");

  const xml::Document original = xml::parse(workload::fig3_document());
  const xml::Document rebuilt = catalog.fetch(id);
  EXPECT_EQ(xml::canonical(original), xml::canonical(rebuilt));
}

TEST(Response, PreservesSameSiblingOrderOfThemes) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  const auto id = catalog.ingest_xml(workload::fig3_document(), "fig3", "alice");

  const xml::Document rebuilt = catalog.fetch(id);
  const auto themes = xml::select(*rebuilt.root, "data/idinfo/keywords/theme");
  ASSERT_EQ(themes.size(), 2u);
  EXPECT_EQ(themes[0]->children_named("themekey")[0]->text_content(),
            "convective_precipitation_amount");
  EXPECT_EQ(themes[1]->children_named("themekey")[0]->text_content(),
            "air_pressure_at_cloud_base");
}

TEST(Response, AbsentOptionalAttributesEmitNoAncestorTags) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  // Document with only a resourceID: no idinfo/geospatial ancestors needed.
  const auto id = catalog.ingest_xml(
      "<LEADresource><resourceID>x</resourceID></LEADresource>", "tiny", "alice");
  const core::ResponseBuilder builder(catalog.partition(), catalog.database());
  const std::string text = builder.build_document(id);
  EXPECT_EQ(text.find("<idinfo>"), std::string::npos);
  EXPECT_EQ(text.find("<geospatial>"), std::string::npos);
  EXPECT_NE(text.find("<resourceID>x</resourceID>"), std::string::npos);
  EXPECT_NE(text.find("<LEADresource>"), std::string::npos);
}

TEST(Response, MultiObjectResponseWrapsResults) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  const auto a = catalog.ingest_xml(workload::fig3_document(), "a", "alice");
  const auto b = catalog.ingest_xml(workload::fig3_document(), "b", "alice");

  const std::vector<core::ObjectId> ids{a, b};
  const std::string response = catalog.build_response(ids);
  const xml::Document doc = xml::parse(response);
  EXPECT_EQ(doc.root->name(), "results");
  const auto results = doc.root->children_named("result");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(*results[0]->attribute("objectID"), std::to_string(a));
  EXPECT_EQ(*results[1]->attribute("objectID"), std::to_string(b));
}

TEST(Response, GeneratedCorpusRoundTrips) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  workload::DocumentGenerator generator;
  for (std::uint64_t i = 0; i < 25; ++i) {
    const xml::Document doc = generator.generate(i);
    const auto id = catalog.ingest(doc, "doc-" + std::to_string(i), "alice");
    const xml::Document rebuilt = catalog.fetch(id);
    ASSERT_EQ(xml::canonical(doc), xml::canonical(rebuilt)) << "document " << i;
  }
}

TEST(Response, UnknownObjectReconstructsAsEmptyRoot) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  const xml::Document doc = catalog.fetch(12345);
  ASSERT_TRUE(doc.root != nullptr);
  EXPECT_EQ(doc.root->name(), "LEADresource");
  EXPECT_TRUE(doc.root->children().empty());
}

TEST(Response, UnshreddedDynamicContentIsStillReturned) {
  // Without auto-define the dynamic content is CLOB-only — the response
  // must still contain it verbatim (§3: "still stored as a CLOB").
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations());
  const auto id = catalog.ingest_xml(workload::fig3_document(), "fig3", "alice");
  const xml::Document original = xml::parse(workload::fig3_document());
  const xml::Document rebuilt = catalog.fetch(id);
  EXPECT_EQ(xml::canonical(original), xml::canonical(rebuilt));
}

}  // namespace
}  // namespace hxrc
