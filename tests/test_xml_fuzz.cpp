// Robustness fuzzing (deterministic): the XML parser, the SQL front end,
// and the path-query parser must reject arbitrary mutated input with typed
// exceptions — never crash, hang, or accept garbage silently.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/path_query.hpp"
#include "rel/database.hpp"
#include "rel/sql/lexer.hpp"
#include "util/prng.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc {
namespace {

/// Applies `mutations` random byte edits (replace/insert/delete).
std::string mutate(util::Prng& rng, std::string text, int mutations) {
  for (int m = 0; m < mutations && !text.empty(); ++m) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.uniform(0, 2)) {
      case 0:
        text[pos] = static_cast<char>(rng.uniform(32, 126));
        break;
      case 1:
        text.insert(pos, 1, static_cast<char>(rng.uniform(32, 126)));
        break;
      default:
        text.erase(pos, 1);
        break;
    }
  }
  return text;
}

class XmlMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlMutationFuzz, ParserNeverCrashesAndRoundTripsSurvivors) {
  util::Prng rng(GetParam());
  workload::DocumentGenerator generator;
  const std::string original = xml::write(generator.generate(GetParam()));

  std::size_t parsed_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::string mutated =
        mutate(rng, original, static_cast<int>(rng.uniform(1, 8)));
    try {
      const xml::Document doc = xml::parse(mutated);
      // Anything accepted must serialize and re-parse to the same canonical
      // form (parser/writer agreement even on mutated-but-wellformed docs).
      const xml::Document again = xml::parse(xml::write(doc));
      EXPECT_EQ(xml::canonical(doc), xml::canonical(again));
      ++parsed_ok;
    } catch (const xml::ParseError&) {
      // rejected — fine
    }
  }
  // Some single-character mutations (text edits) must survive parsing.
  EXPECT_GT(parsed_ok, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlMutationFuzz, ::testing::Values(101, 202, 303));

class SqlMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SqlMutationFuzz, FrontEndNeverCrashes) {
  util::Prng rng(GetParam());
  rel::Database db;
  db.execute("CREATE TABLE t (a INT, b STRING, c DOUBLE)");
  db.execute("INSERT INTO t VALUES (1,'x',0.5),(2,'y',1.5)");

  const std::string base =
      "SELECT a, COUNT(*) AS n FROM t WHERE b LIKE 'x%' AND c >= 0.1 "
      "GROUP BY a HAVING COUNT(*) > 0 ORDER BY n DESC LIMIT 5";
  for (int trial = 0; trial < 400; ++trial) {
    const std::string mutated = mutate(rng, base, static_cast<int>(rng.uniform(1, 6)));
    try {
      (void)db.execute(mutated);
    } catch (const rel::sql::SqlError&) {
    } catch (const rel::TypeError&) {
    }
    // Any other exception (or crash) fails the test.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlMutationFuzz, ::testing::Values(11, 12, 13));

class PathMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathMutationFuzz, TranslatorNeverCrashes) {
  util::Prng rng(GetParam());
  static xml::Schema schema = workload::lead_schema();
  static const core::Partition partition =
      core::Partition::build(schema, workload::lead_annotations());

  const std::string base =
      "//detailed[enttyp/enttypl='grid' and enttyp/enttypds='ARPS']"
      "[attr[attrlabl='dx' and attrv=1000]]";
  for (int trial = 0; trial < 400; ++trial) {
    const std::string mutated = mutate(rng, base, static_cast<int>(rng.uniform(1, 6)));
    try {
      (void)core::path_to_query(partition, mutated);
    } catch (const core::PathQueryError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathMutationFuzz, ::testing::Values(21, 22, 23));

}  // namespace
}  // namespace hxrc
