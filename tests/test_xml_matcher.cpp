#include <gtest/gtest.h>

#include "xml/matcher.hpp"
#include "xml/parser.hpp"

namespace hxrc::xml {
namespace {

const char* kDoc = R"(<root>
  <items>
    <item kind="a"><name>first</name><price>10</price></item>
    <item kind="b"><name>second</name><price>25</price></item>
    <item kind="a"><name>third</name><price>7.5</price></item>
  </items>
  <meta><owner>alice</owner></meta>
</root>)";

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : doc_(parse(kDoc)) {}
  Document doc_;
};

TEST_F(MatcherTest, ChildSteps) {
  EXPECT_EQ(select(*doc_.root, "items/item").size(), 3u);
  EXPECT_EQ(select(*doc_.root, "meta/owner").size(), 1u);
  EXPECT_TRUE(select(*doc_.root, "nope").empty());
}

TEST_F(MatcherTest, DescendantAxis) {
  EXPECT_EQ(select(*doc_.root, "//item").size(), 3u);
  EXPECT_EQ(select(*doc_.root, "//name").size(), 3u);
  EXPECT_EQ(select(*doc_.root, "items//price").size(), 3u);
}

TEST_F(MatcherTest, Wildcard) {
  EXPECT_EQ(select(*doc_.root, "items/*").size(), 3u);
  EXPECT_EQ(select(*doc_.root, "*/item").size(), 3u);
}

TEST_F(MatcherTest, EqualityPredicate) {
  const auto hits = select(*doc_.root, "items/item[name='second']");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->child_text("price"), "25");
}

TEST_F(MatcherTest, NumericComparisonPredicates) {
  EXPECT_EQ(select(*doc_.root, "items/item[price>9]").size(), 2u);
  EXPECT_EQ(select(*doc_.root, "items/item[price<=10]").size(), 2u);
  EXPECT_EQ(select(*doc_.root, "items/item[price!=25]").size(), 2u);
  EXPECT_EQ(select(*doc_.root, "items/item[price=7.5]").size(), 1u);
}

TEST_F(MatcherTest, ExistencePredicate) {
  EXPECT_EQ(select(*doc_.root, "items/item[price]").size(), 3u);
  EXPECT_TRUE(select(*doc_.root, "items/item[discount]").empty());
}

TEST_F(MatcherTest, MultiplePredicatesAreConjunctive) {
  EXPECT_EQ(select(*doc_.root, "items/item[price>5][price<20]").size(), 2u);
}

TEST_F(MatcherTest, SelfTextPredicate) {
  EXPECT_EQ(select(*doc_.root, "items/item/name[.='first']").size(), 1u);
}

TEST_F(MatcherTest, NestedPathPredicate) {
  const Document doc = parse("<r><a><b><c>5</c></b></a><a><b><c>9</c></b></a></r>");
  EXPECT_EQ(select(*doc.root, "a[b/c>7]").size(), 1u);
}

TEST_F(MatcherTest, SelectFirstAndExists) {
  const Path path = Path::compile("items/item[price>9]");
  EXPECT_NE(path.select_first(*doc_.root), nullptr);
  EXPECT_TRUE(path.exists(*doc_.root));
  EXPECT_FALSE(Path::compile("zzz").exists(*doc_.root));
}

TEST_F(MatcherTest, SyntaxErrorsThrow) {
  EXPECT_THROW(Path::compile(""), PathError);
  EXPECT_THROW(Path::compile("a[unclosed"), PathError);
  EXPECT_THROW(Path::compile("a[b=]"), PathError);
  EXPECT_THROW(Path::compile("a//"), PathError);
}

TEST(CompareValues, NumericWhenBothParse) {
  EXPECT_TRUE(compare_values("100.000", CompareOp::kEq, "100"));
  EXPECT_TRUE(compare_values("9", CompareOp::kLt, "10"));
  EXPECT_TRUE(compare_values("1e3", CompareOp::kEq, "1000"));
  EXPECT_FALSE(compare_values("9", CompareOp::kGt, "10"));
}

TEST(CompareValues, LexicographicOtherwise) {
  // As strings, "9" > "10" lexicographically.
  EXPECT_TRUE(compare_values("9", CompareOp::kGt, "10x"));
  EXPECT_TRUE(compare_values("abc", CompareOp::kEq, "abc"));
  EXPECT_TRUE(compare_values("abc", CompareOp::kLt, "abd"));
  EXPECT_FALSE(compare_values("100", CompareOp::kEq, "abc"));
}

TEST(CompareValues, AllOperators) {
  EXPECT_TRUE(compare_values("5", CompareOp::kLe, "5"));
  EXPECT_TRUE(compare_values("5", CompareOp::kGe, "5"));
  EXPECT_TRUE(compare_values("5", CompareOp::kNe, "6"));
  EXPECT_FALSE(compare_values("5", CompareOp::kNe, "5.0"));
}

}  // namespace
}  // namespace hxrc::xml
