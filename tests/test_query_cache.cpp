// Snapshot-keyed query cache: correctness first (bit-identical cached vs
// uncached responses, DOM-oracle cross-checks), then the MVCC contract
// (a pinned snapshot never observes a newer generation, cached or not),
// then the bounded-capacity behaviors (CLOCK eviction, negative caching,
// cursor re-entry through the L1 memo). The churn suites honor the
// HXRC_STRESS_THREADS / HXRC_STRESS_SEED knobs so the cache-stress CI
// matrix can widen them under ThreadSanitizer without recompiling.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/engine.hpp"
#include "core/service.hpp"
#include "core/thesaurus.hpp"
#include "util/metrics.hpp"
#include "util/sharded_cache.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::core {
namespace {

CatalogConfig cached_config() {
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;  // cache.enabled defaults to true
}

CatalogConfig uncached_config() {
  CatalogConfig config = cached_config();
  config.cache.enabled = false;
  return config;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

/// Same document stream into both catalogs so the only variable is the
/// cache.
void ingest_docs(MetadataCatalog& catalog, int count, std::uint64_t seed = 0) {
  workload::DocumentGenerator generator;
  for (int i = 0; i < count; ++i) {
    xml::Document doc = generator.generate(seed + static_cast<std::uint64_t>(i));
    catalog.ingest(doc, "doc-" + std::to_string(i), "u");
  }
}

std::string queryIds_wire(const ObjectQuery& query) {
  std::string wire = query_to_xml(query);
  wire.replace(wire.find("type=\"query\""), 12, "type=\"queryIds\"");
  return wire;
}

// ---- bit-identical responses, cached vs uncached ----

TEST(QueryCache, CachedResponsesBitIdenticalToUncached) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog cached(schema, workload::lead_annotations(), cached_config());
  MetadataCatalog uncached(schema, workload::lead_annotations(), uncached_config());
  ingest_docs(cached, 12);
  ingest_docs(uncached, 12);
  CatalogService cached_service(cached);
  CatalogService uncached_service(uncached);

  workload::QueryGenerator query_gen;
  std::vector<std::string> requests;
  for (std::uint64_t q = 0; q < 12; ++q) {
    const ObjectQuery query = query_gen.generate(q);
    requests.push_back(query_to_xml(query));
    requests.push_back(queryIds_wire(query));
  }
  requests.push_back(query_to_xml(workload::paper_example_query()));
  for (int id = 0; id < 12; ++id) {
    requests.push_back("<catalogRequest type=\"fetch\" objectID=\"" +
                       std::to_string(id) + "\"/>");
  }

  for (const std::string& request : requests) {
    const std::string oracle = uncached_service.handle(request);
    const std::string cold = cached_service.handle(request);  // miss + insert
    const std::string warm = cached_service.handle(request);  // L2 hit
    EXPECT_EQ(cold, oracle) << request;
    EXPECT_EQ(warm, cold) << request;
    // DOM-level cross-check: byte equality is the strong claim, canonical
    // DOM equality catches any accidental byte-compare blind spot.
    EXPECT_EQ(xml::canonical(xml::parse(warm)), xml::canonical(xml::parse(oracle)));
  }
  // handle() probes no L2 (that is the dispatcher's parse-free fast path)
  // but repeated queries do re-enter the engine-level memo.
  EXPECT_GT(cached.cache_metrics().l1.hits.load(), 0u);
  EXPECT_GT(cached.cache_metrics().l2.inserts.load(), 0u);
}

// ---- the dispatcher's synchronous fast path serves the same bytes ----

TEST(QueryCache, DispatcherFastPathMatchesWorkerPath) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  ingest_docs(catalog, 8);
  ServiceDispatcher dispatcher(catalog, {.workers = 2});

  const std::string request = query_to_xml(workload::paper_example_query());
  const std::string first = dispatcher.call(request);  // worker path, inserts
  // Now the entry is hot: try_cached must return the identical buffer.
  auto hit = dispatcher.try_cached(request);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->body, first);
  EXPECT_TRUE(hit->ok);
  // And the future path serves it synchronously too.
  EXPECT_EQ(dispatcher.call(request), first);
}

// ---- per-type metrics stay truthful on cache hits ----

TEST(QueryCache, CacheHitsChargeRequestMetrics) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  ingest_docs(catalog, 4);
  ServiceDispatcher dispatcher(catalog, {.workers = 2});

  const std::string request = query_to_xml(workload::paper_example_query());
  dispatcher.call(request);
  dispatcher.call(request);  // L2 hit
  const int slot = dispatcher.metrics().find("query");
  ASSERT_GE(slot, 0);
  const util::RequestStats& stats = dispatcher.metrics().at(static_cast<std::size_t>(slot));
  EXPECT_EQ(stats.handled.load(), 2u);
  EXPECT_EQ(stats.ok.load(), 2u);
  EXPECT_EQ(stats.errors.load(), 0u);
}

// ---- timeoutMs="0" must never be answered from cache ----

TEST(QueryCache, ExpiredDeadlineBypassesCache) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  ingest_docs(catalog, 4);
  ServiceDispatcher dispatcher(catalog, {.workers = 2});

  std::string request = query_to_xml(workload::paper_example_query());
  dispatcher.call(request);  // warm the entry
  std::string expired = request;
  expired.replace(expired.find("<catalogRequest"), 15,
                  "<catalogRequest timeoutMs=\"0\"");
  const std::uint64_t bypass_before = catalog.cache_metrics().bypass.load();
  const xml::Document response = xml::parse(dispatcher.call(expired));
  EXPECT_EQ(*response.root->attribute("status"), "error");
  EXPECT_EQ(*response.root->attribute("code"), "timeout");
  EXPECT_GT(catalog.cache_metrics().bypass.load(), bypass_before);
}

// ---- negative results are cached ----

TEST(QueryCache, NotFoundFetchIsNegativelyCached) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  ingest_docs(catalog, 2);
  ServiceDispatcher dispatcher(catalog, {.workers = 2});

  const std::string request = "<catalogRequest type=\"fetch\" objectID=\"999\"/>";
  const std::string first = dispatcher.call(request);
  const xml::Document doc = xml::parse(first);
  EXPECT_EQ(*doc.root->attribute("status"), "error");
  EXPECT_EQ(*doc.root->attribute("code"), "not_found");

  auto hit = dispatcher.try_cached(request);
  ASSERT_NE(hit, nullptr) << "negative fetch result must be cached";
  EXPECT_FALSE(hit->ok);
  EXPECT_EQ(hit->error_code, static_cast<int>(ErrorCode::kNotFound));
  EXPECT_EQ(hit->body, first);

  // The error must be charged to errors, not ok, on the hit path too.
  const int slot = dispatcher.metrics().find("fetch");
  ASSERT_GE(slot, 0);
  const util::RequestStats& stats = dispatcher.metrics().at(static_cast<std::size_t>(slot));
  EXPECT_EQ(stats.errors.load(), 2u);  // miss path + try_cached hit
}

// ---- zero-hit queries are cached ----

TEST(QueryCache, ZeroHitQueryIsCached) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  ingest_docs(catalog, 2);
  ServiceDispatcher dispatcher(catalog, {.workers = 2});

  AttrQuery attr("nonexistent-attr", "NOSRC");
  ObjectQuery query;
  query.add_attribute(std::move(attr));
  const std::string request = query_to_xml(query);
  const std::string cold = dispatcher.call(request);
  const std::uint64_t hits_before = catalog.cache_metrics().l2.hits.load();
  const std::string warm = dispatcher.call(request);
  EXPECT_EQ(warm, cold);
  EXPECT_GT(catalog.cache_metrics().l2.hits.load(), hits_before);
}

// ---- mutation invalidates (new generation, fresh empty segment) ----

TEST(QueryCache, MutationInvalidatesByGenerationTurnover) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  // Fig. 3 documents all match the paper's example query.
  for (int i = 0; i < 4; ++i) {
    catalog.ingest_xml(workload::fig3_document(), "fig3-" + std::to_string(i), "u");
  }
  CatalogService service(catalog);

  const ObjectQuery query = workload::paper_example_query();
  const std::string ids_request = queryIds_wire(query);
  const std::string before = service.handle(ids_request);
  EXPECT_EQ(service.handle(ids_request), before);  // cached, identical

  const std::vector<ObjectId> before_ids = catalog.query(query);
  ASSERT_FALSE(before_ids.empty());
  catalog.delete_object(before_ids.front());

  // The new snapshot owns a fresh segment: the stale entry is unreachable.
  const xml::Document after = xml::parse(service.handle(ids_request));
  std::vector<std::string> after_ids;
  for (const xml::Node* node :
       after.root->first_child("objectIDs")->children_named("objectID")) {
    after_ids.push_back(std::string(node->text_content()));
  }
  EXPECT_EQ(std::count(after_ids.begin(), after_ids.end(),
                       std::to_string(before_ids.front())),
            0)
      << "deleted object must vanish from the cached query immediately";
}

// ---- cursor pagination re-enters through the L1 memo ----

TEST(QueryCache, CursorPagesReuseMemoizedIdSet) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  for (int i = 0; i < 6; ++i) {
    catalog.ingest_xml(workload::fig3_document(), "fig3-" + std::to_string(i), "u");
  }

  const ObjectQuery base = workload::paper_example_query();
  const std::vector<ObjectId> all = catalog.query(base);
  ASSERT_GT(all.size(), 2u) << "need multiple pages for this test";

  ObjectQuery paged = base;
  paged.set_limit(1);
  std::vector<ObjectId> collected;
  std::string cursor;
  const std::uint64_t l1_hits_before = catalog.cache_metrics().l1.hits.load();
  for (;;) {
    ObjectQuery page_query = base;
    page_query.set_limit(1);
    if (!cursor.empty()) page_query.set_cursor(cursor);
    const QueryPage page = catalog.query_paged(page_query);
    collected.insert(collected.end(), page.ids.begin(), page.ids.end());
    if (page.next_cursor.empty()) break;
    cursor = page.next_cursor;
  }
  EXPECT_EQ(collected, all);
  // Page 2..N re-entered via the memoized id-set: at least N-1 L1 hits.
  EXPECT_GE(catalog.cache_metrics().l1.hits.load() - l1_hits_before, all.size() - 1);
}

// ---- bounded capacity: CLOCK eviction under pressure ----

TEST(QueryCache, EvictionKeepsCapacityBoundedAndAnswersCorrect) {
  CatalogConfig config = cached_config();
  config.cache.shards = 1;
  config.cache.l2_max_entries = 8;
  config.cache.l1_max_entries = 8;
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), config);
  ingest_docs(catalog, 32);
  CatalogService service(catalog);

  // 32 distinct fetches through an 8-entry L2: eviction must kick in, the
  // resident gauge must respect the bound, and every response (evicted and
  // re-computed or cached) must stay correct.
  std::vector<std::string> oracles;
  for (int id = 0; id < 32; ++id) {
    const std::string request =
        "<catalogRequest type=\"fetch\" objectID=\"" + std::to_string(id) + "\"/>";
    oracles.push_back(service.handle(request));
  }
  EXPECT_GT(catalog.cache_metrics().l2.evictions.load(), 0u);
  EXPECT_LE(catalog.cache_metrics().l2.entries.load(), 8u);
  for (int id = 0; id < 32; ++id) {
    const std::string request =
        "<catalogRequest type=\"fetch\" objectID=\"" + std::to_string(id) + "\"/>";
    EXPECT_EQ(service.handle(request), oracles[static_cast<std::size_t>(id)]);
  }
}

// ---- stats XML exposes the cache section ----

TEST(QueryCache, StatsReportCacheCounters) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  ingest_docs(catalog, 4);
  ServiceDispatcher dispatcher(catalog, {.workers = 2});

  const std::string request = query_to_xml(workload::paper_example_query());
  dispatcher.call(request);
  dispatcher.call(request);  // L2 hit through the dispatcher probe

  const xml::Document stats =
      xml::parse(dispatcher.call("<catalogRequest type=\"stats\"/>"));
  const xml::Node* cache = stats.root->first_child("stats")->first_child("cache");
  ASSERT_NE(cache, nullptr);
  const xml::Node* l2 = cache->first_child("l2");
  ASSERT_NE(l2, nullptr);
  EXPECT_GE(std::stoull(std::string(*l2->attribute("hits"))), 1u);
  EXPECT_GE(std::stoull(std::string(*l2->attribute("entries"))), 1u);
  ASSERT_NE(cache->first_child("l1"), nullptr);
  EXPECT_NE(cache->attribute("bypass"), nullptr);
  EXPECT_NE(cache->attribute("inline_served"), nullptr);

  // Disabled cache: no <cache> section, and probes never hit.
  MetadataCatalog plain(schema, workload::lead_annotations(), uncached_config());
  CatalogService plain_service(plain);
  const xml::Document plain_stats =
      xml::parse(plain_service.handle("<catalogRequest type=\"stats\"/>"));
  EXPECT_EQ(plain_stats.root->first_child("stats")->first_child("cache"), nullptr);
}

// ---- canonical keys are injective: value bytes can't forge structure ----

TEST(QueryCache, CanonicalKeyStringValueCannotForgeStructure) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  const QueryEngine engine(catalog.partition(), catalog.registry(),
                           catalog.database());

  // Regression: with raw value embedding, the single-predicate query whose
  // string value is crafted as "x" + <separator> + <the second predicate's
  // key bytes> serialized byte-identically to the genuine two-predicate
  // conjunction — and a colliding key serves one query's cached id-set (and
  // L2 response) to the other. Length prefixes must keep them distinct.
  AttrQuery forged("ghost-attr", "S");
  forged.add_element("n1", "s1", rel::Value("x;eu:n2:s2?"), CompareOp::kEq);
  ObjectQuery forged_query;
  forged_query.add_attribute(std::move(forged));

  AttrQuery genuine("ghost-attr", "S");
  genuine.add_element("n1", "s1", rel::Value("x"), CompareOp::kEq);
  genuine.require_element("n2", "s2");
  ObjectQuery genuine_query;
  genuine_query.add_attribute(std::move(genuine));

  EXPECT_NE(engine.canonical_key(forged_query, QueryContext{}),
            engine.canonical_key(genuine_query, QueryContext{}));

  // Same forgery one level up: an unresolved attribute name containing the
  // old "u:<name>:<source>" separator must not alias a different split of
  // the same bytes.
  ObjectQuery colon_name;
  colon_name.add_attribute(AttrQuery("a:b", "c"));
  ObjectQuery colon_source;
  colon_source.add_attribute(AttrQuery("a", "b:c"));
  EXPECT_NE(engine.canonical_key(colon_name, QueryContext{}),
            engine.canonical_key(colon_source, QueryContext{}));
}

// ---- remapping a synonym (size-neutral) still changes the key ----

TEST(QueryCache, ThesaurusRemapChangesCanonicalKey) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  const QueryEngine engine(catalog.partition(), catalog.registry(),
                           catalog.database());

  Thesaurus thesaurus;
  thesaurus.add_synonym("res", "CF", "dx", "ARPS");
  QueryContext ctx;
  ctx.thesaurus = &thesaurus;

  AttrQuery grid("grid", "ARPS");
  grid.add_element("res", "CF", rel::Value(1000.0), CompareOp::kEq);
  ObjectQuery query;
  query.add_attribute(std::move(grid));
  const std::string before = engine.canonical_key(query, ctx);

  // Overwriting an existing alias leaves size() unchanged; the fingerprint
  // must still move or entries minted under the old map stay hittable.
  thesaurus.add_synonym("res", "CF", "dzmin", "ARPS");
  ASSERT_EQ(thesaurus.size(), 1u);
  EXPECT_NE(engine.canonical_key(query, ctx), before);
}

// ---- MVCC contract: a pinned snapshot never sees a newer generation ----

TEST(QueryCache, PinnedSnapshotReadsStableUnderChurn) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  ingest_docs(catalog, 8);

  workload::QueryGenerator query_gen;
  const std::uint64_t seed = env_size("HXRC_STRESS_SEED", 1);
  std::vector<ObjectQuery> queries;
  for (std::uint64_t q = 0; q < 8; ++q) queries.push_back(query_gen.generate(seed * 31 + q));

  workload::DocumentGenerator generator;
  std::vector<xml::Document> extra;
  for (int i = 0; i < 24; ++i) {
    extra.push_back(generator.generate(1000 + static_cast<std::uint64_t>(i)));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 24 && !stop.load(); ++i) {
      catalog.ingest(extra[static_cast<std::size_t>(i)], "churn", "u");
      catalog.delete_object(i % 4);
    }
  });

  const std::size_t readers = std::max<std::size_t>(2, env_size("HXRC_STRESS_THREADS", 2));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      for (int round = 0; round < 40; ++round) {
        const ObjectQuery& q = queries[(r + static_cast<std::size_t>(round)) % queries.size()];
        // One pinned guard; the first run fills the L1 memo of THIS
        // snapshot, the second must return the identical set even though
        // the writer keeps publishing newer generations (whose segments it
        // must not reach).
        MetadataCatalog::ReadGuard guard(catalog);
        const std::vector<ObjectId> first = guard.query(q);
        const std::vector<ObjectId> second = guard.query(q);
        if (first != second) failures.fetch_add(1);
        if (!std::is_sorted(first.begin(), first.end())) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  catalog.quiesce_epochs();  // retired segments reclaimed; ASan keeps us honest
}

// ---- dispatcher churn: cached and fresh responses interleave safely ----

TEST(QueryCache, DispatcherChurnServesWellFormedResponses) {
  xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), cached_config());
  ingest_docs(catalog, 8);
  ServiceDispatcher dispatcher(catalog, {.workers = 3});

  workload::QueryGenerator query_gen;
  const std::uint64_t seed = env_size("HXRC_STRESS_SEED", 1);
  std::vector<std::string> requests;
  for (std::uint64_t q = 0; q < 6; ++q) {
    requests.push_back(query_to_xml(query_gen.generate(seed * 17 + q)));
  }
  requests.push_back("<catalogRequest type=\"fetch\" objectID=\"0\"/>");
  requests.push_back("<catalogRequest type=\"fetch\" objectID=\"424242\"/>");

  workload::DocumentGenerator generator;
  std::vector<std::string> ingest_requests;
  for (int i = 0; i < 12; ++i) {
    xml::Document doc = generator.generate(2000 + static_cast<std::uint64_t>(i));
    ingest_requests.push_back("<catalogRequest type=\"ingest\" user=\"u\">" +
                              xml::write(doc) + "</catalogRequest>");
  }

  const std::size_t readers = std::max<std::size_t>(2, env_size("HXRC_STRESS_THREADS", 2));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.emplace_back([&] {
    for (const std::string& request : ingest_requests) dispatcher.call(request);
  });
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      for (int round = 0; round < 40; ++round) {
        const std::string& request =
            requests[(r + static_cast<std::size_t>(round)) % requests.size()];
        const xml::Document response = xml::parse(dispatcher.call(request));
        const std::string_view* status = response.root->attribute("status");
        if (status == nullptr) {
          failures.fetch_add(1);
          continue;
        }
        if (*status == "error" &&
            *response.root->attribute("code") != "not_found") {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  dispatcher.drain();
}

// ---- overwriting a key with a larger value still honors the budget ----

TEST(QueryCache, ShardedCacheOverwriteEvictsBackToByteBudget) {
  util::ShardedCacheConfig config;
  config.shards = 1;
  config.max_entries = 64;
  config.max_bytes = 1000;
  util::ShardedCache<std::string> cache(config);
  for (int i = 0; i < 9; ++i) {
    cache.insert("k" + std::to_string(i),
                 std::make_shared<const std::string>("v"), 100);
  }
  ASSERT_LE(cache.byte_count(), 1000u);

  // Regression: the overwrite branch used to skip the eviction loop, so
  // growing an existing entry left the shard over budget until the next
  // new-key insert happened to trigger eviction.
  cache.insert("k0", std::make_shared<const std::string>("w"), 900);
  EXPECT_LE(cache.byte_count(), 1000u);
  const auto kept = cache.find("k0");
  ASSERT_NE(kept, nullptr) << "the just-written slot must never be evicted";
  EXPECT_EQ(*kept, "w");
}

}  // namespace

// ---- satellite: log2+linear histogram interpolation precision ----

namespace util_test {

TEST(LatencyHistogram, SubBucketInterpolationBoundsError) {
  hxrc::util::LatencyHistogram histogram;
  // The BENCH_net regression: all samples in one log2 range used to snap
  // p50 to the bucket's upper bound (262144 exactly). With 4 linear
  // sub-buckets + rank interpolation the estimate must sit within 25% of
  // the true percentile.
  for (std::uint64_t v = 150000; v < 250000; v += 100) histogram.record(v);
  const std::uint64_t p50 = histogram.percentile_micros(0.50);
  EXPECT_GT(p50, 170000u);
  EXPECT_LT(p50, 230000u);
  const std::uint64_t p99 = histogram.percentile_micros(0.99);
  EXPECT_GT(p99, 230000u);
  EXPECT_LE(p99, 262144u);
}

TEST(LatencyHistogram, SmallValuesStayExactish) {
  hxrc::util::LatencyHistogram histogram;
  for (int i = 0; i < 1000; ++i) histogram.record(100);
  const std::uint64_t p50 = histogram.percentile_micros(0.50);
  EXPECT_GE(p50, 64u);   // 100 lands in range (64,128], sub-bucket (96,112]
  EXPECT_LE(p50, 112u);
}

}  // namespace util_test
}  // namespace hxrc::core
