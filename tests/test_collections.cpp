// Collections (aggregations) and containment-scoped context queries (§1/§7).
#include <gtest/gtest.h>

#include "core/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace hxrc::core {
namespace {

CatalogConfig auto_define_config() {
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

class CollectionsTest : public ::testing::Test {
 protected:
  CollectionsTest()
      : schema_(workload::lead_schema()),
        catalog_(schema_, workload::lead_annotations(), auto_define_config()) {
    workload::DocumentGenerator generator;
    for (std::uint64_t i = 0; i < 12; ++i) {
      ids_.push_back(catalog_.ingest(generator.generate(i), "d", "alice"));
    }
    experiment_ = catalog_.create_collection("may20-experiment", "alice");
    ensemble_a_ = catalog_.create_collection("ensemble-a", "alice", experiment_);
    ensemble_b_ = catalog_.create_collection("ensemble-b", "alice", experiment_);
    for (std::size_t i = 0; i < 4; ++i) catalog_.add_to_collection(ensemble_a_, ids_[i]);
    for (std::size_t i = 4; i < 8; ++i) catalog_.add_to_collection(ensemble_b_, ids_[i]);
    catalog_.add_to_collection(experiment_, ids_[8]);  // direct member
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  std::vector<ObjectId> ids_;
  CollectionId experiment_ = kNoCollection;
  CollectionId ensemble_a_ = kNoCollection;
  CollectionId ensemble_b_ = kNoCollection;
};

TEST_F(CollectionsTest, DirectMembers) {
  const auto members = catalog_.collection_members(ensemble_a_, /*recursive=*/false);
  EXPECT_EQ(members, std::vector<ObjectId>(ids_.begin(), ids_.begin() + 4));
}

TEST_F(CollectionsTest, RecursiveMembersIncludeNestedCollections) {
  const auto members = catalog_.collection_members(experiment_, /*recursive=*/true);
  EXPECT_EQ(members.size(), 9u);  // 4 + 4 + 1
  const auto direct = catalog_.collection_members(experiment_, /*recursive=*/false);
  EXPECT_EQ(direct, std::vector<ObjectId>{ids_[8]});
}

TEST_F(CollectionsTest, ChildCollections) {
  const auto children = catalog_.child_collections(experiment_);
  EXPECT_EQ(children, (std::vector<CollectionId>{ensemble_a_, ensemble_b_}));
  EXPECT_TRUE(catalog_.child_collections(ensemble_a_).empty());
}

TEST_F(CollectionsTest, MembershipIsIdempotent) {
  catalog_.add_to_collection(ensemble_a_, ids_[0]);
  catalog_.add_to_collection(ensemble_a_, ids_[0]);
  EXPECT_EQ(catalog_.collection_members(ensemble_a_, false).size(), 4u);
}

TEST_F(CollectionsTest, ObjectsMayBelongToSeveralCollections) {
  catalog_.add_to_collection(ensemble_b_, ids_[0]);
  const auto members = catalog_.collection_members(ensemble_b_, false);
  EXPECT_EQ(members.size(), 5u);
  // The recursive experiment view deduplicates.
  EXPECT_EQ(catalog_.collection_members(experiment_, true).size(), 9u);
}

TEST_F(CollectionsTest, QueryInCollectionScopesResults) {
  // Global query vs the same query scoped to ensemble-a.
  const ObjectQuery query = workload::theme_keyword_query("air_temperature");
  const auto global = catalog_.query(query);
  const auto scoped = catalog_.query_in_collection(ensemble_a_, query, false);
  for (const ObjectId id : scoped) {
    EXPECT_LT(id, static_cast<ObjectId>(4));
    EXPECT_TRUE(std::find(global.begin(), global.end(), id) != global.end());
  }
  // Scoped results are exactly global ∩ members.
  std::vector<ObjectId> expected;
  for (const ObjectId id : global) {
    if (id < 4) expected.push_back(id);
  }
  EXPECT_EQ(scoped, expected);
}

TEST_F(CollectionsTest, RecursiveContextQuery) {
  const ObjectQuery query = workload::theme_keyword_query("air_temperature");
  const auto global = catalog_.query(query);
  const auto scoped = catalog_.query_in_collection(experiment_, query, true);
  std::vector<ObjectId> expected;
  for (const ObjectId id : global) {
    if (id < 9) expected.push_back(id);
  }
  EXPECT_EQ(scoped, expected);
}

TEST_F(CollectionsTest, InvalidIdsAreRejected) {
  EXPECT_THROW(catalog_.add_to_collection(999, ids_[0]), ValidationError);
  EXPECT_THROW(catalog_.create_collection("x", "alice", 999), ValidationError);
}

TEST_F(CollectionsTest, EmptyCollection) {
  const CollectionId empty = catalog_.create_collection("empty", "alice");
  EXPECT_TRUE(catalog_.collection_members(empty, true).empty());
  EXPECT_TRUE(
      catalog_.query_in_collection(empty, workload::theme_keyword_query("x"), true)
          .empty());
}

}  // namespace
}  // namespace hxrc::core
