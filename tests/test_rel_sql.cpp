// The SQL front end: lexer, parser, and end-to-end execution.
#include <gtest/gtest.h>

#include "rel/database.hpp"
#include "rel/sql/lexer.hpp"
#include "rel/sql/parser.hpp"

namespace hxrc::rel {
namespace {

TEST(Lexer, TokenKinds) {
  const auto tokens = sql::tokenize("SELECT x, 'str''ing', 4.5, 42 FROM t -- comment");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_TRUE(tokens[0].is_keyword("SELECT"));
  EXPECT_EQ(tokens[1].kind, sql::Token::Kind::kIdent);
  EXPECT_EQ(tokens[3].kind, sql::Token::Kind::kString);
  EXPECT_EQ(tokens[3].text, "str'ing");
  EXPECT_EQ(tokens[5].kind, sql::Token::Kind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[5].double_value, 4.5);
  EXPECT_EQ(tokens[7].kind, sql::Token::Kind::kInt);
}

TEST(Lexer, MultiCharOperators) {
  const auto tokens = sql::tokenize("a <= b >= c != d <> e");
  EXPECT_TRUE(tokens[1].is_punct("<="));
  EXPECT_TRUE(tokens[3].is_punct(">="));
  EXPECT_TRUE(tokens[5].is_punct("!="));
  EXPECT_TRUE(tokens[7].is_punct("!="));  // <> normalizes
}

TEST(Lexer, Errors) {
  EXPECT_THROW(sql::tokenize("SELECT 'unterminated"), sql::SqlError);
  EXPECT_THROW(sql::tokenize("SELECT @"), sql::SqlError);
}

TEST(Parser, SelectShape) {
  const auto stmt = sql::parse_statement(
      "SELECT a.x AS col, COUNT(*) FROM t a JOIN u ON a.id = u.id "
      "WHERE a.x > 5 GROUP BY a.x HAVING COUNT(*) > 1 ORDER BY col DESC LIMIT 3;");
  const auto& select = std::get<sql::SelectStmt>(stmt);
  EXPECT_EQ(select.items.size(), 2u);
  EXPECT_EQ(*select.items[0].alias, "col");
  EXPECT_EQ(select.from.alias, "a");
  ASSERT_EQ(select.joins.size(), 1u);
  EXPECT_TRUE(select.where != nullptr);
  EXPECT_EQ(select.group_by.size(), 1u);
  EXPECT_TRUE(select.having != nullptr);
  ASSERT_EQ(select.order_by.size(), 1u);
  EXPECT_TRUE(select.order_by[0].descending);
  EXPECT_EQ(select.limit, 3u);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(sql::parse_statement("SELECT"), sql::SqlError);
  EXPECT_THROW(sql::parse_statement("SELECT x FROM"), sql::SqlError);
  EXPECT_THROW(sql::parse_statement("BOGUS things"), sql::SqlError);
  EXPECT_THROW(sql::parse_statement("SELECT x FROM t WHERE"), sql::SqlError);
  EXPECT_THROW(sql::parse_statement("SELECT x FROM t extra junk"), sql::SqlError);
}

class SqlEndToEnd : public ::testing::Test {
 protected:
  SqlEndToEnd() {
    db_.execute("CREATE TABLE emp (id INT, name STRING, dept INT, salary DOUBLE)");
    db_.execute("CREATE TABLE dept (id INT, dname STRING)");
    db_.execute(
        "INSERT INTO emp VALUES (1,'ann',10,100.0),(2,'bob',10,80.0),"
        "(3,'cid',20,120.0),(4,'dee',20,90.0),(5,'eve',NULL,70.0)");
    db_.execute("INSERT INTO dept VALUES (10,'storms'),(20,'grids'),(30,'empty')");
  }
  Database db_;
};

TEST_F(SqlEndToEnd, SelectStar) {
  const ResultSet result = db_.execute("SELECT * FROM emp");
  EXPECT_EQ(result.size(), 5u);
  EXPECT_EQ(result.schema.size(), 4u);
}

TEST_F(SqlEndToEnd, WhereAndProjection) {
  const ResultSet result =
      db_.execute("SELECT name FROM emp WHERE salary >= 90 AND dept = 20");
  ASSERT_EQ(result.size(), 2u);
}

TEST_F(SqlEndToEnd, OrderByAndLimit) {
  const ResultSet result =
      db_.execute("SELECT name FROM emp ORDER BY salary DESC LIMIT 2");
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.rows[0][0].as_string(), "cid");
  EXPECT_EQ(result.rows[1][0].as_string(), "ann");
}

TEST_F(SqlEndToEnd, EquiJoin) {
  const ResultSet result = db_.execute(
      "SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id ORDER BY e.name");
  ASSERT_EQ(result.size(), 4u);
  EXPECT_EQ(result.rows[0][0].as_string(), "ann");
  EXPECT_EQ(result.rows[0][1].as_string(), "storms");
}

TEST_F(SqlEndToEnd, LeftJoinKeepsUnmatched) {
  const ResultSet result = db_.execute(
      "SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.dept = d.id");
  EXPECT_EQ(result.size(), 5u);
}

TEST_F(SqlEndToEnd, GroupByWithAggregates) {
  const ResultSet result = db_.execute(
      "SELECT dept, COUNT(*) AS n, SUM(salary) AS total, MIN(salary) AS lo, "
      "MAX(salary) AS hi FROM emp WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept");
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.rows[0][0].as_int(), 10);
  EXPECT_EQ(result.rows[0][1].as_int(), 2);
  EXPECT_DOUBLE_EQ(result.rows[0][2].as_double(), 180.0);
  EXPECT_DOUBLE_EQ(result.rows[0][3].as_double(), 80.0);
  EXPECT_DOUBLE_EQ(result.rows[0][4].as_double(), 100.0);
}

TEST_F(SqlEndToEnd, Having) {
  const ResultSet result = db_.execute(
      "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING COUNT(*) > 1");
  EXPECT_EQ(result.size(), 2u);
}

TEST_F(SqlEndToEnd, GlobalAggregate) {
  const ResultSet result = db_.execute("SELECT COUNT(*), MAX(salary) FROM emp");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 5);
  EXPECT_DOUBLE_EQ(result.rows[0][1].as_double(), 120.0);
}

TEST_F(SqlEndToEnd, CountDistinct) {
  const ResultSet result = db_.execute("SELECT COUNT(DISTINCT dept) FROM emp");
  EXPECT_EQ(result.rows[0][0].as_int(), 2);
}

TEST_F(SqlEndToEnd, SelectDistinct) {
  const ResultSet result = db_.execute("SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL");
  EXPECT_EQ(result.size(), 2u);
}

TEST_F(SqlEndToEnd, ArithmeticInSelect) {
  const ResultSet result =
      db_.execute("SELECT salary * 2 AS twice FROM emp WHERE id = 1");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0][0].as_double(), 200.0);
}

TEST_F(SqlEndToEnd, IsNullPredicates) {
  EXPECT_EQ(db_.execute("SELECT id FROM emp WHERE dept IS NULL").size(), 1u);
  EXPECT_EQ(db_.execute("SELECT id FROM emp WHERE dept IS NOT NULL").size(), 4u);
}

TEST_F(SqlEndToEnd, NonEquiJoinFallsBackToFilter) {
  const ResultSet result = db_.execute(
      "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id AND e.salary > 90");
  EXPECT_EQ(result.size(), 2u);  // ann (100, storms), cid (120, grids)
}

TEST_F(SqlEndToEnd, CreateIndexStatements) {
  EXPECT_NO_THROW(db_.execute("CREATE INDEX by_dept ON emp (dept)"));
  EXPECT_NO_THROW(db_.execute("CREATE ORDERED INDEX by_salary ON emp (salary)"));
  EXPECT_NE(db_.require_table("emp").index("by_dept"), nullptr);
}

TEST_F(SqlEndToEnd, InsertWithColumnList) {
  db_.execute("INSERT INTO emp (id, name) VALUES (9, 'zed')");
  const ResultSet result = db_.execute("SELECT salary FROM emp WHERE id = 9");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.rows[0][0].is_null());
}

TEST_F(SqlEndToEnd, ErrorsOnUnknownNames) {
  EXPECT_THROW(db_.execute("SELECT nope FROM emp"), sql::SqlError);
  EXPECT_THROW(db_.execute("SELECT x FROM missing"), sql::SqlError);
  EXPECT_THROW(db_.execute("SELECT e.id FROM emp e JOIN dept d ON e.dept = d.id "
                           "GROUP BY d.dname"),
               sql::SqlError);  // id neither aggregated nor grouped
}

TEST_F(SqlEndToEnd, AmbiguousColumnIsRejected) {
  EXPECT_THROW(db_.execute("SELECT id FROM emp e JOIN dept d ON e.dept = d.id"),
               sql::SqlError);
}

TEST_F(SqlEndToEnd, NegativeNumbersInValuesAndWhere) {
  db_.execute("INSERT INTO emp VALUES (10,'neg',10,-50.0)");
  const ResultSet result = db_.execute("SELECT name FROM emp WHERE salary < -10");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_string(), "neg");
}

TEST_F(SqlEndToEnd, LikePatterns) {
  EXPECT_EQ(db_.execute("SELECT name FROM emp WHERE name LIKE 'a%'").size(), 1u);
  EXPECT_EQ(db_.execute("SELECT name FROM emp WHERE name LIKE '%e'").size(), 2u);  // dee, eve
  EXPECT_EQ(db_.execute("SELECT name FROM emp WHERE name LIKE '_o_'").size(), 1u);  // bob
  EXPECT_EQ(db_.execute("SELECT name FROM emp WHERE name NOT LIKE '%e%'").size(), 3u);
  EXPECT_EQ(db_.execute("SELECT name FROM emp WHERE name LIKE '%'").size(), 5u);
  EXPECT_THROW(db_.execute("SELECT name FROM emp WHERE name LIKE 5"), sql::SqlError);
}

TEST_F(SqlEndToEnd, InLists) {
  EXPECT_EQ(db_.execute("SELECT name FROM emp WHERE dept IN (10, 30)").size(), 2u);
  EXPECT_EQ(db_.execute("SELECT name FROM emp WHERE name IN ('ann', 'eve')").size(), 2u);
  // NOT IN with a NULL dept row: NULL comparisons are unknown -> excluded.
  EXPECT_EQ(db_.execute("SELECT name FROM emp WHERE dept NOT IN (10)").size(), 2u);
}

TEST(LikeMatcher, DirectPatterns) {
  EXPECT_TRUE(like_match("", ""));
  EXPECT_TRUE(like_match("", "%"));
  EXPECT_FALSE(like_match("", "_"));
  EXPECT_TRUE(like_match("abc", "abc"));
  EXPECT_TRUE(like_match("abc", "a%"));
  EXPECT_TRUE(like_match("abc", "%c"));
  EXPECT_TRUE(like_match("abc", "%b%"));
  EXPECT_TRUE(like_match("abc", "a_c"));
  EXPECT_FALSE(like_match("abc", "a_b"));
  EXPECT_TRUE(like_match("aXbXc", "a%b%c"));
  EXPECT_TRUE(like_match("mississippi", "%iss%ppi"));
  EXPECT_FALSE(like_match("mississippi", "%issx%"));
  EXPECT_TRUE(like_match("convective_precipitation_flux", "%precipitation%"));
}

TEST(Database, TableLifecycle) {
  Database db;
  db.create_table("t", TableSchema{{"x", Type::kInt}});
  EXPECT_THROW(db.create_table("t", TableSchema{{"x", Type::kInt}}), TypeError);
  EXPECT_NE(db.table("t"), nullptr);
  EXPECT_EQ(db.table_names(), std::vector<std::string>{"t"});
  EXPECT_TRUE(db.drop_table("t"));
  EXPECT_FALSE(db.drop_table("t"));
  EXPECT_THROW(db.require_table("t"), TypeError);
}

}  // namespace
}  // namespace hxrc::rel
