// The federation layer: merge rules byte-for-byte, the replication wire
// codec, WAL shipping end-to-end (bootstrap, file catch-up, live stream,
// rotation adoption, reconnect dedupe), and the scatter-gather router over
// real shard servers — routing, gid remapping, merged pagination, replica
// failover, and partial degradation.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.hpp"
#include "core/dispatcher.hpp"
#include "core/service.hpp"
#include "fed/merge.hpp"
#include "fed/replica.hpp"
#include "fed/router.hpp"
#include "fed/ship_wire.hpp"
#include "fed/shipper.hpp"
#include "net/server.hpp"
#include "storage/recovery.hpp"
#include "storage/wal.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/parser.hpp"

namespace hxrc::fed {
namespace {

using namespace std::chrono_literals;

core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(2ms);
  }
  return true;
}

std::string status_of(const std::string& response_xml) {
  return std::string(*xml::parse(response_xml).root->attribute("status"));
}

std::string code_of(const std::string& response_xml) {
  const xml::Document doc = xml::parse(response_xml);
  const std::string_view* code = doc.root->attribute("code");
  return code == nullptr ? std::string{} : std::string(*code);
}

core::DispatcherConfig dispatcher_config(std::size_t workers, std::size_t max_queue,
                                         bool read_only = false) {
  core::DispatcherConfig config;
  config.workers = workers;
  config.max_queue = max_queue;
  config.read_only = read_only;
  return config;
}

std::string temp_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("hxrc_fed_" + name)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ingest_request(const std::string& name) {
  std::string request = "<catalogRequest type=\"ingest\" user=\"u\"";
  if (!name.empty()) request += " name=\"" + name + "\"";
  request += ">" + workload::fig3_document() + "</catalogRequest>";
  return request;
}

/// The wire form of the standard theme query, as query or queryIds, with
/// optional limit / continuation cursor.
std::string theme_query_wire(bool ids_only, std::size_t limit = 0,
                             const std::string& cursor = {}) {
  core::ObjectQuery query =
      workload::theme_keyword_query("convective_precipitation_flux");
  if (limit > 0) query.set_limit(limit);
  if (!cursor.empty()) query.set_cursor(cursor);
  std::string wire = core::query_to_xml(query);
  if (ids_only) {
    const auto pos = wire.find("type=\"query\"");
    wire.replace(pos, std::string("type=\"query\"").size(), "type=\"queryIds\"");
  }
  return wire;
}

std::vector<std::uint64_t> ids_of(const std::string& response_xml) {
  const ParsedResponse parsed = parse_response(response_xml);
  return parse_query_payload(parsed.payload, /*ids_only=*/true).ids;
}

// ---------------------------------------------------------------------------
// Merge layer, byte-for-byte.

TEST(FedMerge, GidMappingIsAnOrderPreservingBijection) {
  const std::uint32_t nshards = 3;
  std::uint64_t previous[3] = {0, 0, 0};
  for (std::uint64_t lid = 0; lid < 50; ++lid) {
    for (std::uint32_t shard = 0; shard < nshards; ++shard) {
      const std::uint64_t gid = gid_of(lid, shard, nshards);
      EXPECT_EQ(shard_of(gid, nshards), shard);
      EXPECT_EQ(lid_of(gid, nshards), lid);
      if (lid > 0) {
        EXPECT_GT(gid, previous[shard]);  // order preserved
      }
      previous[shard] = gid;
    }
  }
}

TEST(FedMerge, PlacementIsStableAndInRange) {
  for (std::uint32_t nshards : {1u, 2u, 4u, 7u}) {
    for (int i = 0; i < 64; ++i) {
      const std::string name = "doc-" + std::to_string(i);
      const std::uint32_t shard = placement_shard(name, nshards);
      EXPECT_LT(shard, nshards);
      EXPECT_EQ(placement_shard(name, nshards), shard);  // deterministic
    }
  }
}

TEST(FedMerge, ParseResponseOkErrorAndGarbage) {
  const std::string ok = ok_envelope(42, "<objectID>7</objectID>");
  const ParsedResponse parsed_ok = parse_response(ok);
  EXPECT_TRUE(parsed_ok.ok);
  EXPECT_EQ(parsed_ok.version, 42u);
  EXPECT_EQ(parsed_ok.payload, "<objectID>7</objectID>");

  // ok_envelope is byte-identical to what the service layer emits.
  EXPECT_EQ(ok,
            "<catalogResponse status=\"ok\" protocol=\"1\" version=\"42\">"
            "<objectID>7</objectID></catalogResponse>");

  const std::string error =
      core::error_response(core::ErrorCode::kStaleCursor, "cursor expired");
  const ParsedResponse parsed_error = parse_response(error);
  EXPECT_FALSE(parsed_error.ok);
  EXPECT_EQ(parsed_error.code, "stale_cursor");

  EXPECT_THROW(parse_response("<html>nope</html>"), FedError);
  EXPECT_THROW(parse_response("<catalogResponse status=\"ok\" version=\"1\">"),
               FedError);  // truncated envelope
  EXPECT_THROW(parse_response("<catalogResponse status=\"weird\">"
                              "</catalogResponse>"),
               FedError);
}

TEST(FedMerge, ParseQueryPayloadHandlesNestedResultElements) {
  // A stored document may itself contain <result> elements; the span scan
  // must track nesting instead of grabbing the first close tag.
  const std::string payload =
      "<results>"
      "<result objectID=\"3\"><doc><result note=\"inner\">x</result>"
      "<result/></doc></result>"
      "<result objectID=\"9\"><plain/></result>"
      "</results>";
  const QueryPayload page = parse_query_payload(payload, /*ids_only=*/false);
  ASSERT_EQ(page.results.size(), 2u);
  EXPECT_EQ(page.results[0].lid, 3u);
  EXPECT_EQ(page.results[0].body,
            "<doc><result note=\"inner\">x</result><result/></doc>");
  EXPECT_EQ(page.results[1].lid, 9u);
  EXPECT_EQ(page.results[1].body, "<plain/>");
  EXPECT_TRUE(page.next_cursor.empty());

  const QueryPayload ids = parse_query_payload(
      "<objectIDs><objectID>1</objectID><objectID>5</objectID></objectIDs>"
      "<nextCursor>HXC1.a.4</nextCursor>",
      /*ids_only=*/true);
  EXPECT_EQ(ids.ids, (std::vector<std::uint64_t>{1, 5}));
  EXPECT_EQ(ids.next_cursor, "HXC1.a.4");

  EXPECT_THROW(parse_query_payload("<objectIDs></objectIDs>trailing", true),
               FedError);
  EXPECT_THROW(parse_query_payload("<results><result objectID=\"1\">", false),
               FedError);
}

TEST(FedMerge, FedCursorRoundTripsAndRejectsMalformed) {
  FedCursor cursor;
  cursor.shard_count = 4;
  cursor.serving_mask = 0b1010;
  cursor.legs = {{0, 17, 250}, {2, 9, kNoLid}};
  const std::string text = encode_fed_cursor(cursor);
  EXPECT_EQ(text.rfind("HXF1.", 0), 0u);

  FedCursor decoded;
  ASSERT_TRUE(decode_fed_cursor(text, decoded));
  EXPECT_EQ(decoded.shard_count, 4u);
  EXPECT_EQ(decoded.serving_mask, 0b1010u);
  ASSERT_EQ(decoded.legs.size(), 2u);
  EXPECT_EQ(decoded.legs[0].shard, 0u);
  EXPECT_EQ(decoded.legs[0].epoch, 17u);
  EXPECT_EQ(decoded.legs[0].after_lid, 250u);
  EXPECT_EQ(decoded.legs[1].shard, 2u);
  EXPECT_EQ(decoded.legs[1].after_lid, kNoLid);

  FedCursor sink;
  EXPECT_FALSE(decode_fed_cursor("HXC1.1.2", sink));           // wrong family
  EXPECT_FALSE(decode_fed_cursor("HXF1.0.0.0", sink));         // zero shards
  EXPECT_FALSE(decode_fed_cursor("HXF1.41.0.0", sink));        // > 64 shards
  EXPECT_FALSE(decode_fed_cursor("HXF1.2.0.1.1.5", sink));     // truncated leg
  EXPECT_FALSE(decode_fed_cursor("HXF1.2.0.1.5.1.1", sink));   // shard >= count
  EXPECT_FALSE(decode_fed_cursor(text + ".ff", sink));         // trailing bytes
  EXPECT_FALSE(decode_fed_cursor("HXF1.2.0.1.1.zz.0", sink));  // non-hex
}

TEST(FedMerge, MergeProducesGloballyAscendingPageAndLegs) {
  // shard 0 lids {0,1,2} → gids {0,2,4}; shard 1 lids {0,1} → gids {1,3}.
  std::vector<MergeInput> inputs(2);
  inputs[0].shard = 0;
  inputs[0].version = 11;
  inputs[0].page.ids = {0, 1, 2};
  inputs[1].shard = 1;
  inputs[1].version = 12;
  inputs[1].page.ids = {0, 1};
  inputs[1].more = true;

  const MergeOutput full = merge_query_pages(inputs, 2, 0, /*ids_only=*/true);
  EXPECT_EQ(full.payload,
            "<objectIDs><objectID>0</objectID><objectID>1</objectID>"
            "<objectID>2</objectID><objectID>3</objectID>"
            "<objectID>4</objectID></objectIDs>");
  // Unbounded merge: only the shard that advertised more rows keeps a leg.
  EXPECT_TRUE(full.truncated);
  ASSERT_EQ(full.legs.size(), 1u);
  EXPECT_EQ(full.legs[0].shard, 1u);
  EXPECT_EQ(full.legs[0].epoch, 12u);
  EXPECT_EQ(full.legs[0].after_lid, 1u);

  const MergeOutput cut = merge_query_pages(inputs, 2, 3, /*ids_only=*/true);
  EXPECT_EQ(cut.payload,
            "<objectIDs><objectID>0</objectID><objectID>1</objectID>"
            "<objectID>2</objectID></objectIDs>");
  EXPECT_TRUE(cut.truncated);
  ASSERT_EQ(cut.legs.size(), 2u);
  EXPECT_EQ(cut.legs[0].shard, 0u);
  EXPECT_EQ(cut.legs[0].after_lid, 1u);  // consumed lids 0,1
  EXPECT_EQ(cut.legs[1].shard, 1u);
  EXPECT_EQ(cut.legs[1].after_lid, 0u);  // consumed lid 0

  // A limit that cuts before a shard contributes pins that leg at kNoLid.
  const MergeOutput first = merge_query_pages(inputs, 2, 1, /*ids_only=*/true);
  ASSERT_EQ(first.legs.size(), 2u);
  EXPECT_EQ(first.legs[0].after_lid, 0u);
  EXPECT_EQ(first.legs[1].after_lid, kNoLid);

  // Result-carrying merge rewrites ids and keeps bodies verbatim.
  std::vector<MergeInput> docs(2);
  docs[0].shard = 0;
  docs[0].page.results = {{0, "<a/>"}};
  docs[1].shard = 1;
  docs[1].page.results = {{0, "<b/>"}};
  const MergeOutput merged = merge_query_pages(docs, 2, 0, /*ids_only=*/false);
  EXPECT_EQ(merged.payload,
            "<results><result objectID=\"0\"><a/></result>"
            "<result objectID=\"1\"><b/></result></results>");
  EXPECT_FALSE(merged.truncated);
}

TEST(FedMerge, MergeStatsSumsCountsAndKeepsMaxima) {
  const std::string s0 =
      "<stats objects=\"2\" attributes=\"4\" elements=\"10\" clobs=\"1\" "
      "definitions=\"6\" deleted=\"0\" version=\"9\"><extra/></stats>";
  const std::string s1 =
      "<stats objects=\"3\" attributes=\"5\" elements=\"12\" clobs=\"0\" "
      "definitions=\"7\" deleted=\"2\" version=\"8\"/>";
  const std::string merged =
      merge_stats_payload({{0, false, s0}, {1, true, s1}});
  EXPECT_EQ(merged,
            "<stats objects=\"5\" attributes=\"9\" elements=\"22\" clobs=\"1\" "
            "deleted=\"2\" definitions=\"7\" version=\"9\" shards=\"2\">"
            "<shard index=\"0\" endpoint=\"primary\" objects=\"2\" "
            "attributes=\"4\" elements=\"10\" clobs=\"1\" deleted=\"0\" "
            "definitions=\"6\" version=\"9\"/>"
            "<shard index=\"1\" endpoint=\"replica\" objects=\"3\" "
            "attributes=\"5\" elements=\"12\" clobs=\"0\" deleted=\"2\" "
            "definitions=\"7\" version=\"8\"/></stats>");
  EXPECT_THROW(merge_stats_payload({{0, false, "<metrics/>"}}), FedError);
}

TEST(FedMerge, RewriteRootAttrReplacesOnlyTheRootValue) {
  const std::string rewritten = rewrite_root_attr(
      "<catalogRequest type=\"fetch\" objectID=\"41\"><x objectID=\"9\"/>"
      "</catalogRequest>",
      "objectID", "20");
  EXPECT_EQ(rewritten,
            "<catalogRequest type=\"fetch\" objectID=\"20\"><x objectID=\"9\"/>"
            "</catalogRequest>");
  EXPECT_THROW(rewrite_root_attr("<catalogRequest/>", "objectID", "1"),
               FedError);
}

// ---------------------------------------------------------------------------
// Replication wire codec.

TEST(ShipWire, MessagesRoundTrip) {
  const std::string hello = encode_hello({3, 7, 9});
  EXPECT_EQ(peek_ship_msg(hello), ShipMsg::kHello);
  const HelloMsg h = decode_hello(hello);
  EXPECT_EQ(h.wal_seq, 3u);
  EXPECT_EQ(h.applied_lsn, 7u);
  EXPECT_EQ(h.records_applied, 9u);

  BootstrapMsg boot;
  boot.wal_seq = 4;
  boot.prev_records = 11;
  boot.epoch = 6;
  boot.snapshot = std::string("SNAP\0BIN", 8);  // binary-safe
  const std::string encoded = encode_bootstrap(boot);
  EXPECT_EQ(peek_ship_msg(encoded), ShipMsg::kBootstrap);
  const BootstrapMsg b = decode_bootstrap(encoded);
  EXPECT_EQ(b.wal_seq, 4u);
  EXPECT_EQ(b.prev_records, 11u);
  EXPECT_EQ(b.epoch, 6u);
  EXPECT_EQ(b.snapshot, boot.snapshot);

  const std::string chunk = encode_chunk(2, 5, "raw frame bytes");
  EXPECT_EQ(peek_ship_msg(chunk), ShipMsg::kChunk);
  const ChunkMsg c = decode_chunk(chunk);
  EXPECT_EQ(c.wal_seq, 2u);
  EXPECT_EQ(c.first_lsn, 5u);
  EXPECT_EQ(c.frames, "raw frame bytes");

  const AckMsg a = decode_ack(encode_ack({12}));
  EXPECT_EQ(a.applied_lsn, 12u);
}

TEST(ShipWire, DecodersRejectGarbageAndWrongKinds) {
  EXPECT_THROW(peek_ship_msg(""), storage::WalError);
  EXPECT_THROW(peek_ship_msg("\x09"), storage::WalError);
  EXPECT_THROW(decode_hello(encode_ack({1})), storage::WalError);
  EXPECT_THROW(decode_ack(encode_hello({1, 2, 3})), storage::WalError);
  std::string chunk = encode_chunk(1, 1, "abc");
  chunk.pop_back();  // truncate the frames field
  EXPECT_THROW(decode_chunk(chunk), storage::WalError);
}

// ---------------------------------------------------------------------------
// WAL shipping end-to-end, in process.

/// A shard primary: catalog + durability on a temp dir.
struct PrimaryProcess {
  explicit PrimaryProcess(const std::string& dir)
      : schema(workload::lead_schema()),
        catalog(schema, workload::lead_annotations(), auto_define_config()) {
    storage::DurabilityConfig config;
    config.data_dir = dir;
    durable = std::make_unique<storage::DurableCatalog>(catalog, config);
  }

  core::ObjectId ingest(const std::string& name) {
    return catalog.ingest_xml(workload::fig3_document(), name, "u");
  }

  xml::Schema schema;
  core::MetadataCatalog catalog;
  std::unique_ptr<storage::DurableCatalog> durable;
};

/// A read replica: catalog + replication listener on an ephemeral port.
struct ReplicaProcess {
  ReplicaProcess()
      : schema(workload::lead_schema()),
        catalog(schema, workload::lead_annotations(), auto_define_config()),
        listener(catalog) {
    listener.start();
  }

  xml::Schema schema;
  core::MetadataCatalog catalog;
  ReplicationListener listener;
};

ShipperOptions ship_to(const ReplicaProcess& replica) {
  ShipperOptions options;
  options.port = replica.listener.port();
  options.reconnect_ms = 50;
  return options;
}

TEST(Replication, BootstrapFileCatchUpThenLiveStream) {
  const std::string dir = temp_dir("catchup");
  {
    PrimaryProcess primary(dir);
    // Mutations that predate the shipper must arrive via the file catch-up.
    for (int i = 0; i < 3; ++i) primary.ingest("pre-" + std::to_string(i));
    primary.durable->flush();

    ReplicaProcess replica;
    WalShipper shipper(*primary.durable, ship_to(replica));
    shipper.start();
    ASSERT_TRUE(wait_until([&] { return replica.catalog.object_count() == 3; }));

    // Mutations after attach ride the live stream.
    for (int i = 0; i < 2; ++i) primary.ingest("live-" + std::to_string(i));
    primary.durable->flush();
    ASSERT_TRUE(wait_until([&] {
      return replica.catalog.object_count() == 5 &&
             replica.catalog.version() == primary.catalog.version();
    }));
    EXPECT_TRUE(wait_until([&] { return shipper.acked_lsn() > 0; }));
    EXPECT_EQ(replica.listener.state().bootstraps.load(), 1u);

    // The replica serves byte-identical reads at the same epoch.
    core::CatalogService primary_service(primary.catalog);
    core::CatalogService replica_service(replica.catalog);
    for (int id = 0; id < 5; ++id) {
      const std::string fetch = "<catalogRequest type=\"fetch\" objectID=\"" +
                                std::to_string(id) + "\"/>";
      EXPECT_EQ(primary_service.handle(fetch), replica_service.handle(fetch));
    }

    shipper.stop();
    replica.listener.stop();
    primary.durable->close();
  }
  std::filesystem::remove_all(dir);
}

TEST(Replication, CheckpointRotationAdoptedMidStream) {
  const std::string dir = temp_dir("rotate");
  {
    PrimaryProcess primary(dir);
    ReplicaProcess replica;
    WalShipper shipper(*primary.durable, ship_to(replica));
    shipper.start();

    primary.ingest("a");
    primary.ingest("b");
    primary.durable->flush();
    ASSERT_TRUE(wait_until([&] { return replica.catalog.object_count() == 2; }));

    // Checkpoint rotates the WAL; the replica must adopt the new sequence
    // as a clean +1 rotation and keep applying.
    primary.durable->checkpoint();
    primary.ingest("c");
    primary.durable->flush();
    ASSERT_TRUE(wait_until([&] {
      return replica.catalog.object_count() == 3 &&
             replica.listener.state().wal_seq.load() == primary.durable->wal_seq();
    }));
    // Connect-time bootstrap + the rotation.
    EXPECT_EQ(replica.listener.state().bootstraps.load(), 2u);
    EXPECT_EQ(replica.catalog.version(), primary.catalog.version());

    shipper.stop();
    replica.listener.stop();
    primary.durable->close();
  }
  std::filesystem::remove_all(dir);
}

TEST(Replication, ReconnectCatchesUpFromTheFileAndDedupes) {
  const std::string dir = temp_dir("reconnect");
  {
    PrimaryProcess primary(dir);
    ReplicaProcess replica;
    {
      WalShipper shipper(*primary.durable, ship_to(replica));
      shipper.start();
      primary.ingest("a");
      primary.ingest("b");
      primary.durable->flush();
      ASSERT_TRUE(wait_until([&] { return replica.catalog.object_count() == 2; }));
      shipper.stop();
    }

    // Mutations while no shipper is attached: only the WAL file has them.
    primary.ingest("c");
    primary.ingest("d");
    primary.ingest("e");
    primary.durable->flush();

    WalShipper shipper(*primary.durable, ship_to(replica));
    shipper.start();
    ASSERT_TRUE(wait_until([&] {
      return replica.catalog.object_count() == 5 &&
             replica.catalog.version() == primary.catalog.version();
    }));
    // The second connection found a non-fresh replica: no second bootstrap,
    // no double-applied records (connections is a live gauge — only the
    // second shipper is still attached).
    EXPECT_EQ(replica.listener.state().bootstraps.load(), 1u);
    EXPECT_EQ(replica.listener.state().connections.load(), 1u);

    shipper.stop();
    replica.listener.stop();
    primary.durable->close();
  }
  std::filesystem::remove_all(dir);
}

TEST(Replication, ReadOnlyReplicaRefusesClientMutations) {
  ReplicaProcess replica;
  replica.catalog.set_replication_state(&replica.listener.state());
  core::ServiceDispatcher dispatcher(replica.catalog, dispatcher_config(1, 8, true));

  EXPECT_EQ(code_of(dispatcher.call(ingest_request("doc"))), "validation");
  EXPECT_EQ(code_of(dispatcher.call(
                "<catalogRequest type=\"delete\" objectID=\"0\"/>")),
            "validation");
  EXPECT_EQ(code_of(dispatcher.call(
                "<catalogRequest type=\"define\" name=\"n\" source=\"s\"/>")),
            "validation");

  // Reads still flow, and stats reports the replication watermark.
  EXPECT_EQ(status_of(dispatcher.call(theme_query_wire(true))), "ok");
  const std::string stats =
      dispatcher.call("<catalogRequest type=\"stats\"/>");
  EXPECT_EQ(status_of(stats), "ok");
  EXPECT_NE(stats.find("<replication "), std::string::npos);

  replica.listener.stop();
}

// ---------------------------------------------------------------------------
// The router, over real shard servers.

/// One shard process: catalog + dispatcher + server on an ephemeral port.
struct FedShard {
  FedShard()
      : schema(workload::lead_schema()),
        catalog(schema, workload::lead_annotations(), auto_define_config()),
        dispatcher(catalog, dispatcher_config(2, 64)) {
    net::ServerConfig config;
    config.port = 0;
    server = std::make_unique<net::CatalogServer>(dispatcher, config);
    server->start();
  }

  xml::Schema schema;
  core::MetadataCatalog catalog;
  core::ServiceDispatcher dispatcher;
  std::unique_ptr<net::CatalogServer> server;
};

/// N plain shards behind one router. Probing is off so health transitions
/// in tests are driven only by the calls the tests make.
struct FedCluster {
  explicit FedCluster(std::uint32_t n) {
    RouterOptions options;
    for (std::uint32_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<FedShard>());
      ShardEndpoint endpoint;
      endpoint.primary_port = shards.back()->server->port();
      options.shards.push_back(endpoint);
    }
    options.workers = 2;
    options.io_timeout_ms = 2000;
    options.probe_interval_ms = 0;
    router = std::make_unique<FederationRouter>(std::move(options));
  }

  std::string route(const std::string& request) { return router->route(request); }

  std::vector<std::unique_ptr<FedShard>> shards;
  std::unique_ptr<FederationRouter> router;
};

TEST(Router, IngestRoutesByNameAndRemapsPointOps) {
  FedCluster cluster(2);
  std::vector<std::uint64_t> gids;
  for (int i = 0; i < 6; ++i) {
    const std::string name = "doc-" + std::to_string(i);
    const std::string response = cluster.route(ingest_request(name));
    ASSERT_EQ(status_of(response), "ok") << response;
    const std::uint64_t gid = std::stoull(
        std::string(xml::parse(response).root->child_text("objectID")));
    // Placement is the published hash: the gid's shard matches it.
    EXPECT_EQ(shard_of(gid, 2), placement_shard(name, 2)) << name;
    gids.push_back(gid);
  }
  EXPECT_EQ(cluster.shards[0]->catalog.object_count() +
                cluster.shards[1]->catalog.object_count(),
            6u);

  // Fetch through the router answers under the global id.
  for (const std::uint64_t gid : gids) {
    const std::string fetched = cluster.route(
        "<catalogRequest type=\"fetch\" objectID=\"" + std::to_string(gid) +
        "\"/>");
    ASSERT_EQ(status_of(fetched), "ok");
    const xml::Document doc = xml::parse(fetched);
    const auto results = doc.root->first_child("results")->children_named("result");
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(*results[0]->attribute("objectID"), std::to_string(gid));
  }

  // addAttribute and delete route by gid; not_found names the gid, not the
  // shard's local id.
  const std::uint64_t victim = gids[3];
  EXPECT_EQ(status_of(cluster.route(
                "<catalogRequest type=\"addAttribute\" objectID=\"" +
                std::to_string(victim) +
                "\" path=\"data/idinfo/keywords/theme\">"
                "<theme><themekt>CF NetCDF</themekt>"
                "<themekey>air_temperature</themekey></theme>"
                "</catalogRequest>")),
            "ok");
  EXPECT_EQ(status_of(cluster.route("<catalogRequest type=\"delete\" objectID=\"" +
                                    std::to_string(victim) + "\"/>")),
            "ok");
  const std::string refetched = cluster.route(
      "<catalogRequest type=\"fetch\" objectID=\"" + std::to_string(victim) +
      "\"/>");
  EXPECT_EQ(code_of(refetched), "not_found");
  EXPECT_NE(refetched.find("object " + std::to_string(victim) + " does not exist"),
            std::string::npos);

  // Unknown types surface the canonical service error via shard 0.
  EXPECT_EQ(code_of(cluster.route("<catalogRequest type=\"frobnicate\"/>")),
            "unknown_type");
}

TEST(Router, QueryMergeIsByteIdenticalToShardPages) {
  FedCluster cluster(2);
  std::vector<std::uint64_t> gids;
  for (int i = 0; i < 6; ++i) {
    const std::string response = cluster.route(ingest_request({}));  // round robin
    ASSERT_EQ(status_of(response), "ok");
    gids.push_back(std::stoull(
        std::string(xml::parse(response).root->child_text("objectID"))));
  }

  // queryIds: the merged page is every gid, globally ascending.
  const std::string id_response = cluster.route(theme_query_wire(true));
  ASSERT_EQ(status_of(id_response), "ok") << id_response;
  std::sort(gids.begin(), gids.end());
  EXPECT_EQ(ids_of(id_response), gids);

  // query: rebuild the expected merged payload from each shard's own page
  // and compare the router's response byte-for-byte.
  const std::string wire = theme_query_wire(false);
  std::vector<std::pair<std::uint64_t, std::string>> expected_rows;
  std::uint64_t version = 0;
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    const std::string shard_response = cluster.shards[shard]->dispatcher.call(wire);
    const ParsedResponse parsed = parse_response(shard_response);
    ASSERT_TRUE(parsed.ok);
    version = std::max(version, parsed.version);
    for (const ResultSpan& span : parse_query_payload(parsed.payload, false).results) {
      expected_rows.emplace_back(gid_of(span.lid, shard, 2), std::string(span.body));
    }
  }
  std::sort(expected_rows.begin(), expected_rows.end());
  std::string expected = "<results>";
  for (const auto& [gid, body] : expected_rows) {
    expected += "<result objectID=\"" + std::to_string(gid) + "\">" + body +
                "</result>";
  }
  expected += "</results>";
  EXPECT_EQ(cluster.route(wire), ok_envelope(version, expected));
}

TEST(Router, DefineBroadcastAssignsIdenticalIdsEverywhere) {
  FedCluster cluster(3);
  const std::string response = cluster.route(
      "<catalogRequest type=\"define\" name=\"radiation\" source=\"WRF\">"
      "<element name=\"ra_lw_physics\" type=\"int\"/>"
      "</catalogRequest>");
  ASSERT_EQ(status_of(response), "ok") << response;
  const std::string id_text =
      std::string(xml::parse(response).root->child_text("attributeID"));

  for (const auto& shard : cluster.shards) {
    const core::AttributeDef* def =
        shard->catalog.registry().find_attribute("radiation", "WRF", core::kNoAttr);
    ASSERT_NE(def, nullptr);
    EXPECT_EQ(std::to_string(def->id), id_text);
  }
}

TEST(Router, PaginationWalksEveryRowThenStalesOnMutation) {
  FedCluster cluster(2);
  std::vector<std::uint64_t> gids;
  for (int i = 0; i < 11; ++i) {
    const std::string response = cluster.route(ingest_request({}));
    ASSERT_EQ(status_of(response), "ok");
    gids.push_back(std::stoull(
        std::string(xml::parse(response).root->child_text("objectID"))));
  }
  std::sort(gids.begin(), gids.end());

  // Walk pages of 4 through the federated cursor.
  std::vector<std::uint64_t> walked;
  std::string cursor;
  int pages = 0;
  do {
    const std::string response =
        cluster.route(theme_query_wire(true, 4, cursor));
    ASSERT_EQ(status_of(response), "ok") << response;
    const ParsedResponse parsed = parse_response(response);
    const QueryPayload page = parse_query_payload(parsed.payload, true);
    EXPECT_LE(page.ids.size(), 4u);
    walked.insert(walked.end(), page.ids.begin(), page.ids.end());
    cursor = page.next_cursor;
    ASSERT_LT(++pages, 16);
  } while (!cursor.empty());
  EXPECT_EQ(walked, gids);  // complete, duplicate-free, globally ascending
  EXPECT_GE(pages, 3);

  // A mutation between pages stales the continuation.
  const std::string first_page = cluster.route(theme_query_wire(true, 4));
  const std::string resume_cursor =
      parse_query_payload(parse_response(first_page).payload, true).next_cursor;
  ASSERT_FALSE(resume_cursor.empty());
  ASSERT_EQ(status_of(cluster.route(ingest_request("late-arrival"))), "ok");
  EXPECT_EQ(code_of(cluster.route(theme_query_wire(true, 4, resume_cursor))),
            "stale_cursor");

  // Malformed and wrong-topology cursors are rejected, not misread.
  EXPECT_EQ(code_of(cluster.route(theme_query_wire(true, 4, "HXF1.zz"))),
            "validation");
  EXPECT_EQ(code_of(cluster.route(theme_query_wire(true, 4, "HXF1.4.0.0"))),
            "stale_cursor");
}

TEST(Router, DeadShardDegradesToPartialAnswers) {
  FedCluster cluster(2);
  std::vector<std::uint64_t> gids;
  for (int i = 0; i < 4; ++i) {
    const std::string response = cluster.route(ingest_request({}));
    ASSERT_EQ(status_of(response), "ok");
    gids.push_back(std::stoull(
        std::string(xml::parse(response).root->child_text("objectID"))));
  }

  cluster.shards[1]->server->shutdown();  // hard kill, no replica

  // Scatter reads degrade: ok, annotated partial, no continuation cursor.
  const std::string degraded = cluster.route(theme_query_wire(true));
  ASSERT_EQ(status_of(degraded), "ok") << degraded;
  EXPECT_NE(degraded.find("<partial code=\"partial\" shards=\"1\"/>"),
            std::string::npos);
  EXPECT_EQ(degraded.find("<nextCursor>"), std::string::npos);
  const ParsedResponse parsed = parse_response(degraded);
  // What survives is exactly shard 0's rows.
  const std::size_t annotation = parsed.payload.find("<partial");
  ASSERT_NE(annotation, std::string_view::npos);
  const QueryPayload survivors =
      parse_query_payload(parsed.payload.substr(0, annotation), true);
  EXPECT_EQ(survivors.ids.size(), cluster.shards[0]->catalog.object_count());

  // Stats degrade the same way.
  const std::string stats = cluster.route("<catalogRequest type=\"stats\"/>");
  ASSERT_EQ(status_of(stats), "ok");
  EXPECT_NE(stats.find("<partial code=\"partial\" shards=\"1\"/>"),
            std::string::npos);

  // Point ops on the dead shard are unavailable; the live shard still works.
  for (const std::uint64_t gid : gids) {
    const std::string fetched = cluster.route(
        "<catalogRequest type=\"fetch\" objectID=\"" + std::to_string(gid) +
        "\"/>");
    if (shard_of(gid, 2) == 1) {
      EXPECT_EQ(code_of(fetched), "unavailable");
    } else {
      EXPECT_EQ(status_of(fetched), "ok");
    }
  }

  // Defines must reach every shard, so they refuse to run degraded.
  EXPECT_EQ(code_of(cluster.route(
                "<catalogRequest type=\"define\" name=\"n\" source=\"s\"/>")),
            "unavailable");
}

TEST(Router, FailoverServesReadsFromReplicaAndStalesCursors) {
  const std::string dir = temp_dir("failover");
  {
    // Shard 0 is a durable primary shipping to a live replica; shard 1 is a
    // plain in-memory shard.
    PrimaryProcess primary(dir);
    core::ServiceDispatcher primary_dispatcher(primary.catalog, dispatcher_config(2, 64));
    net::ServerConfig primary_net;
    primary_net.port = 0;
    auto primary_server =
        std::make_unique<net::CatalogServer>(primary_dispatcher, primary_net);
    primary_server->start();

    ReplicaProcess replica;
    replica.catalog.set_replication_state(&replica.listener.state());
    core::ServiceDispatcher replica_dispatcher(replica.catalog,
                                               dispatcher_config(2, 64, true));
    net::ServerConfig replica_net;
    replica_net.port = 0;
    net::CatalogServer replica_server(replica_dispatcher, replica_net);
    replica_server.start();

    WalShipper shipper(*primary.durable, ship_to(replica));
    shipper.start();

    FedShard shard1;

    RouterOptions options;
    ShardEndpoint shard0_endpoint;
    shard0_endpoint.primary_port = primary_server->port();
    shard0_endpoint.replica_host = "127.0.0.1";
    shard0_endpoint.replica_port = replica_server.port();
    options.shards.push_back(shard0_endpoint);
    ShardEndpoint shard1_endpoint;
    shard1_endpoint.primary_port = shard1.server->port();
    options.shards.push_back(shard1_endpoint);
    options.workers = 2;
    options.io_timeout_ms = 2000;
    options.probe_interval_ms = 0;
    FederationRouter router(options);

    std::vector<std::uint64_t> gids;
    for (int i = 0; i < 8; ++i) {
      const std::string response = router.route(ingest_request({}));
      ASSERT_EQ(status_of(response), "ok") << response;
      gids.push_back(std::stoull(
          std::string(xml::parse(response).root->child_text("objectID"))));
    }
    std::sort(gids.begin(), gids.end());
    primary.durable->flush();
    ASSERT_TRUE(wait_until([&] {
      return replica.catalog.object_count() == primary.catalog.object_count() &&
             replica.catalog.version() == primary.catalog.version();
    }));

    // A cursor issued while the primary serves...
    const std::string first_page = router.route(theme_query_wire(true, 3));
    ASSERT_EQ(status_of(first_page), "ok");
    const std::string cursor =
        parse_query_payload(parse_response(first_page).payload, true).next_cursor;
    ASSERT_FALSE(cursor.empty());

    // ... then the primary dies hard.
    primary_server->shutdown();
    primary_server.reset();

    // Reads fail over to the replica under the same gids.
    std::uint64_t shard0_gid = 0, shard1_gid = 0;
    for (const std::uint64_t gid : gids) {
      (shard_of(gid, 2) == 0 ? shard0_gid : shard1_gid) = gid;
    }
    const std::string failed_over = router.route(
        "<catalogRequest type=\"fetch\" objectID=\"" +
        std::to_string(shard0_gid) + "\"/>");
    ASSERT_EQ(status_of(failed_over), "ok") << failed_over;
    const xml::Document doc = xml::parse(failed_over);
    const auto results = doc.root->first_child("results")->children_named("result");
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(*results[0]->attribute("objectID"), std::to_string(shard0_gid));

    // The serving set changed, so the old cursor is stale — never wrong rows.
    const std::string resumed = router.route(theme_query_wire(true, 3, cursor));
    EXPECT_EQ(code_of(resumed), "stale_cursor") << resumed;

    // A fresh query is complete (replica covers shard 0) and not partial.
    const std::string fresh = router.route(theme_query_wire(true));
    ASSERT_EQ(status_of(fresh), "ok") << fresh;
    EXPECT_EQ(fresh.find("<partial"), std::string::npos);
    EXPECT_EQ(ids_of(fresh), gids);

    // Mutations never fail over to the read-only replica.
    EXPECT_EQ(code_of(router.route("<catalogRequest type=\"delete\" objectID=\"" +
                                   std::to_string(shard0_gid) + "\"/>")),
              "unavailable");
    // The live shard keeps accepting writes.
    EXPECT_EQ(status_of(router.route("<catalogRequest type=\"delete\" objectID=\"" +
                                     std::to_string(shard1_gid) + "\"/>")),
              "ok");

    shipper.stop();
    replica.listener.stop();
    primary.durable->close();
  }
  std::filesystem::remove_all(dir);
}

TEST(Router, StatsMergeSumsShardsAndReportsTopology) {
  FedCluster cluster(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(status_of(cluster.route(ingest_request({}))), "ok");
  }
  const std::string stats = cluster.route("<catalogRequest type=\"stats\"/>");
  ASSERT_EQ(status_of(stats), "ok") << stats;
  const xml::Document doc = xml::parse(stats);
  const xml::Node* merged = doc.root->first_child("stats");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(*merged->attribute("objects"), "5");
  EXPECT_EQ(*merged->attribute("shards"), "2");
  const auto children = merged->children_named("shard");
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(*children[0]->attribute("endpoint"), "primary");
}

TEST(Router, BrokerSurfaceDrainsAndRefusesLateWork) {
  FedCluster cluster(1);
  ASSERT_EQ(status_of(cluster.route(ingest_request("doc"))), "ok");

  cluster.router->drain();
  std::string late;
  cluster.router->submit_async(
      "<catalogRequest type=\"stats\"/>", [&](std::string r) { late = std::move(r); },
      true);
  EXPECT_EQ(code_of(late), "draining");
}

}  // namespace
}  // namespace hxrc::fed
