// The Fig. 4 pipeline expressed in SQL over the catalog's own shredded
// tables — demonstrating that the hybrid storage really is plain relational
// data ("the results returned by the database", §5) and cross-checking the
// C++ query engine against an independent SQL formulation.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "core/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace hxrc::core {
namespace {

class SqlPipeline : public ::testing::Test {
 protected:
  SqlPipeline()
      : schema_(workload::lead_schema()), catalog_(schema_, workload::lead_annotations(), [] {
          CatalogConfig config;
          config.shred.auto_define_dynamic = true;
          return config;
        }()) {
    workload::DocumentGenerator generator;
    for (std::uint64_t i = 0; i < 80; ++i) {
      catalog_.ingest(generator.generate(i), "d", "bench");
    }
  }

  /// Resolves a dynamic element definition id.
  std::int64_t elem_def(const std::string& attr, const std::string& model,
                        const std::string& elem) {
    const AttributeDef* def = catalog_.registry().find_attribute(attr, model, kNoAttr);
    if (def == nullptr) return -1;
    const ElementDef* e = catalog_.registry().find_element(elem, model, def->id);
    return e == nullptr ? -1 : e->id;
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
};

TEST_F(SqlPipeline, SingleElementCriterionViaSql) {
  const std::int64_t dx = elem_def("grid", "ARPS", "dx");
  ASSERT_GE(dx, 0);
  const double value = workload::parameter_value("dx", 1);

  // SQL formulation: objects with an element row matching the criterion.
  const rel::ResultSet sql_result = catalog_.database().execute(
      "SELECT DISTINCT object_id FROM elem_data WHERE elem_id = " + std::to_string(dx) +
      " AND value_num = " + std::to_string(value) + " ORDER BY object_id");

  const auto engine_result =
      catalog_.query(workload::dynamic_param_query("grid", "ARPS", "dx", value));

  ASSERT_EQ(sql_result.size(), engine_result.size());
  for (std::size_t i = 0; i < engine_result.size(); ++i) {
    EXPECT_EQ(sql_result.rows[i][0].as_int(), engine_result[i]);
  }
  EXPECT_FALSE(engine_result.empty());  // the sweep must exercise real rows
}

TEST_F(SqlPipeline, InstanceCountingViaSql) {
  // Two criteria that must hold within ONE attribute instance: the count-
  // based grouping of Fig. 4, stage 2, expressed as GROUP BY ... HAVING.
  // Discover a pair of element definitions that actually co-occur in a
  // top-level instance of this corpus.
  const rel::Table& elem_data = catalog_.database().require_table("elem_data");
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, std::set<std::int64_t>>
      per_instance;
  for (const rel::Row& row : elem_data.rows()) {
    per_instance[{row[0].as_int(), row[1].as_int(), row[2].as_int()}].insert(
        row[3].as_int());
  }
  std::int64_t elem_a = -1;
  std::int64_t elem_b = -1;
  for (const auto& [key, elems] : per_instance) {
    const AttributeDef& def =
        catalog_.registry().attribute(std::get<1>(key));
    if (def.parent != kNoAttr || def.kind != AttrKind::kDynamic) continue;
    if (elems.size() < 2) continue;
    auto it = elems.begin();
    elem_a = *it++;
    elem_b = *it;
    break;
  }
  ASSERT_GE(elem_a, 0);
  ASSERT_GE(elem_b, 0);

  // Stage the query criteria in a temp table, exactly as §4 describes.
  catalog_.database().execute("CREATE TABLE query_elems (qe INT, elem_id INT)");
  catalog_.database().execute("INSERT INTO query_elems VALUES (0," +
                              std::to_string(elem_a) + "),(1," + std::to_string(elem_b) +
                              ")");

  const rel::ResultSet sql_result = catalog_.database().execute(
      "SELECT DISTINCT e.object_id FROM elem_data e "
      "JOIN query_elems q ON e.elem_id = q.elem_id "
      "GROUP BY e.object_id, e.attr_id, e.seq "
      "HAVING COUNT(DISTINCT q.qe) = 2 "
      "ORDER BY e.object_id");
  ASSERT_FALSE(sql_result.empty());

  const ElementDef& def_a = catalog_.registry().element(elem_a);
  const ElementDef& def_b = catalog_.registry().element(elem_b);
  const AttributeDef& owner = catalog_.registry().attribute(def_a.attribute);
  ObjectQuery query;
  AttrQuery attr(owner.name, owner.source);
  attr.require_element(def_a.name, def_a.source);
  attr.require_element(def_b.name, def_b.source);
  query.add_attribute(std::move(attr));
  const auto engine_result = catalog_.query(query);

  ASSERT_EQ(sql_result.size(), engine_result.size());
  for (std::size_t i = 0; i < engine_result.size(); ++i) {
    EXPECT_EQ(sql_result.rows[i][0].as_int(), engine_result[i]);
  }
}

TEST_F(SqlPipeline, RequiredAncestorsViaSql) {
  // §5: the distinct ancestors required for an object's response, computed
  // by joining attr_clobs with the order_ancestors inverted list.
  const rel::ResultSet ancestors = catalog_.database().execute(
      "SELECT DISTINCT a.anc_order FROM attr_clobs c "
      "JOIN order_ancestors a ON c.order_id = a.order_id "
      "WHERE c.object_id = 0 ORDER BY a.anc_order");
  ASSERT_FALSE(ancestors.empty());
  // Order 0 (the document root) is an ancestor of every stored attribute.
  EXPECT_EQ(ancestors.rows[0][0].as_int(), 0);

  // Joining with schema_order yields the tag names, set-based.
  const rel::ResultSet tags = catalog_.database().execute(
      "SELECT DISTINCT s.tag FROM attr_clobs c "
      "JOIN order_ancestors a ON c.order_id = a.order_id "
      "JOIN schema_order s ON a.anc_order = s.order_id "
      "WHERE c.object_id = 0");
  bool found_root = false;
  for (const rel::Row& row : tags.rows) {
    if (row[0].as_string() == "LEADresource") found_root = true;
  }
  EXPECT_TRUE(found_root);
}

TEST_F(SqlPipeline, SelectivityStatisticsViaSql) {
  // The catalog's tables support ad-hoc analytics: value distribution of a
  // parameter across the corpus.
  const std::int64_t dx = elem_def("grid", "ARPS", "dx");
  ASSERT_GE(dx, 0);
  const rel::ResultSet histogram = catalog_.database().execute(
      "SELECT value_num, COUNT(*) AS n FROM elem_data WHERE elem_id = " +
      std::to_string(dx) + " GROUP BY value_num ORDER BY n DESC");
  std::int64_t total = 0;
  for (const rel::Row& row : histogram.rows) total += row[1].as_int();
  const rel::ResultSet direct = catalog_.database().execute(
      "SELECT COUNT(*) FROM elem_data WHERE elem_id = " + std::to_string(dx));
  EXPECT_EQ(total, direct.rows[0][0].as_int());
}

TEST_F(SqlPipeline, LikeSearchOverKeywords) {
  // Keyword substring search via LIKE on the shredded theme keywords.
  const AttributeDef* theme = catalog_.registry().find_attribute("theme", "", kNoAttr);
  ASSERT_NE(theme, nullptr);
  const ElementDef* themekey = catalog_.registry().find_element("themekey", "", theme->id);
  ASSERT_NE(themekey, nullptr);
  const rel::ResultSet hits = catalog_.database().execute(
      "SELECT DISTINCT object_id FROM elem_data WHERE elem_id = " +
      std::to_string(themekey->id) + " AND value_str LIKE '%precipitation%'");
  // Cross-check against two exact-match engine queries.
  const auto a = catalog_.query(
      workload::theme_keyword_query("convective_precipitation_amount"));
  const auto b = catalog_.query(
      workload::theme_keyword_query("convective_precipitation_flux"));
  const auto c = catalog_.query(workload::theme_keyword_query("precipitation_flux"));
  std::vector<ObjectId> expected;
  expected.insert(expected.end(), a.begin(), a.end());
  expected.insert(expected.end(), b.begin(), b.end());
  expected.insert(expected.end(), c.begin(), c.end());
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()), expected.end());
  EXPECT_EQ(hits.size(), expected.size());
}

}  // namespace
}  // namespace hxrc::core
