// Crash recovery: the crash matrix (a kill at every WAL record boundary and
// mid-record), snapshot + tail recovery, delete across snapshot boundaries,
// cursor staleness across restarts, and full query-suite equality after a
// restart.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/catalog.hpp"
#include "storage/fault_fs.hpp"
#include "storage/recovery.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/canonical.hpp"

namespace hxrc::storage {
namespace {

using core::MetadataCatalog;
using core::ObjectId;

core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("hxrc_rec_" + name)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// WAL options that fsync eagerly — the matrix tests care about record
/// boundaries, not group-commit timing.
WalOptions eager_sync() {
  WalOptions options;
  options.fsync_every_n = 1;
  options.fsync_every_ms = 1;
  return options;
}

/// Two catalogs hold the same metadata: same objects, same tombstones, and
/// canonically identical reconstructions of every live object.
void expect_equal_catalogs(MetadataCatalog& recovered, MetadataCatalog& oracle) {
  ASSERT_EQ(recovered.object_count(), oracle.object_count());
  ASSERT_EQ(recovered.deleted_count(), oracle.deleted_count());
  for (ObjectId id = 0; id < static_cast<ObjectId>(oracle.object_count()); ++id) {
    ASSERT_EQ(recovered.is_deleted(id), oracle.is_deleted(id)) << "object " << id;
    if (oracle.is_deleted(id)) continue;
    EXPECT_EQ(xml::canonical(recovered.fetch(id)), xml::canonical(oracle.fetch(id)))
        << "object " << id;
  }
}

/// The mutation script the crash matrix kills at every point of. Each step
/// is exactly one WAL record, so "first K records" == "first K steps".
std::vector<std::function<void(MetadataCatalog&)>> mutation_script() {
  workload::DocumentGenerator generator;
  const auto docs = std::make_shared<std::vector<xml::Document>>(generator.corpus(8));
  std::vector<std::function<void(MetadataCatalog&)>> steps;
  for (int i = 0; i < 3; ++i) {
    steps.push_back([docs, i](MetadataCatalog& c) {
      c.ingest((*docs)[static_cast<std::size_t>(i)], "doc-" + std::to_string(i), "alice");
    });
  }
  steps.push_back([](MetadataCatalog& c) {
    c.define_dynamic_attribute("wrfparams", "WRF",
                               {{"nx", xml::LeafType::kInt, "WRF"},
                                {"dt", xml::LeafType::kDouble, "WRF"}},
                               core::Visibility::kUser, "bob");
  });
  steps.push_back([](MetadataCatalog& c) {
    // The sub-attribute id depends on how many definitions the ingests
    // auto-registered; look the parent up by the replayed state.
    const core::AttrDefId parent =
        static_cast<core::AttrDefId>(c.registry().attribute_count() - 1);
    c.define_dynamic_sub_attribute(parent, "nesting", "WRF",
                                   {{"ratio", xml::LeafType::kInt, ""}});
  });
  steps.push_back([docs](MetadataCatalog& c) {
    c.ingest((*docs)[3], "doc-3", "carol");
  });
  steps.push_back([](MetadataCatalog& c) {
    c.add_attribute_xml(1, "data/idinfo/keywords/theme",
                        "<theme><themekt>lead</themekt><themekey>tornado</themekey></theme>",
                        "alice");
  });
  steps.push_back([](MetadataCatalog& c) { c.delete_object(2); });
  steps.push_back([](MetadataCatalog& c) { c.create_collection("runs", "alice"); });
  steps.push_back([](MetadataCatalog& c) { c.create_collection("nested", "alice", 0); });
  steps.push_back([](MetadataCatalog& c) { c.add_to_collection(1, 3); });
  steps.push_back([docs](MetadataCatalog& c) {
    c.ingest((*docs)[4], "doc-4", "dave");
  });
  steps.push_back([](MetadataCatalog& c) { c.delete_object(0); });
  return steps;
}

/// Oracle: a never-persisted catalog with the first `k` script steps applied.
std::unique_ptr<MetadataCatalog> oracle_after(const xml::Schema& schema, std::size_t k) {
  auto catalog = std::make_unique<MetadataCatalog>(schema, workload::lead_annotations(),
                                                   auto_define_config());
  const auto steps = mutation_script();
  for (std::size_t i = 0; i < k && i < steps.size(); ++i) steps[i](*catalog);
  return catalog;
}

TEST(CrashMatrix, EveryRecordBoundaryAndMidRecordCut) {
  const xml::Schema schema = workload::lead_schema();
  const auto steps = mutation_script();

  // Run the full script durably once; keep the resulting WAL image.
  const std::string master_dir = fresh_dir("matrix_master");
  {
    MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
    DurableCatalog durable(catalog, {master_dir, eager_sync()});
    for (const auto& step : steps) step(catalog);
    durable.close();
  }
  const std::string image = real_fs().read_file(master_dir + "/" + wal_name(0));
  const WalScan full = scan_wal(image);
  ASSERT_EQ(full.records.size(), steps.size());
  ASSERT_FALSE(full.torn_tail);

  // Per-record boundary offsets (the kill points).
  std::vector<std::size_t> boundaries{sizeof kWalMagic};
  for (const WalRecord& record : full.records) {
    boundaries.push_back(boundaries.back() + 8 + 9 + record.payload.size());
  }
  ASSERT_EQ(boundaries.back(), image.size());

  const std::string dir = fresh_dir("matrix_cut");
  for (std::size_t k = 0; k < boundaries.size(); ++k) {
    // Kill exactly at the boundary after record k, and torn mid-way into
    // record k+1 — both must recover to "first k records applied".
    std::vector<std::size_t> cuts{boundaries[k]};
    if (k + 1 < boundaries.size()) {
      cuts.push_back(boundaries[k] + (boundaries[k + 1] - boundaries[k]) / 2);
    }
    for (const std::size_t cut : cuts) {
      std::filesystem::remove_all(dir);
      real_fs().create_dirs(dir);
      auto file = real_fs().create(dir + "/" + wal_name(0));
      file->write(image.data(), cut);
      file->close();

      MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
      DurableCatalog durable(catalog, {dir, eager_sync()});
      EXPECT_EQ(durable.recovery().replayed_records, k);
      EXPECT_EQ(durable.recovery().torn_tail, cut != boundaries[k]);

      const auto oracle = oracle_after(schema, k);
      expect_equal_catalogs(catalog, *oracle);

      // The torn tail was truncated in place: a second scan is clean, and a
      // post-recovery mutation appends where the valid prefix ended.
      if (k < steps.size()) steps[k](catalog);
      durable.close();
      const WalScan rescan = scan_wal(real_fs().read_file(dir + "/" + wal_name(0)));
      EXPECT_FALSE(rescan.torn_tail);
      EXPECT_EQ(rescan.records.size(), k + (k < steps.size() ? 1 : 0));
    }
  }
  std::filesystem::remove_all(master_dir);
  std::filesystem::remove_all(dir);
}

TEST(CrashMatrix, LiveKillViaFaultInjection) {
  const xml::Schema schema = workload::lead_schema();
  const auto steps = mutation_script();
  const std::string dir = fresh_dir("livekill");

  // "Power-cut" the filesystem at an awkward byte count mid-script: the
  // in-flight record is torn on disk, and the writer poisons — exactly a
  // process that died with unacknowledged appends.
  FaultFs fs(real_fs());
  std::size_t acknowledged = 0;
  {
    MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
    DurableCatalog durable(catalog, {dir, eager_sync()}, fs);
    fs.fail_after_bytes(3000);  // 3000 more bytes, then the "power cut"
    try {
      for (const auto& step : steps) {
        step(catalog);
        durable.flush();  // the acknowledgment point under group commit
        ++acknowledged;
      }
      FAIL() << "fault never fired";
    } catch (const WalError&) {
      // The step whose flush failed is NOT counted: the client never got
      // an acknowledgement for it.
    }
    // The dead process persists nothing more (its writer is poisoned; the
    // torn file is what recovery gets).
  }
  fs.clear_faults();

  // What actually reached "disk" decides everything below. Every
  // acknowledged record must be intact on disk; the failing batch may have
  // landed additional complete frames before the cut (written but never
  // fsync-acknowledged), and usually a torn partial frame after them.
  const WalScan on_disk = scan_wal(fs.read_file(dir + "/" + wal_name(0)));
  ASSERT_GE(on_disk.records.size(), acknowledged);

  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  DurableCatalog durable(catalog, {dir, eager_sync()}, fs);
  EXPECT_EQ(durable.recovery().torn_tail, on_disk.torn_tail);
  EXPECT_EQ(durable.recovery().replayed_records, on_disk.records.size());
  const auto oracle = oracle_after(schema, on_disk.records.size());
  expect_equal_catalogs(catalog, *oracle);
  durable.close();
  std::filesystem::remove_all(dir);
}

TEST(Recovery, SnapshotPlusTailAndCheckpointRotation) {
  const xml::Schema schema = workload::lead_schema();
  const auto steps = mutation_script();
  const std::string dir = fresh_dir("snap_tail");
  {
    MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
    DurableCatalog durable(catalog, {dir, eager_sync()});
    for (std::size_t i = 0; i < 6; ++i) steps[i](catalog);
    durable.checkpoint();
    EXPECT_EQ(durable.wal_seq(), 1u);
    // The superseded pair is gone; the live pair exists.
    EXPECT_FALSE(real_fs().exists(dir + "/" + wal_name(0)));
    EXPECT_TRUE(real_fs().exists(dir + "/" + snapshot_name(1)));
    for (std::size_t i = 6; i < steps.size(); ++i) steps[i](catalog);
    durable.close();
    // Only the tail since the checkpoint is in the live WAL.
    const WalScan scan = scan_wal(real_fs().read_file(dir + "/" + wal_name(1)));
    EXPECT_EQ(scan.records.size(), steps.size() - 6);
  }
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  DurableCatalog durable(catalog, {dir, eager_sync()});
  EXPECT_TRUE(durable.recovery().snapshot_loaded);
  EXPECT_EQ(durable.recovery().snapshot_seq, 1u);
  EXPECT_EQ(durable.recovery().replayed_records, steps.size() - 6);
  const auto oracle = oracle_after(schema, steps.size());
  expect_equal_catalogs(catalog, *oracle);
  durable.close();
  std::filesystem::remove_all(dir);
}

TEST(Recovery, DeleteAndReingestAcrossSnapshotBoundaryNoResurrection) {
  const xml::Schema schema = workload::lead_schema();
  workload::DocumentGenerator generator;
  const auto docs = generator.corpus(4);
  const std::string dir = fresh_dir("no_resurrect");
  ObjectId victim = -1;
  ObjectId replacement = -1;
  {
    MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
    DurableCatalog durable(catalog, {dir, eager_sync()});
    victim = catalog.ingest(docs[0], "victim", "alice");
    catalog.ingest(docs[1], "bystander", "alice");
    catalog.delete_object(victim);
    durable.checkpoint();  // tombstone is now *only* in the snapshot
    replacement = catalog.ingest(docs[2], "victim", "alice");  // same name, new object
    durable.close();
  }
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  DurableCatalog durable(catalog, {dir, eager_sync()});
  // Ids are never reused, the tombstone survives the snapshot boundary, and
  // the re-ingested namesake is a distinct live object.
  EXPECT_NE(replacement, victim);
  EXPECT_TRUE(catalog.is_deleted(victim));
  EXPECT_FALSE(catalog.is_deleted(replacement));
  EXPECT_EQ(catalog.object_count(), 3u);
  EXPECT_THROW(catalog.fetch(victim), core::ValidationError);
  EXPECT_EQ(xml::canonical(catalog.fetch(replacement)), xml::canonical(docs[2]));
  durable.close();
  std::filesystem::remove_all(dir);
}

TEST(Recovery, CursorsGoStaleAcrossRestart) {
  const xml::Schema schema = workload::lead_schema();
  const std::string dir = fresh_dir("stale_cursor");
  constexpr std::size_t kDocs = 6;
  // Every Fig. 3 document carries this theme keyword, so the paged query
  // matches all of them two at a time.
  const auto paged_query = [] {
    core::ObjectQuery q = workload::theme_keyword_query("convective_precipitation_flux");
    q.set_limit(2);
    return q;
  };
  std::string cursor;
  std::uint64_t pre_crash_version = 0;
  {
    MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
    DurableCatalog durable(catalog, {dir, eager_sync()});
    for (std::size_t i = 0; i < kDocs; ++i) {
      catalog.ingest_xml(workload::fig3_document(), "d" + std::to_string(i), "u");
    }
    const core::QueryPage page = catalog.query_paged(paged_query());
    ASSERT_FALSE(page.next_cursor.empty());
    cursor = page.next_cursor;
    pre_crash_version = catalog.version();
    durable.flush();
    // Scope exit closes cleanly: zero records are lost, which is the
    // interesting case — staleness must come from the restart itself.
  }
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  DurableCatalog durable(catalog, {dir, eager_sync()});
  // Epochs are monotonic across restarts — strictly past the dead
  // process's — so its cursors are stale even though no record was lost.
  EXPECT_GT(catalog.version(), pre_crash_version);
  core::ObjectQuery resumed = paged_query();
  resumed.set_cursor(cursor);
  EXPECT_THROW(catalog.query_paged(resumed), core::StaleCursorError);
  // A fresh query works and sees everything.
  EXPECT_EQ(catalog.query(workload::theme_keyword_query("convective_precipitation_flux"))
                .size(),
            kDocs);
  durable.close();
  std::filesystem::remove_all(dir);
}

TEST(Recovery, EmptyDirIsAFreshStart) {
  const xml::Schema schema = workload::lead_schema();
  const std::string dir = fresh_dir("fresh");
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  DurableCatalog durable(catalog, {dir, eager_sync()});
  EXPECT_FALSE(durable.recovery().snapshot_loaded);
  EXPECT_EQ(durable.recovery().replayed_records, 0u);
  EXPECT_FALSE(durable.recovery().torn_tail);
  catalog.ingest_xml(workload::fig3_document(), "a", "u");
  durable.close();
  EXPECT_TRUE(real_fs().exists(dir + "/" + wal_name(0)));
  std::filesystem::remove_all(dir);
}

TEST(Recovery, CorruptNewestSnapshotFallsBackToOlder) {
  const xml::Schema schema = workload::lead_schema();
  const std::string dir = fresh_dir("fallback");
  real_fs().create_dirs(dir);
  // Valid snapshot 1 (one object), corrupt snapshot 2, and a wal.1 tail.
  MetadataCatalog source(schema, workload::lead_annotations(), auto_define_config());
  source.ingest_xml(workload::fig3_document(), "a", "u");
  write_snapshot_file(real_fs(), dir, 1, encode_snapshot(source, false), nullptr);
  std::string corrupt = encode_snapshot(source, false);
  corrupt[corrupt.size() / 3] ^= 0x10;
  write_snapshot_file(real_fs(), dir, 2, corrupt, nullptr);
  {
    // Produce a wal.1.log tail by running a durable catalog seeded from
    // snapshot 1 in a directory that does not have snapshot 2 yet.
    const std::string side = fresh_dir("fallback_side");
    real_fs().create_dirs(side);
    write_snapshot_file(real_fs(), side, 1, encode_snapshot(source, false), nullptr);
    MetadataCatalog tail(schema, workload::lead_annotations(), auto_define_config());
    DurableCatalog durable(tail, {side, eager_sync()});
    tail.ingest_xml(workload::fig3_document(), "b", "u");
    durable.close();
    real_fs().rename(side + "/" + wal_name(1), dir + "/" + wal_name(1));
    std::filesystem::remove_all(side);
  }

  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  DurableCatalog durable(catalog, {dir, eager_sync()});
  EXPECT_TRUE(durable.recovery().snapshot_loaded);
  EXPECT_EQ(durable.recovery().snapshot_seq, 1u);
  EXPECT_EQ(durable.recovery().replayed_records, 1u);
  EXPECT_EQ(catalog.object_count(), 2u);
  // The corrupt newer snapshot was cleaned out of the directory.
  EXPECT_FALSE(real_fs().exists(dir + "/" + snapshot_name(2)));
  durable.close();
  std::filesystem::remove_all(dir);
}

TEST(Recovery, RestartAnswersFullQuerySuiteIdentically) {
  // The E3-style gate: a restarted catalog answers the whole generated
  // query suite exactly as the pre-crash oracle did.
  const xml::Schema schema = workload::lead_schema();
  workload::DocumentGenerator generator;
  const auto docs = generator.corpus(60);
  const std::string dir = fresh_dir("query_suite");

  MetadataCatalog oracle(schema, workload::lead_annotations(), auto_define_config());
  {
    MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
    DurableCatalog durable(catalog, {dir, eager_sync()});
    for (std::size_t i = 0; i < docs.size(); ++i) {
      const std::string name = "doc-" + std::to_string(i);
      catalog.ingest(docs[i], name, "u");
      oracle.ingest(docs[i], name, "u");
      if (i % 2 == 0) durable.checkpoint();  // exercise snapshot+tail mixes
    }
    catalog.delete_object(7);
    oracle.delete_object(7);
    catalog.delete_object(33);
    oracle.delete_object(33);
    durable.flush();
    // Everything is flushed; scope exit stands in for the crash.
  }

  MetadataCatalog recovered(schema, workload::lead_annotations(), auto_define_config());
  DurableCatalog durable(recovered, {dir, eager_sync()});
  expect_equal_catalogs(recovered, oracle);

  workload::QueryGenerator queries;
  for (std::uint64_t q = 0; q < 40; ++q) {
    const core::ObjectQuery query = queries.generate(q);
    EXPECT_EQ(recovered.query(query), oracle.query(query)) << "query " << q;
  }
  EXPECT_EQ(recovered.query(workload::paper_example_query()),
            oracle.query(workload::paper_example_query()));
  durable.close();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hxrc::storage
