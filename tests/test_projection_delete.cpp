// Projected responses (return only the requested attributes) and object
// deletion (tombstones: unqueryable, unfetchable, persisted).
#include <gtest/gtest.h>

#include <sstream>

#include "core/catalog.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/parser.hpp"

namespace hxrc::core {
namespace {

CatalogConfig auto_define_config() {
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

class ProjectionTest : public ::testing::Test {
 protected:
  ProjectionTest()
      : schema_(workload::lead_schema()),
        catalog_(schema_, workload::lead_annotations(), auto_define_config()) {
    id_ = catalog_.ingest_xml(workload::fig3_document(), "fig3", "alice");
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  ObjectId id_ = -1;
};

TEST_F(ProjectionTest, ProjectedResponseContainsOnlyRequestedAttributes) {
  const std::vector<ObjectId> ids{id_};
  const std::string response =
      catalog_.build_response(ids, {"data/idinfo/keywords/theme"});
  const xml::Document doc = xml::parse(response);
  const xml::Node* result = doc.root->first_child("result");
  ASSERT_NE(result, nullptr);

  // Themes (and their required ancestors) present; detailed and resourceID
  // absent.
  const auto themes = xml::select(*result, "LEADresource/data/idinfo/keywords/theme");
  EXPECT_EQ(themes.size(), 2u);
  EXPECT_TRUE(xml::select(*result, "//detailed").empty());
  EXPECT_TRUE(xml::select(*result, "//resourceID").empty());
  EXPECT_TRUE(xml::select(*result, "//geospatial").empty());
}

TEST_F(ProjectionTest, ProjectionWithMultiplePaths) {
  const std::vector<ObjectId> ids{id_};
  const std::string response = catalog_.build_response(
      ids, {"resourceID", "data/geospatial/eainfo/detailed"});
  const xml::Document doc = xml::parse(response);
  const xml::Node* result = doc.root->first_child("result");
  EXPECT_FALSE(xml::select(*result, "//resourceID").empty());
  EXPECT_FALSE(xml::select(*result, "//detailed").empty());
  EXPECT_TRUE(xml::select(*result, "//theme").empty());
}

TEST_F(ProjectionTest, ProjectionOfAbsentAttributeYieldsEmptyResult) {
  const std::vector<ObjectId> ids{id_};
  // Fig. 3 has no citation.
  const std::string response =
      catalog_.build_response(ids, {"data/idinfo/citation"});
  const xml::Document doc = xml::parse(response);
  const xml::Node* result = doc.root->first_child("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->children().empty());
}

TEST_F(ProjectionTest, UnknownProjectionPathThrows) {
  const std::vector<ObjectId> ids{id_};
  EXPECT_THROW(catalog_.build_response(ids, {"data/nope"}), ValidationError);
}

TEST_F(ProjectionTest, DeleteHidesFromQueriesAndFetch) {
  ASSERT_EQ(catalog_.query(workload::paper_example_query()).size(), 1u);
  catalog_.delete_object(id_);
  EXPECT_TRUE(catalog_.query(workload::paper_example_query()).empty());
  EXPECT_THROW(catalog_.fetch(id_), ValidationError);
  EXPECT_TRUE(catalog_.is_deleted(id_));

  // Responses silently skip deleted objects.
  const std::vector<ObjectId> ids{id_};
  const xml::Document doc = xml::parse(catalog_.build_response(ids));
  EXPECT_TRUE(doc.root->children_named("result").empty());
}

TEST_F(ProjectionTest, DeleteValidatesIds) {
  EXPECT_THROW(catalog_.delete_object(-1), ValidationError);
  EXPECT_THROW(catalog_.delete_object(999), ValidationError);
}

TEST_F(ProjectionTest, OtherObjectsUnaffectedByDelete) {
  const ObjectId other = catalog_.ingest_xml(workload::fig3_document(), "b", "alice");
  catalog_.delete_object(id_);
  const auto hits = catalog_.query(workload::paper_example_query());
  EXPECT_EQ(hits, std::vector<ObjectId>{other});
  EXPECT_NO_THROW(catalog_.fetch(other));
}

TEST_F(ProjectionTest, TombstonesSurvivePersistence) {
  catalog_.ingest_xml(workload::fig3_document(), "b", "alice");
  catalog_.delete_object(id_);

  std::stringstream stream;
  catalog_.save(stream);

  xml::Schema schema2 = workload::lead_schema();
  MetadataCatalog restored(schema2, workload::lead_annotations(), auto_define_config());
  restored.restore(stream);
  EXPECT_TRUE(restored.is_deleted(id_));
  EXPECT_EQ(restored.query(workload::paper_example_query()).size(), 1u);
}

}  // namespace
}  // namespace hxrc::core
