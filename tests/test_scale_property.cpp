// Scale-tier property suites (EXPERIMENTS.md E14 acceptance): the DOM
// oracle and snapshot isolation re-checked against the streamed scale
// corpus instead of the small property corpora.
//
// Gated by HXRC_SCALE_TIER ("10k" / "100k" / "1m"): unset, the suite skips
// so the tier-1 ctest run stays fast. The scale-smoke CI job and the local
// 1M acceptance runs set it explicitly:
//
//   HXRC_SCALE_TIER=100k ./tests/test_scale_property
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "baselines/dom_matcher.hpp"
#include "core/catalog.hpp"
#include "rel/postings.hpp"
#include "storage/clob_pager.hpp"
#include "workload/lead_schema.hpp"
#include "workload/scale.hpp"
#include "xml/canonical.hpp"

namespace hxrc {
namespace {

const workload::ScaleTier* env_tier() {
  const char* name = std::getenv("HXRC_SCALE_TIER");
  if (name == nullptr || name[0] == '\0') return nullptr;
  return &workload::scale_tier(name);
}

core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

std::string temp_page_file(const char* tag) {
  return ::testing::TempDir() + "scale_property_" + tag + ".pages";
}

// The full production configuration at tier scale — compressed postings and
// CLOB paging on — must agree with DOM evaluation over the identical
// regenerated corpus, and round-trip documents byte-identically through the
// spilled CLOB path.
TEST(ScaleProperty, DomOracleAgreesAtTier) {
  const workload::ScaleTier* tier = env_tier();
  if (tier == nullptr) GTEST_SKIP() << "set HXRC_SCALE_TIER to run";
  rel::PostingList::set_compression(true);

  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  const std::string page_path = temp_page_file("oracle");
  storage::PagedClobFile pager(page_path);
  catalog.database().clobs().enable_paging(&pager, 4u << 20, 8);

  workload::ingest_scale_corpus(catalog, *tier, [&](std::size_t done) {
    std::fprintf(stderr, "[scale-property] %zu/%zu ingested\n", done,
                 tier->documents);
  });
  catalog.database().clobs().flush();
  ASSERT_GT(catalog.database().clobs().spilled_bytes(), 0u);

  const auto queries = workload::scale_query_mix(*tier, 12);
  std::vector<std::vector<core::ObjectId>> actual;
  for (const auto& q : queries) actual.push_back(catalog.query(q));

  // Oracle sweep: regenerate the corpus (deterministic seed) one document
  // at a time and evaluate every query against the DOM. Round-trip checks
  // sample ~200 documents evenly, covering cold CLOB page-ins.
  const baselines::DomMatcher oracle(catalog.partition());
  workload::DocumentGenerator generator(workload::scale_config(*tier));
  const std::size_t roundtrip_stride = std::max<std::size_t>(tier->documents / 200, 1);
  std::vector<std::vector<core::ObjectId>> expected(queries.size());
  for (std::size_t d = 0; d < tier->documents; ++d) {
    const xml::Document doc = generator.generate(d);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      if (oracle.matches(doc, queries[qi])) {
        expected[qi].push_back(static_cast<core::ObjectId>(d));
      }
    }
    if (d % roundtrip_stride == 0) {
      ASSERT_EQ(xml::canonical(catalog.fetch(static_cast<core::ObjectId>(d))),
                xml::canonical(doc))
          << "round-trip mismatch for document " << d;
    }
  }
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(actual[qi], expected[qi]) << "query " << qi;
  }
  std::remove(page_path.c_str());
}

// Snapshot isolation at tier scale: a reader pinned before churn must see
// byte-identical answers while writers ingest, delete, and rotate
// snapshots over the fully-loaded catalog.
TEST(ScaleProperty, PinnedSnapshotSurvivesChurnAtTier) {
  const workload::ScaleTier* tier = env_tier();
  if (tier == nullptr) GTEST_SKIP() << "set HXRC_SCALE_TIER to run";
  rel::PostingList::set_compression(true);

  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  const std::string page_path = temp_page_file("snapshot");
  storage::PagedClobFile pager(page_path);
  catalog.database().clobs().enable_paging(&pager, 4u << 20, 8);

  workload::ingest_scale_corpus(catalog, *tier, [&](std::size_t done) {
    std::fprintf(stderr, "[scale-property] %zu/%zu ingested\n", done,
                 tier->documents);
  });

  const auto queries = workload::scale_query_mix(*tier, 12);
  constexpr int kChurnDocs = 256;
  constexpr int kChurnRounds = 16;
  workload::DocumentGenerator generator(workload::scale_config(*tier));

  {
    const core::MetadataCatalog::ReadGuard guard(catalog);
    const std::uint64_t pinned_epoch = guard.epoch();
    std::vector<std::vector<core::ObjectId>> pinned_hits;
    std::vector<std::string> pinned_responses;
    for (const auto& q : queries) {
      pinned_hits.push_back(guard.query(q));
      pinned_responses.push_back(guard.build_response(pinned_hits.back()));
    }

    std::vector<std::thread> churn;
    churn.emplace_back([&] {
      for (int i = 0; i < kChurnDocs; ++i) {
        catalog.ingest(generator.generate(tier->documents + static_cast<std::size_t>(i)),
                       "churn-" + std::to_string(i), "scale");
      }
    });
    churn.emplace_back([&] {
      for (int i = 0; i < kChurnRounds; ++i) {
        catalog.delete_object(static_cast<core::ObjectId>(i * 7 % 100));
      }
    });
    churn.emplace_back([&] {
      for (int i = 0; i < kChurnRounds; ++i) catalog.publish();
    });

    for (int round = 0; round < kChurnRounds; ++round) {
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        ASSERT_EQ(guard.query(queries[qi]), pinned_hits[qi])
            << "round " << round << " query " << qi;
        ASSERT_EQ(guard.build_response(pinned_hits[qi]), pinned_responses[qi])
            << "round " << round << " query " << qi;
      }
      ASSERT_EQ(guard.epoch(), pinned_epoch);
    }
    for (std::thread& t : churn) t.join();
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      EXPECT_EQ(guard.query(queries[qi]), pinned_hits[qi]);
    }
    EXPECT_GT(catalog.version(), pinned_epoch);
  }

  EXPECT_EQ(catalog.object_count(), tier->documents + kChurnDocs);
  EXPECT_GT(catalog.deleted_count(), 0u);
  catalog.quiesce_epochs();
  EXPECT_EQ(catalog.mvcc_stats().retired_pending, 0u);
  std::remove(page_path.c_str());
}

}  // namespace
}  // namespace hxrc
