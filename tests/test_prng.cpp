#include <gtest/gtest.h>

#include <set>

#include "util/prng.hpp"

namespace hxrc::util {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(7);
  Prng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Prng, UniformRespectsBounds) {
  Prng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Prng, UniformCoversRange) {
  Prng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, UniformDegenerateRange) {
  Prng rng(1);
  EXPECT_EQ(rng.uniform(4, 4), 4);
}

TEST(Prng, Uniform01InHalfOpenInterval) {
  Prng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, ChanceExtremes) {
  Prng rng(3);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Prng, ChanceApproximatesProbability) {
  Prng rng(23);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Prng, PickReturnsMembers) {
  Prng rng(11);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Prng, ShuffleIsPermutation) {
  Prng rng(13);
  std::vector<int> items{1, 2, 3, 4, 5, 6};
  auto copy = items;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

TEST(Prng, IdentifierShapeAndDeterminism) {
  Prng a(77);
  Prng b(77);
  const auto ida = a.identifier(12);
  EXPECT_EQ(ida.size(), 12u);
  for (const char c : ida) {
    EXPECT_TRUE(c >= 'a' && c <= 'z');
  }
  EXPECT_EQ(ida, b.identifier(12));
}

TEST(Prng, ForkIsIndependentStream) {
  Prng parent(55);
  Prng fork = parent.fork();
  EXPECT_NE(parent.next(), fork.next());
}

TEST(Splitmix, KnownProgression) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_NE(s1, 42u);  // state advances
}

}  // namespace
}  // namespace hxrc::util
