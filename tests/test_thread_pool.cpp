#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/thread_pool.hpp"

namespace hxrc::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeMatchesConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  parallel_for(pool, 0, counts.size(),
               [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, ComputesSum) {
  ThreadPool pool(4);
  std::vector<long> values(10000);
  std::iota(values.begin(), values.end(), 0L);
  std::atomic<long> total{0};
  parallel_for(pool, 0, values.size(),
               [&](std::size_t i) { total.fetch_add(values[i]); });
  EXPECT_EQ(total.load(), 10000L * 9999L / 2);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [&](std::size_t i) {
                              if (i == 37) throw std::runtime_error("bad index");
                            }),
               std::runtime_error);
}

}  // namespace
}  // namespace hxrc::util
