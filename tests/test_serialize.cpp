// Persistence: database serialization round-trips and whole-catalog
// save/restore (queries, responses, definitions, and sequences survive).
#include <gtest/gtest.h>

#include <sstream>

#include "core/catalog.hpp"
#include "rel/serialize.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/canonical.hpp"

namespace hxrc {
namespace {

TEST(DatabaseSerialize, RoundTripsTablesAndClobs) {
  rel::Database db;
  rel::Table& t = db.create_table(
      "t", rel::TableSchema{{"i", rel::Type::kInt},
                            {"d", rel::Type::kDouble},
                            {"s", rel::Type::kString}});
  t.create_hash_index("by_i", {"i"});
  t.append(rel::Row{rel::Value(std::int64_t{1}), rel::Value(2.5),
                    rel::Value("hello world")});
  t.append(rel::Row{rel::Value::null(), rel::Value::null(),
                    rel::Value("with\nnewline and 'quotes'")});
  db.clobs().append("<clob>payload</clob>");
  db.clobs().append(std::string("\0binary-ish\n", 12));

  std::stringstream stream;
  rel::save_database(db, stream);

  rel::Database loaded;
  rel::Table& lt = loaded.create_table(
      "t", rel::TableSchema{{"i", rel::Type::kInt},
                            {"d", rel::Type::kDouble},
                            {"s", rel::Type::kString}});
  lt.create_hash_index("by_i", {"i"});
  rel::load_database_into(loaded, stream);

  ASSERT_EQ(lt.row_count(), 2u);
  EXPECT_EQ(lt.row(0)[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(lt.row(0)[1].as_double(), 2.5);
  EXPECT_EQ(lt.row(0)[2].as_string(), "hello world");
  EXPECT_TRUE(lt.row(1)[0].is_null());
  EXPECT_EQ(lt.row(1)[2].as_string(), "with\nnewline and 'quotes'");
  // Index was rebuilt on load.
  EXPECT_EQ(lt.index("by_i")->lookup(rel::Key{{rel::Value(std::int64_t{1})}}).size(), 1u);
  ASSERT_EQ(loaded.clobs().count(), 2u);
  EXPECT_EQ(loaded.clobs().get(0), "<clob>payload</clob>");
  EXPECT_EQ(loaded.clobs().get(1), std::string("\0binary-ish\n", 12));
}

TEST(DatabaseSerialize, LoadClearsExistingRows) {
  rel::Database db;
  db.create_table("t", rel::TableSchema{{"x", rel::Type::kInt}});
  std::stringstream stream;
  rel::save_database(db, stream);  // empty table

  rel::Database target;
  rel::Table& t = target.create_table("t", rel::TableSchema{{"x", rel::Type::kInt}});
  t.append(rel::Row{rel::Value(std::int64_t{9})});
  rel::load_database_into(target, stream);
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(DatabaseSerialize, RejectsGarbage) {
  rel::Database db;
  std::stringstream bad("NOTADB 1\n");
  EXPECT_THROW(rel::load_database_into(db, bad), rel::SerializeError);
  std::stringstream truncated("HXRCDB 1\nclobs 2\n3 abc\n");
  EXPECT_THROW(rel::load_database_into(db, truncated), rel::SerializeError);
  std::stringstream unknown_table("HXRCDB 1\nclobs 0\ntable 1 z 1 0\nend\n");
  EXPECT_THROW(rel::load_database_into(db, unknown_table), rel::SerializeError);
}

TEST(DatabaseSerializeBinary, RoundTripsTablesClobsAndInternedValues) {
  rel::Database db;
  rel::Table& t = db.create_table(
      "t", rel::TableSchema{{"i", rel::Type::kInt},
                            {"d", rel::Type::kDouble},
                            {"s", rel::Type::kString}});
  t.create_hash_index("by_i", {"i"});
  static const std::string kInterned = "shared-model-name";
  t.append(rel::Row{rel::Value(std::int64_t{-7}), rel::Value(0.1),
                    rel::Value::interned(&kInterned)});
  t.append(rel::Row{rel::Value::null(), rel::Value::null(),
                    rel::Value(std::string("\0binary\xff\n", 9))});
  db.clobs().append("<clob>payload</clob>");

  std::stringstream stream;
  rel::save_database_binary(db, stream);

  rel::Database loaded;
  rel::Table& lt = loaded.create_table(
      "t", rel::TableSchema{{"i", rel::Type::kInt},
                            {"d", rel::Type::kDouble},
                            {"s", rel::Type::kString}});
  lt.create_hash_index("by_i", {"i"});
  rel::load_database_into_binary(loaded, stream);

  ASSERT_EQ(lt.row_count(), 2u);
  EXPECT_EQ(lt.row(0)[0].as_int(), -7);
  // Bit-exact doubles (the text format only guarantees shortest round-trip).
  EXPECT_EQ(lt.row(0)[1].as_double(), 0.1);
  // Interned values serialize by content and come back as owned strings.
  EXPECT_EQ(lt.row(0)[2].as_string(), kInterned);
  EXPECT_FALSE(lt.row(0)[2].is_interned());
  EXPECT_EQ(lt.row(1)[2].as_string(), std::string("\0binary\xff\n", 9));
  EXPECT_EQ(lt.index("by_i")->lookup(rel::Key{{rel::Value(std::int64_t{-7})}}).size(), 1u);
  ASSERT_EQ(loaded.clobs().count(), 1u);
  EXPECT_EQ(loaded.clobs().get(0), "<clob>payload</clob>");
}

TEST(DatabaseSerializeBinary, ToleratesLeadingWhitespaceAndRejectsCorruption) {
  rel::Database db;
  db.create_table("t", rel::TableSchema{{"x", rel::Type::kInt}});
  std::stringstream stream;
  stream << "\n";  // the seam a text header leaves in a mixed stream
  rel::save_database_binary(db, stream);

  rel::Database target;
  target.create_table("t", rel::TableSchema{{"x", rel::Type::kInt}});
  rel::load_database_into_binary(target, stream);  // must skip the newline

  std::stringstream bad("XXXXXXXX");
  EXPECT_THROW(rel::load_database_into_binary(target, bad), rel::SerializeError);

  // Truncated mid-stream: error, never a partial load that looks complete.
  std::stringstream full;
  rel::save_database_binary(db, full);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() - 4));
  EXPECT_THROW(rel::load_database_into_binary(target, cut), rel::SerializeError);
}

core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

TEST(CatalogPersistence, FullSaveRestoreRoundTrip) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog original(schema, workload::lead_annotations(),
                                 auto_define_config());
  workload::DocumentGenerator generator;
  const auto docs = generator.corpus(40);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    original.ingest(docs[i], "d" + std::to_string(i), "alice");
  }
  const core::CollectionId experiment = original.create_collection("exp", "alice");
  original.add_to_collection(experiment, 3);
  original.add_to_collection(experiment, 7);
  original.thesaurus().add_synonym("spacing", "", "dx", "ARPS");

  std::stringstream stream;
  original.save(stream);

  xml::Schema schema2 = workload::lead_schema();
  core::MetadataCatalog restored(schema2, workload::lead_annotations(),
                                 auto_define_config());
  restored.restore(stream);

  // Same definitions.
  EXPECT_EQ(restored.registry().attribute_count(), original.registry().attribute_count());
  EXPECT_EQ(restored.registry().element_count(), original.registry().element_count());

  // Same query results.
  workload::QueryGenerator queries;
  for (std::uint64_t q = 0; q < 20; ++q) {
    const core::ObjectQuery query = queries.generate(q);
    EXPECT_EQ(restored.query(query), original.query(query)) << "query " << q;
  }

  // Same reconstructed documents.
  for (std::size_t i = 0; i < docs.size(); i += 9) {
    EXPECT_EQ(xml::canonical(docs[i]),
              xml::canonical(restored.fetch(static_cast<core::ObjectId>(i))));
  }

  // Collections and thesaurus survived.
  EXPECT_EQ(restored.collection_members(experiment, true),
            (std::vector<core::ObjectId>{3, 7}));
  EXPECT_TRUE(restored.thesaurus().resolve("spacing", "").has_value());
}

TEST(CatalogPersistence, IngestContinuesAfterRestore) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog original(schema, workload::lead_annotations(),
                                 auto_define_config());
  const auto id = original.ingest_xml(workload::fig3_document(), "fig3", "alice");

  std::stringstream stream;
  original.save(stream);

  xml::Schema schema2 = workload::lead_schema();
  core::MetadataCatalog restored(schema2, workload::lead_annotations(),
                                 auto_define_config());
  restored.restore(stream);

  // New objects get fresh ids; late inserts continue the right sequences.
  const auto next = restored.ingest_xml(workload::fig3_document(), "again", "alice");
  EXPECT_EQ(next, id + 1);
  restored.add_attribute_xml(
      id, "data/idinfo/keywords/theme",
      "<theme><themekt>CF NetCDF</themekt><themekey>air_temperature</themekey></theme>");
  const xml::Document doc = restored.fetch(id);
  const auto themes = xml::select(*doc.root, "data/idinfo/keywords/theme");
  ASSERT_EQ(themes.size(), 3u);
  EXPECT_EQ(themes[2]->child_text("themekey"), "air_temperature");
}

TEST(CatalogPersistence, RestoreRequiresFreshCatalogAndMatchingSchema) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog original(schema, workload::lead_annotations(),
                                 auto_define_config());
  original.ingest_xml(workload::fig3_document(), "fig3", "alice");
  std::stringstream stream;
  original.save(stream);

  // A catalog that already auto-defined dynamic attributes cannot restore.
  xml::Schema schema2 = workload::lead_schema();
  core::MetadataCatalog dirty(schema2, workload::lead_annotations(),
                              auto_define_config());
  dirty.ingest_xml(workload::fig3_document(), "other", "bob");
  EXPECT_THROW(dirty.restore(stream), core::ValidationError);
}

}  // namespace
}  // namespace hxrc
