// Concurrency stress: mixed ingest / query / add_attribute / delete /
// stats traffic against ONE catalog, plus the same mix pushed through the
// ServiceDispatcher. Run under ThreadSanitizer via
// `cmake -DHXRC_SANITIZE=thread` (the CI concurrency job); the assertions
// here are deliberately invariant-shaped — TSan provides the race
// detection, the test provides the interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "baselines/dom_matcher.hpp"
#include "core/browse.hpp"
#include "core/dispatcher.hpp"
#include "core/service.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::core {
namespace {

CatalogConfig auto_define_config() {
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

/// CI matrix knobs: the mvcc-stress job raises the thread count and varies
/// the PRNG seed without recompiling.
std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

// Sized for TSan: enough operations to interleave every pair of request
// kinds, small enough to finish in seconds at 10-15x slowdown.
constexpr int kPreloaded = 8;
constexpr int kWriterDocs = 24;
constexpr int kReaderRounds = 40;

TEST(CatalogConcurrency, MixedIngestQueryAddDeleteStress) {
  static xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());

  // Pre-generate every document and query before any thread starts — the
  // generator is not part of the system under test.
  workload::DocumentGenerator generator;
  std::vector<xml::Document> docs;
  for (int i = 0; i < kPreloaded + kWriterDocs; ++i) {
    docs.push_back(generator.generate(static_cast<std::uint64_t>(i)));
  }
  workload::QueryGenerator query_gen;
  std::vector<ObjectQuery> queries;
  for (std::uint64_t q = 0; q < 16; ++q) queries.push_back(query_gen.generate(q));

  for (int i = 0; i < kPreloaded; ++i) {
    catalog.ingest(docs[static_cast<std::size_t>(i)], "seed", "u");
  }

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;

  // Writer: steady ingest.
  threads.emplace_back([&] {
    for (int i = 0; i < kWriterDocs; ++i) {
      catalog.ingest(docs[static_cast<std::size_t>(kPreloaded + i)], "w", "u");
    }
  });

  // Writer: late-arriving metadata attributes on the preloaded objects.
  threads.emplace_back([&] {
    for (int i = 0; i < kReaderRounds; ++i) {
      catalog.add_attribute_xml(
          i % kPreloaded, "data/idinfo/keywords/theme",
          "<theme><themekt>CF</themekt><themekey>stress_key_" + std::to_string(i) +
              "</themekey></theme>",
          "u");
    }
  });

  // Writer: tombstones half of the preloaded objects, then re-deletes
  // (idempotent) to keep contending.
  threads.emplace_back([&] {
    for (int i = 0; i < kReaderRounds; ++i) {
      catalog.delete_object(i % (kPreloaded / 2));
    }
  });

  // Readers: full queries, paginated queries with cursor continuation
  // (stale cursors are expected — writers are live), fetches, responses.
  const int readers =
      static_cast<int>(std::max<std::size_t>(2, env_size("HXRC_STRESS_THREADS", 2)));
  for (int reader = 0; reader < readers; ++reader) {
    threads.emplace_back([&, reader] {
      for (int round = 0; round < kReaderRounds; ++round) {
        const ObjectQuery& q =
            queries[static_cast<std::size_t>((round + reader) % queries.size())];
        const std::vector<ObjectId> hits = catalog.query(q);
        for (const ObjectId id : hits) {
          EXPECT_GE(id, 0);
          EXPECT_LT(static_cast<std::size_t>(id), catalog.object_count());
        }
        catalog.build_response(hits);

        ObjectQuery paged = q;
        paged.set_limit(3);
        try {
          QueryPage page = catalog.query_paged(paged);
          if (!page.next_cursor.empty()) {
            ObjectQuery next = q;
            next.set_limit(3).set_cursor(page.next_cursor);
            catalog.query_paged(next);
          }
        } catch (const StaleCursorError&) {
          // A writer moved the epoch between pages — the designed outcome.
        }

        try {
          catalog.fetch(round % kPreloaded);
        } catch (const ValidationError&) {
          // Tombstoned by the deleter thread — also fine.
        }
      }
    });
  }

  // Reader: stats surface + browser + version monotonicity.
  threads.emplace_back([&] {
    CatalogBrowser browser(catalog);
    std::uint64_t last_version = 0;
    for (int round = 0; round < kReaderRounds; ++round) {
      const std::uint64_t version = catalog.version();
      EXPECT_GE(version, last_version);
      last_version = version;
      catalog.stats_snapshot();
      catalog.deleted_count();
      browser.attributes("u");
    }
  });

  for (std::thread& t : threads) t.join();
  writers_done.store(true);

  // Quiesced invariants: every ingest landed, tombstones filter queries.
  EXPECT_EQ(catalog.object_count(), static_cast<std::size_t>(kPreloaded + kWriterDocs));
  EXPECT_EQ(catalog.deleted_count(), static_cast<std::size_t>(kPreloaded / 2));
  for (const ObjectQuery& q : queries) {
    for (const ObjectId id : catalog.query(q)) {
      EXPECT_FALSE(catalog.is_deleted(id));
    }
  }
  // The epoch counted every mutation at least once.
  EXPECT_GE(catalog.version(), static_cast<std::uint64_t>(kWriterDocs + kReaderRounds));
}

// Snapshot isolation: a reader that pins an epoch and then keeps reading
// while writers delete, re-ingest, and rotate snapshots must see EXACTLY
// its pinned epoch's results on every re-read — byte-identical responses,
// tombstones of its epoch only — and those results must agree with the DOM
// oracle evaluated over the documents that existed at the pin. TSan runs
// this with real concurrent commits; the equality assertions catch any
// torn read a data race would produce.
TEST(CatalogConcurrency, PinnedSnapshotIsImmuneToConcurrentCommits) {
  static xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());

  const auto seed = static_cast<std::uint64_t>(env_size("HXRC_STRESS_SEED", 0));
  const std::size_t churners = std::max<std::size_t>(2, env_size("HXRC_STRESS_THREADS", 2));

  constexpr int kSeedDocs = 12;
  constexpr int kChurnDocs = 16;
  constexpr int kChurnRounds = 24;
  workload::DocumentGenerator generator;
  std::vector<xml::Document> docs;
  for (int i = 0; i < kSeedDocs + kChurnDocs; ++i) {
    docs.push_back(generator.generate(seed + static_cast<std::uint64_t>(i)));
  }
  workload::QueryGenerator query_gen;
  std::vector<ObjectQuery> queries;
  for (std::uint64_t q = 0; q < 8; ++q) queries.push_back(query_gen.generate(seed + q));

  for (int i = 0; i < kSeedDocs; ++i) {
    catalog.ingest(docs[static_cast<std::size_t>(i)], "seed", "u");
  }

  {
    // Pin BEFORE any churn starts.
    const MetadataCatalog::ReadGuard guard(catalog);
    const std::uint64_t pinned_epoch = guard.epoch();

    std::vector<std::vector<ObjectId>> pinned_hits;
    std::vector<std::string> pinned_responses;
    for (const ObjectQuery& q : queries) {
      pinned_hits.push_back(guard.query(q));
      pinned_responses.push_back(guard.build_response(pinned_hits.back()));
    }

    // Oracle cross-check at the pinned epoch: the snapshot's answer to
    // every query equals DOM evaluation over exactly the seed documents.
    const baselines::DomMatcher oracle(catalog.partition());
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      for (int d = 0; d < kSeedDocs; ++d) {
        const bool in_hits =
            std::binary_search(pinned_hits[qi].begin(), pinned_hits[qi].end(),
                               static_cast<ObjectId>(d));
        EXPECT_EQ(in_hits,
                  oracle.matches(docs[static_cast<std::size_t>(d)], queries[qi]))
            << "query " << qi << " object " << d;
      }
    }

    // Churn: concurrent deletes, re-ingest, and snapshot rotation.
    std::vector<std::thread> threads;
    threads.emplace_back([&] {
      for (int i = 0; i < kChurnRounds; ++i) catalog.delete_object(i % kSeedDocs);
    });
    threads.emplace_back([&] {
      for (int i = 0; i < kChurnDocs; ++i) {
        catalog.ingest(docs[static_cast<std::size_t>(kSeedDocs + i)], "churn", "u");
      }
    });
    for (std::size_t extra = 2; extra < churners; ++extra) {
      threads.emplace_back([&, extra] {
        for (int i = 0; i < kChurnRounds; ++i) {
          catalog.add_attribute_xml(
              static_cast<ObjectId>((i + static_cast<int>(extra)) % kSeedDocs),
              "data/idinfo/keywords/theme",
              "<theme><themekt>CF</themekt><themekey>churn_" + std::to_string(extra) +
                  "_" + std::to_string(i) + "</themekey></theme>",
              "u");
        }
      });
    }
    // Rotator: publishes fresh snapshots without a version bump, retiring
    // the previous one each time — reclamation churn under the reader.
    threads.emplace_back([&] {
      for (int i = 0; i < kChurnRounds; ++i) catalog.publish();
    });

    // The pinned reader re-reads while the churn runs: every answer must
    // be identical to the pre-churn answer.
    for (int round = 0; round < kChurnRounds; ++round) {
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        EXPECT_EQ(guard.query(queries[qi]), pinned_hits[qi]) << "round " << round;
        EXPECT_EQ(guard.build_response(pinned_hits[qi]), pinned_responses[qi])
            << "round " << round;
      }
      EXPECT_EQ(guard.epoch(), pinned_epoch);
      EXPECT_TRUE(guard->deleted->empty());  // deletes are after the pin
    }

    for (std::thread& t : threads) t.join();

    // Churn is quiesced but the guard still pins: one more full re-read.
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      EXPECT_EQ(guard.query(queries[qi]), pinned_hits[qi]);
      EXPECT_EQ(guard.build_response(pinned_hits[qi]), pinned_responses[qi]);
    }
    // The catalog has moved on — the pin is what holds this epoch's view.
    EXPECT_GT(catalog.version(), pinned_epoch);
  }

  // Guard dropped: fresh reads see the churned state, and reclamation can
  // now free everything the pin was holding.
  EXPECT_EQ(catalog.object_count(), static_cast<std::size_t>(kSeedDocs + kChurnDocs));
  EXPECT_GT(catalog.deleted_count(), 0u);
  for (const ObjectQuery& q : queries) {
    for (const ObjectId id : catalog.query(q)) {
      EXPECT_FALSE(catalog.is_deleted(id));
    }
  }
  catalog.quiesce_epochs();
  EXPECT_EQ(catalog.mvcc_stats().retired_pending, 0u);
  EXPECT_GT(catalog.mvcc_stats().reclamations, 0u);
}

TEST(DispatcherConcurrency, MixedRequestStormThroughDispatcher) {
  static xml::Schema schema = workload::lead_schema();
  MetadataCatalog catalog(schema, workload::lead_annotations(), auto_define_config());
  ServiceDispatcher dispatcher(catalog,
                               DispatcherConfig{.workers = 4, .max_queue = 1024});

  workload::DocumentGenerator generator;
  std::vector<std::string> ingest_requests;
  for (int i = 0; i < 12; ++i) {
    ingest_requests.push_back(
        "<catalogRequest type=\"ingest\" name=\"doc\">" +
        xml::write(generator.generate(static_cast<std::uint64_t>(i))) +
        "</catalogRequest>");
  }
  workload::QueryGenerator query_gen;
  std::vector<std::string> query_requests;
  for (std::uint64_t q = 0; q < 8; ++q) {
    ObjectQuery query = query_gen.generate(q);
    query.set_limit(4);
    query_requests.push_back(query_to_xml(query));
  }

  // Seed one object so fetches can succeed.
  dispatcher.call(ingest_requests[0]);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 24;
  std::vector<std::future<std::string>> futures(
      static_cast<std::size_t>(kSubmitters * kPerSubmitter));
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const int kind = (s + i) % 6;
        std::string request;
        switch (kind) {
          case 0:
            request = ingest_requests[static_cast<std::size_t>(i % 12)];
            break;
          case 1:
          case 2:
            request = query_requests[static_cast<std::size_t>(i % 8)];
            break;
          case 3:
            request = "<catalogRequest type=\"fetch\" objectID=\"0\"/>";
            break;
          case 4:
            request = "<catalogRequest type=\"stats\"/>";
            break;
          default:
            request = "<catalogRequest type=\"bogus\"/>";
            break;
        }
        futures[static_cast<std::size_t>(s * kPerSubmitter + i)] =
            dispatcher.submit(std::move(request));
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  std::size_t ok = 0, errors = 0;
  for (auto& future : futures) {
    const xml::Document response = xml::parse(future.get());
    ASSERT_EQ(response.root->name(), "catalogResponse");
    if (*response.root->attribute("status") == "ok") {
      ++ok;
    } else {
      ++errors;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(errors, 0u);  // the bogus requests

  // Metrics reconcile with what was submitted: every admitted request was
  // handled exactly once, and handled = ok + errors + timeouts per slot.
  const util::MetricsRegistry& metrics = dispatcher.metrics();
  std::uint64_t handled = 0, rejected = 0;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const util::RequestStats& slot = metrics.at(i);
    handled += slot.handled.load();
    rejected += slot.rejected.load();
    EXPECT_EQ(slot.handled.load(),
              slot.ok.load() + slot.errors.load() + slot.timeouts.load());
    EXPECT_EQ(slot.latency.count(), slot.handled.load());
  }
  EXPECT_EQ(handled + rejected, futures.size() + 1);  // +1 seed ingest
  EXPECT_EQ(rejected, 0u);  // queue was sized for the storm

  // drain() waits for epoch-reclamation quiescence: after it returns no
  // retired snapshot or index generation may still be pending (the ASan CI
  // job turns a violated promise here into a leak report).
  dispatcher.drain();
  EXPECT_EQ(catalog.mvcc_stats().retired_pending, 0u);
}

}  // namespace
}  // namespace hxrc::core
