#include <gtest/gtest.h>

#include <vector>

#include "rel/table.hpp"

namespace hxrc::rel {
namespace {

Table make_table() {
  return Table("t", TableSchema{{"id", Type::kInt},
                                {"name", Type::kString},
                                {"score", Type::kDouble}});
}

TEST(Table, AppendAndRead) {
  Table t = make_table();
  const RowId id = t.append(Row{Value(std::int64_t{1}), Value("a"), Value(0.5)});
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.row(0)[1].as_string(), "a");
}

TEST(Table, ValidatesArity) {
  Table t = make_table();
  EXPECT_THROW(t.append(Row{Value(std::int64_t{1})}), TypeError);
}

TEST(Table, ValidatesTypes) {
  Table t = make_table();
  EXPECT_THROW(t.append(Row{Value("not-int"), Value("a"), Value(0.5)}), TypeError);
  // NULLs are allowed in any column; ints widen into double columns.
  EXPECT_NO_THROW(
      t.append(Row{Value::null(), Value::null(), Value(std::int64_t{1})}));
}

TEST(Table, HashIndexLookup) {
  Table t = make_table();
  t.create_hash_index("by_name", {"name"});
  t.append(Row{Value(std::int64_t{1}), Value("a"), Value(0.1)});
  t.append(Row{Value(std::int64_t{2}), Value("b"), Value(0.2)});
  t.append(Row{Value(std::int64_t{3}), Value("a"), Value(0.3)});

  const Index* index = t.index("by_name");
  ASSERT_NE(index, nullptr);
  const auto hits = index->lookup(Key{{Value("a")}});
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(index->lookup(Key{{Value("zzz")}}).empty());
}

TEST(Table, IndexBackfillsExistingRows) {
  Table t = make_table();
  t.append(Row{Value(std::int64_t{1}), Value("a"), Value(0.1)});
  const HashIndex* index = t.create_hash_index("by_id", {"id"});
  EXPECT_EQ(index->lookup(Key{{Value(std::int64_t{1})}}).size(), 1u);
}

TEST(Table, CompositeKeyIndex) {
  Table t = make_table();
  t.create_hash_index("compound", {"id", "name"});
  t.append(Row{Value(std::int64_t{1}), Value("a"), Value(0.1)});
  t.append(Row{Value(std::int64_t{1}), Value("b"), Value(0.2)});
  const Index* index = t.index("compound");
  EXPECT_EQ(index->lookup(Key{{Value(std::int64_t{1}), Value("a")}}).size(), 1u);
}

TEST(Table, OrderedIndexRange) {
  Table t = make_table();
  const OrderedIndex* index = t.create_ordered_index("by_score", {"score"});
  for (int i = 0; i < 10; ++i) {
    t.append(Row{Value(std::int64_t{i}), Value("x"), Value(i * 1.0)});
  }
  const auto hits = index->range(Key{{Value(3.0)}}, Key{{Value(6.0)}});
  EXPECT_EQ(hits.size(), 4u);  // 3,4,5,6
}

TEST(Table, IndexOnResolvesByColumns) {
  Table t = make_table();
  t.create_hash_index("by_id", {"id"});
  EXPECT_NE(t.index_on({0}), nullptr);
  EXPECT_EQ(t.index_on({1}), nullptr);
}

TEST(Table, MergeFromAppendsAndIndexes) {
  Table a = make_table();
  a.create_hash_index("by_id", {"id"});
  Table b = make_table();
  b.append(Row{Value(std::int64_t{7}), Value("m"), Value(1.0)});
  b.append(Row{Value(std::int64_t{8}), Value("n"), Value(2.0)});
  a.merge_from(b);
  EXPECT_EQ(a.row_count(), 2u);
  EXPECT_EQ(a.index("by_id")->lookup(Key{{Value(std::int64_t{8})}}).size(), 1u);
}

TEST(Table, MergeArityMismatchThrows) {
  Table a = make_table();
  Table b("other", TableSchema{{"x", Type::kInt}});
  EXPECT_THROW(a.merge_from(b), TypeError);
}

TEST(Table, TruncateClearsRowsAndKeepsIndexDefinitions) {
  Table t = make_table();
  t.create_hash_index("by_id", {"id"});
  t.create_ordered_index("by_score", {"score"});
  t.append(Row{Value(std::int64_t{1}), Value("a"), Value(0.1)});
  t.truncate();
  EXPECT_EQ(t.row_count(), 0u);
  ASSERT_NE(t.index("by_id"), nullptr);
  EXPECT_EQ(t.index("by_id")->entry_count(), 0u);
  // New rows index correctly after truncate.
  t.append(Row{Value(std::int64_t{2}), Value("b"), Value(0.2)});
  EXPECT_EQ(t.index("by_id")->lookup(Key{{Value(std::int64_t{2})}}).size(), 1u);
  EXPECT_NE(dynamic_cast<const OrderedIndex*>(t.index("by_score")), nullptr);
}

TEST(Table, MergeMoveDrainsSource) {
  Table a = make_table();
  a.create_hash_index("by_id", {"id"});
  Table b = make_table();
  b.append(Row{Value(std::int64_t{7}), Value("m"), Value(1.0)});
  b.append(Row{Value(std::int64_t{8}), Value("n"), Value(2.0)});
  a.merge_move_from(b);
  EXPECT_EQ(a.row_count(), 2u);
  EXPECT_EQ(b.row_count(), 0u);
  EXPECT_EQ(a.index("by_id")->lookup(Key{{Value(std::int64_t{7})}}).size(), 1u);
  // The drained table remains usable.
  b.append(Row{Value(std::int64_t{9}), Value("p"), Value(3.0)});
  EXPECT_EQ(b.row_count(), 1u);
}

TEST(Table, ApproxBytesGrowsWithData) {
  Table t = make_table();
  const std::size_t empty = t.approx_bytes();
  t.append(Row{Value(std::int64_t{1}), Value(std::string(1000, 'x')), Value(0.1)});
  EXPECT_GT(t.approx_bytes(), empty + 900);
}


TEST(Table, AppendBatchMatchesSingleAppendsAndMaintainsIndexes) {
  Table batched = make_table();
  Table serial = make_table();
  for (Table* t : {&batched, &serial}) {
    t->create_hash_index("by_name", {"name"});
    t->create_ordered_index("by_id", {"id"});
  }

  std::vector<Row> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back(Row{Value(std::int64_t{i}), Value(i % 2 ? "odd" : "even"),
                       Value(i * 0.5)});
  }
  for (const Row& row : rows) serial.append(Row(row));

  const RowId first = batched.append_batch(std::move(rows));
  EXPECT_EQ(first, 0u);
  EXPECT_TRUE(rows.empty());  // consumed, capacity reusable

  ASSERT_EQ(batched.row_count(), serial.row_count());
  for (RowId id = 0; id < batched.row_count(); ++id) {
    EXPECT_EQ(batched.row(id), serial.row(id));
  }
  EXPECT_EQ(batched.index("by_name")->lookup(Key{{Value("odd")}}).size(),
            serial.index("by_name")->lookup(Key{{Value("odd")}}).size());
}

TEST(Table, AppendBatchValidatesEveryRow) {
  Table t = make_table();
  std::vector<Row> rows;
  rows.push_back(Row{Value(std::int64_t{1}), Value("ok"), Value(0.1)});
  rows.push_back(Row{Value("not-int"), Value("bad"), Value(0.2)});
  EXPECT_THROW(t.append_batch(std::move(rows)), TypeError);
}

TEST(Table, AppendBatchAfterExistingRowsContinuesRowIds) {
  Table t = make_table();
  t.create_hash_index("by_name", {"name"});
  t.append(Row{Value(std::int64_t{0}), Value("pre"), Value(0.0)});
  std::vector<Row> rows;
  rows.push_back(Row{Value(std::int64_t{1}), Value("post"), Value(1.0)});
  rows.push_back(Row{Value(std::int64_t{2}), Value("post"), Value(2.0)});
  EXPECT_EQ(t.append_batch(std::move(rows)), 1u);
  EXPECT_EQ(t.index("by_name")->lookup(Key{{Value("post")}}).size(), 2u);
  EXPECT_EQ(t.index("by_name")->lookup(Key{{Value("pre")}}).size(), 1u);
}

}  // namespace
}  // namespace hxrc::rel
