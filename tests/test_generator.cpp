#include <gtest/gtest.h>

#include "core/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "xml/canonical.hpp"
#include "xml/writer.hpp"

namespace hxrc::workload {
namespace {

TEST(Generator, DeterministicPerSeedAndIndex) {
  DocumentGenerator a;
  DocumentGenerator b;
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(xml::canonical(a.generate(i)), xml::canonical(b.generate(i)));
  }
}

TEST(Generator, DifferentIndicesDiffer) {
  DocumentGenerator generator;
  EXPECT_NE(xml::canonical(generator.generate(0)), xml::canonical(generator.generate(1)));
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig config_a;
  GeneratorConfig config_b;
  config_b.seed = 43;
  DocumentGenerator a(config_a);
  DocumentGenerator b(config_b);
  EXPECT_NE(xml::canonical(a.generate(0)), xml::canonical(b.generate(0)));
}

TEST(Generator, DocumentsConformToSchema) {
  // Every generated document must ingest without validation errors.
  xml::Schema schema = lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  core::MetadataCatalog catalog(schema, lead_annotations(), config);
  DocumentGenerator generator;
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_NO_THROW(catalog.ingest(generator.generate(i), "d", "u")) << "doc " << i;
  }
  EXPECT_EQ(catalog.total_stats().unshredded_dynamic, 0u);
}

TEST(Generator, RespectsThemeBounds) {
  GeneratorConfig config;
  config.themes_min = 2;
  config.themes_max = 2;
  config.theme_keys_min = 3;
  config.theme_keys_max = 3;
  DocumentGenerator generator(config);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const xml::Document doc = generator.generate(i);
    const auto themes = xml::select(*doc.root, "data/idinfo/keywords/theme");
    EXPECT_EQ(themes.size(), 2u);
    for (const xml::Node* theme : themes) {
      EXPECT_EQ(theme->children_named("themekey").size(), 3u);
    }
  }
}

TEST(Generator, CorpusSizeAndDeterminism) {
  DocumentGenerator generator;
  const auto docs = generator.corpus(5);
  ASSERT_EQ(docs.size(), 5u);
  EXPECT_EQ(xml::canonical(docs[3]), xml::canonical(generator.generate(3)));
}

TEST(Generator, ParameterValuesAreStable) {
  EXPECT_DOUBLE_EQ(parameter_value("dx", 0), parameter_value("dx", 0));
  EXPECT_NE(parameter_value("dx", 0), parameter_value("dx", 1));
  EXPECT_NE(parameter_value("dx", 0), parameter_value("dz", 0));
}

TEST(Generator, NestingBoundIsRespected) {
  GeneratorConfig config;
  config.sub_attr_probability = 1.0;  // always nest when allowed
  config.max_nesting = 2;
  DocumentGenerator generator(config);
  const xml::Document doc = generator.generate(0);
  // No attr chain deeper than max_nesting + 1 levels of <attr>.
  const auto check = [&](auto&& self, const xml::Node& node, int depth) -> void {
    EXPECT_LE(depth, 3);
    for (const xml::Node* child : node.children_named("attr")) {
      self(self, *child, depth + 1);
    }
  };
  for (const xml::Node* detailed :
       xml::select(*doc.root, "data/geospatial/eainfo/detailed")) {
    for (const xml::Node* item : detailed->children_named("attr")) {
      check(check, *item, 1);
    }
  }
}

TEST(Generator, PoolsAreExposed) {
  EXPECT_FALSE(cf_standard_names().empty());
  EXPECT_EQ(model_names().size(), 2u);
  EXPECT_FALSE(grid_group_names().empty());
  EXPECT_FALSE(parameter_names().empty());
}

}  // namespace
}  // namespace hxrc::workload
