// Schema partitioning: the five §2 rules, the global ordering, and the
// ancestor inverted list.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "workload/lead_schema.hpp"

namespace hxrc {
namespace {

using core::AttributeAnnotation;
using core::Partition;
using core::PartitionAnnotations;
using core::PartitionError;

TEST(Partition, LeadAnnotationsSatisfyRules) {
  const xml::Schema schema = workload::lead_schema();
  const auto diagnostics = Partition::check_rules(schema, workload::lead_annotations());
  for (const auto& d : diagnostics) {
    ADD_FAILURE() << d.path << ": " << d.message;
  }
}

TEST(Partition, BuildsOrderedRegion) {
  const xml::Schema schema = workload::lead_schema();
  const Partition partition = Partition::build(schema, workload::lead_annotations());

  // Root is order 0 and an ancestor.
  const auto& ordered = partition.ordered_nodes();
  ASSERT_FALSE(ordered.empty());
  EXPECT_EQ(ordered[0].tag, "LEADresource");
  EXPECT_EQ(ordered[0].order, 0);
  EXPECT_FALSE(ordered[0].is_attribute_root);
  // Root's last child is the maximum order.
  EXPECT_EQ(ordered[0].last_child, static_cast<core::OrderId>(ordered.size() - 1));

  // Orders are dense pre-order ids.
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    EXPECT_EQ(ordered[i].order, static_cast<core::OrderId>(i));
    if (ordered[i].parent != core::kNoOrder) {
      EXPECT_LT(ordered[i].parent, ordered[i].order);
    }
    EXPECT_GE(ordered[i].last_child, ordered[i].order);
  }

  // Attribute roots close immediately (last_child == own order, §2).
  for (const auto& root : partition.attribute_roots()) {
    EXPECT_EQ(ordered[static_cast<std::size_t>(root.order)].last_child, root.order)
        << root.path;
  }

  // 14 annotated attribute roots.
  EXPECT_EQ(partition.attribute_roots().size(), 14u);
}

TEST(Partition, OrderingStopsAtAttributeRoots) {
  const xml::Schema schema = workload::lead_schema();
  const Partition partition = Partition::build(schema, workload::lead_annotations());

  // theme is ordered; themekt (inside the attribute) is not.
  const xml::SchemaNode* theme = schema.find("data/idinfo/keywords/theme");
  ASSERT_NE(theme, nullptr);
  EXPECT_NE(partition.order_of(*theme), core::kNoOrder);
  const xml::SchemaNode* themekt = schema.find("data/idinfo/keywords/theme/themekt");
  ASSERT_NE(themekt, nullptr);
  EXPECT_EQ(partition.order_of(*themekt), core::kNoOrder);
  EXPECT_EQ(partition.role(*themekt), core::NodeRole::kElement);
}

TEST(Partition, AncestorInvertedListIsNearestFirst) {
  const xml::Schema schema = workload::lead_schema();
  const Partition partition = Partition::build(schema, workload::lead_annotations());

  const xml::SchemaNode* theme = schema.find("data/idinfo/keywords/theme");
  const core::OrderId theme_order = partition.order_of(*theme);
  const auto& ancestors = partition.ancestors_of(theme_order);
  // LEADresource > data > idinfo > keywords > theme: 4 ancestors.
  ASSERT_EQ(ancestors.size(), 4u);
  EXPECT_EQ(partition.ordered_nodes()[static_cast<std::size_t>(ancestors[0])].tag,
            "keywords");
  EXPECT_EQ(partition.ordered_nodes()[static_cast<std::size_t>(ancestors[3])].tag,
            "LEADresource");
}

TEST(Partition, RolesAreAssigned) {
  const xml::Schema schema = workload::lead_schema();
  const Partition partition = Partition::build(schema, workload::lead_annotations());

  EXPECT_EQ(partition.role(schema.root()), core::NodeRole::kAncestor);
  EXPECT_EQ(partition.role(*schema.find("data/idinfo")), core::NodeRole::kAncestor);
  EXPECT_EQ(partition.role(*schema.find("data/idinfo/status")),
            core::NodeRole::kAttributeRoot);
  EXPECT_EQ(partition.role(*schema.find("resourceID")),
            core::NodeRole::kAttributeElement);
  EXPECT_EQ(partition.role(*schema.find("data/geospatial/eainfo/detailed/attr")),
            core::NodeRole::kSubAttribute);
  EXPECT_EQ(partition.role(*schema.find("data/geospatial/eainfo/detailed/attr/attrlabl")),
            core::NodeRole::kElement);
}

TEST(PartitionRules, UncoveredRepeatableElementIsRejected) {
  xml::Schema schema("root");
  schema.root().add_child("item").set_repeatable(true).set_leaf_type(xml::LeafType::kString);
  PartitionAnnotations annotations;  // no attribute covers "item"
  const auto diagnostics = Partition::check_rules(schema, annotations);
  EXPECT_FALSE(diagnostics.empty());
  EXPECT_THROW(Partition::build(schema, annotations), PartitionError);
}

TEST(PartitionRules, UncoveredLeafIsRejected) {
  xml::Schema schema("root");
  schema.root().add_child("group").add_child("leaf");
  PartitionAnnotations annotations;
  const auto diagnostics = Partition::check_rules(schema, annotations);
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_NE(diagnostics.front().message.find("leaf"), std::string::npos);
}

TEST(PartitionRules, NestedAttributeRootsAreRejected) {
  xml::Schema schema("root");
  auto& group = schema.root().add_child("group");
  group.add_child("inner").add_child("leaf");
  PartitionAnnotations annotations;
  annotations.attributes.push_back(AttributeAnnotation{"group", false, true});
  annotations.attributes.push_back(AttributeAnnotation{"group/inner", false, true});
  const auto diagnostics = Partition::check_rules(schema, annotations);
  EXPECT_FALSE(diagnostics.empty());
}

TEST(PartitionRules, RecursionOutsideAttributeIsRejected) {
  xml::Schema schema("root");
  auto& rec = schema.root().add_child("rec");
  rec.set_recursive(true);
  rec.add_child("leaf");
  PartitionAnnotations annotations;  // rec not annotated
  const auto diagnostics = Partition::check_rules(schema, annotations);
  EXPECT_FALSE(diagnostics.empty());
}

TEST(PartitionRules, XmlAttributeNodeOutsideAttributeIsRejected) {
  xml::Schema schema("root");
  auto& holder = schema.root().add_child("holder");
  holder.declare_xml_attribute("unit");
  holder.add_child("leaf");
  PartitionAnnotations annotations;
  const auto diagnostics = Partition::check_rules(schema, annotations);
  EXPECT_FALSE(diagnostics.empty());
}

TEST(PartitionRules, UnknownAnnotatedPathIsDiagnosed) {
  const xml::Schema schema = workload::lead_schema();
  PartitionAnnotations annotations = workload::lead_annotations();
  annotations.attributes.push_back(AttributeAnnotation{"data/nope", false, true});
  const auto diagnostics = Partition::check_rules(schema, annotations);
  ASSERT_FALSE(diagnostics.empty());
}

TEST(PartitionRules, SchemaRootCannotBeAttribute) {
  xml::Schema schema("root");
  schema.root().add_child("leaf");
  PartitionAnnotations annotations;
  annotations.attributes.push_back(AttributeAnnotation{"", false, true});
  const auto diagnostics = Partition::check_rules(schema, annotations);
  EXPECT_FALSE(diagnostics.empty());
}

TEST(PartitionInfer, InferredLeadAnnotationSatisfiesRules) {
  const xml::Schema schema = workload::lead_schema();
  const PartitionAnnotations inferred = Partition::infer(schema);
  const auto diagnostics = Partition::check_rules(schema, inferred);
  for (const auto& d : diagnostics) {
    ADD_FAILURE() << d.path << ": " << d.message;
  }
  // The recursive detailed subtree must have been marked dynamic.
  bool found_dynamic = false;
  for (const auto& annotation : inferred.attributes) {
    if (annotation.dynamic) found_dynamic = true;
  }
  EXPECT_TRUE(found_dynamic);
}

TEST(PartitionInfer, InferredPartitionBuilds) {
  const xml::Schema schema = workload::lead_schema();
  EXPECT_NO_THROW(Partition::build(schema, Partition::infer(schema)));
}

}  // namespace
}  // namespace hxrc
