// Unit tests for the durability building blocks: CRC32C, WAL framing and
// torn-tail scanning, group commit, fault injection, snapshot validity.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "core/catalog.hpp"
#include "storage/fault_fs.hpp"
#include "storage/fs.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "xml/canonical.hpp"

namespace hxrc::storage {
namespace {

core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("hxrc_dur_" + name)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Crc32c, KnownVector) {
  // The canonical CRC32C check value (RFC 3720 appendix).
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(0, digits, 9), 0xE3069283u);
}

TEST(Crc32c, SeedChaining) {
  const char data[] = "hello, wal";
  const std::uint32_t whole = crc32c(0, data, sizeof data - 1);
  // CRC32C with post-conditioning is not naively chainable byte ranges;
  // the contract we rely on is determinism and sensitivity, not chaining.
  EXPECT_NE(crc32c(0, data, sizeof data - 2), whole);
  EXPECT_EQ(crc32c(0, data, sizeof data - 1), whole);
}

std::string wal_image(const std::vector<std::pair<std::uint64_t, std::string>>& frames) {
  std::string out(kWalMagic, sizeof kWalMagic);
  for (const auto& [epoch, payload] : frames) {
    encode_frame(out, WalRecordType::kIngest, epoch, payload);
  }
  return out;
}

TEST(WalScan, EmptyAndHeaderOnly) {
  EXPECT_FALSE(scan_wal("").torn_tail);
  EXPECT_TRUE(scan_wal("").records.empty());

  const std::string header(kWalMagic, sizeof kWalMagic);
  const WalScan scan = scan_wal(header);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, sizeof kWalMagic);
}

TEST(WalScan, TornHeaderIsNotAnError) {
  const WalScan scan = scan_wal(std::string(kWalMagic, 3));
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST(WalScan, BadMagicThrows) {
  EXPECT_THROW(scan_wal("NOTAWAL!xxxxxxxx"), WalError);
}

TEST(WalScan, RoundTripsFrames) {
  const std::string image = wal_image({{1, "alpha"}, {2, "beta"}, {3, ""}});
  const WalScan scan = scan_wal(image);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, image.size());
  EXPECT_EQ(scan.records[0].payload, "alpha");
  EXPECT_EQ(scan.records[1].epoch, 2u);
  EXPECT_EQ(scan.records[2].payload, "");
  EXPECT_EQ(scan.records[0].type, WalRecordType::kIngest);
}

TEST(WalScan, EveryTruncationPointYieldsAPrefix) {
  const std::string image = wal_image({{1, "alpha"}, {2, "beta"}, {3, "gamma"}});
  const WalScan full = scan_wal(image);
  for (std::size_t cut = sizeof kWalMagic; cut < image.size(); ++cut) {
    // scan.records holds views into the scanned bytes — the prefix must
    // outlive the assertions below, not die at the end of this statement.
    const std::string prefix = image.substr(0, cut);
    const WalScan scan = scan_wal(prefix);
    // A cut mid-file loses only whole records off the end, never reorders.
    ASSERT_LE(scan.records.size(), full.records.size());
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      EXPECT_EQ(scan.records[i].payload, full.records[i].payload);
      EXPECT_EQ(scan.records[i].epoch, full.records[i].epoch);
    }
    if (cut < image.size()) {
      EXPECT_EQ(scan.torn_tail, scan.valid_bytes != cut);
    }
    EXPECT_LE(scan.valid_bytes, cut);
  }
}

TEST(WalScan, CorruptCrcStopsScan) {
  std::string image = wal_image({{1, "alpha"}, {2, "beta"}});
  image[image.size() - 1] ^= 0x40;  // flip a bit in the last record's body
  const WalScan scan = scan_wal(image);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.stop_reason, "frame CRC mismatch");
}

TEST(WalScan, ImplausibleLengthIsTorn) {
  std::string image(kWalMagic, sizeof kWalMagic);
  image += std::string("\xff\xff\xff\x7f", 4);  // 2 GiB body length
  image += std::string(12, 'x');
  const WalScan scan = scan_wal(image);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, sizeof kWalMagic);
}

TEST(WalEncoderDecoder, RoundTrip) {
  WalEncoder enc;
  enc.u8(7);
  enc.u32(123456);
  enc.u64(0xdeadbeefcafebabeull);
  enc.i64(-42);
  enc.str("metadata");
  enc.str("");
  const std::string bytes = enc.take();

  WalDecoder dec(bytes);
  EXPECT_EQ(dec.u8(), 7);
  EXPECT_EQ(dec.u32(), 123456u);
  EXPECT_EQ(dec.u64(), 0xdeadbeefcafebabeull);
  EXPECT_EQ(dec.i64(), -42);
  EXPECT_EQ(dec.str(), "metadata");
  EXPECT_EQ(dec.str(), "");
  EXPECT_TRUE(dec.done());
  EXPECT_THROW(dec.u8(), WalError);
}

TEST(WalWriter, AppendsScannableRecords) {
  const std::string dir = fresh_dir("writer");
  real_fs().create_dirs(dir);
  const std::string path = dir + "/wal.0.log";
  {
    WalWriter writer(real_fs().open_append(path), WalOptions{}, nullptr);
    EXPECT_EQ(writer.append(WalRecordType::kIngest, 1, "one"), 1u);
    EXPECT_EQ(writer.append(WalRecordType::kDelete, 2, "two"), 2u);
    writer.flush();
    EXPECT_GE(writer.fsyncs(), 1u);
    writer.close();
  }
  const WalScan scan = scan_wal(real_fs().read_file(path));
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].payload, "one");
  EXPECT_EQ(scan.records[1].type, WalRecordType::kDelete);
  EXPECT_FALSE(scan.torn_tail);
  std::filesystem::remove_all(dir);
}

TEST(WalWriter, GroupCommitBatchesFsyncs) {
  const std::string dir = fresh_dir("group");
  real_fs().create_dirs(dir);
  FaultFs fs(real_fs());
  WalOptions options;
  options.fsync_every_ms = 10'000;  // force the count-based trigger
  options.fsync_every_n = 8;
  {
    WalWriter writer(fs.open_append(dir + "/wal.0.log"), options, nullptr);
    for (int i = 0; i < 64; ++i) {
      writer.append(WalRecordType::kIngest, static_cast<std::uint64_t>(i), "p");
    }
    writer.flush();
    // 64 records at one fsync per 8 — plus at most a couple of extras from
    // flush() itself racing the flusher. Far fewer than one per record.
    EXPECT_LE(writer.fsyncs(), 16u);
    EXPECT_GE(writer.fsyncs(), 1u);
    writer.close();
  }
  EXPECT_LE(fs.syncs(), 17u);  // close() adds one more at most
  std::filesystem::remove_all(dir);
}

TEST(WalWriter, PoisonedAfterInjectedWriteFailure) {
  const std::string dir = fresh_dir("poison");
  real_fs().create_dirs(dir);
  FaultFs fs(real_fs());
  WalWriter writer(fs.open_append(dir + "/wal.0.log"), WalOptions{}, nullptr);
  writer.append(WalRecordType::kIngest, 1, "ok");
  writer.flush();  // record 1 is acknowledged durable
  fs.fail_after_bytes(5);  // tears the next batch's write mid-frame
  writer.append(WalRecordType::kIngest, 2, "torn-record-payload");
  // Appends only buffer; the failure surfaces at the acknowledgment point.
  EXPECT_THROW(writer.flush(), WalError);
  // Poisoned: even after the fault clears, the writer refuses to continue.
  fs.clear_faults();
  EXPECT_THROW(writer.append(WalRecordType::kIngest, 3, "x"), WalError);
  writer.close();

  // The torn tail on disk scans back to exactly the acknowledged prefix.
  const WalScan scan = scan_wal(fs.read_file(dir + "/wal.0.log"));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.torn_tail);
  std::filesystem::remove_all(dir);
}

TEST(FaultFs, ShortWritePersistsPrefix) {
  const std::string dir = fresh_dir("faultfs");
  real_fs().create_dirs(dir);
  FaultFs fs(real_fs());
  auto file = fs.create(dir + "/t");
  fs.fail_after_bytes(4);
  EXPECT_THROW(file->write("abcdefgh", 8), IoError);
  file->close();
  EXPECT_EQ(fs.read_file(dir + "/t"), "abcd");
  EXPECT_EQ(fs.bytes_written(), 4u);

  fs.clear_faults();
  fs.fail_syncs();
  auto file2 = fs.create(dir + "/u");
  file2->write("x", 1);
  EXPECT_THROW(file2->sync(), IoError);
  std::filesystem::remove_all(dir);
}

TEST(Snapshot, NamesParseBothWays) {
  EXPECT_EQ(snapshot_name(7), "snapshot.7.hxs");
  EXPECT_EQ(wal_name(7), "wal.7.log");
  EXPECT_EQ(parse_snapshot_name("snapshot.7.hxs"), 7u);
  EXPECT_EQ(parse_wal_name("wal.123.log"), 123u);
  EXPECT_EQ(parse_snapshot_name("snapshot.tmp"), std::nullopt);
  EXPECT_EQ(parse_snapshot_name("snapshot..hxs"), std::nullopt);
  EXPECT_EQ(parse_wal_name("wal.x.log"), std::nullopt);
}

TEST(Snapshot, RoundTripsCatalog) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  workload::DocumentGenerator generator;
  for (const xml::Document& doc : generator.corpus(20)) {
    catalog.ingest(doc, "d", "owner");
  }
  catalog.delete_object(3);

  const std::string bytes = encode_snapshot(catalog, /*locked=*/false);
  EXPECT_TRUE(snapshot_valid(bytes));

  xml::Schema schema2 = workload::lead_schema();
  core::MetadataCatalog restored(schema2, workload::lead_annotations(),
                                 auto_define_config());
  load_snapshot(restored, bytes);
  EXPECT_EQ(restored.object_count(), catalog.object_count());
  EXPECT_TRUE(restored.is_deleted(3));
  EXPECT_EQ(restored.version(), catalog.version());
  EXPECT_EQ(xml::canonical(restored.fetch(5)), xml::canonical(catalog.fetch(5)));
}

TEST(Snapshot, EveryTruncationIsInvalid) {
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                auto_define_config());
  catalog.ingest_xml(workload::fig3_document(), "a", "u");
  const std::string bytes = encode_snapshot(catalog, false);
  ASSERT_TRUE(snapshot_valid(bytes));
  // A snapshot is all-or-nothing: no prefix may validate.
  const std::size_t step = bytes.size() / 61 + 1;
  for (std::size_t cut = 0; cut < bytes.size(); cut += step) {
    EXPECT_FALSE(snapshot_valid(std::string_view(bytes).substr(0, cut)));
  }
  // ... and a single flipped bit is caught by the trailer CRC.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x01;
  EXPECT_FALSE(snapshot_valid(flipped));
  xml::Schema schema2 = workload::lead_schema();
  core::MetadataCatalog target(schema2, workload::lead_annotations(),
                               auto_define_config());
  EXPECT_THROW(load_snapshot(target, flipped), SnapshotError);
}

}  // namespace
}  // namespace hxrc::storage
