// Catalog browsing (§4 GUI support): attribute/element listings, value
// statistics, sorted and paginated query results.
#include <gtest/gtest.h>

#include "core/browse.hpp"
#include "core/catalog.hpp"
#include "util/string_util.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace hxrc::core {
namespace {

CatalogConfig auto_define_config() {
  CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

class BrowseTest : public ::testing::Test {
 protected:
  BrowseTest()
      : schema_(workload::lead_schema()),
        catalog_(schema_, workload::lead_annotations(), auto_define_config()),
        browser_(catalog_) {
    catalog_.ingest_xml(workload::fig3_document(), "fig3", "alice");
    workload::DocumentGenerator generator;
    for (std::uint64_t i = 0; i < 20; ++i) {
      catalog_.ingest(generator.generate(i), "d", "alice");
    }
  }

  xml::Schema schema_;
  MetadataCatalog catalog_;
  CatalogBrowser browser_;
};

TEST_F(BrowseTest, AttributeListingWithInstanceCounts) {
  const auto attributes = browser_.attributes();
  ASSERT_FALSE(attributes.empty());
  // Sorted by name.
  for (std::size_t i = 1; i < attributes.size(); ++i) {
    EXPECT_LE(attributes[i - 1].name, attributes[i].name);
  }
  // theme has many instances; grid/ARPS exists and is dynamic.
  bool found_theme = false;
  bool found_grid = false;
  for (const AttributeSummary& summary : attributes) {
    if (summary.name == "theme" && summary.source.empty()) {
      EXPECT_GT(summary.instances, 10u);
      EXPECT_EQ(summary.kind, AttrKind::kStructural);
      found_theme = true;
    }
    if (summary.name == "grid" && summary.source == "ARPS") {
      EXPECT_GT(summary.instances, 0u);
      EXPECT_EQ(summary.kind, AttrKind::kDynamic);
      found_grid = true;
    }
  }
  EXPECT_TRUE(found_theme);
  EXPECT_TRUE(found_grid);
}

TEST_F(BrowseTest, PrivateDefinitionsVisibleOnlyToOwner) {
  catalog_.registry().define_attribute("secret", "qc", AttrKind::kDynamic, kNoAttr,
                                       kNoOrder, Visibility::kUser, "alice");
  catalog_.publish();  // direct registry imports need a publish to be visible
  auto has_secret = [&](const std::string& user) {
    for (const AttributeSummary& summary : browser_.attributes(user)) {
      if (summary.name == "secret") return true;
    }
    return false;
  };
  EXPECT_TRUE(has_secret("alice"));
  EXPECT_FALSE(has_secret("bob"));
  EXPECT_FALSE(has_secret(""));
}

TEST_F(BrowseTest, ElementListingWithStatistics) {
  const AttributeDef* theme = catalog_.registry().find_attribute("theme", "", kNoAttr);
  ASSERT_NE(theme, nullptr);
  const auto elements = browser_.elements(theme->id);
  ASSERT_EQ(elements.size(), 2u);  // themekt, themekey
  for (const ElementSummary& summary : elements) {
    EXPECT_GT(summary.values, 0u);
    EXPECT_GT(summary.distinct_values, 0u);
    EXPECT_LE(summary.distinct_values, summary.values);
  }
}

TEST_F(BrowseTest, TopValuesAreFrequencyOrdered) {
  const AttributeDef* theme = catalog_.registry().find_attribute("theme", "", kNoAttr);
  const ElementDef* themekt = catalog_.registry().find_element("themekt", "", theme->id);
  ASSERT_NE(themekt, nullptr);
  const auto values = browser_.top_values(themekt->id);
  ASSERT_FALSE(values.empty());
  EXPECT_EQ(values[0].value, "CF NetCDF");  // every theme uses it
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_GE(values[i - 1].count, values[i].count);
  }

  const auto limited = browser_.top_values(themekt->id, 1);
  EXPECT_EQ(limited.size(), 1u);
}

TEST_F(BrowseTest, QuerySortedByElementValue) {
  // All objects with a theme, sorted by resourceID (string element).
  ObjectQuery query;
  query.add_attribute(AttrQuery("theme"));
  ResultOrder order;
  order.attribute_name = "resourceID";
  order.element_name = "resourceID";
  const auto sorted = browser_.query_sorted(query, order);
  ASSERT_GT(sorted.size(), 2u);

  // Verify ordering against the actual values.
  auto key_of = [&](ObjectId id) {
    const xml::Document doc = catalog_.fetch(id);
    return doc.root->child_text("resourceID");
  };
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(key_of(sorted[i - 1]), key_of(sorted[i]));
  }

  // Descending flips the order.
  order.descending = true;
  const auto reversed = browser_.query_sorted(query, order);
  ASSERT_EQ(reversed.size(), sorted.size());
  EXPECT_EQ(reversed.front(), sorted.back());
}

TEST_F(BrowseTest, PaginationSlicesTheOrderedList) {
  ObjectQuery query;
  query.add_attribute(AttrQuery("theme"));
  ResultOrder order;
  order.attribute_name = "resourceID";
  order.element_name = "resourceID";
  const auto all = browser_.query_sorted(query, order);
  ASSERT_GE(all.size(), 5u);

  const auto page1 = browser_.query_sorted(query, order, 0, 2);
  const auto page2 = browser_.query_sorted(query, order, 2, 2);
  ASSERT_EQ(page1.size(), 2u);
  ASSERT_EQ(page2.size(), 2u);
  EXPECT_EQ(page1[0], all[0]);
  EXPECT_EQ(page1[1], all[1]);
  EXPECT_EQ(page2[0], all[2]);

  EXPECT_TRUE(browser_.query_sorted(query, order, all.size(), 2).empty());
}

TEST_F(BrowseTest, SortByNumericDynamicElement) {
  ObjectQuery query;
  query.add_attribute(AttrQuery("grid", "ARPS"));
  ResultOrder order;
  order.attribute_name = "grid";
  order.attribute_source = "ARPS";
  order.element_name = "dx";
  const auto sorted = browser_.query_sorted(query, order);
  ASSERT_FALSE(sorted.empty());
  // Numeric, not lexicographic: fetch dx values and verify monotone.
  double last = -1e300;
  for (const ObjectId id : sorted) {
    const xml::Document doc = catalog_.fetch(id);
    double best = 1e300;
    bool found = false;
    for (const xml::Node* item : xml::select(
             *doc.root,
             "//detailed[enttyp/enttypl='grid'][enttyp/enttypds='ARPS']/attr")) {
      if (item->child_text("attrlabl") != "dx") continue;
      const auto v = util::parse_double(item->child_text("attrv"));
      if (v && *v < best) {
        best = *v;
        found = true;
      }
    }
    if (!found) continue;  // objects lacking dx sort last; skip check
    EXPECT_GE(best, last);
    last = best;
  }
}

}  // namespace
}  // namespace hxrc::core
