// Off-heap CLOB paging: seal/spill lifecycle, the segment LRU, page-file
// framing, and end-to-end document reconstruction through the pager.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/catalog.hpp"
#include "rel/clob_store.hpp"
#include "storage/clob_pager.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "xml/canonical.hpp"

namespace hxrc {
namespace {

std::string temp_page_file(const char* tag) {
  return std::string(::testing::TempDir()) + "clob_pages_" + tag + ".bin";
}

std::string payload(std::size_t i) {
  std::string s = "clob-" + std::to_string(i) + "-";
  s.append(40 + (i % 17), static_cast<char>('a' + (i % 26)));
  return s;
}

TEST(ClobPaging, RoundTripThroughPageFile) {
  storage::PagedClobFile pager(temp_page_file("roundtrip"));
  rel::ClobStore store;
  store.enable_paging(&pager, /*segment_bytes=*/512, /*cache_segments=*/2);

  std::vector<std::string> originals;
  for (std::size_t i = 0; i < 200; ++i) {
    originals.push_back(payload(i));
    EXPECT_EQ(store.append(originals.back()), static_cast<rel::ClobId>(i));
  }
  store.flush();

  EXPECT_EQ(store.sealed_count(), 200u);
  EXPECT_EQ(store.resident_bytes(), 0u);
  EXPECT_GT(store.spilled_bytes(), 0u);
  EXPECT_EQ(store.payload_bytes(), store.spilled_bytes());
  EXPECT_GT(pager.segment_count(), 10u);  // 512-byte segments force many

  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(store.get(static_cast<rel::ClobId>(i)), originals[i]) << i;
  }
}

TEST(ClobPaging, TailBelowThresholdStaysResident) {
  storage::PagedClobFile pager(temp_page_file("tail"));
  rel::ClobStore store;
  store.enable_paging(&pager, /*segment_bytes=*/1u << 20);

  const std::string text = payload(7);
  store.append(text);
  EXPECT_EQ(store.sealed_count(), 0u);
  EXPECT_EQ(store.resident_bytes(), text.size());
  EXPECT_EQ(store.get(0), text);
  EXPECT_EQ(pager.segment_count(), 0u);
}

TEST(ClobPaging, LruCachesWholeSegments) {
  storage::PagedClobFile pager(temp_page_file("lru"));
  rel::ClobStore store;
  // Large segments: neighbouring appends share one, so a run of reads over
  // one document's clobs is one miss then hits.
  store.enable_paging(&pager, /*segment_bytes=*/1u << 16, /*cache_segments=*/1);
  for (std::size_t i = 0; i < 50; ++i) store.append(payload(i));
  store.flush();
  ASSERT_EQ(pager.segment_count(), 1u);

  for (std::size_t i = 0; i < 50; ++i) store.get(static_cast<rel::ClobId>(i));
  EXPECT_EQ(store.cache_misses(), 1u);
  EXPECT_EQ(store.cache_hits(), 49u);
}

TEST(ClobPaging, SealedPayloadsRetireThroughReclaimer) {
  storage::PagedClobFile pager(temp_page_file("epoch"));
  util::EpochManager epochs;
  rel::ClobStore store;
  store.set_reclaimer(&epochs);
  store.enable_paging(&pager, /*segment_bytes=*/64);

  for (std::size_t i = 0; i < 8; ++i) store.append(payload(i));
  store.flush();
  EXPECT_GT(epochs.retired_pending(), 0u);  // deferred, not freed in place
  epochs.quiesce();
  EXPECT_EQ(epochs.retired_pending(), 0u);
  EXPECT_EQ(store.get(3), payload(3));  // still readable from the page file
}

TEST(ClobPaging, AbsorbMovesShardClobsIntoPagedStore) {
  storage::PagedClobFile pager(temp_page_file("absorb"));
  rel::ClobStore main;
  main.enable_paging(&pager, /*segment_bytes=*/256);
  main.append("head");

  rel::ClobStore shard;  // ingest shards never page
  shard.append("alpha");
  shard.append(payload(3));

  const rel::ClobId offset = main.absorb(shard);
  EXPECT_EQ(offset, 1);
  EXPECT_EQ(shard.count(), 0u);
  main.flush();
  EXPECT_EQ(main.get(0), "head");
  EXPECT_EQ(main.get(1), "alpha");
  EXPECT_EQ(main.get(2), payload(3));
}

TEST(ClobPaging, CorruptSegmentIsDetected) {
  const std::string path = temp_page_file("corrupt");
  storage::PagedClobFile pager(path);
  const std::string text(300, 'x');
  const std::uint32_t segment = pager.write_segment(text);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);  // inside the payload, past the 12-byte header
    f.put('y');
  }
  EXPECT_THROW(pager.read_segment(segment), storage::ClobPagerError);
}

TEST(ClobPaging, UnknownSegmentIsRejected) {
  storage::PagedClobFile pager(temp_page_file("unknown"));
  EXPECT_THROW(pager.read_segment(0), storage::ClobPagerError);
}

TEST(ClobPaging, CatalogReconstructionReadsThroughPager) {
  workload::DocumentGenerator generator;
  const auto docs = generator.corpus(30);

  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  core::MetadataCatalog catalog(schema, workload::lead_annotations(), config);

  storage::PagedClobFile pager(temp_page_file("catalog"));
  catalog.database().clobs().enable_paging(&pager, /*segment_bytes=*/4096,
                                           /*cache_segments=*/4);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    catalog.ingest(docs[i], "doc-" + std::to_string(i), "u");
  }
  catalog.database().clobs().flush();
  EXPECT_GT(catalog.database().clobs().spilled_bytes(), 0u);

  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(xml::canonical(docs[i]),
              xml::canonical(catalog.fetch(static_cast<core::ObjectId>(i))))
        << "document " << i;
  }
}

}  // namespace
}  // namespace hxrc
