file(REMOVE_RECURSE
  "CMakeFiles/test_rel_table.dir/test_rel_table.cpp.o"
  "CMakeFiles/test_rel_table.dir/test_rel_table.cpp.o.d"
  "test_rel_table"
  "test_rel_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rel_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
