# Empty dependencies file for test_rel_table.
# This may be replaced when dependencies are built.
