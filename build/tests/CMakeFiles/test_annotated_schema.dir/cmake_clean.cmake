file(REMOVE_RECURSE
  "CMakeFiles/test_annotated_schema.dir/test_annotated_schema.cpp.o"
  "CMakeFiles/test_annotated_schema.dir/test_annotated_schema.cpp.o.d"
  "test_annotated_schema"
  "test_annotated_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annotated_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
