# Empty compiler generated dependencies file for test_annotated_schema.
# This may be replaced when dependencies are built.
