file(REMOVE_RECURSE
  "CMakeFiles/test_xml_fuzz.dir/test_xml_fuzz.cpp.o"
  "CMakeFiles/test_xml_fuzz.dir/test_xml_fuzz.cpp.o.d"
  "test_xml_fuzz"
  "test_xml_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
