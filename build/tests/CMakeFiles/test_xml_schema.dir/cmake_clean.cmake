file(REMOVE_RECURSE
  "CMakeFiles/test_xml_schema.dir/test_xml_schema.cpp.o"
  "CMakeFiles/test_xml_schema.dir/test_xml_schema.cpp.o.d"
  "test_xml_schema"
  "test_xml_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
