# Empty dependencies file for test_xml_schema.
# This may be replaced when dependencies are built.
