file(REMOVE_RECURSE
  "CMakeFiles/test_rel_value.dir/test_rel_value.cpp.o"
  "CMakeFiles/test_rel_value.dir/test_rel_value.cpp.o.d"
  "test_rel_value"
  "test_rel_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rel_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
