file(REMOVE_RECURSE
  "CMakeFiles/test_xml_canonical.dir/test_xml_canonical.cpp.o"
  "CMakeFiles/test_xml_canonical.dir/test_xml_canonical.cpp.o.d"
  "test_xml_canonical"
  "test_xml_canonical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
