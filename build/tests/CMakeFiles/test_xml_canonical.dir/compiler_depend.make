# Empty compiler generated dependencies file for test_xml_canonical.
# This may be replaced when dependencies are built.
