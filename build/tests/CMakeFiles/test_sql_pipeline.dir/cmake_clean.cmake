file(REMOVE_RECURSE
  "CMakeFiles/test_sql_pipeline.dir/test_sql_pipeline.cpp.o"
  "CMakeFiles/test_sql_pipeline.dir/test_sql_pipeline.cpp.o.d"
  "test_sql_pipeline"
  "test_sql_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
