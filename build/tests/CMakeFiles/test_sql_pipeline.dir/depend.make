# Empty dependencies file for test_sql_pipeline.
# This may be replaced when dependencies are built.
