# Empty dependencies file for test_response.
# This may be replaced when dependencies are built.
