file(REMOVE_RECURSE
  "CMakeFiles/test_response.dir/test_response.cpp.o"
  "CMakeFiles/test_response.dir/test_response.cpp.o.d"
  "test_response"
  "test_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
