# Empty dependencies file for test_collections.
# This may be replaced when dependencies are built.
