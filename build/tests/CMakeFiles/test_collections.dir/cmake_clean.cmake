file(REMOVE_RECURSE
  "CMakeFiles/test_collections.dir/test_collections.cpp.o"
  "CMakeFiles/test_collections.dir/test_collections.cpp.o.d"
  "test_collections"
  "test_collections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
