file(REMOVE_RECURSE
  "CMakeFiles/test_rel_expr.dir/test_rel_expr.cpp.o"
  "CMakeFiles/test_rel_expr.dir/test_rel_expr.cpp.o.d"
  "test_rel_expr"
  "test_rel_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rel_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
