# Empty dependencies file for test_rel_expr.
# This may be replaced when dependencies are built.
