file(REMOVE_RECURSE
  "CMakeFiles/test_path_query.dir/test_path_query.cpp.o"
  "CMakeFiles/test_path_query.dir/test_path_query.cpp.o.d"
  "test_path_query"
  "test_path_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
