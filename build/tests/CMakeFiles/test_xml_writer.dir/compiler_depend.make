# Empty compiler generated dependencies file for test_xml_writer.
# This may be replaced when dependencies are built.
