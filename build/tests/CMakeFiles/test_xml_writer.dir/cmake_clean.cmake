file(REMOVE_RECURSE
  "CMakeFiles/test_xml_writer.dir/test_xml_writer.cpp.o"
  "CMakeFiles/test_xml_writer.dir/test_xml_writer.cpp.o.d"
  "test_xml_writer"
  "test_xml_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
