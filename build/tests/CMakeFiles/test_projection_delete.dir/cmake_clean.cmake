file(REMOVE_RECURSE
  "CMakeFiles/test_projection_delete.dir/test_projection_delete.cpp.o"
  "CMakeFiles/test_projection_delete.dir/test_projection_delete.cpp.o.d"
  "test_projection_delete"
  "test_projection_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_projection_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
