# Empty dependencies file for test_projection_delete.
# This may be replaced when dependencies are built.
