file(REMOVE_RECURSE
  "CMakeFiles/test_update.dir/test_update.cpp.o"
  "CMakeFiles/test_update.dir/test_update.cpp.o.d"
  "test_update"
  "test_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
