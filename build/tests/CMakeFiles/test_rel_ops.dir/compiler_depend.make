# Empty compiler generated dependencies file for test_rel_ops.
# This may be replaced when dependencies are built.
