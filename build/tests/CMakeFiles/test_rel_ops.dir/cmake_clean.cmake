file(REMOVE_RECURSE
  "CMakeFiles/test_rel_ops.dir/test_rel_ops.cpp.o"
  "CMakeFiles/test_rel_ops.dir/test_rel_ops.cpp.o.d"
  "test_rel_ops"
  "test_rel_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rel_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
