# Empty compiler generated dependencies file for test_namelist.
# This may be replaced when dependencies are built.
