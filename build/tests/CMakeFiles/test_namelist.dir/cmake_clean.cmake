file(REMOVE_RECURSE
  "CMakeFiles/test_namelist.dir/test_namelist.cpp.o"
  "CMakeFiles/test_namelist.dir/test_namelist.cpp.o.d"
  "test_namelist"
  "test_namelist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_namelist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
