# Empty dependencies file for test_browse.
# This may be replaced when dependencies are built.
