file(REMOVE_RECURSE
  "CMakeFiles/test_browse.dir/test_browse.cpp.o"
  "CMakeFiles/test_browse.dir/test_browse.cpp.o.d"
  "test_browse"
  "test_browse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_browse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
