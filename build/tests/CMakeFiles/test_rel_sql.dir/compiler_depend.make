# Empty compiler generated dependencies file for test_rel_sql.
# This may be replaced when dependencies are built.
