file(REMOVE_RECURSE
  "CMakeFiles/test_rel_sql.dir/test_rel_sql.cpp.o"
  "CMakeFiles/test_rel_sql.dir/test_rel_sql.cpp.o.d"
  "test_rel_sql"
  "test_rel_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rel_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
