file(REMOVE_RECURSE
  "CMakeFiles/test_thesaurus.dir/test_thesaurus.cpp.o"
  "CMakeFiles/test_thesaurus.dir/test_thesaurus.cpp.o.d"
  "test_thesaurus"
  "test_thesaurus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thesaurus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
