# Empty compiler generated dependencies file for test_thesaurus.
# This may be replaced when dependencies are built.
