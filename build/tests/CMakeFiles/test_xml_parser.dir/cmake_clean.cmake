file(REMOVE_RECURSE
  "CMakeFiles/test_xml_parser.dir/test_xml_parser.cpp.o"
  "CMakeFiles/test_xml_parser.dir/test_xml_parser.cpp.o.d"
  "test_xml_parser"
  "test_xml_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
