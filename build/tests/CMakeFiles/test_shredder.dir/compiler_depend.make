# Empty compiler generated dependencies file for test_shredder.
# This may be replaced when dependencies are built.
