file(REMOVE_RECURSE
  "CMakeFiles/test_shredder.dir/test_shredder.cpp.o"
  "CMakeFiles/test_shredder.dir/test_shredder.cpp.o.d"
  "test_shredder"
  "test_shredder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shredder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
