file(REMOVE_RECURSE
  "CMakeFiles/test_backends.dir/test_backends.cpp.o"
  "CMakeFiles/test_backends.dir/test_backends.cpp.o.d"
  "test_backends"
  "test_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
