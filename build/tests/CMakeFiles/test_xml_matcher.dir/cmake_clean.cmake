file(REMOVE_RECURSE
  "CMakeFiles/test_xml_matcher.dir/test_xml_matcher.cpp.o"
  "CMakeFiles/test_xml_matcher.dir/test_xml_matcher.cpp.o.d"
  "test_xml_matcher"
  "test_xml_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
