# Empty dependencies file for test_xml_matcher.
# This may be replaced when dependencies are built.
