# Empty compiler generated dependencies file for cross_domain.
# This may be replaced when dependencies are built.
