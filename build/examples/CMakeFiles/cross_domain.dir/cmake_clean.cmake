file(REMOVE_RECURSE
  "CMakeFiles/cross_domain.dir/cross_domain.cpp.o"
  "CMakeFiles/cross_domain.dir/cross_domain.cpp.o.d"
  "cross_domain"
  "cross_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
