# Empty dependencies file for lead_workflow.
# This may be replaced when dependencies are built.
