file(REMOVE_RECURSE
  "CMakeFiles/lead_workflow.dir/lead_workflow.cpp.o"
  "CMakeFiles/lead_workflow.dir/lead_workflow.cpp.o.d"
  "lead_workflow"
  "lead_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lead_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
