file(REMOVE_RECURSE
  "CMakeFiles/catalog_shell.dir/catalog_shell.cpp.o"
  "CMakeFiles/catalog_shell.dir/catalog_shell.cpp.o.d"
  "catalog_shell"
  "catalog_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
