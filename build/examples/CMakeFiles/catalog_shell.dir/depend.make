# Empty dependencies file for catalog_shell.
# This may be replaced when dependencies are built.
