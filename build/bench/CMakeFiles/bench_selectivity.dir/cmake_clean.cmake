file(REMOVE_RECURSE
  "CMakeFiles/bench_selectivity.dir/bench_selectivity.cpp.o"
  "CMakeFiles/bench_selectivity.dir/bench_selectivity.cpp.o.d"
  "bench_selectivity"
  "bench_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
