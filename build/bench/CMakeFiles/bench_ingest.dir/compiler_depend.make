# Empty compiler generated dependencies file for bench_ingest.
# This may be replaced when dependencies are built.
