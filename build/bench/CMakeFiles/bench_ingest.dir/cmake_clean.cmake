file(REMOVE_RECURSE
  "CMakeFiles/bench_ingest.dir/bench_ingest.cpp.o"
  "CMakeFiles/bench_ingest.dir/bench_ingest.cpp.o.d"
  "bench_ingest"
  "bench_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
