# Empty dependencies file for bench_query_fastpath.
# This may be replaced when dependencies are built.
