file(REMOVE_RECURSE
  "CMakeFiles/bench_query_fastpath.dir/bench_query_fastpath.cpp.o"
  "CMakeFiles/bench_query_fastpath.dir/bench_query_fastpath.cpp.o.d"
  "bench_query_fastpath"
  "bench_query_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
