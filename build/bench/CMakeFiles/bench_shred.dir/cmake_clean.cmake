file(REMOVE_RECURSE
  "CMakeFiles/bench_shred.dir/bench_shred.cpp.o"
  "CMakeFiles/bench_shred.dir/bench_shred.cpp.o.d"
  "bench_shred"
  "bench_shred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
