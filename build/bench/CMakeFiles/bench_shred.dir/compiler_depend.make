# Empty compiler generated dependencies file for bench_shred.
# This may be replaced when dependencies are built.
