file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel.dir/bench_parallel.cpp.o"
  "CMakeFiles/bench_parallel.dir/bench_parallel.cpp.o.d"
  "bench_parallel"
  "bench_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
