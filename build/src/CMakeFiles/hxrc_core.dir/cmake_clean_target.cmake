file(REMOVE_RECURSE
  "libhxrc_core.a"
)
