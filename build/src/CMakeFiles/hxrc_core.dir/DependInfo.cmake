
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annotated_schema.cpp" "src/CMakeFiles/hxrc_core.dir/core/annotated_schema.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/annotated_schema.cpp.o.d"
  "/root/repo/src/core/browse.cpp" "src/CMakeFiles/hxrc_core.dir/core/browse.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/browse.cpp.o.d"
  "/root/repo/src/core/catalog.cpp" "src/CMakeFiles/hxrc_core.dir/core/catalog.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/catalog.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/hxrc_core.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/ordering.cpp" "src/CMakeFiles/hxrc_core.dir/core/ordering.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/ordering.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/hxrc_core.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/path_query.cpp" "src/CMakeFiles/hxrc_core.dir/core/path_query.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/path_query.cpp.o.d"
  "/root/repo/src/core/query.cpp" "src/CMakeFiles/hxrc_core.dir/core/query.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/query.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/hxrc_core.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/response.cpp" "src/CMakeFiles/hxrc_core.dir/core/response.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/response.cpp.o.d"
  "/root/repo/src/core/service.cpp" "src/CMakeFiles/hxrc_core.dir/core/service.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/service.cpp.o.d"
  "/root/repo/src/core/shredder.cpp" "src/CMakeFiles/hxrc_core.dir/core/shredder.cpp.o" "gcc" "src/CMakeFiles/hxrc_core.dir/core/shredder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hxrc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hxrc_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hxrc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
