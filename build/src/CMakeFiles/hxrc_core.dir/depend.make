# Empty dependencies file for hxrc_core.
# This may be replaced when dependencies are built.
