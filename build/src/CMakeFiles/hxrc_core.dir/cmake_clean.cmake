file(REMOVE_RECURSE
  "CMakeFiles/hxrc_core.dir/core/annotated_schema.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/annotated_schema.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/browse.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/browse.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/catalog.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/catalog.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/engine.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/engine.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/ordering.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/ordering.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/partition.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/partition.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/path_query.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/path_query.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/query.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/query.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/registry.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/registry.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/response.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/response.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/service.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/service.cpp.o.d"
  "CMakeFiles/hxrc_core.dir/core/shredder.cpp.o"
  "CMakeFiles/hxrc_core.dir/core/shredder.cpp.o.d"
  "libhxrc_core.a"
  "libhxrc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hxrc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
