
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/backend.cpp" "src/CMakeFiles/hxrc_baselines.dir/baselines/backend.cpp.o" "gcc" "src/CMakeFiles/hxrc_baselines.dir/baselines/backend.cpp.o.d"
  "/root/repo/src/baselines/clob_backend.cpp" "src/CMakeFiles/hxrc_baselines.dir/baselines/clob_backend.cpp.o" "gcc" "src/CMakeFiles/hxrc_baselines.dir/baselines/clob_backend.cpp.o.d"
  "/root/repo/src/baselines/dom_matcher.cpp" "src/CMakeFiles/hxrc_baselines.dir/baselines/dom_matcher.cpp.o" "gcc" "src/CMakeFiles/hxrc_baselines.dir/baselines/dom_matcher.cpp.o.d"
  "/root/repo/src/baselines/edge_backend.cpp" "src/CMakeFiles/hxrc_baselines.dir/baselines/edge_backend.cpp.o" "gcc" "src/CMakeFiles/hxrc_baselines.dir/baselines/edge_backend.cpp.o.d"
  "/root/repo/src/baselines/hybrid_backend.cpp" "src/CMakeFiles/hxrc_baselines.dir/baselines/hybrid_backend.cpp.o" "gcc" "src/CMakeFiles/hxrc_baselines.dir/baselines/hybrid_backend.cpp.o.d"
  "/root/repo/src/baselines/inlining_backend.cpp" "src/CMakeFiles/hxrc_baselines.dir/baselines/inlining_backend.cpp.o" "gcc" "src/CMakeFiles/hxrc_baselines.dir/baselines/inlining_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hxrc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hxrc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hxrc_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hxrc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
