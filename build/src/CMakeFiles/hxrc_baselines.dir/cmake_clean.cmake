file(REMOVE_RECURSE
  "CMakeFiles/hxrc_baselines.dir/baselines/backend.cpp.o"
  "CMakeFiles/hxrc_baselines.dir/baselines/backend.cpp.o.d"
  "CMakeFiles/hxrc_baselines.dir/baselines/clob_backend.cpp.o"
  "CMakeFiles/hxrc_baselines.dir/baselines/clob_backend.cpp.o.d"
  "CMakeFiles/hxrc_baselines.dir/baselines/dom_matcher.cpp.o"
  "CMakeFiles/hxrc_baselines.dir/baselines/dom_matcher.cpp.o.d"
  "CMakeFiles/hxrc_baselines.dir/baselines/edge_backend.cpp.o"
  "CMakeFiles/hxrc_baselines.dir/baselines/edge_backend.cpp.o.d"
  "CMakeFiles/hxrc_baselines.dir/baselines/hybrid_backend.cpp.o"
  "CMakeFiles/hxrc_baselines.dir/baselines/hybrid_backend.cpp.o.d"
  "CMakeFiles/hxrc_baselines.dir/baselines/inlining_backend.cpp.o"
  "CMakeFiles/hxrc_baselines.dir/baselines/inlining_backend.cpp.o.d"
  "libhxrc_baselines.a"
  "libhxrc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hxrc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
