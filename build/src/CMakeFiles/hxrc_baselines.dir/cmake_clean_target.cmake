file(REMOVE_RECURSE
  "libhxrc_baselines.a"
)
