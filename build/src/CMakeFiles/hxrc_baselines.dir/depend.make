# Empty dependencies file for hxrc_baselines.
# This may be replaced when dependencies are built.
