file(REMOVE_RECURSE
  "CMakeFiles/hxrc_util.dir/util/prng.cpp.o"
  "CMakeFiles/hxrc_util.dir/util/prng.cpp.o.d"
  "CMakeFiles/hxrc_util.dir/util/string_util.cpp.o"
  "CMakeFiles/hxrc_util.dir/util/string_util.cpp.o.d"
  "CMakeFiles/hxrc_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/hxrc_util.dir/util/thread_pool.cpp.o.d"
  "libhxrc_util.a"
  "libhxrc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hxrc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
