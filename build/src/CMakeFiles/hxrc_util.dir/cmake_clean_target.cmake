file(REMOVE_RECURSE
  "libhxrc_util.a"
)
