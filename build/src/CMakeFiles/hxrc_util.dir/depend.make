# Empty dependencies file for hxrc_util.
# This may be replaced when dependencies are built.
