
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/database.cpp" "src/CMakeFiles/hxrc_rel.dir/rel/database.cpp.o" "gcc" "src/CMakeFiles/hxrc_rel.dir/rel/database.cpp.o.d"
  "/root/repo/src/rel/expr.cpp" "src/CMakeFiles/hxrc_rel.dir/rel/expr.cpp.o" "gcc" "src/CMakeFiles/hxrc_rel.dir/rel/expr.cpp.o.d"
  "/root/repo/src/rel/ops.cpp" "src/CMakeFiles/hxrc_rel.dir/rel/ops.cpp.o" "gcc" "src/CMakeFiles/hxrc_rel.dir/rel/ops.cpp.o.d"
  "/root/repo/src/rel/serialize.cpp" "src/CMakeFiles/hxrc_rel.dir/rel/serialize.cpp.o" "gcc" "src/CMakeFiles/hxrc_rel.dir/rel/serialize.cpp.o.d"
  "/root/repo/src/rel/sql/lexer.cpp" "src/CMakeFiles/hxrc_rel.dir/rel/sql/lexer.cpp.o" "gcc" "src/CMakeFiles/hxrc_rel.dir/rel/sql/lexer.cpp.o.d"
  "/root/repo/src/rel/sql/parser.cpp" "src/CMakeFiles/hxrc_rel.dir/rel/sql/parser.cpp.o" "gcc" "src/CMakeFiles/hxrc_rel.dir/rel/sql/parser.cpp.o.d"
  "/root/repo/src/rel/sql/planner.cpp" "src/CMakeFiles/hxrc_rel.dir/rel/sql/planner.cpp.o" "gcc" "src/CMakeFiles/hxrc_rel.dir/rel/sql/planner.cpp.o.d"
  "/root/repo/src/rel/table.cpp" "src/CMakeFiles/hxrc_rel.dir/rel/table.cpp.o" "gcc" "src/CMakeFiles/hxrc_rel.dir/rel/table.cpp.o.d"
  "/root/repo/src/rel/value.cpp" "src/CMakeFiles/hxrc_rel.dir/rel/value.cpp.o" "gcc" "src/CMakeFiles/hxrc_rel.dir/rel/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hxrc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
