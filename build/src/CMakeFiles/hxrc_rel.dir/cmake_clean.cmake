file(REMOVE_RECURSE
  "CMakeFiles/hxrc_rel.dir/rel/database.cpp.o"
  "CMakeFiles/hxrc_rel.dir/rel/database.cpp.o.d"
  "CMakeFiles/hxrc_rel.dir/rel/expr.cpp.o"
  "CMakeFiles/hxrc_rel.dir/rel/expr.cpp.o.d"
  "CMakeFiles/hxrc_rel.dir/rel/ops.cpp.o"
  "CMakeFiles/hxrc_rel.dir/rel/ops.cpp.o.d"
  "CMakeFiles/hxrc_rel.dir/rel/serialize.cpp.o"
  "CMakeFiles/hxrc_rel.dir/rel/serialize.cpp.o.d"
  "CMakeFiles/hxrc_rel.dir/rel/sql/lexer.cpp.o"
  "CMakeFiles/hxrc_rel.dir/rel/sql/lexer.cpp.o.d"
  "CMakeFiles/hxrc_rel.dir/rel/sql/parser.cpp.o"
  "CMakeFiles/hxrc_rel.dir/rel/sql/parser.cpp.o.d"
  "CMakeFiles/hxrc_rel.dir/rel/sql/planner.cpp.o"
  "CMakeFiles/hxrc_rel.dir/rel/sql/planner.cpp.o.d"
  "CMakeFiles/hxrc_rel.dir/rel/table.cpp.o"
  "CMakeFiles/hxrc_rel.dir/rel/table.cpp.o.d"
  "CMakeFiles/hxrc_rel.dir/rel/value.cpp.o"
  "CMakeFiles/hxrc_rel.dir/rel/value.cpp.o.d"
  "libhxrc_rel.a"
  "libhxrc_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hxrc_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
