file(REMOVE_RECURSE
  "libhxrc_rel.a"
)
