# Empty dependencies file for hxrc_rel.
# This may be replaced when dependencies are built.
