file(REMOVE_RECURSE
  "CMakeFiles/hxrc_xml.dir/xml/canonical.cpp.o"
  "CMakeFiles/hxrc_xml.dir/xml/canonical.cpp.o.d"
  "CMakeFiles/hxrc_xml.dir/xml/dom.cpp.o"
  "CMakeFiles/hxrc_xml.dir/xml/dom.cpp.o.d"
  "CMakeFiles/hxrc_xml.dir/xml/matcher.cpp.o"
  "CMakeFiles/hxrc_xml.dir/xml/matcher.cpp.o.d"
  "CMakeFiles/hxrc_xml.dir/xml/parser.cpp.o"
  "CMakeFiles/hxrc_xml.dir/xml/parser.cpp.o.d"
  "CMakeFiles/hxrc_xml.dir/xml/schema.cpp.o"
  "CMakeFiles/hxrc_xml.dir/xml/schema.cpp.o.d"
  "CMakeFiles/hxrc_xml.dir/xml/writer.cpp.o"
  "CMakeFiles/hxrc_xml.dir/xml/writer.cpp.o.d"
  "libhxrc_xml.a"
  "libhxrc_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hxrc_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
