# Empty dependencies file for hxrc_xml.
# This may be replaced when dependencies are built.
