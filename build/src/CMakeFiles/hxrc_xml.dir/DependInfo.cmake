
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/canonical.cpp" "src/CMakeFiles/hxrc_xml.dir/xml/canonical.cpp.o" "gcc" "src/CMakeFiles/hxrc_xml.dir/xml/canonical.cpp.o.d"
  "/root/repo/src/xml/dom.cpp" "src/CMakeFiles/hxrc_xml.dir/xml/dom.cpp.o" "gcc" "src/CMakeFiles/hxrc_xml.dir/xml/dom.cpp.o.d"
  "/root/repo/src/xml/matcher.cpp" "src/CMakeFiles/hxrc_xml.dir/xml/matcher.cpp.o" "gcc" "src/CMakeFiles/hxrc_xml.dir/xml/matcher.cpp.o.d"
  "/root/repo/src/xml/parser.cpp" "src/CMakeFiles/hxrc_xml.dir/xml/parser.cpp.o" "gcc" "src/CMakeFiles/hxrc_xml.dir/xml/parser.cpp.o.d"
  "/root/repo/src/xml/schema.cpp" "src/CMakeFiles/hxrc_xml.dir/xml/schema.cpp.o" "gcc" "src/CMakeFiles/hxrc_xml.dir/xml/schema.cpp.o.d"
  "/root/repo/src/xml/writer.cpp" "src/CMakeFiles/hxrc_xml.dir/xml/writer.cpp.o" "gcc" "src/CMakeFiles/hxrc_xml.dir/xml/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hxrc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
