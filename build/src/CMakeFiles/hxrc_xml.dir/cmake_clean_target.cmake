file(REMOVE_RECURSE
  "libhxrc_xml.a"
)
