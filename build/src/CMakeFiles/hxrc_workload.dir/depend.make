# Empty dependencies file for hxrc_workload.
# This may be replaced when dependencies are built.
