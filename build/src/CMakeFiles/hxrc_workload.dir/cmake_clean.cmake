file(REMOVE_RECURSE
  "CMakeFiles/hxrc_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/hxrc_workload.dir/workload/generator.cpp.o.d"
  "CMakeFiles/hxrc_workload.dir/workload/lead_schema.cpp.o"
  "CMakeFiles/hxrc_workload.dir/workload/lead_schema.cpp.o.d"
  "CMakeFiles/hxrc_workload.dir/workload/namelist.cpp.o"
  "CMakeFiles/hxrc_workload.dir/workload/namelist.cpp.o.d"
  "CMakeFiles/hxrc_workload.dir/workload/query_gen.cpp.o"
  "CMakeFiles/hxrc_workload.dir/workload/query_gen.cpp.o.d"
  "libhxrc_workload.a"
  "libhxrc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hxrc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
