file(REMOVE_RECURSE
  "libhxrc_workload.a"
)
