#!/usr/bin/env bash
# Live crash matrix for the durability subsystem.
#
# Repeatedly SIGKILLs a catalog_shell mid-ingest (and once mid-recovery),
# then restarts it against the same --data-dir and requires that recovery
#   (a) succeeds (process exits 0 and prints its recovery banner),
#   (b) is deterministic — two consecutive restarts report the same object
#       count (replay is idempotent, no duplicated records),
#   (c) leaves a catalog that still answers queries,
#   (d) only ever grows the object count across rounds (acknowledged state
#       is never lost), including across a snapshot checkpoint.
#
# This is the end-to-end, real-kill(-9) companion to the deterministic
# FaultFs kill-point matrix in tests/test_recovery.cpp.
#
# The final round does the same to catalog_server: SIGKILL the network
# front end while a catalog_load client fleet (live writers included) is
# ingesting over TCP — the data dir must recover exactly like a shell kill.
#
# Usage: scripts/crash_matrix.sh [catalog_shell] [catalog_server] [catalog_load]
set -u

SHELL_BIN="${1:-build/examples/catalog_shell}"
SERVER_BIN="${2:-build/examples/catalog_server}"
LOAD_BIN="${3:-build/bench/catalog_load}"
DIR="$(mktemp -d "${TMPDIR:-/tmp}/hxrc_crash_matrix.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "crash_matrix: FAIL: $*" >&2
  exit 1
}

[ -x "$SHELL_BIN" ] || fail "catalog shell not found/executable at '$SHELL_BIN'"

# Restart the shell, print the object count from the recovery banner.
recovered_objects() {
  printf 'quit\n' | "$SHELL_BIN" --data-dir "$DIR" 2>/dev/null |
    sed -n 's/.*recovered from.*objects=\([0-9]*\).*/\1/p'
}

# Restart the shell, print whether a snapshot was loaded (yes/no).
recovered_snapshot() {
  printf 'quit\n' | "$SHELL_BIN" --data-dir "$DIR" 2>/dev/null |
    sed -n 's/.*recovered from.*snapshot=\([a-z]*\).*/\1/p'
}

# Restart and run a metadata query; succeeds iff the shell exits cleanly.
query_after_recovery() {
  printf 'find grid ARPS\nstats\nquit\n' |
    "$SHELL_BIN" --data-dir "$DIR" >/dev/null 2>&1
}

# Start an ingest of $1 synthetic documents and SIGKILL it after $2 seconds.
# The sleep keeps stdin open so the shell dies mid-work, not at EOF.
kill_mid_ingest() {
  local docs="$1" delay="$2"
  "$SHELL_BIN" --data-dir "$DIR" >/dev/null 2>&1 \
    < <(printf 'gen %s\n' "$docs"; sleep 60) &
  local pid=$!
  sleep "$delay"
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  return 0
}

# Recover twice and enforce (a)-(c) plus monotone growth past $1.
check_recovery() {
  local floor="$1" label="$2"
  local first second
  first="$(recovered_objects)"
  [ -n "$first" ] || fail "$label: no recovery banner on restart"
  second="$(recovered_objects)"
  [ "$first" = "$second" ] ||
    fail "$label: non-deterministic recovery ($first vs $second objects)"
  [ "$first" -ge "$floor" ] ||
    fail "$label: object count went backwards ($first < $floor)"
  query_after_recovery || fail "$label: recovered catalog failed the query smoke"
  echo "crash_matrix: $label: recovered objects=$first (deterministic, queries ok)"
  LAST_OBJECTS="$first"
}

LAST_OBJECTS=0

# Round 1-3: kill at different points of a long WAL-backed ingest; each
# round replays the previous tail first, so later kills also exercise
# recover-then-crash-again.
for delay in 0.2 0.5 1.0; do
  kill_mid_ingest 200000 "$delay"
  check_recovery "$LAST_OBJECTS" "kill@${delay}s"
done

# Round 4: kill while RECOVERY itself is running (the WAL tail above takes
# far longer than 0.05 s to replay). A crash during replay/truncate must not
# corrupt the data dir.
"$SHELL_BIN" --data-dir "$DIR" >/dev/null 2>&1 < <(sleep 60) &
RECOVERY_PID=$!
sleep 0.05
kill -9 "$RECOVERY_PID" 2>/dev/null
wait "$RECOVERY_PID" 2>/dev/null
check_recovery "$LAST_OBJECTS" "kill@recovery"

# Round 5: checkpoint (snapshot + WAL rotation), commit a clean 200-doc
# ingest on top of it, then crash another ingest mid-flight. Recovery must
# load the snapshot AND replay a non-empty tail: the committed 200 docs set
# a hard floor the recovered count has to clear.
printf 'checkpoint\ngen 200\nquit\n' | "$SHELL_BIN" --data-dir "$DIR" >/dev/null 2>&1 ||
  fail "checkpoint command failed"
kill_mid_ingest 200000 0.5
[ "$(recovered_snapshot)" = "yes" ] || fail "post-checkpoint: snapshot not loaded"
check_recovery "$((LAST_OBJECTS + 200))" "kill@post-checkpoint"

# Round 6: kill -9 the NETWORK front end mid-load. catalog_server shares
# the durability format with catalog_shell; a hard kill while a socket
# client fleet (every 2nd connection a writer) is ingesting over TCP must
# leave the same recoverable data dir — acknowledged objects survive, the
# count never goes backwards, queries still work.
if [ -x "$SERVER_BIN" ] && [ -x "$LOAD_BIN" ]; then
  "$SERVER_BIN" --port 0 --data-dir "$DIR" > "$DIR/server.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/server.log")"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "net: catalog_server never published its port"
  "$LOAD_BIN" --port "$PORT" --connections 64 --writer-every 2 --duration 30 \
    >/dev/null 2>&1 &
  LOAD_PID=$!
  sleep 1.5
  kill -9 "$SERVER_PID" 2>/dev/null
  wait "$SERVER_PID" 2>/dev/null
  kill "$LOAD_PID" 2>/dev/null
  wait "$LOAD_PID" 2>/dev/null
  check_recovery "$LAST_OBJECTS" "kill@net-load"
else
  echo "crash_matrix: net round SKIPPED (catalog_server/catalog_load not built)"
fi

echo "crash_matrix: PASS (final objects=$LAST_OBJECTS)"
