#!/usr/bin/env bash
# Live crash matrix for the durability subsystem.
#
# Repeatedly SIGKILLs a catalog_shell mid-ingest (and once mid-recovery),
# then restarts it against the same --data-dir and requires that recovery
#   (a) succeeds (process exits 0 and prints its recovery banner),
#   (b) is deterministic — two consecutive restarts report the same object
#       count (replay is idempotent, no duplicated records),
#   (c) leaves a catalog that still answers queries,
#   (d) only ever grows the object count across rounds (acknowledged state
#       is never lost), including across a snapshot checkpoint.
#
# This is the end-to-end, real-kill(-9) companion to the deterministic
# FaultFs kill-point matrix in tests/test_recovery.cpp.
#
# Round 6 does the same to catalog_server: SIGKILL the network front end
# while a catalog_load client fleet (live writers included) is ingesting
# over TCP — the data dir must recover exactly like a shell kill.
#
# Round 7 kills a FEDERATION shard primary: a 2-shard router topology with
# a WAL-shipped read replica behind shard 0 takes live load, shard 0's
# primary is SIGKILLed mid-burst, and the round requires that (a) the load
# fleet sees zero mangled/dropped frames across the failover, (b) the
# router keeps answering merged queries whose DOM-level counts equal the
# sum of what the surviving shard and the replica each hold, with no
# partial-degradation marker (the replica IS serving), and (c) the dead
# primary's data dir recovers deterministically to at least everything the
# replica was shipped.
#
# Usage: scripts/crash_matrix.sh [catalog_shell] [catalog_server] [catalog_load] [catalog_router]
set -u

SHELL_BIN="${1:-build/examples/catalog_shell}"
SERVER_BIN="${2:-build/examples/catalog_server}"
LOAD_BIN="${3:-build/bench/catalog_load}"
ROUTER_BIN="${4:-build/examples/catalog_router}"
DIR="$(mktemp -d "${TMPDIR:-/tmp}/hxrc_crash_matrix.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "crash_matrix: FAIL: $*" >&2
  exit 1
}

[ -x "$SHELL_BIN" ] || fail "catalog shell not found/executable at '$SHELL_BIN'"

# Restart the shell, print the object count from the recovery banner.
recovered_objects() {
  printf 'quit\n' | "$SHELL_BIN" --data-dir "$DIR" 2>/dev/null |
    sed -n 's/.*recovered from.*objects=\([0-9]*\).*/\1/p'
}

# Restart the shell, print whether a snapshot was loaded (yes/no).
recovered_snapshot() {
  printf 'quit\n' | "$SHELL_BIN" --data-dir "$DIR" 2>/dev/null |
    sed -n 's/.*recovered from.*snapshot=\([a-z]*\).*/\1/p'
}

# Restart and run a metadata query; succeeds iff the shell exits cleanly.
query_after_recovery() {
  printf 'find grid ARPS\nstats\nquit\n' |
    "$SHELL_BIN" --data-dir "$DIR" >/dev/null 2>&1
}

# Start an ingest of $1 synthetic documents and SIGKILL it after $2 seconds.
# The sleep keeps stdin open so the shell dies mid-work, not at EOF.
kill_mid_ingest() {
  local docs="$1" delay="$2"
  "$SHELL_BIN" --data-dir "$DIR" >/dev/null 2>&1 \
    < <(printf 'gen %s\n' "$docs"; sleep 60) &
  local pid=$!
  sleep "$delay"
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  return 0
}

# Recover twice and enforce (a)-(c) plus monotone growth past $1.
check_recovery() {
  local floor="$1" label="$2"
  local first second
  first="$(recovered_objects)"
  [ -n "$first" ] || fail "$label: no recovery banner on restart"
  second="$(recovered_objects)"
  [ "$first" = "$second" ] ||
    fail "$label: non-deterministic recovery ($first vs $second objects)"
  [ "$first" -ge "$floor" ] ||
    fail "$label: object count went backwards ($first < $floor)"
  query_after_recovery || fail "$label: recovered catalog failed the query smoke"
  echo "crash_matrix: $label: recovered objects=$first (deterministic, queries ok)"
  LAST_OBJECTS="$first"
}

LAST_OBJECTS=0

# Round 1-3: kill at different points of a long WAL-backed ingest; each
# round replays the previous tail first, so later kills also exercise
# recover-then-crash-again.
for delay in 0.2 0.5 1.0; do
  kill_mid_ingest 200000 "$delay"
  check_recovery "$LAST_OBJECTS" "kill@${delay}s"
done

# Round 4: kill while RECOVERY itself is running (the WAL tail above takes
# far longer than 0.05 s to replay). A crash during replay/truncate must not
# corrupt the data dir.
"$SHELL_BIN" --data-dir "$DIR" >/dev/null 2>&1 < <(sleep 60) &
RECOVERY_PID=$!
sleep 0.05
kill -9 "$RECOVERY_PID" 2>/dev/null
wait "$RECOVERY_PID" 2>/dev/null
check_recovery "$LAST_OBJECTS" "kill@recovery"

# Round 5: checkpoint (snapshot + WAL rotation), commit a clean 200-doc
# ingest on top of it, then crash another ingest mid-flight. Recovery must
# load the snapshot AND replay a non-empty tail: the committed 200 docs set
# a hard floor the recovered count has to clear.
printf 'checkpoint\ngen 200\nquit\n' | "$SHELL_BIN" --data-dir "$DIR" >/dev/null 2>&1 ||
  fail "checkpoint command failed"
kill_mid_ingest 200000 0.5
[ "$(recovered_snapshot)" = "yes" ] || fail "post-checkpoint: snapshot not loaded"
check_recovery "$((LAST_OBJECTS + 200))" "kill@post-checkpoint"

# Round 6: kill -9 the NETWORK front end mid-load. catalog_server shares
# the durability format with catalog_shell; a hard kill while a socket
# client fleet (every 2nd connection a writer) is ingesting over TCP must
# leave the same recoverable data dir — acknowledged objects survive, the
# count never goes backwards, queries still work.
if [ -x "$SERVER_BIN" ] && [ -x "$LOAD_BIN" ]; then
  "$SERVER_BIN" --port 0 --data-dir "$DIR" > "$DIR/server.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/server.log")"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "net: catalog_server never published its port"
  "$LOAD_BIN" --port "$PORT" --connections 64 --writer-every 2 --duration 30 \
    >/dev/null 2>&1 &
  LOAD_PID=$!
  sleep 1.5
  kill -9 "$SERVER_PID" 2>/dev/null
  wait "$SERVER_PID" 2>/dev/null
  kill "$LOAD_PID" 2>/dev/null
  wait "$LOAD_PID" 2>/dev/null
  check_recovery "$LAST_OBJECTS" "kill@net-load"
else
  echo "crash_matrix: net round SKIPPED (catalog_server/catalog_load not built)"
fi

# Round 7: kill -9 a federation shard primary under live routed load.
if [ -x "$SERVER_BIN" ] && [ -x "$LOAD_BIN" ] && [ -x "$ROUTER_BIN" ]; then
  FED="$DIR/fed"
  mkdir -p "$FED/s0" "$FED/s1"

  # Scrape the first match of a sed pattern out of a growing log file.
  scrape() {
    local file="$1" pattern="$2" found=""
    for _ in $(seq 1 100); do
      found="$(sed -n "$pattern" "$file" 2>/dev/null | head -n 1)"
      [ -n "$found" ] && break
      sleep 0.1
    done
    echo "$found"
  }

  # Replica first: shard 0's primary needs its replication port to ship to.
  "$SERVER_BIN" --port 0 --replica --replication-listen 0 \
    > "$FED/replica.log" 2>&1 &
  REPLICA_PID=$!
  R_PORT="$(scrape "$FED/replica.log" 's/.*catalog_server listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p')"
  R_SHIP="$(scrape "$FED/replica.log" 's/.*replication listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p')"
  [ -n "$R_PORT" ] && [ -n "$R_SHIP" ] || fail "fed: replica never published its ports"

  "$SERVER_BIN" --port 0 --data-dir "$FED/s0" --ship-to "127.0.0.1:$R_SHIP" \
    > "$FED/s0.log" 2>&1 &
  S0_PID=$!
  S0_PORT="$(scrape "$FED/s0.log" 's/.*catalog_server listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p')"
  "$SERVER_BIN" --port 0 --data-dir "$FED/s1" > "$FED/s1.log" 2>&1 &
  S1_PID=$!
  S1_PORT="$(scrape "$FED/s1.log" 's/.*catalog_server listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p')"
  [ -n "$S0_PORT" ] && [ -n "$S1_PORT" ] || fail "fed: shards never published their ports"

  "$ROUTER_BIN" --port 0 --probe-interval-ms 200 \
    --shard "127.0.0.1:$S0_PORT,127.0.0.1:$R_PORT" \
    --shard "127.0.0.1:$S1_PORT" > "$FED/router.log" 2>&1 &
  ROUTER_PID=$!
  ROUTER_PORT="$(scrape "$FED/router.log" 's/.*catalog_router listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p')"
  [ -n "$ROUTER_PORT" ] || fail "fed: router never published its port"

  # Live load through the router, shard 0's primary killed mid-burst. The
  # fleet runs to completion so its frame accounting is trustworthy:
  # failover may surface error *responses* (unavailable writes), but a
  # single mangled or dropped frame is a protocol bug.
  "$LOAD_BIN" --port "$ROUTER_PORT" --connections 16 --writer-every 2 \
    --duration 6 > "$FED/load.log" 2>&1 &
  FED_LOAD_PID=$!
  sleep 2.5
  kill -9 "$S0_PID" 2>/dev/null
  wait "$S0_PID" 2>/dev/null
  wait "$FED_LOAD_PID" 2>/dev/null
  MANGLED="$(sed -n 's/.*mangled=\([0-9]*\).*/\1/p' "$FED/load.log" | head -n 1)"
  DROPPED="$(sed -n 's/.*dropped=\([0-9]*\).*/\1/p' "$FED/load.log" | head -n 1)"
  RESPONSES="$(sed -n 's/.*responses=\([0-9]*\).*/\1/p' "$FED/load.log" | head -n 1)"
  [ -n "$RESPONSES" ] && [ "$RESPONSES" -gt 0 ] ||
    fail "fed: load fleet produced no responses"
  [ "$MANGLED" = "0" ] || fail "fed: $MANGLED mangled frames across failover"
  [ "$DROPPED" = "0" ] || fail "fed: $DROPPED dropped frames across failover"

  # DOM oracle after failover: the router's merged stats must equal the sum
  # of what the replica (serving shard 0) and shard 1 each hold, and a
  # merged query must answer ok with no partial-degradation marker.
  wire_stats_objects() {
    printf 'stats\nquit\n' | "$SHELL_BIN" --connect "127.0.0.1:$1" 2>/dev/null |
      sed -n 's/.*<stats [^>]*objects="\([0-9]*\)".*/\1/p' | head -n 1
  }
  FED_OBJECTS="$(wire_stats_objects "$ROUTER_PORT")"
  REPLICA_OBJECTS="$(wire_stats_objects "$R_PORT")"
  S1_OBJECTS="$(wire_stats_objects "$S1_PORT")"
  [ -n "$FED_OBJECTS" ] && [ -n "$REPLICA_OBJECTS" ] && [ -n "$S1_OBJECTS" ] ||
    fail "fed: stats scrape failed after failover (fed='$FED_OBJECTS' replica='$REPLICA_OBJECTS' s1='$S1_OBJECTS')"
  [ "$FED_OBJECTS" = "$((REPLICA_OBJECTS + S1_OBJECTS))" ] ||
    fail "fed: merged stats $FED_OBJECTS != replica $REPLICA_OBJECTS + shard1 $S1_OBJECTS"
  MERGED="$(printf 'raw <catalogRequest type="queryIds"><attribute name="grid" source="ARPS"/></catalogRequest>\nquit\n' |
    "$SHELL_BIN" --connect "127.0.0.1:$ROUTER_PORT" 2>/dev/null)"
  echo "$MERGED" | grep -q 'status="ok"' ||
    fail "fed: merged query not ok after failover"
  echo "$MERGED" | grep -q 'code="partial"' &&
    fail "fed: merged query degraded to partial although the replica serves shard 0"

  # Deterministic recovery of the killed primary, floored by the replica:
  # every record the replica applied came off the primary's fsynced WAL, so
  # the recovered count may never be below it.
  s0_objects() {
    printf 'quit\n' | "$SHELL_BIN" --data-dir "$FED/s0" 2>/dev/null |
      sed -n 's/.*recovered from.*objects=\([0-9]*\).*/\1/p'
  }
  S0_FIRST="$(s0_objects)"
  S0_SECOND="$(s0_objects)"
  [ -n "$S0_FIRST" ] || fail "fed: no recovery banner from the killed primary"
  [ "$S0_FIRST" = "$S0_SECOND" ] ||
    fail "fed: non-deterministic shard recovery ($S0_FIRST vs $S0_SECOND objects)"
  [ "$S0_FIRST" -ge "$REPLICA_OBJECTS" ] ||
    fail "fed: recovered primary ($S0_FIRST) below its replica ($REPLICA_OBJECTS)"

  kill "$ROUTER_PID" "$S1_PID" "$REPLICA_PID" 2>/dev/null
  wait "$ROUTER_PID" "$S1_PID" "$REPLICA_PID" 2>/dev/null
  echo "crash_matrix: kill@fed-primary: failover ok (fed=$FED_OBJECTS = replica=$REPLICA_OBJECTS + s1=$S1_OBJECTS, mangled=0, recovered s0=$S0_FIRST deterministic)"
else
  echo "crash_matrix: fed round SKIPPED (catalog_server/catalog_load/catalog_router not built)"
fi

echo "crash_matrix: PASS (final objects=$LAST_OBJECTS)"
