// An interactive shell over the hybrid metadata catalog.
//
// Commands (one per line; also usable non-interactively via a pipe):
//   gen <n>                          generate and ingest n synthetic documents
//   ingest <file.xml>                ingest a LEAD metadata document from disk
//   find <name> [<source>] [<elem><op><value> ...]
//                                    metadata-attribute query, e.g.
//                                      find grid ARPS dx=1000 dz<=500
//   xfind <path-expression>          XPath-style query (§4 rewriting), e.g.
//                                      xfind //theme[themekey='air_temperature']
//   fetch <object_id>                print one object's reconstructed XML
//   sql <statement>                  run SQL against the shredded tables
//   defs                             list attribute definitions
//   stats                            catalog statistics
//   checkpoint                       write a snapshot, rotate the WAL (durable mode)
//   help                             this text
//   quit
//
// Run:  ./build/examples/catalog_shell
//       echo -e "gen 50\nfind theme themekey=air_temperature\nquit" | \
//           ./build/examples/catalog_shell
//
// With `--data-dir <dir>` the catalog runs on the durability subsystem:
// every mutation is WAL-logged to <dir>, and on startup the newest valid
// snapshot plus the WAL tail is replayed before the prompt appears — kill
// the process (kill -9 included) and restart to pick up where it crashed.
//
// With `--connect host:port` the shell drives a live catalog_server or
// catalog_router over the wire instead of an in-process catalog: gen,
// ingest, find, fetch and stats translate to framed <catalogRequest>s
// (plus `raw <xml>` for sending arbitrary request bodies); commands that
// need in-process state (sql, xfind, defs, checkpoint) are unavailable.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/catalog.hpp"
#include "core/path_query.hpp"
#include "core/service.hpp"
#include "net/client.hpp"
#include "storage/recovery.hpp"
#include "util/string_util.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace {

using namespace hxrc;

/// Parses "name<op>value" with op in {=, !=, <=, >=, <, >}.
bool parse_predicate(const std::string& token, core::AttrQuery& attr) {
  static constexpr std::pair<const char*, core::CompareOp> kOps[] = {
      {"!=", core::CompareOp::kNe}, {"<=", core::CompareOp::kLe},
      {">=", core::CompareOp::kGe}, {"=", core::CompareOp::kEq},
      {"<", core::CompareOp::kLt},  {">", core::CompareOp::kGt},
  };
  for (const auto& [text, op] : kOps) {
    const auto pos = token.find(text);
    if (pos == std::string::npos || pos == 0) continue;
    const std::string name = token.substr(0, pos);
    const std::string value = token.substr(pos + std::string(text).size());
    if (const auto num = util::parse_double(value)) {
      attr.add_element(name, rel::Value(*num), op);
    } else {
      attr.add_element(name, rel::Value(value), op);
    }
    return true;
  }
  return false;
}

void print_help() {
  std::printf(
      "commands:\n"
      "  gen <n>                         ingest n synthetic documents\n"
      "  ingest <file.xml>               ingest a document from disk\n"
      "  find <name> [<source>] [<elem><op><value> ...]\n"
      "  xfind <path-expression>         XPath-style metadata query\n"
      "  fetch <object_id>               print reconstructed XML\n"
      "  sql <statement>                 query the shredded tables\n"
      "  raw <request-xml>               send a request body verbatim (--connect)\n"
      "  defs | stats | checkpoint | help | quit\n");
}

/// Prints the ids of a queryIds response as one sorted-by-the-server line.
void print_remote_ids(const std::string& response) {
  std::vector<long long> ids;
  std::size_t pos = 0;
  while ((pos = response.find("<objectID>", pos)) != std::string::npos) {
    pos += 10;
    ids.push_back(std::atoll(response.c_str() + pos));
  }
  if (response.find("status=\"error\"") != std::string::npos) {
    std::printf("%s\n", response.c_str());
    return;
  }
  std::printf("%zu object(s):", ids.size());
  for (const long long id : ids) std::printf(" %lld", id);
  if (response.find("<partial ") != std::string::npos) std::printf(" [partial]");
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir;
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      data_dir = arg.substr(std::string("--data-dir=").size());
    } else if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(std::string("--connect=").size());
    } else {
      std::fprintf(stderr,
                   "usage: catalog_shell [--data-dir <dir>] [--connect host:port]\n");
      return 2;
    }
  }
  if (!connect.empty() && !data_dir.empty()) {
    std::fprintf(stderr, "--connect and --data-dir are mutually exclusive\n");
    return 2;
  }

  std::unique_ptr<net::BlockingClient> remote;
  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    const long remote_port =
        colon == std::string::npos ? 0 : std::atol(connect.c_str() + colon + 1);
    if (colon == std::string::npos || colon == 0 || remote_port <= 0 ||
        remote_port > 65535) {
      std::fprintf(stderr, "--connect expects host:port\n");
      return 2;
    }
    try {
      remote = std::make_unique<net::BlockingClient>(
          connect.substr(0, colon), static_cast<std::uint16_t>(remote_port));
    } catch (const net::SocketError& e) {
      std::fprintf(stderr, "cannot connect to %s: %s\n", connect.c_str(), e.what());
      return 1;
    }
  }

  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  core::MetadataCatalog catalog(schema, workload::lead_annotations(), config);

  std::unique_ptr<storage::DurableCatalog> durable;
  if (!data_dir.empty()) {
    storage::DurabilityConfig durability;
    durability.data_dir = data_dir;
    try {
      durable = std::make_unique<storage::DurableCatalog>(catalog, durability);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "recovery failed: %s\n", e.what());
      return 1;
    }
    const storage::RecoveryInfo& recovery = durable->recovery();
    std::printf(
        "recovered from '%s': snapshot=%s replayed=%llu torn_tail=%d objects=%zu "
        "(%.1f ms)\n",
        data_dir.c_str(), recovery.snapshot_loaded ? "yes" : "no",
        static_cast<unsigned long long>(recovery.replayed_records),
        recovery.torn_tail ? 1 : 0, catalog.object_count(),
        static_cast<double>(recovery.recovery_micros) / 1000.0);
  }

  workload::DocumentGenerator generator;
  std::uint64_t next_doc = catalog.object_count();

  std::printf("hybrid XML-relational metadata catalog shell — 'help' for commands\n");
  if (remote != nullptr) {
    std::printf("connected to %s (wire mode)\n", connect.c_str());
  }
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream input(line);
    std::string command;
    input >> command;
    try {
      if (command.empty()) continue;
      if (command == "quit" || command == "exit") break;
      if (remote != nullptr) {
        // Wire mode: translate commands into framed <catalogRequest>s.
        if (command == "help") {
          print_help();
        } else if (command == "gen") {
          std::size_t n = 10;
          input >> n;
          std::size_t ok = 0;
          for (std::size_t i = 0; i < n; ++i, ++next_doc) {
            const xml::Document doc = generator.generate(next_doc);
            const std::string request =
                "<catalogRequest type=\"ingest\" name=\"gen-" +
                std::to_string(next_doc) + "\" user=\"shell\">" +
                xml::write(*doc.root) + "</catalogRequest>";
            const std::string response = remote->call(request);
            if (response.find("status=\"ok\"") != std::string::npos) {
              ++ok;
            } else {
              std::printf("%s\n", response.c_str());
            }
          }
          std::printf("ingested %zu/%zu documents over the wire\n", ok, n);
        } else if (command == "ingest") {
          std::string path;
          input >> path;
          std::ifstream file(path);
          if (!file) {
            std::printf("cannot open '%s'\n", path.c_str());
            continue;
          }
          std::stringstream buffer;
          buffer << file.rdbuf();
          const std::string request = "<catalogRequest type=\"ingest\" name=\"" +
                                      xml::escape_attribute(path) +
                                      "\" user=\"shell\">" + buffer.str() +
                                      "</catalogRequest>";
          std::printf("%s\n", remote->call(request).c_str());
        } else if (command == "find") {
          std::string name;
          input >> name;
          if (name.empty()) {
            std::printf("usage: find <name> [<source>] [<elem><op><value> ...]\n");
            continue;
          }
          std::vector<std::string> tokens;
          std::string token;
          while (input >> token) tokens.push_back(token);
          std::string source;
          std::size_t first_pred = 0;
          if (!tokens.empty() &&
              tokens[0].find_first_of("=<>!") == std::string::npos) {
            source = tokens[0];
            first_pred = 1;
          }
          core::AttrQuery attr(name, source);
          bool ok = true;
          for (std::size_t i = first_pred; i < tokens.size(); ++i) {
            if (!parse_predicate(tokens[i], attr)) {
              std::printf("bad predicate '%s'\n", tokens[i].c_str());
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          core::ObjectQuery query;
          query.add_attribute(std::move(attr));
          std::string request = core::query_to_xml(query);
          request.replace(request.find("type=\"query\""),
                          std::string("type=\"query\"").size(),
                          "type=\"queryIds\"");
          print_remote_ids(remote->call(request));
        } else if (command == "fetch") {
          long long id = -1;
          input >> id;
          const std::string request = "<catalogRequest type=\"fetch\" objectID=\"" +
                                      std::to_string(id) + "\"/>";
          std::printf("%s\n", remote->call(request).c_str());
        } else if (command == "stats") {
          std::printf("%s\n",
                      remote->call("<catalogRequest type=\"stats\"/>").c_str());
        } else if (command == "raw") {
          std::string request;
          std::getline(input, request);
          std::printf("%s\n", remote->call(util::trim(request)).c_str());
        } else {
          std::printf("'%s' needs an in-process catalog — unavailable with "
                      "--connect\n",
                      command.c_str());
        }
        continue;
      }
      if (command == "help") {
        print_help();
      } else if (command == "gen") {
        std::size_t n = 10;
        input >> n;
        for (std::size_t i = 0; i < n; ++i) {
          catalog.ingest(generator.generate(next_doc), "gen-" + std::to_string(next_doc),
                         "shell");
          ++next_doc;
        }
        std::printf("ingested %zu documents (catalog now has %zu objects)\n", n,
                    catalog.object_count());
      } else if (command == "ingest") {
        std::string path;
        input >> path;
        std::ifstream file(path);
        if (!file) {
          std::printf("cannot open '%s'\n", path.c_str());
          continue;
        }
        std::stringstream buffer;
        buffer << file.rdbuf();
        const auto id = catalog.ingest_xml(buffer.str(), path, "shell");
        std::printf("ingested object %lld\n", static_cast<long long>(id));
      } else if (command == "find") {
        std::string name;
        input >> name;
        if (name.empty()) {
          std::printf("usage: find <name> [<source>] [<elem><op><value> ...]\n");
          continue;
        }
        std::vector<std::string> tokens;
        std::string token;
        while (input >> token) tokens.push_back(token);
        // A first token without an operator is the source.
        std::string source;
        std::size_t first_pred = 0;
        if (!tokens.empty() && tokens[0].find_first_of("=<>!") == std::string::npos) {
          source = tokens[0];
          first_pred = 1;
        }
        core::AttrQuery attr(name, source);
        bool ok = true;
        for (std::size_t i = first_pred; i < tokens.size(); ++i) {
          if (!parse_predicate(tokens[i], attr)) {
            std::printf("bad predicate '%s'\n", tokens[i].c_str());
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        core::ObjectQuery query;
        query.add_attribute(std::move(attr));
        core::QueryPlanInfo info;
        const auto ids = catalog.query(query, &info);
        std::printf("%zu object(s)%s:", ids.size(),
                    info.fast_path ? " [fast path]" : "");
        for (const auto id : ids) std::printf(" %lld", static_cast<long long>(id));
        std::printf("\n");
      } else if (command == "xfind") {
        std::string expression;
        std::getline(input, expression);
        const core::ObjectQuery query =
            core::path_to_query(catalog.partition(), util::trim(expression));
        const auto ids = catalog.query(query);
        std::printf("%zu object(s):", ids.size());
        for (const auto id : ids) std::printf(" %lld", static_cast<long long>(id));
        std::printf("\n");
      } else if (command == "fetch") {
        long long id = -1;
        input >> id;
        const xml::Document doc = catalog.fetch(id);
        std::printf("%s\n", xml::write(doc, xml::WriteOptions{.indent = 2}).c_str());
      } else if (command == "sql") {
        std::string statement;
        std::getline(input, statement);
        const rel::ResultSet result = catalog.database().execute(statement);
        std::printf("%s(%zu rows)\n", result.pretty().c_str(), result.size());
      } else if (command == "defs") {
        for (const core::AttributeDef& def : catalog.registry().attributes()) {
          std::printf("  [%lld] %s%s%s %s parent=%lld\n",
                      static_cast<long long>(def.id), def.name.c_str(),
                      def.source.empty() ? "" : " @ ",
                      def.source.c_str(),
                      def.kind == core::AttrKind::kDynamic ? "(dynamic)" : "(structural)",
                      static_cast<long long>(def.parent));
        }
      } else if (command == "stats") {
        const core::ShredStats& stats = catalog.total_stats();
        std::printf(
            "objects=%zu attr_instances=%zu sub_attrs=%zu elements=%zu clobs=%zu "
            "clob_bytes=%zu defs=%zu elem_defs=%zu db_bytes=%zu\n",
            catalog.object_count(), stats.attribute_instances,
            stats.sub_attribute_instances, stats.element_rows, stats.clobs,
            stats.clob_bytes, catalog.registry().attribute_count(),
            catalog.registry().element_count(), catalog.database().approx_bytes());
        if (catalog.cache_enabled()) {
          const util::CacheMetrics& cache = catalog.cache_metrics();
          std::printf(
              "cache: l1 hits=%llu misses=%llu entries=%llu bytes=%llu | "
              "l2 hits=%llu misses=%llu entries=%llu bytes=%llu | "
              "evictions=%llu bypass=%llu\n",
              static_cast<unsigned long long>(cache.l1.hits.load()),
              static_cast<unsigned long long>(cache.l1.misses.load()),
              static_cast<unsigned long long>(cache.l1.entries.load()),
              static_cast<unsigned long long>(cache.l1.bytes.load()),
              static_cast<unsigned long long>(cache.l2.hits.load()),
              static_cast<unsigned long long>(cache.l2.misses.load()),
              static_cast<unsigned long long>(cache.l2.entries.load()),
              static_cast<unsigned long long>(cache.l2.bytes.load()),
              static_cast<unsigned long long>(cache.l1.evictions.load() +
                                              cache.l2.evictions.load()),
              static_cast<unsigned long long>(cache.bypass.load()));
        }
      } else if (command == "checkpoint") {
        if (durable == nullptr) {
          std::printf("no data dir — start with --data-dir <dir>\n");
          continue;
        }
        durable->checkpoint();
        std::printf("snapshot %llu written, WAL rotated\n",
                    static_cast<unsigned long long>(durable->wal_seq()));
      } else {
        std::printf("unknown command '%s' — try 'help'\n", command.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  if (durable != nullptr) durable->close();  // final fsync before exit
  return 0;
}
