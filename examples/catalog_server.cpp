// catalog_server: the hybrid metadata catalog as a network service.
//
// Serves the framed wire protocol (src/net/frame.hpp) over TCP, dispatching
// <catalogRequest> bodies through ServiceDispatcher onto a MetadataCatalog —
// optionally durable (--data-dir: WAL + snapshots, recovery on start, same
// on-disk format as catalog_shell).
//
// Run:  ./build/examples/catalog_server --port 7070 --data-dir /tmp/cat
// Stop: SIGTERM or SIGINT drains gracefully — stop accepting, answer queued
//       frames code="draining", flush in-flight responses, quiesce workers,
//       final WAL fsync. kill -9 at any point is recoverable on restart.
//
// Federation roles (see src/fed/):
//   shard primary   --data-dir DIR --ship-to HOST:PORT   streams every
//                   fsync-acknowledged WAL batch to a read replica;
//   read replica    --replica [--replication-listen N]   read-only service
//                   fed exclusively by the replication stream.
//
// Flags:
//   --port N               listen port (default 7070; 0 = ephemeral)
//   --data-dir DIR         run durable on DIR (default: in-memory only)
//   --workers N            dispatcher worker threads (default 4)
//   --event-threads N      epoll event-loop threads (default 2)
//   --max-queue N          dispatcher admission bound (default 256)
//   --idle-timeout-ms N    close idle connections after N ms (default 0 = never)
//   --fsync-every-ms N     WAL group-commit time cadence (default 20)
//   --fsync-every-n N      WAL group-commit volume backstop (default 256)
//   --ship-to HOST:PORT    ship the WAL to a replica (requires --data-dir)
//   --replica              read-only replica fed by the replication stream
//   --replication-listen N replication port (replica; default 0 = ephemeral)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "core/catalog.hpp"
#include "core/dispatcher.hpp"
#include "fed/replica.hpp"
#include "fed/shipper.hpp"
#include "net/server.hpp"
#include "storage/recovery.hpp"
#include "workload/lead_schema.hpp"

namespace {

std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: catalog_server [--port N] [--data-dir DIR] [--workers N]\n"
               "                      [--event-threads N] [--max-queue N]\n"
               "                      [--idle-timeout-ms N] [--fsync-every-ms N]\n"
               "                      [--fsync-every-n N] [--ship-to HOST:PORT]\n"
               "                      [--replica] [--replication-listen N]\n");
  std::exit(2);
}

/// "host:port" → pair; exits with usage() on malformed input.
void parse_host_port(const std::string& text, std::string& host, long& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) usage();
  host = text.substr(0, colon);
  port = std::atol(text.c_str() + colon + 1);
  if (port <= 0 || port > 65535) usage();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hxrc;

  long port = 7070;
  std::string data_dir;
  core::DispatcherConfig dispatch;
  net::ServerConfig server_config;
  storage::DurabilityConfig durability;
  bool replica_mode = false;
  long replication_port = 0;
  std::string ship_host;
  long ship_port = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atol(value().c_str());
    } else if (arg == "--data-dir") {
      data_dir = value();
    } else if (arg == "--workers") {
      dispatch.workers = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--event-threads") {
      server_config.event_threads = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--max-queue") {
      dispatch.max_queue = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--idle-timeout-ms") {
      server_config.idle_timeout = std::chrono::milliseconds(std::atol(value().c_str()));
    } else if (arg == "--fsync-every-ms") {
      durability.wal.fsync_every_ms = static_cast<std::uint32_t>(std::atol(value().c_str()));
    } else if (arg == "--fsync-every-n") {
      durability.wal.fsync_every_n = static_cast<std::uint32_t>(std::atol(value().c_str()));
    } else if (arg == "--ship-to") {
      parse_host_port(value(), ship_host, ship_port);
    } else if (arg == "--replica") {
      replica_mode = true;
    } else if (arg == "--replication-listen") {
      replication_port = std::atol(value().c_str());
      if (replication_port < 0 || replication_port > 65535) usage();
    } else {
      usage();
    }
  }
  if (port < 0 || port > 65535) usage();
  server_config.port = static_cast<std::uint16_t>(port);
  if (!ship_host.empty() && data_dir.empty()) {
    std::fprintf(stderr, "--ship-to requires --data-dir (the WAL is what ships)\n");
    return 2;
  }
  if (replica_mode && !data_dir.empty()) {
    std::fprintf(stderr,
                 "--replica is incompatible with --data-dir: a replica's state "
                 "is the replication stream\n");
    return 2;
  }

  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig catalog_config;
  catalog_config.shred.auto_define_dynamic = true;
  core::MetadataCatalog catalog(schema, workload::lead_annotations(), catalog_config);

  std::unique_ptr<storage::DurableCatalog> durable;
  if (!data_dir.empty()) {
    durability.data_dir = data_dir;
    try {
      durable = std::make_unique<storage::DurableCatalog>(catalog, durability);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "recovery failed: %s\n", e.what());
      return 1;
    }
    const storage::RecoveryInfo& recovery = durable->recovery();
    std::printf(
        "recovered from '%s': snapshot=%s replayed=%llu torn_tail=%d objects=%zu "
        "(%.1f ms)\n",
        data_dir.c_str(), recovery.snapshot_loaded ? "yes" : "no",
        static_cast<unsigned long long>(recovery.replayed_records),
        recovery.torn_tail ? 1 : 0, catalog.object_count(),
        static_cast<double>(recovery.recovery_micros) / 1000.0);
  }

  // Replica: accept the replication stream on an internal port and refuse
  // client mutations — the stream is the only writer.
  std::unique_ptr<fed::ReplicationListener> replication;
  if (replica_mode) {
    dispatch.read_only = true;
    fed::ReplicaOptions replica_options;
    replica_options.port = static_cast<std::uint16_t>(replication_port);
    replication = std::make_unique<fed::ReplicationListener>(catalog, replica_options);
    try {
      replication->start();
    } catch (const net::SocketError& e) {
      std::fprintf(stderr, "cannot start replication listener: %s\n", e.what());
      return 1;
    }
    catalog.set_replication_state(&replication->state());
  }

  core::ServiceDispatcher dispatcher(catalog, dispatch);
  net::CatalogServer server(dispatcher, server_config);
  // Expose the server's backpressure counters through the catalog's `stats`
  // request (<server read_pauses=... write_pauses=...>). The server outlives
  // every request the dispatcher handles, so the pointer stays valid.
  catalog.set_server_pauses(&server.stats().pauses);
  try {
    server.start();
  } catch (const net::SocketError& e) {
    std::fprintf(stderr, "cannot start server: %s\n", e.what());
    return 1;
  }

  // Primary: stream every fsync-acknowledged WAL batch to the replica.
  std::unique_ptr<fed::WalShipper> shipper;
  if (!ship_host.empty()) {
    fed::ShipperOptions ship_options;
    ship_options.host = ship_host;
    ship_options.port = static_cast<std::uint16_t>(ship_port);
    shipper = std::make_unique<fed::WalShipper>(*durable, ship_options);
    shipper->start();
  }

  struct sigaction action {};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::printf("catalog_server listening on 127.0.0.1:%u (workers=%zu event_threads=%zu "
              "max_queue=%zu durable=%s%s)\n",
              static_cast<unsigned>(server.port()), dispatcher.workers(),
              server_config.event_threads, dispatcher.max_queue(),
              data_dir.empty() ? "no" : "yes", replica_mode ? " role=replica" : "");
  if (replication != nullptr) {
    std::printf("replication listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(replication->port()));
  }
  if (shipper != nullptr) {
    std::printf("shipping WAL to %s:%ld\n", ship_host.c_str(), ship_port);
  }
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  server.drain();
  // Best-effort tail shipping: anything the live stream misses from here on
  // is recovered from the WAL file when the primary next starts.
  if (shipper != nullptr) shipper->stop();
  if (replication != nullptr) replication->stop();
  if (durable != nullptr) durable->close();  // final WAL fsync

  const net::ServerStats& stats = server.stats();
  std::printf("served %llu frames over %llu connections (%llu bytes in, %llu out)\n",
              static_cast<unsigned long long>(stats.frames_in.load()),
              static_cast<unsigned long long>(stats.connections_accepted.load()),
              static_cast<unsigned long long>(stats.bytes_in.load()),
              static_cast<unsigned long long>(stats.bytes_out.load()));
  return 0;
}
