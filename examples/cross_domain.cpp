// Cross-domain generality (§1, §7): the same hybrid machinery drives a
// catalog for a completely different community.
//
// The paper argues the approach "generalizes to metadata in other
// scientific grid environments" and proposes configuring a catalog from an
// annotated schema. This example builds a Taverna-style bioinformatics
// workflow-run catalog ([4] in the paper) from ONE annotated-schema
// document — different element names, a different dynamic-attribute
// convention — and exercises ingest, dynamic validation, path queries, and
// response building without any LEAD-specific code.
//
// Run:  ./build/examples/cross_domain
#include <cstdio>

#include "core/annotated_schema.hpp"
#include "core/browse.hpp"
#include "core/catalog.hpp"
#include "core/path_query.hpp"
#include "xml/writer.hpp"

namespace {

// The community schema, annotated: processors carry dynamic parameters
// identified by (head/name, head/impl); items use param/key/src/val.
const char* kWorkflowSchema = R"(
<schema root="workflowRun">
  <element name="runID" type="string" metadata="attribute"/>
  <element name="provenance">
    <element name="runInfo" metadata="attribute">
      <element name="title" type="string"/>
      <element name="started" type="date"/>
      <element name="engine" type="string"/>
    </element>
    <element name="tags" metadata="attribute" maxOccurs="unbounded">
      <element name="scheme" type="string"/>
      <element name="tag" type="string" maxOccurs="unbounded"/>
    </element>
    <element name="processor" maxOccurs="unbounded" metadata="dynamic">
      <element name="head">
        <element name="name" type="string"/>
        <element name="impl" type="string"/>
      </element>
      <element name="param" maxOccurs="unbounded" recursive="true">
        <element name="key" type="string"/>
        <element name="src" type="string"/>
        <element name="val" type="string"/>
      </element>
    </element>
  </element>
  <convention container="head" name="name" source="impl" item="param"
              itemName="key" itemSource="src" itemValue="val"/>
</schema>)";

std::string run_document(int run, const char* tool, double evalue) {
  std::string text = "<workflowRun><runID>run-" + std::to_string(run) + "</runID>";
  text += "<provenance><runInfo><title>protein annotation sweep</title>";
  text += "<started>2006-07-0" + std::to_string(1 + run % 7) + "</started>";
  text += "<engine>taverna-1.3</engine></runInfo>";
  text += "<tags><scheme>GO</scheme><tag>protein_binding</tag>";
  if (run % 2 == 0) text += "<tag>kinase_activity</tag>";
  text += "</tags>";
  text += "<processor><head><name>blast</name><impl>";
  text += tool;
  text += "</impl></head>";
  text += "<param><key>evalue</key><src>";
  text += tool;
  text += "</src><val>" + std::to_string(evalue) + "</val></param>";
  text += "<param><key>matrix</key><src>";
  text += tool;
  text += "</src><val>BLOSUM62</val></param>";
  text += "<param><key>filtering</key><src>";
  text += tool;
  text += "</src><param><key>low_complexity</key><src>";
  text += tool;
  text += "</src><val>1</val></param></param>";
  text += "</processor></provenance></workflowRun>";
  return text;
}

}  // namespace

int main() {
  using namespace hxrc;

  // One document configures the whole catalog (§7's annotated schema).
  const core::AnnotatedSchema annotated = core::load_annotated_schema(kWorkflowSchema);
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  core::MetadataCatalog catalog(annotated.schema, annotated.annotations, config);
  std::printf("workflow catalog: %zu schema declarations, %zu metadata attributes, "
              "dynamic convention item=<%s>\n",
              annotated.schema.node_count(),
              catalog.partition().attribute_roots().size(),
              annotated.annotations.convention.item_tag.c_str());

  // Ingest a sweep of BLAST runs with two implementations.
  for (int run = 0; run < 12; ++run) {
    const char* tool = (run % 3 == 0) ? "ncbi-blast" : "wu-blast";
    const double evalue = (run % 4 == 0) ? 1e-10 : 1e-5;
    catalog.ingest_xml(run_document(run, tool, evalue), "run", "bioscientist");
  }
  std::printf("ingested %zu workflow runs (%zu dynamic definitions registered)\n\n",
              catalog.object_count(), catalog.registry().attribute_count());

  // Query 1: strict-threshold NCBI runs, via the path-query rewriting —
  // note the convention-specific names (head/name, param/key/val).
  const core::ObjectQuery strict = core::path_to_query(
      catalog.partition(),
      "//processor[head/name='blast' and head/impl='ncbi-blast']"
      "[param[key='evalue' and val<=0.000001]]");
  const auto strict_runs = catalog.query(strict);
  std::printf("ncbi-blast runs with evalue <= 1e-6: %zu\n", strict_runs.size());

  // Query 2: nested sub-attribute (filtering/low_complexity).
  const core::ObjectQuery filtered = core::path_to_query(
      catalog.partition(),
      "//processor[head/name='blast' and head/impl='wu-blast']"
      "[param[key='filtering' and src='wu-blast']"
      "[param[key='low_complexity' and val=1]]]");
  std::printf("wu-blast runs with low-complexity filtering: %zu\n",
              catalog.query(filtered).size());

  // Query 3: structural tag lookup.
  const core::ObjectQuery tagged = core::path_to_query(
      catalog.partition(), "//tags[scheme='GO' and tag='kinase_activity']");
  std::printf("runs tagged kinase_activity: %zu\n\n", catalog.query(tagged).size());

  // Browse the catalog as a query-builder GUI would (§4).
  const core::CatalogBrowser browser(catalog);
  std::printf("available attributes:\n");
  for (const core::AttributeSummary& summary : browser.attributes()) {
    if (summary.parent != core::kNoAttr) continue;
    std::printf("  %-12s %-12s %s  (%zu instances)\n", summary.name.c_str(),
                summary.source.empty() ? "-" : summary.source.c_str(),
                summary.kind == core::AttrKind::kDynamic ? "dynamic" : "structural",
                summary.instances);
  }

  // Projected response: just the runInfo of the first strict hit.
  if (!strict_runs.empty()) {
    const std::vector<core::ObjectId> one{strict_runs.front()};
    std::printf("\nrunInfo of first match:\n%s\n",
                catalog.build_response(one, {"provenance/runInfo"}).c_str());
  }
  return 0;
}
