// A LEAD-style forecast workflow (the scenario motivating the paper's §1/§3):
//
// A scientist runs an ensemble of ARPS forecasts. Each run's Fortran
// namelist (the model configuration) is converted into dynamic metadata
// attributes and ingested alongside structural metadata — including a
// *user-private* quality attribute that other scientists cannot query.
// Afterwards the scientist locates runs by model parameters and drills into
// one run's full metadata.
//
// Run:  ./build/examples/lead_workflow
#include <cstdio>
#include <string>

#include "core/catalog.hpp"
#include "util/prng.hpp"
#include "workload/lead_schema.hpp"
#include "workload/namelist.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace {

using namespace hxrc;

/// The namelist an ensemble member runs with: dx varies per member; the
/// stretching block only appears for stretched-grid members.
std::string member_namelist(int member, double dx, bool stretched) {
  std::string text = "&grid\n";
  text += "  runname = 'ensemble-" + std::to_string(member) + "',\n";
  text += "  dx = " + std::to_string(dx) + ",\n";
  text += "  dz = 500.0,\n";
  if (stretched) {
    text += "  grid_stretching%dzmin = 100.0,\n";
    text += "  grid_stretching%strhopt = 2,\n";
  }
  text += "/\n";
  text += "&microphysics\n  mphyopt = 2,\n  hail_density = 913.0,\n/\n";
  return text;
}

/// Builds one run's metadata document from its namelist.
xml::Document member_document(int member, const std::string& namelist_text) {
  xml::Document doc(xml::Node::element("LEADresource"));
  doc.root->add_element("resourceID", "ensemble-member-" + std::to_string(member));
  xml::Node* data = doc.root->add_element("data");

  xml::Node* idinfo = data->add_element("idinfo");
  xml::Node* citation = idinfo->add_element("citation");
  citation->add_element("origin", "LEAD");
  citation->add_element("pubdate", "2006-06-15");
  citation->add_element("title", "May 20 supercell ensemble member " +
                                     std::to_string(member));
  xml::Node* keywords = idinfo->add_element("keywords");
  xml::Node* theme = keywords->add_element("theme");
  theme->add_element("themekt", "CF NetCDF");
  theme->add_element("themekey", "convective_precipitation_amount");

  // Every namelist group becomes one dynamic metadata attribute.
  xml::Node* eainfo = data->add_element("geospatial")->add_element("eainfo");
  for (const workload::NamelistGroup& group :
       workload::parse_namelist(namelist_text)) {
    eainfo->add_child(workload::namelist_group_to_detailed(group, "ARPS"));
  }
  return doc;
}

}  // namespace

int main() {
  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  core::MetadataCatalog catalog(schema, workload::lead_annotations(), config);

  // The scientist registers a *private* quality-control attribute: only
  // alice can define and query it (§3: user-level definitions).
  const core::AttrDefId qc = catalog.registry().define_attribute(
      "quality", "alice-qc", core::AttrKind::kDynamic, core::kNoAttr, core::kNoOrder,
      core::Visibility::kUser, "alice");
  catalog.registry().define_element("score", "alice-qc", qc, xml::LeafType::kDouble);

  // Ingest a 16-member ensemble; half the members use grid stretching and
  // dx alternates between 1000 m and 2000 m.
  util::Prng rng(7);
  std::printf("ingesting 16 ensemble members...\n");
  for (int member = 0; member < 16; ++member) {
    const double dx = (member % 2 == 0) ? 1000.0 : 2000.0;
    const bool stretched = member % 4 < 2;
    const std::string namelist = member_namelist(member, dx, stretched);
    xml::Document doc = member_document(member, namelist);

    // alice attaches her private QC score as another dynamic attribute.
    xml::Node* eainfo =
        doc.root->first_child("data")->first_child("geospatial")->first_child("eainfo");
    xml::Node* detailed = eainfo->add_element("detailed");
    xml::Node* enttyp = detailed->add_element("enttyp");
    enttyp->add_element("enttypl", "quality");
    enttyp->add_element("enttypds", "alice-qc");
    xml::Node* item = detailed->add_element("attr");
    item->add_element("attrlabl", "score");
    item->add_element("attrdefs", "alice-qc");
    item->add_element("attrv", std::to_string(0.5 + 0.03 * member));

    catalog.ingest(doc, "member-" + std::to_string(member), "alice");
  }
  std::printf("catalog now holds %zu objects, %zu attribute definitions, "
              "%zu element definitions\n\n",
              catalog.object_count(), catalog.registry().attribute_count(),
              catalog.registry().element_count());

  // Query 1: which runs used a 1 km grid with stretching (dzmin = 100)?
  core::ObjectQuery q1;
  core::AttrQuery grid("grid", "ARPS");
  grid.add_element("dx", "ARPS", rel::Value(1000.0), core::CompareOp::kEq);
  core::AttrQuery stretching("grid_stretching", "ARPS");
  stretching.add_element("dzmin", rel::Value(100.0), core::CompareOp::kEq);
  grid.add_attribute(std::move(stretching));
  q1.add_attribute(std::move(grid));
  const auto stretched_runs = catalog.query(q1);
  std::printf("runs with dx=1000 and stretched grid (dzmin=100): %zu\n",
              stretched_runs.size());

  // Query 2: alice's private QC attribute — visible only to her.
  core::ObjectQuery q2;
  core::AttrQuery quality("quality", "alice-qc");
  quality.add_element("score", "alice-qc", rel::Value(0.8), core::CompareOp::kGe);
  q2.add_attribute(std::move(quality));

  std::printf("high-QC runs visible to bob:   %zu\n",
              catalog.query(core::ObjectQuery(q2).set_user("bob")).size());
  std::printf("high-QC runs visible to alice: %zu\n",
              catalog.query(core::ObjectQuery(q2).set_user("alice")).size());

  // Drill into the first stretched run's full metadata.
  if (!stretched_runs.empty()) {
    const xml::Document doc = catalog.fetch(stretched_runs.front());
    std::printf("\nfirst matching run:\n%s\n",
                xml::write(doc, xml::WriteOptions{.indent = 2}).c_str());
  }
  return 0;
}
