// Quickstart: the paper's running example, end to end.
//
// Builds the LEAD schema (Fig. 2), partitions it into metadata attributes,
// ingests the Fig. 3 document, runs the §4 example query ("objects with
// grid dx = 1000 m that also have grid-stretching dzmin = 100 m"), and
// prints the reconstructed XML response.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "core/catalog.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

int main() {
  using namespace hxrc;

  // 1. The community schema and its metadata-attribute annotation.
  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;  // register ARPS parameters on ingest
  core::MetadataCatalog catalog(schema, workload::lead_annotations(), config);

  std::printf("LEAD schema: %zu element declarations, %zu metadata attributes\n",
              schema.node_count(), catalog.partition().attribute_roots().size());

  // 2. Ingest the paper's Fig. 3 metadata document.
  const core::ObjectId id =
      catalog.ingest_xml(workload::fig3_document(), "arps-run-42", "alice");
  const core::ShredStats& stats = catalog.total_stats();
  std::printf(
      "ingested object %lld: %zu attribute instances, %zu sub-attributes, "
      "%zu element rows, %zu CLOBs (%zu bytes)\n",
      static_cast<long long>(id), stats.attribute_instances,
      stats.sub_attribute_instances, stats.element_rows, stats.clobs, stats.clob_bytes);

  // 3. The §4 example query, built with the MyFile/MyAttr-style API.
  const core::ObjectQuery query = workload::paper_example_query(1000.0, 100.0);
  core::QueryPlanInfo info;
  const auto ids = catalog.query(query, &info);
  std::printf(
      "query: grid(dx=1000) with grid-stretching(dzmin=100) -> %zu object(s), "
      "%zu criteria nodes, %zu candidate rows\n",
      ids.size(), info.query_nodes, info.candidate_rows);

  // 4. Build the tagged-XML response from the per-attribute CLOBs (§5).
  const std::string response = catalog.build_response(ids);
  const xml::Document pretty = xml::parse(response);
  std::printf("\nresponse:\n%s\n",
              xml::write(pretty, xml::WriteOptions{.indent = 2}).c_str());

  // 5. The shredded tables are plain relational data — inspect them via SQL.
  const rel::ResultSet instances = catalog.database().execute(
      "SELECT attr_id, COUNT(*) AS instances FROM attr_instances GROUP BY attr_id "
      "ORDER BY attr_id");
  std::printf("attribute instances by definition:\n%s\n", instances.pretty().c_str());
  return 0;
}
