// Side-by-side comparison of the four storage approaches (§6).
//
// Ingests the same generated LEAD corpus into the hybrid catalog and the
// three baselines, runs the same query mix against each, verifies they all
// return identical results, and prints an ingest / query / reconstruct /
// storage summary table.
//
// Run:  ./build/examples/backend_comparison [corpus_size]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/backend.hpp"
#include "util/timer.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

int main(int argc, char** argv) {
  using namespace hxrc;
  using baselines::BackendKind;

  const std::size_t corpus_size =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 500;

  xml::Schema schema = workload::lead_schema();
  const core::Partition partition =
      core::Partition::build(schema, workload::lead_annotations());

  workload::DocumentGenerator generator;
  const auto docs = generator.corpus(corpus_size);

  // The query mix: structural keyword lookups, dynamic parameter
  // predicates, and the paper's nested example.
  std::vector<core::ObjectQuery> queries;
  queries.push_back(workload::theme_keyword_query("air_temperature"));
  queries.push_back(workload::theme_keyword_query("eastward_wind"));
  queries.push_back(workload::dynamic_param_query(
      "grid", "ARPS", "dx", workload::parameter_value("dx", 1)));
  queries.push_back(workload::dynamic_param_query(
      "microphysics", "WRF", "dtbig", workload::parameter_value("dtbig", 2),
      core::CompareOp::kGe));
  queries.push_back(workload::paper_example_query());
  workload::QueryGenerator random_queries;
  for (std::uint64_t q = 0; q < 15; ++q) queries.push_back(random_queries.generate(q));

  std::printf("corpus: %zu documents, %zu queries\n\n", docs.size(), queries.size());
  std::printf("%-10s %12s %12s %14s %14s %12s\n", "backend", "ingest[ms]",
              "query[ms]", "q-results", "rebuild[ms]", "bytes/doc");

  std::vector<std::vector<core::ObjectId>> reference;
  for (const BackendKind kind :
       {BackendKind::kHybrid, BackendKind::kInlining, BackendKind::kEdge,
        BackendKind::kClob}) {
    const auto backend = baselines::make_backend(kind, partition);

    util::Stopwatch ingest_clock;
    for (const auto& doc : docs) backend->ingest(doc, "user");
    const double ingest_ms = ingest_clock.millis();

    util::Stopwatch query_clock;
    std::size_t total_results = 0;
    std::vector<std::vector<core::ObjectId>> results;
    for (const auto& query : queries) {
      results.push_back(backend->query(query));
      total_results += results.back().size();
    }
    const double query_ms = query_clock.millis();

    util::Stopwatch rebuild_clock;
    std::size_t rebuilt_bytes = 0;
    for (std::size_t i = 0; i < docs.size(); i += 10) {
      rebuilt_bytes += backend->reconstruct(static_cast<core::ObjectId>(i)).size();
    }
    const double rebuild_ms = rebuild_clock.millis();

    if (reference.empty()) {
      reference = results;
    } else if (results != reference) {
      std::printf("!! %s disagrees with the hybrid results\n",
                  backend->name().c_str());
      return 1;
    }

    std::printf("%-10s %12.2f %12.2f %14zu %14.2f %12zu\n", backend->name().c_str(),
                ingest_ms, query_ms, total_results, rebuild_ms,
                backend->storage_bytes() / docs.size());
    (void)rebuilt_bytes;
  }

  std::printf("\nall four backends returned identical result sets.\n");
  return 0;
}
