// catalog_router: the federation front end as a network service.
//
// Speaks the identical framed wire protocol as catalog_server on its client
// side — a client cannot tell a router port from a catalog port — and
// scatter-gathers every request across N shard catalogs behind it
// (src/fed/router.hpp): point ops routed by gid mod N, queries merged into
// one globally-ascending page, stats summed, defines broadcast.
//
// Run a 2-shard federation with one replica for shard 0:
//
//   catalog_server --port 7071 --data-dir /tmp/s0 --ship-to 127.0.0.1:7081 &
//   catalog_server --port 7072 --data-dir /tmp/s1 &
//   catalog_server --port 7073 --replica --replication-listen 7081 &
//   catalog_router --port 7070 --shard 127.0.0.1:7071,127.0.0.1:7073
//                  --shard 127.0.0.1:7072
//
// Flags:
//   --port N             listen port (default 7070; 0 = ephemeral)
//   --shard P[,R]        shard endpoint: primary host:port, optionally a
//                        replica host:port after a comma (repeat per shard;
//                        order fixes the shard index — keep it stable)
//   --workers N          routing worker threads (default 4)
//   --event-threads N    epoll event-loop threads (default 2)
//   --max-queue N        admission bound (default 256)
//   --io-timeout-ms N    per-shard call timeout (default 5000)
//   --probe-interval-ms N  health-probe cadence, 0 = off (default 500)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "fed/router.hpp"
#include "net/server.hpp"

namespace {

std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: catalog_router --shard HOST:PORT[,HOST:PORT] [--shard ...]\n"
               "                      [--port N] [--workers N] [--event-threads N]\n"
               "                      [--max-queue N] [--io-timeout-ms N]\n"
               "                      [--probe-interval-ms N]\n");
  std::exit(2);
}

bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return false;
  }
  const long value = std::atol(text.c_str() + colon + 1);
  if (value <= 0 || value > 65535) return false;
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(value);
  return true;
}

hxrc::fed::ShardEndpoint parse_shard(const std::string& spec) {
  hxrc::fed::ShardEndpoint shard;
  const std::size_t comma = spec.find(',');
  const std::string primary = spec.substr(0, comma);
  if (!parse_host_port(primary, shard.primary_host, shard.primary_port)) usage();
  if (comma != std::string::npos) {
    const std::string replica = spec.substr(comma + 1);
    if (!parse_host_port(replica, shard.replica_host, shard.replica_port)) usage();
  }
  return shard;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hxrc;

  long port = 7070;
  fed::RouterOptions options;
  net::ServerConfig server_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atol(value().c_str());
    } else if (arg == "--shard") {
      options.shards.push_back(parse_shard(value()));
    } else if (arg == "--workers") {
      options.workers = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--event-threads") {
      server_config.event_threads = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--max-queue") {
      options.max_queue = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--io-timeout-ms") {
      options.io_timeout_ms = static_cast<std::uint32_t>(std::atol(value().c_str()));
    } else if (arg == "--probe-interval-ms") {
      options.probe_interval_ms = static_cast<std::uint32_t>(std::atol(value().c_str()));
    } else {
      usage();
    }
  }
  if (port < 0 || port > 65535 || options.shards.empty()) usage();
  server_config.port = static_cast<std::uint16_t>(port);

  fed::FederationRouter router(options);
  net::CatalogServer server(router, server_config);
  try {
    server.start();
  } catch (const net::SocketError& e) {
    std::fprintf(stderr, "cannot start router: %s\n", e.what());
    return 1;
  }

  struct sigaction action {};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::printf("catalog_router listening on 127.0.0.1:%u (shards=%u workers=%zu "
              "event_threads=%zu max_queue=%zu)\n",
              static_cast<unsigned>(server.port()), router.shard_count(),
              options.workers, server_config.event_threads, options.max_queue);
  for (std::size_t i = 0; i < options.shards.size(); ++i) {
    const fed::ShardEndpoint& shard = options.shards[i];
    std::string line = "  shard " + std::to_string(i) + ": primary " +
                       shard.primary_host + ":" +
                       std::to_string(shard.primary_port);
    if (!shard.replica_host.empty()) {
      line += " replica " + shard.replica_host + ":" +
              std::to_string(shard.replica_port);
    }
    std::printf("%s\n", line.c_str());
  }
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  server.drain();

  const net::ServerStats& stats = server.stats();
  std::printf("routed %llu frames over %llu connections (%llu bytes in, %llu out)\n",
              static_cast<unsigned long long>(stats.frames_in.load()),
              static_cast<unsigned long long>(stats.connections_accepted.load()),
              static_cast<unsigned long long>(stats.bytes_in.load()),
              static_cast<unsigned long long>(stats.bytes_out.load()));
  return 0;
}
