#include "util/prng.hpp"

#include <cmath>

namespace hxrc::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Prng::Prng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Prng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Prng::uniform(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Lemire-style rejection-free bounded draw is overkill here; modulo bias is
  // negligible for workload synthesis but we still mask down via widening.
  const unsigned __int128 wide = static_cast<unsigned __int128>(next()) * range;
  return lo + static_cast<std::int64_t>(wide >> 64);
}

double Prng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Prng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Prng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::string Prng::identifier(std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[uniform(0, 25)]);
  }
  return out;
}

}  // namespace hxrc::util
