#include "util/thread_pool.hpp"

#include <algorithm>

namespace hxrc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, pool.size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace hxrc::util
