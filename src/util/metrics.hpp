// Lock-free service metrics: per-request-type counters and latency
// histograms.
//
// The dispatcher records one sample per handled request; the stats request
// type reports the aggregate (see core/service.cpp). Everything here is a
// plain atomic so recording never blocks a worker: histograms are
// log2-ranged with 4 linear sub-buckets per range (relative error ≤ 1/4
// after interpolation), and recording costs one fetch_add per sample.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define HXRC_HAS_RUSAGE 1
#endif

namespace hxrc::util {

/// Peak resident set size of this process in bytes; 0 where unsupported.
/// Benches report it alongside approx_bytes so the footprint numbers in
/// BENCH_*.json can be sanity-checked against what the OS actually charged.
inline std::size_t peak_rss_bytes() noexcept {
#ifdef HXRC_HAS_RUSAGE
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux (bytes on macOS, where this would
  // over-report by 1024x; the benches run on Linux).
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

/// Latency histogram over microseconds: 28 log2 ranges — range i covers
/// (2^(i-1), 2^i] — each split into 4 linear sub-buckets. The pure log2
/// scheme reported the range's upper bound (a 2x error: BENCH_net once
/// printed p50 = 262144 µs exactly); the sub-buckets plus rank
/// interpolation in percentile_micros bound the relative error at 1/4
/// while recording stays a branch-free index computation and one relaxed
/// fetch_add. All methods are thread-safe; readers see a consistent-enough
/// snapshot for reporting (counters are monotone).
class LatencyHistogram {
 public:
  /// Range 27 tops out at ~134 s; slower samples clamp into its last
  /// sub-bucket.
  static constexpr std::size_t kLog2Ranges = 28;
  static constexpr std::size_t kSubBuckets = 4;
  static constexpr std::size_t kBuckets = kLog2Ranges * kSubBuckets;

  void record(std::uint64_t micros) noexcept {
    buckets_[bucket_index(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(micros, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (micros > seen &&
           !max_.compare_exchange_weak(seen, micros, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t total_micros() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_micros() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t mean_micros() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0 : total_micros() / n;
  }

  /// The p-th percentile sample (p in [0, 1]) interpolated within its
  /// sub-bucket by rank fraction; 0 when empty.
  std::uint64_t percentile_micros(double p) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(n - 1)) + 1;
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
      if (before + in_bucket >= rank) {
        const auto [lo, hi] = bucket_bounds(i);
        // Linear interpolation by rank position within the sub-bucket.
        const double fraction =
            static_cast<double>(rank - before) / static_cast<double>(in_bucket);
        return lo + static_cast<std::uint64_t>(fraction * static_cast<double>(hi - lo));
      }
      before += in_bucket;
    }
    return bucket_bounds(kBuckets - 1).second;
  }

 private:
  static std::size_t bucket_index(std::uint64_t micros) noexcept {
    if (micros <= 1) return 0;
    // Range = smallest r with 2^r >= micros (the historical log2 bucket).
    std::size_t range = static_cast<std::size_t>(std::bit_width(micros - 1));
    if (range >= kLog2Ranges) {
      return kLog2Ranges * kSubBuckets - 1;  // clamp into the last sub-bucket
    }
    // Linear position of micros within (lo, lo + span]; span = 2^(r-1).
    // For span < 4 (ranges 1..2) the shift collapses to sub-bucket 0/…,
    // which is exact anyway — those ranges are 1–2 µs wide.
    const std::uint64_t lo = std::uint64_t{1} << (range - 1);
    const std::uint64_t sub = ((micros - lo - 1) * kSubBuckets) >> (range - 1);
    return range * kSubBuckets + static_cast<std::size_t>(sub);
  }

  /// Inclusive-exclusive value bounds [lo, hi] of one sub-bucket.
  static std::pair<std::uint64_t, std::uint64_t> bucket_bounds(std::size_t index) noexcept {
    const std::size_t range = index / kSubBuckets;
    const std::size_t sub = index % kSubBuckets;
    if (range == 0) return {0, 1};
    const std::uint64_t lo = std::uint64_t{1} << (range - 1);
    const std::uint64_t span = lo;
    const std::uint64_t sub_lo = lo + (span * sub) / kSubBuckets;
    const std::uint64_t sub_hi = lo + (span * (sub + 1)) / kSubBuckets;
    return {sub_lo, sub_hi < sub_lo + 1 ? sub_lo + 1 : sub_hi};
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Counters for one request type. `handled = ok + errors + timeouts`;
/// `rejected` counts admissions refused at the queue (never handled, so
/// not part of the latency histogram).
struct RequestStats {
  std::atomic<std::uint64_t> handled{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> rejected{0};
  LatencyHistogram latency;
};

/// Cumulative ingest-path counters (documents shredded, rows produced,
/// bytes stored). Recorded once per ingest call under the catalog's
/// exclusive lock but read lock-free by the stats reporter, hence atomics.
/// Rates (docs/s, rows/s) are derived at report time from `micros`.
struct IngestMetrics {
  std::atomic<std::uint64_t> documents{0};
  std::atomic<std::uint64_t> element_rows{0};
  std::atomic<std::uint64_t> attribute_instances{0};
  std::atomic<std::uint64_t> clob_bytes{0};
  /// Bytes held by parse arenas of the documents ingested (0 for owned DOMs).
  std::atomic<std::uint64_t> arena_bytes{0};
  std::atomic<std::uint64_t> micros{0};

  void record(std::uint64_t docs, std::uint64_t rows, std::uint64_t instances,
              std::uint64_t clobs, std::uint64_t arena, std::uint64_t us) noexcept {
    documents.fetch_add(docs, std::memory_order_relaxed);
    element_rows.fetch_add(rows, std::memory_order_relaxed);
    attribute_instances.fetch_add(instances, std::memory_order_relaxed);
    clob_bytes.fetch_add(clobs, std::memory_order_relaxed);
    arena_bytes.fetch_add(arena, std::memory_order_relaxed);
    micros.fetch_add(us, std::memory_order_relaxed);
  }

  /// docs (or rows) per second over the cumulative ingest time; 0 when idle.
  static std::uint64_t per_second(std::uint64_t count, std::uint64_t us) noexcept {
    return us == 0 ? 0 : count * 1'000'000 / us;
  }
};

/// Durability-path counters: WAL append/fsync volume, snapshot activity,
/// and the cost of the last recovery. Written by the storage layer (WAL
/// writer under the catalog's exclusive lock, flusher thread, recovery
/// path) and read lock-free by the stats reporter.
struct DurabilityMetrics {
  std::atomic<std::uint64_t> wal_records{0};
  std::atomic<std::uint64_t> wal_bytes{0};
  std::atomic<std::uint64_t> wal_fsyncs{0};
  std::atomic<std::uint64_t> snapshots{0};
  std::atomic<std::uint64_t> snapshot_bytes{0};  ///< bytes of the last snapshot
  /// Last recovery: wall time, records replayed from the WAL tail, and
  /// whether a torn/corrupt final record was truncated (1) or not (0).
  std::atomic<std::uint64_t> recovery_micros{0};
  std::atomic<std::uint64_t> replayed_records{0};
  std::atomic<std::uint64_t> torn_tail_truncations{0};
};

/// Point-in-time MVCC counters reported by the stats request type: the
/// published snapshot epoch, how many readers currently pin an epoch, how
/// much retired garbage (superseded snapshots / index generations) awaits
/// reclamation, and how much has been reclaimed since startup. Assembled
/// by MetadataCatalog::mvcc_stats() from its EpochManager.
struct MvccStats {
  std::uint64_t epoch = 0;
  std::uint64_t pinned_readers = 0;
  std::uint64_t retired_pending = 0;
  std::uint64_t reclamations = 0;
  std::uint64_t snapshots_published = 0;
};

/// Counters for one level of the snapshot-keyed query cache. `bytes` and
/// `entries` are resident gauges (raised on insert, lowered on eviction and
/// when a superseded generation's segment is reclaimed); the rest are
/// monotone. Written with relaxed atomics from the read path, read lock-free
/// by the stats reporter.
struct CacheLevelMetrics {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> inserts{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> entries{0};
};

/// The two-level query-cache counters rendered by the service `stats`
/// surface (`<stats><cache>`): L1 memoizes engine id-sets, L2 serialized
/// responses (see core/query_cache.hpp). `bypass` counts front-door
/// requests that skipped the cache (non-cacheable type or deterministic
/// zero deadline); `inline_served` counts L2 hits answered on the event
/// loop without touching the dispatcher's worker queue.
struct CacheMetrics {
  CacheLevelMetrics l1;
  CacheLevelMetrics l2;
  std::atomic<std::uint64_t> bypass{0};
  std::atomic<std::uint64_t> inline_served{0};
};

/// Replica-side replication watermark, written by the WAL-apply loop
/// (fed::ReplicationListener) and read lock-free by the stats reporter: the
/// WAL sequence being followed, the last applied LSN within it (1-based
/// record count — the "applied-LSN watermark" a router compares against the
/// primary's wal_records), and activity counters. The catalog borrows a
/// pointer (MetadataCatalog::set_replication_state) so the `stats` request
/// renders `<replication .../>` on replicas.
struct ReplicationState {
  std::atomic<std::uint64_t> wal_seq{0};
  std::atomic<std::uint64_t> applied_lsn{0};
  std::atomic<std::uint64_t> applied_epoch{0};
  std::atomic<std::uint64_t> records_applied{0};
  std::atomic<std::uint64_t> chunks_applied{0};
  std::atomic<std::uint64_t> bootstraps{0};
  std::atomic<std::uint64_t> connections{0};
};

/// Backpressure-pause transitions recorded by the network front end: how
/// often an event loop stopped reading its sockets (dispatcher-queue high
/// watermark) and how often a single connection's writes paused its reads
/// (write-buffer cap). Lives inside net::ServerStats; the catalog borrows a
/// pointer (MetadataCatalog::set_server_pauses) the same way durability
/// metrics are plumbed, so the `stats` request can render both counters.
struct ServerPauses {
  std::atomic<std::uint64_t> read_pauses{0};
  std::atomic<std::uint64_t> write_pauses{0};
};

/// A fixed set of named RequestStats slots. The slot set is decided at
/// construction (one per wire request type, plus a catch-all); lookups and
/// recording are thread-safe, the registry itself is immutable.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::vector<std::string> names) : names_(std::move(names)) {
    slots_.reserve(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i) {
      slots_.push_back(std::make_unique<RequestStats>());
    }
  }

  std::size_t size() const noexcept { return slots_.size(); }
  const std::string& name(std::size_t i) const { return names_[i]; }
  RequestStats& at(std::size_t i) const { return *slots_[i]; }

  /// Slot index for a name; -1 when the name is not registered.
  int find(std::string_view name) const noexcept {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<RequestStats>> slots_;
};

}  // namespace hxrc::util
