// Fixed-size thread pool and data-parallel helpers.
//
// The catalog uses this for parallel document ingest and for concurrent
// query evaluation in the benchmarks (experiment E9). The pool is a plain
// mutex/condvar work queue: ingest and query tasks are coarse (whole
// documents, whole queries) so a lock-free deque would buy nothing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace hxrc::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future observes its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
/// Work is chunked statically; exceptions propagate from the first failure.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace hxrc::util
