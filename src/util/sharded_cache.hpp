// ShardedCache: a lock-light bounded map with CLOCK eviction.
//
// The building block of the snapshot-keyed query cache (core/query_cache):
// string keys hash to one of N shards, each guarded by its own mutex held
// only for a map probe or a slot swap — values are shared_ptr<const V>, so
// a reader copies the handle out under the lock and dereferences outside
// it. Capacity is bounded per shard in both entries and value bytes;
// pressure is relieved by second-chance CLOCK: every hit sets the entry's
// reference bit, the eviction hand clears bits until it finds a cold entry
// and replaces it. There is no global state, no LRU list maintenance on
// the hit path, and no allocation on the hit path.
//
// Accounting goes through an optional CacheLevelMetrics: hits/misses/
// inserts/evictions are monotone, bytes/entries are resident gauges that
// the destructor drains — a retired cache segment (epoch reclamation,
// core/catalog.cpp) subtracts its residency when it dies, so the gauges
// stay truthful across generation turnover.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/metrics.hpp"

namespace hxrc::util {

struct ShardedCacheConfig {
  /// Shard count, rounded up to a power of two; 1 disables sharding.
  std::size_t shards = 8;
  /// Entry cap across the whole cache (split evenly over the shards).
  std::size_t max_entries = 4096;
  /// Value-byte cap across the whole cache (split evenly over the shards).
  std::size_t max_bytes = 16u << 20;
};

template <typename Value>
class ShardedCache {
 public:
  explicit ShardedCache(const ShardedCacheConfig& config,
                        CacheLevelMetrics* metrics = nullptr)
      : metrics_(metrics) {
    std::size_t shards = 1;
    while (shards < config.shards) shards <<= 1;
    shard_max_entries_ = std::max<std::size_t>(1, config.max_entries / shards);
    shard_max_bytes_ = std::max<std::size_t>(1, config.max_bytes / shards);
    shards_ = std::vector<Shard>(shards);
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  ~ShardedCache() {
    if (metrics_ == nullptr) return;
    for (Shard& shard : shards_) {
      metrics_->bytes.fetch_sub(shard.bytes, std::memory_order_relaxed);
      metrics_->entries.fetch_sub(shard.index.size(), std::memory_order_relaxed);
    }
  }

  /// The cached value, or nullptr. A hit gives the entry its second chance
  /// (sets the CLOCK reference bit).
  std::shared_ptr<const Value> find(std::string_view key) {
    Shard& shard = shard_for(key);
    std::shared_ptr<const Value> out;
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        Slot& slot = shard.slots[it->second];
        slot.referenced = true;
        out = slot.value;
      }
    }
    if (metrics_ != nullptr) {
      (out != nullptr ? metrics_->hits : metrics_->misses)
          .fetch_add(1, std::memory_order_relaxed);
    }
    return out;
  }

  /// Inserts (or overwrites — racing fills of the same key are benign) a
  /// value accounted at `bytes`, evicting cold entries until it fits. A
  /// value larger than a whole shard's byte budget is simply not cached.
  void insert(std::string key, std::shared_ptr<const Value> value, std::size_t bytes) {
    if (bytes > shard_max_bytes_) return;
    Shard& shard = shard_for(key);
    std::uint64_t evicted = 0;
    std::int64_t bytes_delta = 0;
    std::int64_t entries_delta = 0;
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      if (const auto it = shard.index.find(std::string_view(key));
          it != shard.index.end()) {
        const std::size_t at = it->second;
        Slot& slot = shard.slots[at];
        bytes_delta = static_cast<std::int64_t>(bytes) -
                      static_cast<std::int64_t>(slot.bytes);
        shard.bytes = shard.bytes - slot.bytes + bytes;
        slot.value = std::move(value);
        slot.bytes = bytes;
        slot.referenced = true;
        // A larger replacement value can push the shard past its byte
        // budget just like a fresh insert: evict cold entries (never the
        // slot just written) until it fits again. When only the written
        // slot remains, shard.bytes == bytes <= shard_max_bytes_.
        while (shard.bytes > shard_max_bytes_ && shard.index.size() > 1) {
          bytes_delta -= static_cast<std::int64_t>(evict_one(shard, at));
          --entries_delta;
          ++evicted;
        }
      } else {
        while (!shard.index.empty() &&
               (shard.index.size() >= shard_max_entries_ ||
                shard.bytes + bytes > shard_max_bytes_)) {
          bytes_delta -= static_cast<std::int64_t>(evict_one(shard));
          --entries_delta;
          ++evicted;
        }
        const std::size_t at = free_slot(shard);
        Slot& slot = shard.slots[at];
        slot.key = std::move(key);
        slot.value = std::move(value);
        slot.bytes = bytes;
        slot.referenced = true;
        slot.live = true;
        shard.index.emplace(std::string_view(slot.key), at);
        shard.bytes += bytes;
        bytes_delta += static_cast<std::int64_t>(bytes);
        ++entries_delta;
      }
    }
    if (metrics_ != nullptr) {
      metrics_->inserts.fetch_add(1, std::memory_order_relaxed);
      metrics_->evictions.fetch_add(evicted, std::memory_order_relaxed);
      metrics_->bytes.fetch_add(static_cast<std::uint64_t>(bytes_delta),
                                std::memory_order_relaxed);
      metrics_->entries.fetch_add(static_cast<std::uint64_t>(entries_delta),
                                  std::memory_order_relaxed);
    }
  }

  std::size_t entry_count() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.index.size();
    }
    return total;
  }

  std::size_t byte_count() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.bytes;
    }
    return total;
  }

 private:
  struct Slot {
    std::string key;
    std::shared_ptr<const Value> value;
    std::size_t bytes = 0;
    bool referenced = false;
    bool live = false;
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Keys view into slots[i].key. The views stay valid because slots is a
    /// deque (growth never moves a Slot, so SSO key bytes never relocate)
    /// and a slot's key string only changes under the shard mutex together
    /// with its index entry.
    std::unordered_map<std::string_view, std::size_t> index;
    std::deque<Slot> slots;
    std::vector<std::size_t> free;
    std::size_t hand = 0;
    std::size_t bytes = 0;
  };

  Shard& shard_for(std::string_view key) noexcept {
    return shards_[std::hash<std::string_view>{}(key) & (shards_.size() - 1)];
  }

  /// Second-chance sweep: clears reference bits until a cold live slot
  /// turns up, unlinks it, and returns its byte count. Caller holds the
  /// shard mutex and guarantees at least one evictable (live, non-skip)
  /// slot. `skip` protects the slot the caller just wrote.
  std::size_t evict_one(Shard& shard, std::size_t skip = SIZE_MAX) {
    for (;;) {
      shard.hand = (shard.hand + 1) % shard.slots.size();
      if (shard.hand == skip) continue;
      Slot& slot = shard.slots[shard.hand];
      if (!slot.live) continue;
      if (slot.referenced) {
        slot.referenced = false;
        continue;
      }
      const std::size_t bytes = slot.bytes;
      shard.index.erase(std::string_view(slot.key));
      shard.bytes -= bytes;
      slot.value.reset();
      slot.key.clear();
      slot.bytes = 0;
      slot.live = false;
      shard.free.push_back(shard.hand);
      return bytes;
    }
  }

  std::size_t free_slot(Shard& shard) {
    if (!shard.free.empty()) {
      const std::size_t at = shard.free.back();
      shard.free.pop_back();
      return at;
    }
    shard.slots.emplace_back();
    return shard.slots.size() - 1;
  }

  std::vector<Shard> shards_;
  std::size_t shard_max_entries_ = 0;
  std::size_t shard_max_bytes_ = 0;
  CacheLevelMetrics* metrics_ = nullptr;
};

}  // namespace hxrc::util
