// Small string helpers shared by the XML toolkit, SQL front end, and the
// Fortran namelist parser. All functions are pure and allocation-conscious.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hxrc::util {

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Splits on a single delimiter character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b) noexcept;

bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Strict integer / floating point parses (whole string must match).
std::optional<std::int64_t> parse_int(std::string_view s) noexcept;
std::optional<double> parse_double(std::string_view s) noexcept;

/// True if the string is entirely ASCII whitespace (or empty).
bool is_blank(std::string_view s) noexcept;

}  // namespace hxrc::util
