// Monotonic stopwatch used by example programs and bench harness tables.
#pragma once

#include <chrono>

namespace hxrc::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hxrc::util
