// Deterministic pseudo-random number generation for workload synthesis.
//
// Benchmarks and property tests must be reproducible run-to-run, so all
// randomness in the repository flows through Prng seeded explicitly by the
// caller. The generator is xoshiro256** seeded via SplitMix64, which is fast,
// has good statistical quality, and is trivially portable.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hxrc::util {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic xoshiro256** generator.
///
/// Satisfies UniformRandomBitGenerator so it can also drive <random>
/// distributions, though the convenience members below cover typical use.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept;

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return pick(std::span<const T>(items));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      auto j = static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Random lowercase ASCII identifier of the given length.
  std::string identifier(std::size_t length);

  /// Fork an independent stream; forked streams do not perturb the parent
  /// beyond one draw, so inserting a new consumer does not reshuffle others.
  Prng fork() noexcept { return Prng(next()); }

 private:
  std::uint64_t state_[4];
};

}  // namespace hxrc::util
