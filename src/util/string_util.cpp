#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace hxrc::util {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+; use it.
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

bool is_blank(std::string_view s) noexcept {
  return std::all_of(s.begin(), s.end(), [](char c) { return is_space(c); });
}

}  // namespace hxrc::util
