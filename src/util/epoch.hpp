// Epoch-based reclamation (RCU-style quiescent-state tracking).
//
// The MVCC read path publishes immutable structures (catalog snapshots,
// index generations) through a single atomic pointer and must not free a
// superseded structure while any reader still dereferences it. Readers pin
// the current epoch in one of a fixed set of cache-line-padded slots; a
// writer retires garbage tagged with the epoch current at retire time,
// advances the global epoch once per commit, and reclaims every retired
// object whose tag is older than the minimum pinned epoch.
//
// The pin protocol is the classic two-step: load the global epoch, publish
// it into a claimed slot, then re-check the global. If the global moved
// between load and publish, the reader republishes the newer value and
// checks again. Under seq_cst this closes the race where a preempted
// reader would pin an epoch a concurrent writer's slot scan had already
// passed over: a reader only returns with epoch E pinned if its slot store
// became visible before any advance past E, so a writer scanning after an
// advance either sees the pin or knows the reader will retry onto the new
// epoch (and thus onto the new published structures).
//
// Writers call retire/advance/reclaim under their own commit lock; the
// retired list is mutex-protected because it is touched only on the write
// path. Readers touch exactly two atomics to pin and one to unpin.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hxrc::util {

class EpochManager {
 public:
  /// Concurrent pinned readers beyond this spin-wait for a slot. 256 is an
  /// order of magnitude above the dispatcher's worker-pool sizes.
  static constexpr std::size_t kSlots = 256;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  ~EpochManager() {
    for (const Retired& r : retired_) r.deleter(r.object);
  }

  std::uint64_t current() const noexcept {
    return global_.load(std::memory_order_seq_cst);
  }

  /// Pins the current epoch and returns the slot index to pass to unpin().
  /// Spin-waits when all slots are taken.
  std::size_t pin() noexcept {
    std::uint64_t epoch = global_.load(std::memory_order_seq_cst);
    const std::size_t slot = claim_slot(epoch);
    for (;;) {
      const std::uint64_t now = global_.load(std::memory_order_seq_cst);
      if (now == epoch) return slot;
      epoch = now;
      slots_[slot].epoch.store(epoch, std::memory_order_seq_cst);
    }
  }

  void unpin(std::size_t slot) noexcept {
    slots_[slot].epoch.store(0, std::memory_order_release);
  }

  /// Hands `object` to the manager for deferred deletion. Tagged with the
  /// current epoch; freed once no reader pins an epoch <= the tag. Call on
  /// the write path only (the retired list is mutex-protected).
  template <typename T>
  void retire(const T* object) {
    if (object == nullptr) return;
    retire_erased(const_cast<void*>(static_cast<const void*>(object)),
                  [](void* p) { delete static_cast<T*>(p); });
  }

  void retire_erased(void* object, void (*deleter)(void*)) {
    const std::uint64_t tag = global_.load(std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(retired_mutex_);
    retired_.push_back(Retired{object, deleter, tag});
  }

  /// Moves the global epoch forward; typically once per published commit.
  void advance() noexcept { global_.fetch_add(1, std::memory_order_seq_cst); }

  /// Frees every retired object older than the minimum pinned epoch.
  /// Returns how many were freed.
  std::size_t reclaim() {
    std::vector<Retired> ready;
    {
      const std::lock_guard<std::mutex> lock(retired_mutex_);
      const std::uint64_t threshold = min_active_epoch();
      auto keep = retired_.begin();
      for (auto it = retired_.begin(); it != retired_.end(); ++it) {
        if (it->epoch < threshold) {
          ready.push_back(*it);
        } else {
          *keep++ = *it;
        }
      }
      retired_.erase(keep, retired_.end());
    }
    for (const Retired& r : ready) r.deleter(r.object);
    reclaimed_.fetch_add(ready.size(), std::memory_order_relaxed);
    return ready.size();
  }

  /// Blocks until the retired list is empty: advances the epoch and
  /// reclaims until every reader that pinned an old epoch has unpinned.
  /// Used by dispatcher drain (after its workers go idle) and by recovery.
  void quiesce() {
    while (retired_pending() > 0) {
      advance();
      if (reclaim() == 0) std::this_thread::yield();
    }
  }

  std::size_t pinned_readers() const noexcept {
    std::size_t pinned = 0;
    for (const Slot& slot : slots_) {
      if (slot.epoch.load(std::memory_order_seq_cst) != 0) ++pinned;
    }
    return pinned;
  }

  std::size_t retired_pending() const {
    const std::lock_guard<std::mutex> lock(retired_mutex_);
    return retired_.size();
  }

  std::uint64_t reclaimed_total() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};  // 0 = free
  };

  struct Retired {
    void* object;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  std::size_t claim_slot(std::uint64_t epoch) noexcept {
    const std::size_t start =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & (kSlots - 1);
    for (;;) {
      for (std::size_t i = 0; i < kSlots; ++i) {
        const std::size_t s = (start + i) & (kSlots - 1);
        std::uint64_t expected = 0;
        if (slots_[s].epoch.compare_exchange_strong(expected, epoch,
                                                    std::memory_order_seq_cst)) {
          return s;
        }
      }
      std::this_thread::yield();
    }
  }

  /// Minimum epoch any reader currently pins; the global epoch when no
  /// reader is pinned. Called with retired_mutex_ held so the threshold and
  /// the list scan are consistent.
  std::uint64_t min_active_epoch() const noexcept {
    std::uint64_t min = global_.load(std::memory_order_seq_cst);
    for (const Slot& slot : slots_) {
      const std::uint64_t pinned = slot.epoch.load(std::memory_order_seq_cst);
      if (pinned != 0 && pinned < min) min = pinned;
    }
    return min;
  }

  std::atomic<std::uint64_t> global_{1};  // 0 is reserved for "unpinned"
  std::array<Slot, kSlots> slots_{};
  mutable std::mutex retired_mutex_;
  std::vector<Retired> retired_;
  std::atomic<std::uint64_t> reclaimed_{0};
};

/// RAII pin over an EpochManager.
class EpochPin {
 public:
  explicit EpochPin(EpochManager& manager) noexcept
      : manager_(&manager), slot_(manager.pin()) {}
  ~EpochPin() {
    if (manager_ != nullptr) manager_->unpin(slot_);
  }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;
  EpochPin(EpochPin&& other) noexcept : manager_(other.manager_), slot_(other.slot_) {
    other.manager_ = nullptr;
  }
  EpochPin& operator=(EpochPin&&) = delete;

 private:
  EpochManager* manager_;
  std::size_t slot_;
};

}  // namespace hxrc::util
