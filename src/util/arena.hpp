// Bump allocator for ingest-side transient ownership.
//
// An Arena hands out raw bytes from geometrically growing blocks and frees
// everything at once on destruction (or reset()). The XML arena parse mode
// owns each document's unescaped text and node pool this way, so parsing
// costs O(blocks) allocations instead of O(nodes). Objects placed in the
// arena must be trivially destructible — the arena never runs destructors;
// anything needing one (e.g. the DOM node pool) lives beside the arena in a
// container that does.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace hxrc::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 4096;

  explicit Arena(std::size_t first_block_bytes = kDefaultBlockBytes)
      : next_block_bytes_(first_block_bytes == 0 ? kDefaultBlockBytes : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `size` bytes aligned to `align` (a power of two).
  char* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    std::size_t offset = (used_ + align - 1) & ~(align - 1);
    if (current_ == nullptr || offset + size > capacity_) {
      grow(size + align);
      offset = (used_ + align - 1) & ~(align - 1);
    }
    char* out = current_ + offset;
    used_ = offset + size;
    allocated_ += size;
    return out;
  }

  /// Copies `s` into the arena and returns a stable view of the copy.
  std::string_view store(std::string_view s) {
    if (s.empty()) return {};
    char* out = allocate(s.size(), 1);
    std::memcpy(out, s.data(), s.size());
    return {out, s.size()};
  }

  /// Drops every block; previously returned pointers become invalid.
  void reset() noexcept {
    blocks_.clear();
    current_ = nullptr;
    capacity_ = 0;
    used_ = 0;
    allocated_ = 0;
    reserved_ = 0;
  }

  /// Payload bytes handed out (excludes alignment waste and block slack).
  std::size_t bytes_allocated() const noexcept { return allocated_; }
  /// Total block bytes reserved from the heap.
  std::size_t bytes_reserved() const noexcept { return reserved_; }

 private:
  void grow(std::size_t at_least) {
    std::size_t block = next_block_bytes_;
    if (block < at_least) block = at_least;
    next_block_bytes_ = block * 2;
    blocks_.push_back(std::make_unique<char[]>(block));
    current_ = blocks_.back().get();
    capacity_ = block;
    used_ = 0;
    reserved_ += block;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* current_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t next_block_bytes_;
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace hxrc::util
