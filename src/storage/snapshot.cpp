#include "storage/snapshot.hpp"

#include <cstring>
#include <sstream>

#include "storage/wal.hpp"  // crc32c

namespace hxrc::storage {

namespace {

constexpr std::string_view kHeader = "HXSNAP 1\n";
constexpr std::string_view kTrailerMagic = "HXSNAPOK";
constexpr std::size_t kTrailerSize = 8 + 4;  // magic + crc

std::optional<std::uint64_t> parse_seq(std::string_view name, std::string_view prefix,
                                       std::string_view suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

std::string snapshot_name(std::uint64_t seq) {
  return "snapshot." + std::to_string(seq) + ".hxs";
}

std::string wal_name(std::uint64_t seq) { return "wal." + std::to_string(seq) + ".log"; }

std::optional<std::uint64_t> parse_snapshot_name(std::string_view name) {
  return parse_seq(name, "snapshot.", ".hxs");
}

std::optional<std::uint64_t> parse_wal_name(std::string_view name) {
  return parse_seq(name, "wal.", ".log");
}

std::string encode_snapshot(const core::MetadataCatalog& catalog, bool locked) {
  std::ostringstream out;
  out << kHeader;
  if (locked) {
    catalog.save_binary_unlocked(out);
  } else {
    catalog.save_binary(out);
  }
  std::string bytes = std::move(out).str();
  const std::uint32_t crc = crc32c(0, bytes.data(), bytes.size());
  bytes.append(kTrailerMagic);
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  return bytes;
}

bool snapshot_valid(std::string_view bytes) {
  if (bytes.size() < kHeader.size() + kTrailerSize) return false;
  if (bytes.substr(0, kHeader.size()) != kHeader) return false;
  const std::size_t payload_end = bytes.size() - kTrailerSize;
  if (bytes.substr(payload_end, kTrailerMagic.size()) != kTrailerMagic) return false;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                  bytes[payload_end + kTrailerMagic.size() + static_cast<std::size_t>(i)]))
              << (8 * i);
  }
  return crc32c(0, bytes.data(), payload_end) == stored;
}

void load_snapshot(core::MetadataCatalog& catalog, std::string_view bytes) {
  if (!snapshot_valid(bytes)) {
    throw SnapshotError("snapshot failed validation (torn or corrupt)");
  }
  std::istringstream in(
      std::string(bytes.substr(kHeader.size(), bytes.size() - kHeader.size() - kTrailerSize)));
  try {
    catalog.restore(in);
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("snapshot restore failed: ") + e.what());
  }
}

void write_snapshot_file(Fs& fs, const std::string& dir, std::uint64_t seq,
                         std::string_view bytes, util::DurabilityMetrics* metrics) {
  const std::string tmp = dir + "/snapshot.tmp";
  {
    std::unique_ptr<File> file = fs.create(tmp);
    file->write(bytes.data(), bytes.size());
    file->sync();
    file->close();
  }
  fs.rename(tmp, dir + "/" + snapshot_name(seq));
  fs.sync_dir(dir);
  if (metrics != nullptr) {
    metrics->snapshots.fetch_add(1, std::memory_order_relaxed);
    metrics->snapshot_bytes.store(bytes.size(), std::memory_order_relaxed);
  }
}

}  // namespace hxrc::storage
