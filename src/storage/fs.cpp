#include "storage/fs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace hxrc::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw IoError(what + " '" + path + "': " + std::strerror(errno));
}

class PosixFile final : public File {
 public:
  PosixFile(int fd, std::string path, std::uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}
  ~PosixFile() override { close(); }

  void write(const void* data, std::size_t size) override {
    const char* p = static_cast<const char*>(data);
    std::size_t remaining = size;
    while (remaining > 0) {
      const ssize_t n = ::write(fd_, p, remaining);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write", path_);
      }
      p += n;
      remaining -= static_cast<std::size_t>(n);
      size_ += static_cast<std::uint64_t>(n);
    }
  }

  void sync() override {
    if (::fsync(fd_) != 0) throw_errno("fsync", path_);
  }

  std::uint64_t size() const override { return size_; }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  std::string path_;
  std::uint64_t size_;
};

class PosixFs final : public Fs {
 public:
  std::unique_ptr<File> open_append(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) throw_errno("open", path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw_errno("fstat", path);
    }
    return std::make_unique<PosixFile>(fd, path, static_cast<std::uint64_t>(st.st_size));
  }

  std::unique_ptr<File> create(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw_errno("open", path);
    return std::make_unique<PosixFile>(fd, path, 0);
  }

  std::string read_file(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw_errno("open", path);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw_errno("read", path);
      }
      if (n == 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  }

  bool exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

  void rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) throw_errno("rename", from);
  }

  void remove(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) throw IoError("remove '" + path + "': " + ec.message());
  }

  void truncate(const std::string& path, std::uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      throw_errno("truncate", path);
    }
  }

  std::vector<std::string> list(const std::string& dir) override {
    create_dirs(dir);
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) throw IoError("list '" + dir + "': " + ec.message());
    std::sort(names.begin(), names.end());
    return names;
  }

  void create_dirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) throw IoError("mkdir '" + dir + "': " + ec.message());
  }

  void sync_dir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) throw_errno("open dir", dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) throw_errno("fsync dir", dir);
  }
};

}  // namespace

Fs& real_fs() {
  static PosixFs fs;
  return fs;
}

}  // namespace hxrc::storage
