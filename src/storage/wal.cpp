#include "storage/wal.hpp"

#include <array>
#include <chrono>
#include <cstring>

namespace hxrc::storage {

// ---- CRC32C --------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
  constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

std::uint32_t read_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

void put_u32le(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

constexpr std::size_t kFramePrefix = 8;  // u32 len + u32 crc
constexpr std::size_t kBodyHeader = 9;   // u8 type + u64 epoch
/// Upper bound on one frame body, as a corruption heuristic: a decoded
/// length beyond it is treated as a torn tail even if enough file bytes
/// remain (a bit-flipped length could otherwise swallow valid frames).
constexpr std::uint32_t kMaxBody = 1u << 30;

}  // namespace

namespace {

std::uint32_t crc32c_table_impl(std::uint32_t crc, const unsigned char* p,
                                std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
/// SSE4.2 CRC32 instruction implements exactly this polynomial (Castagnoli);
/// runtime-dispatched so the binary still runs on pre-Nehalem hardware. On
/// the WAL append path the CRC covers the whole multi-KB frame body, so the
/// ~30× over the table walk is what keeps group commit inside the
/// durability overhead budget (see bench_durability).
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw_impl(
    std::uint32_t crc, const unsigned char* p, std::size_t size) {
  while (size > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --size;
  }
  std::uint64_t crc64 = crc;
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    size -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (size > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --size;
  }
  return crc;
}

bool crc32c_hw_available() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}
#endif

}  // namespace

std::uint32_t crc32c(std::uint32_t seed, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t crc = ~seed;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (crc32c_hw_available()) return ~crc32c_hw_impl(crc, p, size);
#endif
  return ~crc32c_table_impl(crc, p, size);
}

// ---- framing -------------------------------------------------------------

void encode_frame(std::string& out, WalRecordType type, std::uint64_t epoch,
                  std::string_view payload) {
  const std::size_t body_len = kBodyHeader + payload.size();
  const std::size_t at = out.size();
  out.resize(at + kFramePrefix + body_len);
  char* frame = out.data() + at;
  put_u32le(frame, static_cast<std::uint32_t>(body_len));
  char* body = frame + kFramePrefix;
  body[0] = static_cast<char>(type);
  for (int i = 0; i < 8; ++i) body[1 + i] = static_cast<char>((epoch >> (8 * i)) & 0xff);
  std::memcpy(body + kBodyHeader, payload.data(), payload.size());
  put_u32le(frame + 4, crc32c(0, body, body_len));
}

namespace {

/// Shared frame walk for scan_wal / scan_wal_frames: parses frames starting
/// at `pos`, appending to `scan` until the bytes end or a torn/corrupt
/// frame stops it.
void scan_frames_from(std::string_view bytes, std::size_t pos, WalScan& scan) {
  scan.valid_bytes = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFramePrefix) {
      scan.torn_tail = true;
      scan.stop_reason = "torn frame header";
      break;
    }
    const std::uint32_t body_len = read_u32le(bytes.data() + pos);
    const std::uint32_t stored_crc = read_u32le(bytes.data() + pos + 4);
    if (body_len < kBodyHeader || body_len > kMaxBody ||
        bytes.size() - pos - kFramePrefix < body_len) {
      scan.torn_tail = true;
      scan.stop_reason = "torn or implausible frame length";
      break;
    }
    const char* body = bytes.data() + pos + kFramePrefix;
    if (crc32c(0, body, body_len) != stored_crc) {
      scan.torn_tail = true;
      scan.stop_reason = "frame CRC mismatch";
      break;
    }
    WalRecord record;
    record.type = static_cast<WalRecordType>(static_cast<unsigned char>(body[0]));
    std::uint64_t epoch = 0;
    for (int i = 0; i < 8; ++i) {
      epoch |= static_cast<std::uint64_t>(static_cast<unsigned char>(body[1 + i])) << (8 * i);
    }
    record.epoch = epoch;
    record.payload = std::string_view(body + kBodyHeader, body_len - kBodyHeader);
    scan.records.push_back(record);
    pos += kFramePrefix + body_len;
    scan.valid_bytes = pos;
  }
}

}  // namespace

WalScan scan_wal(std::string_view bytes) {
  WalScan scan;
  if (bytes.empty()) return scan;  // fresh file: nothing written yet
  if (bytes.size() < sizeof kWalMagic ||
      std::memcmp(bytes.data(), kWalMagic, sizeof kWalMagic) != 0) {
    if (bytes.size() < sizeof kWalMagic) {
      // A crash can tear even the 8-byte header write.
      scan.torn_tail = true;
      scan.stop_reason = "torn file header";
      return scan;
    }
    throw WalError("not a WAL file (bad magic)");
  }
  scan_frames_from(bytes, sizeof kWalMagic, scan);
  return scan;
}

WalScan scan_wal_frames(std::string_view bytes) {
  WalScan scan;
  scan_frames_from(bytes, 0, scan);
  return scan;
}

// ---- writer --------------------------------------------------------------

namespace {

/// Number of whole frames in a buffer the writer itself built (always an
/// exact run of frames — no torn tails possible).
std::uint64_t count_whole_frames(std::string_view buf) {
  std::uint64_t n = 0;
  std::size_t pos = 0;
  while (pos < buf.size()) {
    pos += kFramePrefix + read_u32le(buf.data() + pos);
    ++n;
  }
  return n;
}

/// Byte length of the first `count` frames of such a buffer.
std::size_t frames_prefix_bytes(std::string_view buf, std::uint64_t count) {
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    pos += kFramePrefix + read_u32le(buf.data() + pos);
  }
  return pos;
}

}  // namespace

WalWriter::WalWriter(std::unique_ptr<File> file, WalOptions options,
                     util::DurabilityMetrics* metrics, std::uint64_t initial_records)
    : file_(std::move(file)), options_(options), metrics_(metrics) {
  appended_records_ = initial_records;
  synced_records_ = initial_records;
  ship_next_lsn_ = initial_records + 1;
  if (file_->size() == 0) {
    file_->write(kWalMagic, sizeof kWalMagic);
    bytes_ = sizeof kWalMagic;
    if (metrics_ != nullptr) {
      metrics_->wal_bytes.fetch_add(sizeof kWalMagic, std::memory_order_relaxed);
    }
  } else {
    bytes_ = file_->size();
  }
  if (options_.sync) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

WalWriter::~WalWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; close() explicitly to observe failures.
  }
}

std::uint64_t WalWriter::append(WalRecordType type, std::uint64_t epoch,
                                std::string_view payload) {
  std::unique_lock lock(mutex_);
  if (failed_) throw WalError("WAL writer poisoned by an earlier I/O failure");
  if (stop_) throw WalError("WAL writer is closed");
  const std::size_t before = pending_.size();
  encode_frame(pending_, type, epoch, payload);
  bytes_ += pending_.size() - before;
  const std::uint64_t lsn = ++appended_records_;
  if (ship_sink_) {
    const std::string_view frame(pending_.data() + before, pending_.size() - before);
    if (options_.sync) {
      // Stage until an fsync makes the record durable; shipped from
      // ship_synced_locked.
      ship_buf_.append(frame);
    } else {
      // No durability acknowledgement exists to wait for — ship now.
      ship_sink_(lsn, frame);
      ship_next_lsn_ = lsn + 1;
    }
  }
  if (metrics_ != nullptr) {
    metrics_->wal_records.fetch_add(1, std::memory_order_relaxed);
    metrics_->wal_bytes.fetch_add(pending_.size() - before, std::memory_order_relaxed);
  }
  if (options_.sync) {
    // Edge-triggered: wake the flusher only when a threshold is first
    // crossed, not on every append past it — a notify is a futex syscall,
    // and past the threshold every mutation would otherwise pay one until
    // the flusher publishes.
    if (appended_records_ - synced_records_ == options_.fsync_every_n ||
        (pending_.size() >= kWriteOutBytes && before < kWriteOutBytes)) {
      work_cv_.notify_one();
    }
  } else if (pending_.size() >= kWriteOutBytes) {
    write_out_locked();
  }
  return lsn;
}

void WalWriter::write_out_locked() {
  // Caller holds the mutex and guarantees no sync_locked batch is in
  // flight (sync=false path, or close() after the flusher stopped) —
  // otherwise two writers could interleave frames on the fd.
  if (pending_.empty()) return;
  try {
    file_->write(pending_.data(), pending_.size());
    pending_.clear();
  } catch (const IoError& e) {
    failed_ = true;
    work_cv_.notify_all();
    synced_cv_.notify_all();
    throw WalError(std::string("WAL write failed: ") + e.what());
  }
}

void WalWriter::sync_locked(std::unique_lock<std::mutex>& lock) {
  // Snapshot the target LSN and steal the pending batch; then one write(2)
  // plus the fsync run outside the lock, so appends keep landing in a fresh
  // pending buffer meanwhile. The fsync covers exactly the stolen batch —
  // every record with LSN <= target. `syncing_` keeps two flushes from
  // racing on the fd.
  const std::uint64_t target = appended_records_;
  if (target <= synced_records_ || failed_) return;
  syncing_ = true;
  write_buf_.clear();
  write_buf_.swap(pending_);
  lock.unlock();
  bool ok = true;
  try {
    if (!write_buf_.empty()) file_->write(write_buf_.data(), write_buf_.size());
    file_->sync();
  } catch (const IoError&) {
    ok = false;
  }
  lock.lock();
  syncing_ = false;
  if (!ok) {
    failed_ = true;
  } else if (target > synced_records_) {
    synced_records_ = target;
    ++fsyncs_;
    if (metrics_ != nullptr) metrics_->wal_fsyncs.fetch_add(1, std::memory_order_relaxed);
    ship_synced_locked();
  }
  synced_cv_.notify_all();
  // The flusher parks while someone else's fsync is in flight; wake it so
  // it re-evaluates the backlog now that this one landed.
  work_cv_.notify_all();
}

void WalWriter::writeout_locked(std::unique_lock<std::mutex>& lock) {
  // Steal the pending batch and write WITHOUT fsync: spreads the write(2)
  // user→kernel copy across the ingest stream, so the eventual fsync
  // (flusher cadence or a terminal flush()) pays only the journal commit,
  // not a bulk data hand-off. Reuses `syncing_` as the fd in-flight guard;
  // synced_records_ is untouched — nothing becomes acknowledged here.
  if (pending_.empty() || failed_) return;
  syncing_ = true;
  write_buf_.clear();
  write_buf_.swap(pending_);
  lock.unlock();
  bool ok = true;
  try {
    file_->write(write_buf_.data(), write_buf_.size());
  } catch (const IoError&) {
    ok = false;
  }
  lock.lock();
  syncing_ = false;
  if (!ok) failed_ = true;
  synced_cv_.notify_all();
  work_cv_.notify_all();
}

void WalWriter::ship_synced_locked() {
  if (!ship_sink_ || ship_next_lsn_ > synced_records_) return;
  const std::uint64_t count = synced_records_ - ship_next_lsn_ + 1;
  const std::size_t prefix = frames_prefix_bytes(ship_buf_, count);
  ship_sink_(ship_next_lsn_, std::string_view(ship_buf_.data(), prefix));
  ship_buf_.erase(0, prefix);
  ship_next_lsn_ += count;
}

void WalWriter::set_ship_sink(ShipSink sink) {
  std::unique_lock lock(mutex_);
  ship_sink_ = std::move(sink);
  ship_buf_.clear();
  if (!ship_sink_) return;
  if (options_.sync) {
    // Capture frames appended but not yet durable so the live stream is
    // gapless against a file read taken after this call: everything the
    // file may be missing is either in pending_ (never written) or in
    // write_buf_ (an fsync in flight right now — its frames will be covered
    // by synced_records_ when it lands, and must be stageable then).
    ship_buf_.reserve(write_buf_.size() * static_cast<std::size_t>(syncing_) +
                      pending_.size());
    if (syncing_) ship_buf_.append(write_buf_);
    ship_buf_.append(pending_);
    ship_next_lsn_ = appended_records_ - count_whole_frames(ship_buf_) + 1;
    ship_synced_locked();
  } else {
    // Hand any pending frames to the OS now: with sync off the live stream
    // only carries frames appended after this call, so everything earlier
    // must be readable from the file.
    write_out_locked();
    ship_next_lsn_ = appended_records_ + 1;
  }
}

void WalWriter::flusher_loop() {
  using Clock = std::chrono::steady_clock;
  const auto period = std::chrono::milliseconds(options_.fsync_every_ms);
  std::unique_lock lock(mutex_);
  auto tick = Clock::now() + period;
  for (;;) {
    // Wake early when the record threshold or the write-out byte threshold
    // is crossed; otherwise the fixed tick implements the time-based half
    // of group commit. The tick is an absolute deadline, NOT a relative
    // timeout — early write-out wakes must not reset the clock, or
    // sustained byte-threshold traffic could postpone the timer fsync (and
    // the crash-loss time bound) indefinitely. The predicate must be false
    // while another thread's fsync is in flight — a true predicate makes
    // the wait return while HOLDING the mutex, and the in-flight flusher
    // needs it back to publish.
    work_cv_.wait_until(lock, tick, [this] {
      return stop_ || failed_ ||
             (!syncing_ &&
              (appended_records_ - synced_records_ >= options_.fsync_every_n ||
               pending_.size() >= kWriteOutBytes));
    });
    if (stop_ || failed_) break;
    if (syncing_) continue;
    if (appended_records_ - synced_records_ >= options_.fsync_every_n) {
      sync_locked(lock);
      tick = Clock::now() + period;
    } else if (Clock::now() >= tick) {
      if (appended_records_ > synced_records_) sync_locked(lock);
      tick = Clock::now() + period;
    } else if (pending_.size() >= kWriteOutBytes) {
      writeout_locked(lock);
    }
  }
}

void WalWriter::flush() {
  std::unique_lock lock(mutex_);
  if (!options_.sync) {
    // Durability disabled by configuration: hand the batch to the OS so
    // the bytes at least survive a process (not power) crash.
    write_out_locked();
    return;
  }
  const std::uint64_t target = appended_records_;
  while (synced_records_ < target && !failed_) {
    if (syncing_) {
      // A flusher fsync is in flight; wait for it to land, then re-check.
      synced_cv_.wait(lock);
      continue;
    }
    sync_locked(lock);
  }
  if (failed_) throw WalError("WAL flush failed (writer poisoned)");
}

void WalWriter::close() {
  {
    std::unique_lock lock(mutex_);
    if (stop_ && !flusher_.joinable() && file_ == nullptr) return;
    if (!stop_ && !failed_) {
      if (options_.sync) {
        while (syncing_) synced_cv_.wait(lock);
        sync_locked(lock);
      } else {
        try {
          write_out_locked();
        } catch (const WalError&) {
          // Poisoned; close() still tears the writer down.
        }
      }
    }
    stop_ = true;
    work_cv_.notify_all();
    synced_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  if (file_ != nullptr) {
    file_->close();
    file_.reset();
  }
}

std::uint64_t WalWriter::records() const {
  std::lock_guard lock(mutex_);
  return appended_records_;
}

std::uint64_t WalWriter::bytes() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

std::uint64_t WalWriter::fsyncs() const {
  std::lock_guard lock(mutex_);
  return fsyncs_;
}

std::uint64_t WalWriter::synced_records() const {
  std::lock_guard lock(mutex_);
  return synced_records_;
}

}  // namespace hxrc::storage
