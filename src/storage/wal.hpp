// Binary write-ahead log with CRC32C framing and group commit.
//
// Every catalog mutation appends one frame, under the catalog's exclusive
// lock (so the log order is exactly the apply order — replay is a pure
// redo). On-disk layout:
//
//   file   := header frame*
//   header := "HXWAL1\n\0"                       (8 bytes)
//   frame  := u32 body_len | u32 crc32c(body) | body
//   body   := u8 type | u64 epoch | payload      (body_len = 9 + |payload|)
//
// All integers little-endian. The CRC covers the body only, so a torn tail
// — a partial header, a length pointing past EOF, or a body whose CRC does
// not match — marks the end of the valid prefix; recovery truncates there
// and continues (never crashes on a torn tail).
//
// Durability model (group commit): append() encodes the frame into an
// in-memory pending buffer and returns — no syscall on the mutation path. A
// dedicated flusher thread hands the whole batch to the OS (one write(2))
// and fsyncs when `fsync_every_n` unsynced records accumulate or
// `fsync_every_ms` elapses, whichever first; batches past kWriteOutBytes
// are written out early WITHOUT fsync, so the eventual fsync pays only the
// journal commit, not a bulk data hand-off. Batching the write(2) as well
// as the fsync matters: ext4 serializes writes against an in-flight fsync
// of the same inode, so per-record writes would stall every mutation behind
// the flusher. A record is *acknowledged durable* only once flush() returns
// (or the flusher has passed its LSN); a crash may lose the un-fsynced
// suffix, which is exactly what the crash-matrix test permits.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "storage/fs.hpp"
#include "util/metrics.hpp"

namespace hxrc::storage {

/// CRC32C (Castagnoli), bytewise table implementation. `seed` is the
/// running CRC (start from 0); the final value is post-conditioned.
std::uint32_t crc32c(std::uint32_t seed, const void* data, std::size_t size);

class WalError : public std::runtime_error {
 public:
  explicit WalError(const std::string& message) : std::runtime_error(message) {}
};

enum class WalRecordType : std::uint8_t {
  kIngest = 1,
  kDefine = 2,
  kAddAttribute = 3,
  kDelete = 4,
  kCreateCollection = 5,
  kAddToCollection = 6,
};

inline constexpr char kWalMagic[8] = {'H', 'X', 'W', 'A', 'L', '1', '\n', '\0'};

/// One decoded frame (payload views into the scanned buffer).
struct WalRecord {
  WalRecordType type;
  std::uint64_t epoch = 0;
  std::string_view payload;
};

/// Result of scanning a WAL byte buffer.
struct WalScan {
  std::vector<WalRecord> records;
  /// Bytes of the valid prefix (header + intact frames). Anything past it
  /// is a torn/corrupt tail the caller should truncate away.
  std::uint64_t valid_bytes = 0;
  /// True when bytes past the valid prefix exist (torn tail detected).
  bool torn_tail = false;
  /// Why the scan stopped, for logs/tests ("" when the file ended cleanly).
  std::string stop_reason;
};

/// Scans a WAL image. Throws WalError only when the header itself is not a
/// WAL (wrong magic on a non-empty file); every later defect is reported as
/// a torn tail, never an exception.
WalScan scan_wal(std::string_view bytes);

/// Scans a headerless run of frames — the payload format of replication
/// chunks (fed/ship_wire.hpp), which ship frames without the file magic.
/// Same torn-tail semantics as scan_wal; on the wire a torn tail means a
/// corrupt chunk, and the receiver should drop the connection.
WalScan scan_wal_frames(std::string_view bytes);

// ---- payload codec -------------------------------------------------------

/// Append-only little-endian encoder for WAL payloads and snapshots.
///
/// Integers are staged in a stack buffer and appended with a single
/// std::string::append — one capacity check per field instead of one per
/// byte; GCC/Clang collapse the shift-stores into a single unaligned store.
/// This encoder runs under the catalog's exclusive lock for every logged
/// mutation, so per-field costs are the WAL's ingest overhead.
class WalEncoder {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out_.append(b, 4);
  }
  void u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out_.append(b, 8);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Compact count: one byte below 0xff, 0xff escape + u32 above. Catalog
  /// payloads are dominated by short names, paths, and text values, so this
  /// replaces a 4-byte prefix with 1 byte for nearly every string — the WAL
  /// image for the LEAD corpus shrinks ~25% below the equivalent XML text.
  void len(std::uint32_t n) {
    if (n < 0xff) {
      out_.push_back(static_cast<char>(n));
      return;
    }
    out_.push_back(static_cast<char>(0xff));
    u32(n);
  }
  void str(std::string_view s) {
    len(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  void clear() noexcept { out_.clear(); }
  const std::string& bytes() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked decoder; throws WalError past the end (a scanned frame's
/// CRC already matched, so a decode error means a logic/version bug, not
/// disk corruption).
class WalDecoder {
 public:
  explicit WalDecoder(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(need(1)[0]); }
  std::uint32_t u32() {
    const char* p = need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const char* p = need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::uint32_t len() {
    const std::uint8_t first = u8();
    return first < 0xff ? first : u32();
  }
  std::string_view str() {
    const std::uint32_t n = len();
    return std::string_view(need(n), n);
  }
  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  const char* need(std::size_t n) {
    if (bytes_.size() - pos_ < n) throw WalError("WAL payload decode past end");
    const char* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// Serializes one frame (length + CRC + body) into a buffer.
void encode_frame(std::string& out, WalRecordType type, std::uint64_t epoch,
                  std::string_view payload);

// ---- writer --------------------------------------------------------------

struct WalOptions {
  /// Flusher cadence: fsync when this many ms elapse with unsynced records.
  /// The pair bounds the crash-loss window (nothing fsync-acknowledged is
  /// ever lost; at most this window of unacknowledged tail can tear). The
  /// defaults let a paper-scale ingest burst amortize each fsync over a few
  /// hundred records, which is what keeps WAL-on ingest inside the 1.3×
  /// overhead budget (bench_durability E13); a 20 ms loss bound is still an
  /// order of magnitude tighter than e.g. PostgreSQL's 200 ms
  /// wal_writer_delay for asynchronous commits.
  std::uint32_t fsync_every_ms = 20;
  /// ... or as soon as this many unsynced records accumulate. The time
  /// bound is the primary cadence; the count is a volume backstop (~0.35 MB
  /// of catalog records, within the range of PostgreSQL's 1 MB
  /// wal_writer_flush_after) so a burst cannot buffer unbounded data.
  std::uint32_t fsync_every_n = 256;
  /// Disables fsync entirely (metadata still flows through write(2)).
  /// For benches quantifying the fsync share of WAL overhead; a production
  /// catalog keeps this true.
  bool sync = true;
};

/// Appends frames with group commit. append() is called under the
/// catalog's exclusive lock; flush()/close() may be called from any thread.
/// After an IoError from the underlying file the writer is poisoned: every
/// later append throws WalError (the in-memory catalog may then be ahead of
/// the log, and the process must surface the failure instead of silently
/// running unlogged).
class WalWriter {
 public:
  /// Ship hook (replication): invoked under the writer mutex, in LSN order,
  /// with a run of freshly *durable* frames — `frames` is raw frame bytes
  /// (no file magic) whose first record has LSN `first_lsn`. The callback
  /// must be quick (hand off to a queue); it runs on the append path with
  /// sync off and on the flusher/flush path with sync on.
  using ShipSink =
      std::function<void(std::uint64_t first_lsn, std::string_view frames)>;

  /// `initial_records` is the record count already present in the file when
  /// reopening an existing WAL — LSNs continue from it, so an LSN is always
  /// the record's 1-based ordinal in the file regardless of process
  /// restarts. A fresh file passes 0.
  WalWriter(std::unique_ptr<File> file, WalOptions options,
            util::DurabilityMetrics* metrics, std::uint64_t initial_records = 0);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one frame to the pending batch (no syscall). Returns the
  /// record's LSN (1-based record count). The record is durable only after
  /// a flush()/flusher pass covers it.
  std::uint64_t append(WalRecordType type, std::uint64_t epoch, std::string_view payload);

  /// Installs (or clears) the replication ship sink. Frames appended after
  /// installation are shipped once durable; frames already appended but not
  /// yet handed to the OS are captured too, so the sink's stream is gapless
  /// against a reader that starts from the current *file* contents (the
  /// shipper reads the file only after installing the sink; overlap between
  /// the two is resolved by LSN on the receiving side).
  void set_ship_sink(ShipSink sink);

  /// Blocks until every record appended so far is fsynced. With sync
  /// disabled, hands the pending batch to the OS and returns.
  void flush();

  /// flush() + stop the flusher + close the file. Idempotent.
  void close();

  std::uint64_t records() const;
  std::uint64_t bytes() const;
  std::uint64_t fsyncs() const;
  /// Records acknowledged durable (fsync passed their LSN).
  std::uint64_t synced_records() const;

 private:
  /// Drain pending_ to the OS (no fsync) once it grows past this. With sync
  /// on, the flusher does it off-thread so a later fsync only pays the
  /// journal commit, not the data copy; with sync off, append() drains
  /// inline to bound memory.
  static constexpr std::size_t kWriteOutBytes = std::size_t{1} << 16;

  void flusher_loop();
  void sync_locked(std::unique_lock<std::mutex>& lock);
  void writeout_locked(std::unique_lock<std::mutex>& lock);
  void write_out_locked();
  /// Ships the prefix of ship_buf_ covering records with LSN <=
  /// synced_records_. Caller holds the mutex.
  void ship_synced_locked();

  std::unique_ptr<File> file_;
  WalOptions options_;
  util::DurabilityMetrics* metrics_;  // may be null

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // wakes the flusher
  std::condition_variable synced_cv_; // wakes flush() waiters
  std::uint64_t appended_records_ = 0;
  std::uint64_t synced_records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t fsyncs_ = 0;
  bool failed_ = false;
  bool stop_ = false;
  bool syncing_ = false;
  /// Frames appended but not yet handed to the OS. With sync on, only the
  /// stealing drains (sync_locked / writeout_locked, serialized by
  /// `syncing_`) touch the fd; with sync off, append/flush/close drain it
  /// under the mutex.
  std::string pending_;
  std::string write_buf_;  // swap target while the batch is written unlocked
  /// Replication staging: frames appended since the sink's ship cursor.
  /// With sync on, frames accumulate here and are shipped (prefix-wise, by
  /// frame-walking the length fields) once an fsync covers their LSNs; with
  /// sync off each frame ships directly from append(). Empty and unused
  /// while no sink is installed.
  ShipSink ship_sink_;
  std::string ship_buf_;
  std::uint64_t ship_next_lsn_ = 1;
  std::thread flusher_;
};

}  // namespace hxrc::storage
