// Crash recovery and the durable-catalog lifecycle.
//
// DurableCatalog bolts the WAL + snapshot machinery onto a MetadataCatalog:
//
//   open (constructor)
//     1. load the newest snapshot whose trailer CRC validates (older valid
//        ones are fallbacks against byte rot; none = start empty);
//     2. replay the paired WAL tail in order, re-applying each logged
//        mutation through the normal catalog API and re-pinning the version
//        epoch each record carried; a torn/corrupt final record ends replay
//        — the file is truncated to the valid prefix and recovery
//        continues (never crashes);
//     3. bump the epoch once past everything recovered, so any cursor
//        issued by the dead process is stale by construction;
//     4. attach the WAL appender as the catalog's mutation observer and
//        start the group-commit flusher.
//
//   checkpoint()
//     Writes snapshot seq+1 under the catalog's shared lock (mutations are
//     fenced, so nothing can land in the old WAL after the snapshot point),
//     rotates to a fresh wal.<seq+1>.log, then deletes the superseded pair
//     — the snapshot truncates the log behind it.
//
//   close()
//     Final flush + detach. Quiesce request traffic first
//     (ServiceDispatcher::drain()) so no mutation races the detach.
//
// Secondary indexes are NOT serialized anywhere; they rebuild lazily on
// first probe after recovery (the deferred-index design of the query
// layer), so recovery cost is dominated by rows, not index builds.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/catalog.hpp"
#include "storage/fs.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"
#include "util/metrics.hpp"

namespace hxrc::storage {

class RecoveryError : public std::runtime_error {
 public:
  explicit RecoveryError(const std::string& message) : std::runtime_error(message) {}
};

struct DurabilityConfig {
  /// Directory holding snapshot.<seq>.hxs / wal.<seq>.log; created if absent.
  std::string data_dir;
  /// Group-commit cadence (see storage/wal.hpp).
  WalOptions wal;
};

/// What open() found and did; exposed for logs, stats, and tests.
struct RecoveryInfo {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;  ///< live sequence number after open
  std::uint64_t replayed_records = 0;
  bool torn_tail = false;
  std::string torn_reason;
  std::uint64_t recovery_micros = 0;
  std::uint64_t epoch = 0;  ///< catalog version after recovery (post-bump)
};

/// Serializes one mutation event into a WAL payload (sans framing),
/// appended to `enc`. The append path reuses one encoder across events to
/// keep per-mutation allocations off the catalog's exclusive lock.
void encode_event_into(WalEncoder& enc, const core::MutationEvent& event);

/// Convenience form returning a fresh payload string. Exposed for the
/// fault-injection tests, which need to know exact record boundaries to
/// build their crash matrix.
std::string encode_event(const core::MutationEvent& event);

/// Re-applies one scanned WAL record through the catalog API and re-pins
/// the epoch the record carried. Throws RecoveryError when the replayed
/// mutation diverges (id drift) — that is corruption the CRC cannot see.
void apply_record(core::MetadataCatalog& catalog, const WalRecord& record);

/// Replication tap on a DurableCatalog (see fed/shipper.hpp for the network
/// half). Callbacks run with durability-layer locks held — on_durable under
/// the WAL writer mutex, on_rotate under the catalog's shared lock inside
/// checkpoint() — so implementations must only enqueue and return.
class WalShipObserver {
 public:
  virtual ~WalShipObserver() = default;

  /// A run of fsync-acknowledged WAL frames (raw frame bytes, no file
  /// magic); the first record's LSN within wal.<wal_seq>.log is first_lsn.
  virtual void on_durable(std::uint64_t wal_seq, std::uint64_t first_lsn,
                          std::string_view frames) = 0;

  /// A checkpoint rotated to wal.<new_seq>.log (empty); `snapshot` is the
  /// serialized catalog image the new sequence starts from, `prev_records`
  /// the total record count of the finished wal.<new_seq-1>.log (a replica
  /// adopts the rotation only when its applied-LSN matches — proof it
  /// missed nothing), and `epoch` the catalog version at the snapshot
  /// point. Called under the mutation fence, so no on_durable for new_seq
  /// can precede it.
  virtual void on_rotate(std::uint64_t new_seq, std::uint64_t prev_records,
                         std::uint64_t epoch, const std::string& snapshot) = 0;
};

class DurableCatalog {
 public:
  /// Opens (recovering if the directory has state) and attaches. The
  /// catalog must be freshly constructed (same schema/annotations as the
  /// process that wrote the directory) and not yet serving traffic.
  DurableCatalog(core::MetadataCatalog& catalog, DurabilityConfig config,
                 Fs& fs = real_fs());
  ~DurableCatalog();

  DurableCatalog(const DurableCatalog&) = delete;
  DurableCatalog& operator=(const DurableCatalog&) = delete;

  const RecoveryInfo& recovery() const noexcept { return recovery_; }
  const util::DurabilityMetrics& metrics() const noexcept { return metrics_; }
  std::uint64_t wal_seq() const noexcept { return seq_; }
  const std::string& data_dir() const noexcept { return config_.data_dir; }

  /// Installs (or clears, with nullptr) the replication observer. The
  /// observer must outlive the DurableCatalog or be cleared first. Frames
  /// appended but not yet durable at installation time are included in the
  /// stream; overlap with a concurrent read of the WAL file is resolved by
  /// LSN on the receiving side (WalWriter::set_ship_sink).
  void set_ship_observer(WalShipObserver* observer);

  /// Blocks until every mutation so far is fsync-acknowledged.
  void flush();

  /// Snapshot + WAL rotation; see file header. Safe to call concurrently
  /// with reads and mutations (mutations stall for the snapshot's duration).
  void checkpoint();

  /// Final flush + detach observer. Call only after quiescing mutation
  /// traffic (e.g. ServiceDispatcher::drain()) — a mutation concurrent with
  /// close() would race the observer swap. Idempotent.
  void close();

 private:
  void on_mutation(const core::MutationEvent& event);
  void cleanup_superseded(std::uint64_t live_seq);
  /// Hooks `wal_` up to ship_observer_ for the given sequence number.
  /// Caller guarantees no concurrent writer swap (lifecycle_mutex_ or
  /// construction).
  void install_ship_sink(std::uint64_t seq);
  std::string dir_path(const std::string& name) const {
    return config_.data_dir + "/" + name;
  }

  core::MetadataCatalog& catalog_;
  DurabilityConfig config_;
  Fs& fs_;
  util::DurabilityMetrics metrics_;
  RecoveryInfo recovery_;
  std::uint64_t seq_ = 0;
  std::unique_ptr<WalWriter> wal_;
  /// Reused payload buffer for on_mutation; guarded by the catalog's
  /// exclusive lock like `wal_` itself.
  WalEncoder event_buf_;
  /// Serializes checkpoint/flush/close against each other. on_mutation does
  /// not take it — it runs under the catalog's exclusive lock, and
  /// checkpoint swaps the writer while holding the catalog's shared lock,
  /// so the two can never touch `wal_` concurrently.
  std::mutex lifecycle_mutex_;
  bool closed_ = false;
  /// Replication tap; written under lifecycle_mutex_, read by the writer's
  /// ship sink (which captured it when installed).
  WalShipObserver* ship_observer_ = nullptr;
};

}  // namespace hxrc::storage
