// Fault-injecting filesystem wrapper for the recovery test harness.
//
// FaultFs forwards to a base Fs but can be armed to cut writes at an exact
// byte: `fail_after_bytes(n)` persists the next n written bytes and then
// fails every write (persisting the in-flight write's prefix first — a torn
// tail, exactly what a power cut mid-write leaves behind). `fail_syncs()`
// makes fsync fail instead, modelling a dying disk. The crash-matrix test
// (tests/test_recovery.cpp) arms a cut at every WAL record boundary and a
// spread of mid-record offsets and asserts the recovered catalog equals the
// oracle built from the records that fully reached "disk".
//
// Counters (bytes_written/writes/syncs) let tests assert group-commit
// batching without timing dependence.
#pragma once

#include <atomic>
#include <cstring>
#include <limits>

#include "storage/fs.hpp"

namespace hxrc::storage {

class FaultFs final : public Fs {
 public:
  explicit FaultFs(Fs& base) : base_(base) {}

  /// Persists up to `n` more written bytes across all files opened through
  /// this Fs, then throws IoError from every write. The write that crosses
  /// the limit is short-written: its first bytes land, the rest are lost.
  void fail_after_bytes(std::uint64_t n) {
    budget_.store(n, std::memory_order_release);
    armed_.store(true, std::memory_order_release);
  }

  /// Makes every subsequent sync() throw IoError (writes still succeed).
  void fail_syncs(bool fail = true) { fail_syncs_.store(fail, std::memory_order_release); }

  /// Disarms all faults; new writes succeed again.
  void clear_faults() {
    armed_.store(false, std::memory_order_release);
    fail_syncs_.store(false, std::memory_order_release);
  }

  std::uint64_t bytes_written() const { return bytes_written_.load(std::memory_order_acquire); }
  std::uint64_t writes() const { return writes_.load(std::memory_order_acquire); }
  std::uint64_t syncs() const { return syncs_.load(std::memory_order_acquire); }

  // ---- Fs ----

  std::unique_ptr<File> open_append(const std::string& path) override {
    return std::make_unique<FaultFile>(*this, base_.open_append(path));
  }
  std::unique_ptr<File> create(const std::string& path) override {
    return std::make_unique<FaultFile>(*this, base_.create(path));
  }
  std::string read_file(const std::string& path) override { return base_.read_file(path); }
  bool exists(const std::string& path) override { return base_.exists(path); }
  void rename(const std::string& from, const std::string& to) override {
    base_.rename(from, to);
  }
  void remove(const std::string& path) override { base_.remove(path); }
  void truncate(const std::string& path, std::uint64_t size) override {
    base_.truncate(path, size);
  }
  std::vector<std::string> list(const std::string& dir) override { return base_.list(dir); }
  void create_dirs(const std::string& dir) override { base_.create_dirs(dir); }
  void sync_dir(const std::string& dir) override { base_.sync_dir(dir); }

 private:
  class FaultFile final : public File {
   public:
    FaultFile(FaultFs& owner, std::unique_ptr<File> base)
        : owner_(owner), base_(std::move(base)) {}

    void write(const void* data, std::size_t size) override {
      owner_.writes_.fetch_add(1, std::memory_order_relaxed);
      std::size_t allowed = size;
      if (owner_.armed_.load(std::memory_order_acquire)) {
        // Claim bytes from the shared budget; the crossing write persists
        // only the budget's remainder.
        std::uint64_t budget = owner_.budget_.load(std::memory_order_acquire);
        for (;;) {
          const std::uint64_t take =
              budget < size ? budget : static_cast<std::uint64_t>(size);
          if (owner_.budget_.compare_exchange_weak(budget, budget - take,
                                                   std::memory_order_acq_rel)) {
            allowed = static_cast<std::size_t>(take);
            break;
          }
        }
      }
      if (allowed > 0) {
        base_->write(data, allowed);
        owner_.bytes_written_.fetch_add(allowed, std::memory_order_relaxed);
      }
      if (allowed < size) {
        throw IoError("injected write failure (torn after " + std::to_string(allowed) +
                      " of " + std::to_string(size) + " bytes)");
      }
    }

    void sync() override {
      owner_.syncs_.fetch_add(1, std::memory_order_relaxed);
      if (owner_.fail_syncs_.load(std::memory_order_acquire)) {
        throw IoError("injected fsync failure");
      }
      base_->sync();
    }

    std::uint64_t size() const override { return base_->size(); }
    void close() override { base_->close(); }

   private:
    FaultFs& owner_;
    std::unique_ptr<File> base_;
  };

  Fs& base_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> fail_syncs_{false};
  std::atomic<std::uint64_t> budget_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> syncs_{0};
};

}  // namespace hxrc::storage
