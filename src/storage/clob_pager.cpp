#include "storage/clob_pager.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/wal.hpp"

namespace hxrc::storage {

namespace {

constexpr std::uint32_t kFrameMagic = 0x48584350;  // "HXCP"
constexpr std::size_t kHeaderBytes = 12;           // magic + length + crc

void put_u32(char* out, std::uint32_t v) noexcept {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t get_u32(const char* in) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

void pwrite_all(int fd, const char* data, std::size_t size, std::uint64_t offset,
                const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClobPagerError("pwrite '" + path + "': " + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void pread_all(int fd, char* data, std::size_t size, std::uint64_t offset,
               const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::pread(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClobPagerError("pread '" + path + "': " + std::strerror(errno));
    }
    if (n == 0) throw ClobPagerError("short read from '" + path + "'");
    data += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

}  // namespace

PagedClobFile::PagedClobFile(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw ClobPagerError("open '" + path_ + "': " + std::strerror(errno));
  }
}

PagedClobFile::~PagedClobFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint32_t PagedClobFile::write_segment(std::string_view payload) {
  char header[kHeaderBytes];
  put_u32(header, kFrameMagic);
  put_u32(header + 4, static_cast<std::uint32_t>(payload.size()));
  put_u32(header + 8, crc32c(0, payload.data(), payload.size()));
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t at = end_;
  pwrite_all(fd_, header, kHeaderBytes, at, path_);
  pwrite_all(fd_, payload.data(), payload.size(), at + kHeaderBytes, path_);
  end_ = at + kHeaderBytes + payload.size();
  segments_.push_back(
      SegmentLoc{at, static_cast<std::uint32_t>(payload.size())});
  return static_cast<std::uint32_t>(segments_.size() - 1);
}

std::string PagedClobFile::read_segment(std::uint32_t segment) {
  SegmentLoc loc;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (segment >= segments_.size()) {
      throw ClobPagerError("unknown clob segment " + std::to_string(segment));
    }
    loc = segments_[segment];
  }
  char header[kHeaderBytes];
  pread_all(fd_, header, kHeaderBytes, loc.offset, path_);
  if (get_u32(header) != kFrameMagic || get_u32(header + 4) != loc.length) {
    throw ClobPagerError("corrupt clob segment frame in '" + path_ + "'");
  }
  std::string payload(loc.length, '\0');
  pread_all(fd_, payload.data(), payload.size(), loc.offset + kHeaderBytes, path_);
  if (crc32c(0, payload.data(), payload.size()) != get_u32(header + 8)) {
    throw ClobPagerError("clob segment checksum mismatch in '" + path_ + "'");
  }
  return payload;
}

std::size_t PagedClobFile::segment_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return segments_.size();
}

std::size_t PagedClobFile::file_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return end_;
}

}  // namespace hxrc::storage
