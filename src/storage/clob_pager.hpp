// Page file backing for spilled CLOB segments.
//
// PagedClobFile implements rel::ClobPager over a single append-only file:
// each sealed segment is one framed record (magic, length, CRC32C, payload)
// written with pwrite at the running tail and read back with pread. The
// in-memory directory maps segment id -> (offset, length); the file is
// derived cache data, rebuilt by re-ingest, and is NOT part of the
// WAL/snapshot durability contract — so writes need no fsync and a torn
// tail is detected by the CRC on read, not repaired.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rel/clob_store.hpp"

namespace hxrc::storage {

class ClobPagerError : public std::runtime_error {
 public:
  explicit ClobPagerError(const std::string& message)
      : std::runtime_error(message) {}
};

class PagedClobFile final : public rel::ClobPager {
 public:
  /// Creates (truncating) the page file at `path`.
  explicit PagedClobFile(std::string path);
  ~PagedClobFile() override;

  PagedClobFile(const PagedClobFile&) = delete;
  PagedClobFile& operator=(const PagedClobFile&) = delete;

  std::uint32_t write_segment(std::string_view payload) override;
  std::string read_segment(std::uint32_t segment) override;

  std::size_t segment_count() const;
  /// Bytes written to the page file, frames included.
  std::size_t file_bytes() const;

 private:
  struct SegmentLoc {
    std::uint64_t offset = 0;  // of the frame header
    std::uint32_t length = 0;  // payload bytes
  };

  std::string path_;
  int fd_ = -1;
  mutable std::mutex mutex_;  // directory + tail; pread/pwrite positioned
  std::uint64_t end_ = 0;
  std::vector<SegmentLoc> segments_;
};

}  // namespace hxrc::storage
