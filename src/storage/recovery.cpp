#include "storage/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "xml/dom.hpp"

namespace hxrc::storage {

namespace {

WalRecordType record_type(core::MutationEvent::Kind kind) {
  using Kind = core::MutationEvent::Kind;
  switch (kind) {
    case Kind::kIngest:
      return WalRecordType::kIngest;
    case Kind::kDefine:
      return WalRecordType::kDefine;
    case Kind::kAddAttribute:
      return WalRecordType::kAddAttribute;
    case Kind::kDelete:
      return WalRecordType::kDelete;
    case Kind::kCreateCollection:
      return WalRecordType::kCreateCollection;
    case Kind::kAddToCollection:
      return WalRecordType::kAddToCollection;
  }
  throw WalError("unknown mutation kind");
}

std::uint64_t elapsed_micros(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

void check_id(const char* what, std::int64_t recorded, std::int64_t assigned) {
  if (recorded != assigned) {
    throw RecoveryError(std::string("replay id drift: ") + what + " recorded " +
                        std::to_string(recorded) + " but replay assigned " +
                        std::to_string(assigned) +
                        " — the WAL does not belong to this catalog state");
  }
}

/// Binary DOM codec for document-bearing records. The content is logged as
/// a pre-order walk of the tree (kind tag, then name/attrs/children or text
/// value), NOT as XML text: encoding is pure memcpy (no escaping), and
/// replay rebuilds the DOM without an XML parse. Both sit on hot paths —
/// encode under the catalog's exclusive lock on every ingest, decode on the
/// recovery critical path. kLeafTag collapses the dominant DOM shape —
/// an attribute-less element whose only child is text (every metadata leaf
/// in a LEAD document) — into name + value, skipping the child recursion
/// and three bytes of structure per leaf.
constexpr std::uint8_t kElemTag = 0;
constexpr std::uint8_t kTextTag = 1;
constexpr std::uint8_t kLeafTag = 2;

void encode_node(WalEncoder& enc, const xml::Node& node) {
  if (node.is_text()) {
    enc.u8(kTextTag);
    enc.str(node.value());
    return;
  }
  const auto& attrs = node.attributes();
  const auto& children = node.children();
  if (attrs.empty() && children.size() == 1 && children[0]->is_text()) {
    enc.u8(kLeafTag);
    enc.str(node.name());
    enc.str(children[0]->value());
    return;
  }
  enc.u8(kElemTag);
  enc.str(node.name());
  enc.len(static_cast<std::uint32_t>(attrs.size()));
  for (const xml::Attribute& attr : attrs) {
    enc.str(attr.name);
    enc.str(attr.value);
  }
  enc.len(static_cast<std::uint32_t>(children.size()));
  for (const xml::Node* child : children) encode_node(enc, *child);
}

xml::NodePtr decode_node(WalDecoder& dec) {
  const std::uint8_t kind = dec.u8();
  if (kind == kTextTag) return xml::Node::text(std::string(dec.str()));
  if (kind == kLeafTag) {
    xml::NodePtr node = xml::Node::element(std::string(dec.str()));
    node->add_child(xml::Node::text(std::string(dec.str())));
    return node;
  }
  if (kind != kElemTag) {
    throw RecoveryError("corrupt DOM node tag in WAL payload (format drift)");
  }
  xml::NodePtr node = xml::Node::element(std::string(dec.str()));
  const std::uint32_t attr_count = dec.len();
  for (std::uint32_t i = 0; i < attr_count; ++i) {
    std::string name(dec.str());
    std::string value(dec.str());
    node->add_attribute(std::move(name), std::move(value));
  }
  const std::uint32_t child_count = dec.len();
  for (std::uint32_t i = 0; i < child_count; ++i) node->add_child(decode_node(dec));
  return node;
}

}  // namespace

void encode_event_into(WalEncoder& enc, const core::MutationEvent& event) {
  using Kind = core::MutationEvent::Kind;
  switch (event.kind) {
    case Kind::kIngest:
      enc.i64(event.object);
      enc.str(event.name);
      enc.str(event.owner);
      encode_node(enc, *event.content);
      break;
    case Kind::kAddAttribute:
      enc.i64(event.object);
      enc.str(event.path);
      enc.str(event.owner);
      encode_node(enc, *event.content);
      break;
    case Kind::kDefine: {
      enc.i64(event.attr);
      enc.i64(event.parent);
      enc.u8(static_cast<std::uint8_t>(event.visibility));
      enc.str(event.name);
      enc.str(event.source);
      enc.str(event.owner);
      const auto& elements = *event.elements;
      enc.u32(static_cast<std::uint32_t>(elements.size()));
      for (const core::DynamicElementSpec& elem : elements) {
        enc.str(elem.name);
        enc.str(elem.source);
        enc.u8(static_cast<std::uint8_t>(elem.type));
      }
      break;
    }
    case Kind::kDelete:
      enc.i64(event.object);
      break;
    case Kind::kCreateCollection:
      enc.i64(event.collection);
      enc.i64(event.parent_collection);
      enc.str(event.name);
      enc.str(event.owner);
      break;
    case Kind::kAddToCollection:
      enc.i64(event.collection);
      enc.i64(event.object);
      break;
  }
}

std::string encode_event(const core::MutationEvent& event) {
  WalEncoder enc;
  encode_event_into(enc, event);
  return enc.take();
}

void apply_record(core::MetadataCatalog& catalog, const WalRecord& record) {
  WalDecoder dec(record.payload);
  try {
    switch (record.type) {
      case WalRecordType::kIngest: {
        const core::ObjectId object = dec.i64();
        const std::string name(dec.str());
        const std::string owner(dec.str());
        const xml::Document doc(decode_node(dec));
        check_id("object", object, catalog.ingest(doc, name, owner));
        break;
      }
      case WalRecordType::kAddAttribute: {
        const core::ObjectId object = dec.i64();
        const std::string path(dec.str());
        const std::string owner(dec.str());
        const xml::NodePtr content = decode_node(dec);
        catalog.add_attribute(object, path, *content, owner);
        break;
      }
      case WalRecordType::kDefine: {
        const core::AttrDefId attr = dec.i64();
        const core::AttrDefId parent = dec.i64();
        const auto visibility = static_cast<core::Visibility>(dec.u8());
        const std::string name(dec.str());
        const std::string source(dec.str());
        const std::string owner(dec.str());
        std::vector<core::DynamicElementSpec> elements(dec.u32());
        for (core::DynamicElementSpec& elem : elements) {
          elem.name = std::string(dec.str());
          elem.source = std::string(dec.str());
          elem.type = static_cast<xml::LeafType>(dec.u8());
        }
        const core::AttrDefId assigned =
            parent == core::kNoAttr
                ? catalog.define_dynamic_attribute(name, source, elements, visibility,
                                                   owner)
                : catalog.define_dynamic_sub_attribute(parent, name, source, elements,
                                                       visibility, owner);
        check_id("attribute definition", attr, assigned);
        break;
      }
      case WalRecordType::kDelete:
        catalog.delete_object(dec.i64());
        break;
      case WalRecordType::kCreateCollection: {
        const core::CollectionId collection = dec.i64();
        const core::CollectionId parent = dec.i64();
        const std::string name(dec.str());
        const std::string owner(dec.str());
        check_id("collection", collection,
                 catalog.create_collection(name, owner, parent));
        break;
      }
      case WalRecordType::kAddToCollection: {
        const core::CollectionId collection = dec.i64();
        const core::ObjectId object = dec.i64();
        catalog.add_to_collection(collection, object);
        break;
      }
      default:
        throw RecoveryError("unknown WAL record type " +
                            std::to_string(static_cast<int>(record.type)));
    }
  } catch (const RecoveryError&) {
    throw;
  } catch (const std::exception& e) {
    throw RecoveryError(std::string("WAL replay failed: ") + e.what());
  }
  if (!dec.done()) {
    throw RecoveryError("WAL record carries trailing bytes (format drift)");
  }
  // Re-pin the epoch the original process recorded. Replay must not assert
  // contiguity: a previous recovery's final bump leaves gaps.
  catalog.restore_version(record.epoch);
}

DurableCatalog::DurableCatalog(core::MetadataCatalog& catalog, DurabilityConfig config,
                               Fs& fs)
    : catalog_(catalog), config_(std::move(config)), fs_(fs) {
  const auto start = std::chrono::steady_clock::now();
  fs_.create_dirs(config_.data_dir);

  // Newest valid snapshot wins; an invalid newer one (byte rot, or a crash
  // no rename protocol can explain) falls back to the next older.
  std::vector<std::uint64_t> snapshot_seqs;
  for (const std::string& name : fs_.list(config_.data_dir)) {
    if (const auto seq = parse_snapshot_name(name)) snapshot_seqs.push_back(*seq);
  }
  std::sort(snapshot_seqs.rbegin(), snapshot_seqs.rend());
  for (const std::uint64_t seq : snapshot_seqs) {
    const std::string bytes = fs_.read_file(dir_path(snapshot_name(seq)));
    if (!snapshot_valid(bytes)) continue;
    load_snapshot(catalog_, bytes);  // structural mismatch throws — no fallback
    recovery_.snapshot_loaded = true;
    seq_ = seq;
    break;
  }

  // Replay the paired WAL tail, truncating a torn suffix in place.
  const std::string wal_path = dir_path(wal_name(seq_));
  if (fs_.exists(wal_path)) {
    const std::string bytes = fs_.read_file(wal_path);
    WalScan scan;
    try {
      scan = scan_wal(bytes);
    } catch (const WalError& e) {
      throw RecoveryError(std::string("unreadable WAL ") + wal_name(seq_) + ": " +
                          e.what());
    }
    for (const WalRecord& record : scan.records) apply_record(catalog_, record);
    recovery_.replayed_records = scan.records.size();
    if (scan.torn_tail) {
      fs_.truncate(wal_path, scan.valid_bytes);
      recovery_.torn_tail = true;
      recovery_.torn_reason = scan.stop_reason;
      metrics_.torn_tail_truncations.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // One bump past everything recovered: every cursor the dead process
  // issued is now provably stale, even when the crash lost zero records.
  catalog_.restore_version(catalog_.version() + 1);
  recovery_.epoch = catalog_.version();
  recovery_.snapshot_seq = seq_;

  cleanup_superseded(seq_);

  // LSNs continue from the replayed record count, so an LSN names the
  // record's ordinal in this WAL file across restarts (replication relies
  // on it: a replica's applied-LSN watermark is per (wal_seq, ordinal)).
  wal_ = std::make_unique<WalWriter>(fs_.open_append(wal_path), config_.wal, &metrics_,
                                     recovery_.replayed_records);
  recovery_.recovery_micros = elapsed_micros(start);
  metrics_.recovery_micros.store(recovery_.recovery_micros, std::memory_order_relaxed);
  metrics_.replayed_records.store(recovery_.replayed_records, std::memory_order_relaxed);

  catalog_.set_mutation_observer(
      [this](const core::MutationEvent& event) { on_mutation(event); });
  catalog_.set_durability_metrics(&metrics_);
}

DurableCatalog::~DurableCatalog() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; a poisoned WAL already surfaced its
    // failure to the mutating callers.
  }
}

void DurableCatalog::on_mutation(const core::MutationEvent& event) {
  // Runs under the catalog's exclusive lock: append order == apply order,
  // and the reused payload buffer needs no locking of its own.
  event_buf_.clear();
  encode_event_into(event_buf_, event);
  wal_->append(record_type(event.kind), event.epoch, event_buf_.bytes());
}

void DurableCatalog::flush() {
  std::lock_guard<std::mutex> guard(lifecycle_mutex_);
  if (!closed_) wal_->flush();
}

void DurableCatalog::install_ship_sink(std::uint64_t seq) {
  if (ship_observer_ == nullptr) {
    wal_->set_ship_sink(nullptr);
    return;
  }
  WalShipObserver* observer = ship_observer_;
  wal_->set_ship_sink([observer, seq](std::uint64_t first_lsn,
                                      std::string_view frames) {
    observer->on_durable(seq, first_lsn, frames);
  });
}

void DurableCatalog::set_ship_observer(WalShipObserver* observer) {
  std::lock_guard<std::mutex> guard(lifecycle_mutex_);
  ship_observer_ = observer;
  if (!closed_) install_ship_sink(seq_);
}

void DurableCatalog::checkpoint() {
  std::lock_guard<std::mutex> guard(lifecycle_mutex_);
  if (closed_) throw RecoveryError("checkpoint on a closed DurableCatalog");
  const std::uint64_t old_seq = seq_;
  {
    // The shared lock fences mutations: nothing can append to the old WAL
    // after the snapshot point, and nothing can land between the snapshot
    // and the rotation. Readers keep running.
    auto lock = catalog_.read_lock();
    const std::string bytes = encode_snapshot(catalog_, /*locked=*/true);
    write_snapshot_file(fs_, config_.data_dir, old_seq + 1, bytes, &metrics_);
    const std::uint64_t prev_records = wal_->records();
    wal_->close();
    wal_ = std::make_unique<WalWriter>(fs_.create(dir_path(wal_name(old_seq + 1))),
                                       config_.wal, &metrics_);
    seq_ = old_seq + 1;
    // Still under the mutation fence: replicas learn about the rotation
    // (with the exact image the new sequence starts from) before any frame
    // of the new WAL can exist.
    if (ship_observer_ != nullptr) {
      ship_observer_->on_rotate(seq_, prev_records, catalog_.version(), bytes);
      install_ship_sink(seq_);
    }
  }
  cleanup_superseded(seq_);
}

void DurableCatalog::close() {
  std::lock_guard<std::mutex> guard(lifecycle_mutex_);
  if (closed_) return;
  catalog_.set_mutation_observer(nullptr);
  catalog_.set_durability_metrics(nullptr);
  wal_->close();
  closed_ = true;
}

void DurableCatalog::cleanup_superseded(std::uint64_t live_seq) {
  // Best-effort: stale pairs and tmp files from crashed checkpoints. A
  // failure here never blocks recovery — the next open retries.
  for (const std::string& name : fs_.list(config_.data_dir)) {
    const auto snap = parse_snapshot_name(name);
    const auto wal = parse_wal_name(name);
    const bool stale = (snap && *snap != live_seq) || (wal && *wal != live_seq) ||
                       name == "snapshot.tmp";
    if (!stale) continue;
    try {
      fs_.remove(dir_path(name));
    } catch (const IoError&) {
    }
  }
  try {
    fs_.sync_dir(config_.data_dir);
  } catch (const IoError&) {
  }
}

}  // namespace hxrc::storage
