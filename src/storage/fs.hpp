// Filesystem seam for the durability subsystem.
//
// The WAL and snapshot writers never touch POSIX directly; they go through
// this narrow Fs/File interface so the recovery tests can swap in FaultFs
// (storage/fault_fs.hpp) and cut power at any byte. The real implementation
// is POSIX fds with explicit fsync — the durability contract is:
//
//   * File::sync() returns only after the file's bytes are on stable
//     storage (fsync);
//   * Fs::rename() + Fs::sync_dir() make a finished snapshot visible
//     atomically (write tmp, fsync, rename, fsync the directory).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace hxrc::storage {

/// Any filesystem failure (real or injected) surfaces as IoError; the WAL
/// layer converts it into a poisoned writer (see storage/wal.hpp).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& message) : std::runtime_error(message) {}
};

/// A writable file handle. Writes append at the current end; short writes
/// do not happen through the real implementation (it loops), only through
/// fault injection — which throws IoError after persisting the prefix.
class File {
 public:
  virtual ~File() = default;

  /// Appends `size` bytes; throws IoError on failure. A failing write may
  /// persist a prefix (that is exactly the torn-tail case recovery must
  /// tolerate).
  virtual void write(const void* data, std::size_t size) = 0;

  /// Flushes written bytes to stable storage (fsync). Throws IoError.
  virtual void sync() = 0;

  /// Bytes written through this handle plus the size at open.
  virtual std::uint64_t size() const = 0;

  /// Closes the handle (no implicit sync). Idempotent.
  virtual void close() = 0;
};

class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens (creating if absent) for appending; existing bytes are kept.
  virtual std::unique_ptr<File> open_append(const std::string& path) = 0;

  /// Creates (truncating) for writing.
  virtual std::unique_ptr<File> create(const std::string& path) = 0;

  /// Reads a whole file; throws IoError when absent/unreadable.
  virtual std::string read_file(const std::string& path) = 0;

  virtual bool exists(const std::string& path) = 0;

  /// Atomic replace (POSIX rename semantics).
  virtual void rename(const std::string& from, const std::string& to) = 0;

  virtual void remove(const std::string& path) = 0;

  /// Shrinks a file to `size` bytes (discarding a torn WAL tail).
  virtual void truncate(const std::string& path, std::uint64_t size) = 0;

  /// File names (not paths) in `dir`, sorted; creates `dir` when absent.
  virtual std::vector<std::string> list(const std::string& dir) = 0;

  /// Creates `dir` (and parents) when absent.
  virtual void create_dirs(const std::string& dir) = 0;

  /// fsyncs the directory so renames/creates within it are durable.
  virtual void sync_dir(const std::string& dir) = 0;
};

/// The process-wide POSIX filesystem.
Fs& real_fs();

}  // namespace hxrc::storage
