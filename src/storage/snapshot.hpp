// Snapshot writer/loader for the durability subsystem.
//
// A snapshot is the whole catalog state (registry, annotated-schema-derived
// definitions, shredded tables, ordering tables, collections, CLOB store,
// same-sibling counters, version epoch) in the format-2 catalog stream
// (MetadataCatalog::save_binary), wrapped for crash safety:
//
//   file    := "HXSNAP 1\n" payload trailer
//   trailer := "HXSNAPOK" u32 crc32c(header + payload)
//
// Snapshots are written to `snapshot.tmp`, fsynced, renamed to
// `snapshot.<seq>.hxs`, and the directory fsynced — so a file under its
// final name is complete, and the trailer CRC additionally guards against
// byte rot. The WAL that pairs with snapshot seq is `wal.<seq>.log`; a
// checkpoint truncates the log behind the snapshot by starting a fresh
// `wal.<seq+1>.log` and deleting the superseded pair.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/catalog.hpp"
#include "storage/fs.hpp"
#include "util/metrics.hpp"

namespace hxrc::storage {

class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& message) : std::runtime_error(message) {}
};

/// File names inside a data directory.
std::string snapshot_name(std::uint64_t seq);
std::string wal_name(std::uint64_t seq);

/// Sequence number of a `snapshot.<seq>.hxs` / `wal.<seq>.log` file name;
/// nullopt for anything else (tmp files, strangers).
std::optional<std::uint64_t> parse_snapshot_name(std::string_view name);
std::optional<std::uint64_t> parse_wal_name(std::string_view name);

/// Serializes the catalog into snapshot bytes (header + payload + trailer).
/// With `locked`, the caller already holds the catalog's shared lock (the
/// checkpoint path, which must fence WAL rotation); otherwise the catalog
/// locks internally.
std::string encode_snapshot(const core::MetadataCatalog& catalog, bool locked);

/// True when `bytes` is a complete snapshot with a matching trailer CRC.
bool snapshot_valid(std::string_view bytes);

/// Restores a catalog from snapshot bytes. Call snapshot_valid first —
/// restore mutates the catalog, so feeding it a torn file is not
/// recoverable. Throws SnapshotError on structural mismatch.
void load_snapshot(core::MetadataCatalog& catalog, std::string_view bytes);

/// Durably writes snapshot `seq` into `dir` (tmp + fsync + rename +
/// directory fsync). Updates `metrics` when non-null.
void write_snapshot_file(Fs& fs, const std::string& dir, std::uint64_t seq,
                         std::string_view bytes, util::DurabilityMetrics* metrics);

}  // namespace hxrc::storage
