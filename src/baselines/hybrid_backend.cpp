#include "baselines/hybrid_backend.hpp"

#include "core/response.hpp"

namespace hxrc::baselines {

core::PartitionAnnotations HybridBackend::annotations_of(const core::Partition& partition) {
  core::PartitionAnnotations annotations;
  annotations.convention = partition.convention();
  for (const core::AttributeRootInfo& root : partition.attribute_roots()) {
    annotations.attributes.push_back(
        core::AttributeAnnotation{root.path, root.dynamic, root.queryable});
  }
  return annotations;
}

HybridBackend::HybridBackend(const core::Partition& partition)
    : catalog_(partition.schema(), annotations_of(partition),
               core::CatalogConfig{
                   .shred = core::ShredOptions{.auto_define_dynamic = true,
                                               .auto_define_visibility =
                                                   core::Visibility::kAdmin},
                   .engine = {}}) {}

ObjectId HybridBackend::ingest(const xml::Document& doc, const std::string& owner) {
  return catalog_.ingest(doc, "object", owner);
}

std::vector<ObjectId> HybridBackend::query(const core::ObjectQuery& q) const {
  return catalog_.query(q);
}

std::string HybridBackend::reconstruct(ObjectId id) const {
  return core::ResponseBuilder(catalog_.partition(), catalog_.database())
      .build_document(id);
}

std::size_t HybridBackend::storage_bytes() const {
  return catalog_.database().approx_bytes();
}

}  // namespace hxrc::baselines
