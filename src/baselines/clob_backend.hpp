// Pure-CLOB baseline: whole-document storage, scan-and-parse queries.
//
// Models the document-store / native-XML economics the paper's group
// measured against Xindice [7], and the DB2 "XML Column" / Oracle CLOB
// default storage [21][22]: retrieval of the original document is free, but
// every query must parse and evaluate every stored document.
#pragma once

#include "baselines/backend.hpp"
#include "baselines/dom_matcher.hpp"
#include "rel/clob_store.hpp"

namespace hxrc::baselines {

class ClobBackend final : public MetadataBackend {
 public:
  explicit ClobBackend(const core::Partition& partition)
      : partition_(partition), matcher_(partition) {}

  std::string name() const override { return "clob"; }

  ObjectId ingest(const xml::Document& doc, const std::string& owner) override;
  std::vector<ObjectId> query(const core::ObjectQuery& q) const override;
  std::string reconstruct(ObjectId id) const override;
  std::size_t storage_bytes() const override { return store_.payload_bytes(); }
  std::size_t object_count() const override { return store_.count(); }

 private:
  const core::Partition& partition_;
  DomMatcher matcher_;
  rel::ClobStore store_;
};

}  // namespace hxrc::baselines
