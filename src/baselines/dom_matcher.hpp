// Reference (oracle) evaluation of metadata-attribute queries over a DOM.
//
// Defines the query semantics all backends implement, evaluated directly on
// a parsed document: an object matches when for every top-level AttrQuery
// there exists a matching attribute instance. Structural instances are the
// subtrees at the partition's attribute-root paths; dynamic instances are
// identified by the name/source values per the partition's
// DynamicConvention. Sub-attribute criteria match at any nesting depth
// below the parent instance.
//
// The pure-CLOB backend uses this matcher for every stored document (that
// is its cost model); tests use it as the executable oracle for the other
// three backends.
#pragma once

#include "core/partition.hpp"
#include "core/query.hpp"
#include "xml/dom.hpp"

namespace hxrc::baselines {

class DomMatcher {
 public:
  explicit DomMatcher(const core::Partition& partition) : partition_(partition) {}

  /// True when the document satisfies the whole query.
  bool matches(const xml::Document& doc, const core::ObjectQuery& query) const;

  /// True when the document contains an instance satisfying one attribute
  /// criterion.
  bool matches_attr(const xml::Document& doc, const core::AttrQuery& attr) const;

 private:
  struct Instance {
    const core::AttributeRootInfo* root;
    const xml::Node* node;
  };

  std::vector<Instance> collect_instances(const xml::Node& node,
                                          const xml::SchemaNode& schema_node) const;

  bool instance_matches(const Instance& instance, const core::AttrQuery& attr) const;
  bool structural_matches(const xml::Node& node, const core::AttrQuery& attr) const;
  bool dynamic_matches(const xml::Node& node, const core::AttrQuery& attr) const;
  bool dynamic_item_matches(const xml::Node& item, const core::AttrQuery& attr) const;

  bool element_satisfied_structural(const xml::Node& node,
                                    const core::ElementPredicate& pred) const;
  bool element_satisfied_dynamic(const xml::Node& node,
                                 const core::ElementPredicate& pred) const;

  const core::Partition& partition_;
};

}  // namespace hxrc::baselines
