#include "baselines/inlining_backend.hpp"

#include <algorithm>

#include "util/string_util.hpp"
#include "xml/matcher.hpp"
#include "xml/writer.hpp"

namespace hxrc::baselines {

namespace {

// Fixed column layout of every fragment table.
constexpr std::size_t kRowIdCol = 0;
constexpr std::size_t kDocCol = 1;
constexpr std::size_t kParentFragCol = 2;
constexpr std::size_t kParentRowCol = 3;
constexpr std::size_t kOrdCol = 4;
constexpr std::size_t kFirstLeafCol = 5;  // also `value` for leaf fragments

bool value_satisfies(const std::string& text, const core::ElementPredicate& pred) {
  if (pred.exists_only) return true;
  return xml::compare_values(text, pred.op, pred.value.to_string());
}

std::string column_name(const std::string& rel_path) {
  std::string out = rel_path;
  std::replace(out.begin(), out.end(), '/', '_');
  return out;
}

/// Navigates a slash path from a DOM node; returns all nodes at the final
/// segment (intermediate segments are single-instance by construction).
std::vector<const xml::Node*> nodes_at(const xml::Node& from, const std::string& rel_path) {
  const auto segments = util::split(rel_path, '/');
  std::vector<const xml::Node*> current{&from};
  for (const auto segment : segments) {
    std::vector<const xml::Node*> next;
    for (const xml::Node* node : current) {
      for (const xml::Node* child : node->children_named(segment)) {
        next.push_back(child);
      }
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace

InliningBackend::InliningBackend(const core::Partition& partition)
    : partition_(partition) {
  compile_fragment(partition.schema().root());
  // Create the tables and indexes after compilation (fragment set is final).
  for (Fragment& fragment : fragments_) {
    rel::TableSchema schema{{"row_id", rel::Type::kInt},
                            {"doc", rel::Type::kInt},
                            {"parent_frag", rel::Type::kInt},
                            {"parent_row", rel::Type::kInt},
                            {"ord", rel::Type::kInt}};
    if (fragment.leaf_value) {
      schema.add(rel::Column{"value", rel::Type::kString});
    } else {
      for (const InlinedLeaf& leaf : fragment.leaves) {
        schema.add(rel::Column{leaf.column, rel::Type::kString});
      }
    }
    rel::Table& table = db_.create_table(fragment.table, std::move(schema));
    table.create_hash_index("idx_doc", {"doc"});
    table.create_hash_index("idx_parent", {"parent_frag", "parent_row"});
  }
  next_row_.assign(fragments_.size(), 0);
}

std::size_t InliningBackend::compile_fragment(const xml::SchemaNode& node) {
  const std::size_t index = fragments_.size();
  fragments_.push_back(Fragment{});
  fragment_of_[&node] = index;
  fragments_[index].root = &node;
  fragments_[index].table = "frag_" + std::to_string(index) + "_" + node.name();
  if (node.is_leaf()) {
    fragments_[index].leaf_value = true;
  } else {
    compile_region(fragments_[index], node, "");
  }
  if (node.recursive()) {
    // The recursive element contains instances of itself as direct children.
    fragments_[index].children.push_back(ChildFragment{node.name(), index});
  }
  return index;
}

void InliningBackend::compile_region(Fragment& fragment, const xml::SchemaNode& node,
                                     const std::string& prefix) {
  // compile_fragment may reallocate fragments_, invalidating `fragment`;
  // re-derive the stable index up front and access through it after any
  // nested compilation.
  const std::size_t self_index = static_cast<std::size_t>(&fragment - fragments_.data());
  for (const auto& child : node.children()) {
    const std::string rel_path = prefix.empty() ? child->name() : prefix + "/" + child->name();
    if (child->repeatable() || child->recursive()) {
      const std::size_t frag_index = compile_fragment(*child);
      fragments_[self_index].children.push_back(ChildFragment{rel_path, frag_index});
      continue;
    }
    if (child->is_leaf()) {
      fragments_[self_index].leaves.push_back(
          InlinedLeaf{rel_path, column_name(rel_path), child.get()});
      continue;
    }
    compile_region(fragments_[self_index], *child, rel_path);
  }
}

std::int64_t InliningBackend::insert_fragment(std::size_t frag_index, const xml::Node& node,
                                              ObjectId doc, std::int64_t parent_frag,
                                              std::int64_t parent_row, std::int64_t ord) {
  const Fragment& fragment = fragments_[frag_index];
  rel::Table& table = db_.require_table(fragment.table);
  const std::int64_t row_id = next_row_[frag_index]++;

  rel::Row row{rel::Value(row_id), rel::Value(doc), rel::Value(parent_frag),
               rel::Value(parent_row), rel::Value(ord)};
  if (fragment.leaf_value) {
    row.push_back(rel::Value(node.text_content()));
  } else {
    for (const InlinedLeaf& leaf : fragment.leaves) {
      const auto found = nodes_at(node, leaf.rel_path);
      row.push_back(found.empty() ? rel::Value::null()
                                  : rel::Value(found.front()->text_content()));
    }
  }
  table.append(std::move(row));

  // Child fragments: one row per instance, ordered among siblings.
  for (const ChildFragment& child : fragment.children) {
    std::int64_t child_ord = 0;
    for (const xml::Node* instance : nodes_at(node, child.rel_path)) {
      insert_fragment(child.fragment, *instance, doc, static_cast<std::int64_t>(frag_index),
                      row_id, child_ord++);
    }
  }
  return row_id;
}

ObjectId InliningBackend::ingest(const xml::Document& doc, const std::string& owner) {
  (void)owner;
  const ObjectId id = next_doc_++;
  insert_fragment(0, *doc.root, id, /*parent_frag=*/-1, /*parent_row=*/-1, /*ord=*/0);
  return id;
}

std::vector<rel::RowId> InliningBackend::child_rows(std::size_t child_frag,
                                                    std::int64_t parent_frag,
                                                    std::int64_t parent_row) const {
  const rel::Table& table = db_.require_table(fragments_[child_frag].table);
  const rel::Index* index = table.index("idx_parent");
  return index->lookup(rel::Key{{rel::Value(parent_frag), rel::Value(parent_row)}});
}

bool InliningBackend::row_matches_structural(std::size_t frag_index, const rel::Row& row,
                                             const std::string& prefix,
                                             const core::AttrQuery& attr) const {
  const Fragment& fragment = fragments_[frag_index];

  auto find_leaf = [&](const std::string& rel_path) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < fragment.leaves.size(); ++i) {
      if (fragment.leaves[i].rel_path == rel_path) return kFirstLeafCol + i;
    }
    return std::nullopt;
  };
  auto find_child_fragment = [&](const std::string& rel_path) -> std::optional<std::size_t> {
    for (const ChildFragment& child : fragment.children) {
      if (child.rel_path == rel_path) return child.fragment;
    }
    return std::nullopt;
  };

  for (const core::ElementPredicate& pred : attr.elements()) {
    bool satisfied = false;
    const std::string rel_path = prefix.empty() ? pred.name : prefix + "/" + pred.name;

    // Attribute-element on a leaf fragment (the row itself holds the value).
    if (fragment.leaf_value && prefix.empty() && fragment.root->name() == pred.name) {
      satisfied = value_satisfies(row[kFirstLeafCol].as_string(), pred);
    }
    // Inlined leaf column.
    if (!satisfied) {
      if (const auto col = find_leaf(rel_path)) {
        satisfied = !row[*col].is_null() && value_satisfies(row[*col].as_string(), pred);
      }
    }
    // Repeatable leaf: child leaf fragment — one join.
    if (!satisfied) {
      if (const auto child_frag = find_child_fragment(rel_path)) {
        const rel::Table& child_table = db_.require_table(fragments_[*child_frag].table);
        for (const rel::RowId id : child_rows(*child_frag,
                                              static_cast<std::int64_t>(frag_index),
                                              row[kRowIdCol].as_int())) {
          const rel::Row& child_row = child_table.row(id);
          if (value_satisfies(child_row[kFirstLeafCol].as_string(), pred)) {
            satisfied = true;
            break;
          }
        }
      }
    }
    if (!satisfied) return false;
  }

  for (const core::AttrQuery& sub : attr.sub_attributes()) {
    if (!sub.source().empty()) return false;
    const std::string rel_path = prefix.empty() ? sub.name() : prefix + "/" + sub.name();
    bool found = false;
    if (const auto child_frag = find_child_fragment(rel_path)) {
      // Repeatable sub-attribute: its own fragment — one join per candidate.
      const rel::Table& child_table = db_.require_table(fragments_[*child_frag].table);
      for (const rel::RowId id : child_rows(*child_frag,
                                            static_cast<std::int64_t>(frag_index),
                                            row[kRowIdCol].as_int())) {
        if (row_matches_structural(*child_frag, child_table.row(id), "", sub)) {
          found = true;
          break;
        }
      }
    } else {
      // Inlined sub-attribute: same row, deeper prefix. Presence means at
      // least one of its inlined leaves is non-NULL.
      bool present = false;
      for (std::size_t i = 0; i < fragment.leaves.size(); ++i) {
        if (util::starts_with(fragment.leaves[i].rel_path, rel_path + "/") &&
            !row[kFirstLeafCol + i].is_null()) {
          present = true;
          break;
        }
      }
      if (present && row_matches_structural(frag_index, row, rel_path, sub)) found = true;
    }
    if (!found) return false;
  }
  return true;
}

bool InliningBackend::row_matches_dynamic(std::size_t frag_index, const rel::Row& row,
                                          const core::AttrQuery& attr) const {
  const core::DynamicConvention& c = partition_.convention();
  const Fragment& fragment = fragments_[frag_index];

  // Locate the recursive item fragment below this fragment.
  std::optional<std::size_t> item_frag;
  for (const ChildFragment& child : fragment.children) {
    if (child.rel_path == c.item_tag) item_frag = child.fragment;
  }
  if (!item_frag) return attr.elements().empty() && attr.sub_attributes().empty();

  const Fragment& items = fragments_[*item_frag];
  const rel::Table& item_table = db_.require_table(items.table);
  auto item_leaf = [&](const std::string& name) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < items.leaves.size(); ++i) {
      if (items.leaves[i].rel_path == name) return kFirstLeafCol + i;
    }
    return std::nullopt;
  };
  const auto name_col = item_leaf(c.item_name);
  const auto source_col = item_leaf(c.item_source);
  const auto value_col = item_leaf(c.item_value);
  if (!name_col) return false;

  auto leaf_text = [&](const rel::Row& item_row,
                       const std::optional<std::size_t>& col) -> std::string {
    if (!col || item_row[*col].is_null()) return {};
    return item_row[*col].as_string();
  };
  auto has_sub_items = [&](const rel::Row& item_row) {
    return !child_rows(*item_frag, static_cast<std::int64_t>(*item_frag),
                       item_row[kRowIdCol].as_int())
                .empty();
  };

  const std::vector<rel::RowId> my_items = child_rows(
      *item_frag, static_cast<std::int64_t>(frag_index), row[kRowIdCol].as_int());

  for (const core::ElementPredicate& pred : attr.elements()) {
    bool satisfied = false;
    for (const rel::RowId id : my_items) {
      const rel::Row& item_row = item_table.row(id);
      if (leaf_text(item_row, name_col) != pred.name) continue;
      if (!pred.source.empty() && leaf_text(item_row, source_col) != pred.source) continue;
      if (has_sub_items(item_row)) continue;  // sub-attribute, not an element
      if (value_satisfies(leaf_text(item_row, value_col), pred)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }

  for (const core::AttrQuery& sub : attr.sub_attributes()) {
    bool found = false;
    for (const rel::RowId id : my_items) {
      const rel::Row& item_row = item_table.row(id);
      if (leaf_text(item_row, name_col) != sub.name()) continue;
      if (!sub.source().empty() && leaf_text(item_row, source_col) != sub.source()) continue;
      if (!has_sub_items(item_row)) continue;
      if (row_matches_dynamic(*item_frag, item_row, sub)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::vector<ObjectId> InliningBackend::query(const core::ObjectQuery& q) const {
  std::vector<std::vector<ObjectId>> per_attr;
  for (const core::AttrQuery& attr : q.attributes()) {
    std::vector<ObjectId> docs;
    for (const core::AttributeRootInfo& root : partition_.attribute_roots()) {
      if (!root.queryable) continue;
      if (root.dynamic) {
        const auto frag_it = fragment_of_.find(root.schema_node);
        if (frag_it == fragment_of_.end()) continue;
        const Fragment& fragment = fragments_[frag_it->second];
        const rel::Table& table = db_.require_table(fragment.table);
        const core::DynamicConvention& c = partition_.convention();
        const std::string name_path = c.def_container + "/" + c.def_name;
        const std::string source_path = c.def_container + "/" + c.def_source;
        std::optional<std::size_t> name_col;
        std::optional<std::size_t> source_col;
        for (std::size_t i = 0; i < fragment.leaves.size(); ++i) {
          if (fragment.leaves[i].rel_path == name_path) name_col = kFirstLeafCol + i;
          if (fragment.leaves[i].rel_path == source_path) source_col = kFirstLeafCol + i;
        }
        if (!name_col || !source_col) continue;
        for (const rel::Row& row : table.rows()) {
          if (row[*name_col].is_null() ||
              row[*name_col].as_string() != attr.name()) {
            continue;
          }
          const std::string source =
              row[*source_col].is_null() ? std::string{} : row[*source_col].as_string();
          if (source != attr.source()) continue;
          if (row_matches_dynamic(frag_it->second, row, attr)) {
            docs.push_back(row[kDocCol].as_int());
          }
        }
        continue;
      }
      if (root.tag != attr.name() || !attr.source().empty()) continue;
      const auto frag_it = fragment_of_.find(root.schema_node);
      if (frag_it != fragment_of_.end()) {
        // The attribute root is a fragment root (repeatable attribute).
        const rel::Table& table = db_.require_table(fragments_[frag_it->second].table);
        for (const rel::Row& row : table.rows()) {
          if (row_matches_structural(frag_it->second, row, "", attr)) {
            docs.push_back(row[kDocCol].as_int());
          }
        }
      } else {
        // Inlined into the document-root fragment (ancestors are never
        // repeatable, so the enclosing fragment is always fragment 0).
        std::string prefix = root.path;  // path from the schema root
        const rel::Table& table = db_.require_table(fragments_[0].table);
        for (const rel::Row& row : table.rows()) {
          if (row_matches_structural(0, row, prefix, attr)) {
            docs.push_back(row[kDocCol].as_int());
          }
        }
      }
    }
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
    per_attr.push_back(std::move(docs));
  }
  if (per_attr.empty()) return {};
  std::vector<ObjectId> out = per_attr.front();
  for (std::size_t i = 1; i < per_attr.size(); ++i) {
    std::vector<ObjectId> merged;
    std::set_intersection(out.begin(), out.end(), per_attr[i].begin(), per_attr[i].end(),
                          std::back_inserter(merged));
    out = std::move(merged);
  }
  return out;
}

void InliningBackend::emit_region(std::string& out, std::size_t frag_index,
                                  const rel::Row& row, const xml::SchemaNode& node,
                                  const std::string& prefix) const {
  const Fragment& fragment = fragments_[frag_index];
  for (const auto& child : node.children()) {
    const std::string rel_path =
        prefix.empty() ? child->name() : prefix + "/" + child->name();
    if (child->repeatable() || child->recursive()) {
      // Child fragment rows, in sibling order.
      for (const ChildFragment& link : fragment.children) {
        if (link.rel_path != rel_path) continue;
        const rel::Table& child_table = db_.require_table(fragments_[link.fragment].table);
        std::vector<rel::RowId> ids = child_rows(
            link.fragment, static_cast<std::int64_t>(frag_index), row[kRowIdCol].as_int());
        std::sort(ids.begin(), ids.end(), [&](rel::RowId a, rel::RowId b) {
          return child_table.row(a)[kOrdCol].as_int() < child_table.row(b)[kOrdCol].as_int();
        });
        for (const rel::RowId id : ids) {
          emit_fragment(out, link.fragment, child_table.row(id));
        }
      }
      continue;
    }
    if (child->is_leaf()) {
      for (std::size_t i = 0; i < fragment.leaves.size(); ++i) {
        if (fragment.leaves[i].rel_path != rel_path) continue;
        const rel::Value& value = row[kFirstLeafCol + i];
        if (!value.is_null()) {
          xml::append_open_tag(out, child->name(), {});
          out += xml::escape_text(value.as_string());
          xml::append_close_tag(out, child->name());
        }
      }
      continue;
    }
    // Inlined interior: emit only when it has any content below.
    std::string inner;
    emit_region(inner, frag_index, row, *child, rel_path);
    if (!inner.empty()) {
      xml::append_open_tag(out, child->name(), {});
      out += inner;
      xml::append_close_tag(out, child->name());
    }
  }
}

void InliningBackend::emit_fragment(std::string& out, std::size_t frag_index,
                                    const rel::Row& row) const {
  const Fragment& fragment = fragments_[frag_index];
  xml::append_open_tag(out, fragment.root->name(), {});
  if (fragment.leaf_value) {
    out += xml::escape_text(row[kFirstLeafCol].as_string());
  } else {
    emit_region(out, frag_index, row, *fragment.root, "");
  }
  if (fragment.root->recursive()) {
    // Nested instances of the recursive element come after the region.
    const rel::Table& table = db_.require_table(fragment.table);
    std::vector<rel::RowId> ids = child_rows(
        frag_index, static_cast<std::int64_t>(frag_index), row[kRowIdCol].as_int());
    std::sort(ids.begin(), ids.end(), [&](rel::RowId a, rel::RowId b) {
      return table.row(a)[kOrdCol].as_int() < table.row(b)[kOrdCol].as_int();
    });
    for (const rel::RowId id : ids) {
      emit_fragment(out, frag_index, table.row(id));
    }
  }
  xml::append_close_tag(out, fragment.root->name());
}

std::string InliningBackend::reconstruct(ObjectId id) const {
  const rel::Table& root_table = db_.require_table(fragments_[0].table);
  const rel::Index* by_doc = root_table.index("idx_doc");
  const auto rows = by_doc->lookup(rel::Key{{rel::Value(id)}});
  if (rows.empty()) return {};
  std::string out;
  emit_fragment(out, 0, root_table.row(rows.front()));
  return out;
}

}  // namespace hxrc::baselines
