#include "baselines/edge_backend.hpp"

#include <algorithm>
#include <map>

#include "util/string_util.hpp"
#include "xml/matcher.hpp"
#include "xml/writer.hpp"

namespace hxrc::baselines {

namespace {
constexpr std::size_t kDocCol = 0;
constexpr std::size_t kNodeCol = 1;
constexpr std::size_t kParentCol = 2;
constexpr std::size_t kOrdCol = 3;
constexpr std::size_t kTagCol = 4;
constexpr std::size_t kValueCol = 5;

bool value_satisfies(const std::string& text, const core::ElementPredicate& pred) {
  if (pred.exists_only) return true;
  return xml::compare_values(text, pred.op, pred.value.to_string());
}
}  // namespace

EdgeBackend::EdgeBackend(const core::Partition& partition) : partition_(partition) {
  using rel::Type;
  edges_ = &db_.create_table("edges", rel::TableSchema{{"doc", Type::kInt},
                                                       {"node", Type::kInt},
                                                       {"parent", Type::kInt},
                                                       {"ord", Type::kInt},
                                                       {"tag", Type::kString},
                                                       {"value", Type::kString},
                                                       {"value_num", Type::kDouble}});
  by_tag_ = edges_->create_hash_index("idx_tag", {"tag"});
  by_parent_ = edges_->create_hash_index("idx_parent", {"parent"});
  by_node_ = edges_->create_hash_index("idx_node", {"node"});
  by_doc_ = edges_->create_hash_index("idx_doc", {"doc"});
}

std::int64_t EdgeBackend::insert_subtree(const xml::Node& node, ObjectId doc,
                                         std::int64_t parent, std::int64_t ord) {
  const std::int64_t id = next_node_++;
  bool has_element_children = false;
  for (const xml::Node* child : node.children()) {
    if (child->is_element()) {
      has_element_children = true;
      break;
    }
  }
  rel::Value text = rel::Value::null();
  rel::Value numeric = rel::Value::null();
  if (!has_element_children) {
    std::string scratch;
    const std::string_view content = node.text_view(scratch);
    text = rel::Value(std::string(content));
    if (const auto v = util::parse_double(content)) numeric = rel::Value(*v);
  }
  // Tag names repeat on every row of the edge table — dictionary-encode
  // them so the per-document footprint carries each tag string once.
  edges_->append(rel::Row{rel::Value(doc), rel::Value(id), rel::Value(parent),
                          rel::Value(ord),
                          rel::Value::interned(db_.interner().intern(node.name())),
                          std::move(text), std::move(numeric)});
  std::int64_t child_ord = 0;
  for (const xml::Node* child : node.children()) {
    if (child->is_element()) insert_subtree(*child, doc, id, child_ord++);
  }
  return id;
}

ObjectId EdgeBackend::ingest(const xml::Document& doc, const std::string& owner) {
  (void)owner;
  const ObjectId id = next_doc_++;
  insert_subtree(*doc.root, id, /*parent=*/-1, /*ord=*/0);
  return id;
}

std::vector<rel::RowId> EdgeBackend::children_of(std::int64_t node) const {
  ++probes_;
  return by_parent_->lookup(rel::Key{{rel::Value(node)}});
}

std::string EdgeBackend::child_value(std::int64_t node, const std::string& tag) const {
  for (const rel::RowId id : children_of(node)) {
    const rel::Row& row = edges_->row(id);
    if (row[kTagCol].as_string() == tag && !row[kValueCol].is_null()) {
      return row[kValueCol].as_string();
    }
  }
  return {};
}

bool EdgeBackend::path_matches(std::int64_t node, const std::string& path) const {
  // Verify the chain of ancestor tags matches the attribute-root path, one
  // parent self-join per step (the edge-table tax on schema positions).
  const auto segments = util::split(path, '/');
  std::int64_t current = node;
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    ++probes_;
    const auto rows = by_node_->lookup(rel::Key{{rel::Value(current)}});
    if (rows.empty()) return false;
    const rel::Row& row = edges_->row(rows.front());
    if (row[kTagCol].as_string() != *it) return false;
    current = row[kParentCol].as_int();
  }
  // `current` must now be the document root's parent sentinel... one more
  // probe to confirm we consumed the full path up to the schema root.
  ++probes_;
  const auto rows = by_node_->lookup(rel::Key{{rel::Value(current)}});
  if (rows.empty()) return false;
  const rel::Row& root_row = edges_->row(rows.front());
  return root_row[kParentCol].as_int() == -1 &&
         root_row[kTagCol].as_string() == partition_.schema().root().name();
}

bool EdgeBackend::structural_matches(std::int64_t node, const core::AttrQuery& attr) const {
  for (const core::ElementPredicate& pred : attr.elements()) {
    bool satisfied = false;
    // Attribute-element: the node itself carries the value.
    {
      ++probes_;
      const auto self_rows = by_node_->lookup(rel::Key{{rel::Value(node)}});
      if (!self_rows.empty()) {
        const rel::Row& row = edges_->row(self_rows.front());
        if (!row[kValueCol].is_null() && row[kTagCol].as_string() == pred.name &&
            value_satisfies(row[kValueCol].as_string(), pred)) {
          satisfied = true;
        }
      }
    }
    if (!satisfied) {
      for (const rel::RowId id : children_of(node)) {
        const rel::Row& row = edges_->row(id);
        if (row[kTagCol].as_string() != pred.name || row[kValueCol].is_null()) continue;
        if (value_satisfies(row[kValueCol].as_string(), pred)) {
          satisfied = true;
          break;
        }
      }
    }
    if (!satisfied) return false;
  }
  for (const core::AttrQuery& sub : attr.sub_attributes()) {
    if (!sub.source().empty()) return false;  // structural content has no sources
    bool found = false;
    for (const rel::RowId id : children_of(node)) {
      const rel::Row& row = edges_->row(id);
      if (row[kTagCol].as_string() != sub.name()) continue;
      if (!row[kValueCol].is_null()) continue;  // leaf, not a sub-attribute
      if (structural_matches(row[kNodeCol].as_int(), sub)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool EdgeBackend::dynamic_matches(std::int64_t node, const core::AttrQuery& attr) const {
  const core::DynamicConvention& c = partition_.convention();
  for (const core::ElementPredicate& pred : attr.elements()) {
    bool satisfied = false;
    for (const rel::RowId id : children_of(node)) {
      const rel::Row& row = edges_->row(id);
      if (row[kTagCol].as_string() != c.item_tag) continue;
      const std::int64_t item = row[kNodeCol].as_int();
      if (child_value(item, c.item_name) != pred.name) continue;
      if (!pred.source.empty() && child_value(item, c.item_source) != pred.source) continue;
      // An element item has no nested items.
      bool has_sub_items = false;
      for (const rel::RowId cid : children_of(item)) {
        if (edges_->row(cid)[kTagCol].as_string() == c.item_tag) {
          has_sub_items = true;
          break;
        }
      }
      if (has_sub_items) continue;
      if (value_satisfies(child_value(item, c.item_value), pred)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  for (const core::AttrQuery& sub : attr.sub_attributes()) {
    bool found = false;
    for (const rel::RowId id : children_of(node)) {
      const rel::Row& row = edges_->row(id);
      if (row[kTagCol].as_string() != c.item_tag) continue;
      const std::int64_t item = row[kNodeCol].as_int();
      if (child_value(item, c.item_name) != sub.name()) continue;
      if (!sub.source().empty() && child_value(item, c.item_source) != sub.source()) continue;
      bool has_sub_items = false;
      for (const rel::RowId cid : children_of(item)) {
        if (edges_->row(cid)[kTagCol].as_string() == c.item_tag) {
          has_sub_items = true;
          break;
        }
      }
      if (!has_sub_items) continue;
      if (dynamic_matches(item, sub)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::vector<ObjectId> EdgeBackend::query(const core::ObjectQuery& q) const {
  probes_ = 0;
  std::vector<ObjectId> out;

  // Per top-level criterion: candidate nodes by tag, path verification,
  // then recursive child probing — each step costs self-joins.
  std::vector<std::vector<ObjectId>> per_attr;
  for (const core::AttrQuery& attr : q.attributes()) {
    std::vector<ObjectId> docs;
    for (const core::AttributeRootInfo& root : partition_.attribute_roots()) {
      if (!root.queryable) continue;
      const bool name_matches =
          root.dynamic || (root.tag == attr.name() && attr.source().empty());
      if (!name_matches) continue;
      ++probes_;
      for (const rel::RowId id : by_tag_->lookup(rel::Key{{rel::Value(root.tag)}})) {
        const rel::Row& row = edges_->row(id);
        const std::int64_t node = row[kNodeCol].as_int();
        if (!path_matches(node, root.path)) continue;
        if (root.dynamic) {
          const core::DynamicConvention& c = partition_.convention();
          // Identity check through the definition container.
          std::int64_t container = -1;
          for (const rel::RowId cid : children_of(node)) {
            if (edges_->row(cid)[kTagCol].as_string() == c.def_container) {
              container = edges_->row(cid)[kNodeCol].as_int();
              break;
            }
          }
          if (container < 0) continue;
          if (child_value(container, c.def_name) != attr.name()) continue;
          if (child_value(container, c.def_source) != attr.source()) continue;
          if (!dynamic_matches(node, attr)) continue;
        } else {
          if (!structural_matches(node, attr)) continue;
        }
        docs.push_back(row[kDocCol].as_int());
      }
    }
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
    per_attr.push_back(std::move(docs));
  }
  if (per_attr.empty()) return {};

  // Intersect the per-criterion doc sets.
  out = per_attr.front();
  for (std::size_t i = 1; i < per_attr.size(); ++i) {
    std::vector<ObjectId> merged;
    std::set_intersection(out.begin(), out.end(), per_attr[i].begin(), per_attr[i].end(),
                          std::back_inserter(merged));
    out = std::move(merged);
  }
  return out;
}

std::string EdgeBackend::reconstruct(ObjectId id) const {
  // Gather this document's edges and reassemble the tree.
  struct NodeRec {
    std::int64_t parent;
    std::int64_t ord;
    const std::string* tag;
    const rel::Value* value;
  };
  std::map<std::int64_t, NodeRec> nodes;
  std::map<std::int64_t, std::vector<std::int64_t>> children;
  std::int64_t root = -1;
  for (const rel::RowId rid : by_doc_->lookup(rel::Key{{rel::Value(id)}})) {
    const rel::Row& row = edges_->row(rid);
    const std::int64_t node = row[kNodeCol].as_int();
    const std::int64_t parent = row[kParentCol].as_int();
    nodes[node] =
        NodeRec{parent, row[kOrdCol].as_int(), &row[kTagCol].as_string(), &row[kValueCol]};
    if (parent == -1) {
      root = node;
    } else {
      children[parent].push_back(node);
    }
  }
  if (root == -1) return {};
  for (auto& [parent, kids] : children) {
    (void)parent;
    std::sort(kids.begin(), kids.end(), [&](std::int64_t a, std::int64_t b) {
      return nodes[a].ord < nodes[b].ord;
    });
  }

  std::string out;
  const auto emit = [&](auto&& self, std::int64_t node) -> void {
    const NodeRec& rec = nodes[node];
    xml::append_open_tag(out, *rec.tag, {});
    const auto kids = children.find(node);
    if (kids == children.end()) {
      if (!rec.value->is_null()) xml::append_escaped_text(out, rec.value->as_string());
    } else {
      for (const std::int64_t child : kids->second) self(self, child);
    }
    xml::append_close_tag(out, *rec.tag);
  };
  emit(emit, root);
  return out;
}

}  // namespace hxrc::baselines
