// Shared-inlining baseline (Shanmugasundaram et al. [14], [16]).
//
// The schema is compiled into fragment tables: the document root and every
// repeatable or recursive element become fragment roots; all non-repeatable
// leaves reachable without crossing a fragment boundary are inlined as
// columns (named by their path). Repeatable leaves become leaf fragments
// with a single `value` column. Recursive elements (LEAD's attr) map to a
// self-referencing fragment.
//
// This reproduces inlining's trade-offs as the paper describes them:
//  * single-table predicates on inlined columns are fast (its strength);
//  * set-valued content costs one join per fragment boundary;
//  * dynamic metadata attributes shatter across the recursive fragment and
//    need one self-join round per nesting level (§6: "dynamic metadata
//    attributes would be split into numerous tables due to the cardinality
//    issue");
//  * reconstruction re-joins the fragments and runs an external tagger, and
//    is only schema-ordered (§6 cites [20]: inlining is an unordered model).
#pragma once

#include <optional>
#include <unordered_map>

#include "baselines/backend.hpp"
#include "rel/database.hpp"
#include "xml/schema.hpp"

namespace hxrc::baselines {

class InliningBackend final : public MetadataBackend {
 public:
  explicit InliningBackend(const core::Partition& partition);

  std::string name() const override { return "inlining"; }

  ObjectId ingest(const xml::Document& doc, const std::string& owner) override;
  std::vector<ObjectId> query(const core::ObjectQuery& q) const override;
  std::string reconstruct(ObjectId id) const override;
  std::size_t storage_bytes() const override { return db_.approx_bytes(); }
  std::size_t object_count() const override { return static_cast<std::size_t>(next_doc_); }

  /// Number of fragment tables derived from the schema.
  std::size_t fragment_count() const noexcept { return fragments_.size(); }

 private:
  /// A column inlined into a fragment: the slash path from the fragment
  /// root and the schema node it came from.
  struct InlinedLeaf {
    std::string rel_path;
    std::string column;
    const xml::SchemaNode* node;
  };

  /// A nested fragment: where it hangs below this fragment root.
  struct ChildFragment {
    std::string rel_path;       // path of the child fragment root
    std::size_t fragment;       // index into fragments_
  };

  struct Fragment {
    const xml::SchemaNode* root = nullptr;
    std::string table;
    bool leaf_value = false;  // repeatable leaf: single `value` column
    std::vector<InlinedLeaf> leaves;
    std::vector<ChildFragment> children;
  };

  std::size_t compile_fragment(const xml::SchemaNode& node);
  void compile_region(Fragment& fragment, const xml::SchemaNode& node,
                      const std::string& prefix);
  std::int64_t insert_fragment(std::size_t frag_index, const xml::Node& node,
                               ObjectId doc, std::int64_t parent_frag,
                               std::int64_t parent_row, std::int64_t ord);

  // --- query evaluation ---
  bool row_matches_structural(std::size_t frag_index, const rel::Row& row,
                              const std::string& prefix,
                              const core::AttrQuery& attr) const;
  bool row_matches_dynamic(std::size_t frag_index, const rel::Row& row,
                           const core::AttrQuery& attr) const;
  /// Rows of fragment `child_frag` whose parent is (parent_frag, parent_row).
  std::vector<rel::RowId> child_rows(std::size_t child_frag, std::int64_t parent_frag,
                                     std::int64_t parent_row) const;

  // --- reconstruction ---
  void emit_fragment(std::string& out, std::size_t frag_index, const rel::Row& row) const;
  void emit_region(std::string& out, std::size_t frag_index, const rel::Row& row,
                   const xml::SchemaNode& node, const std::string& prefix) const;

  const core::Partition& partition_;
  rel::Database db_;
  std::vector<Fragment> fragments_;
  std::unordered_map<const xml::SchemaNode*, std::size_t> fragment_of_;
  ObjectId next_doc_ = 0;
  std::vector<std::int64_t> next_row_;  // per-fragment row id counters
};

}  // namespace hxrc::baselines
