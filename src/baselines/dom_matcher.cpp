#include "baselines/dom_matcher.hpp"

#include "xml/matcher.hpp"

namespace hxrc::baselines {

using core::AttrQuery;
using core::ElementPredicate;
using core::ObjectQuery;

namespace {

/// The value-comparison semantics shared by every backend: numeric when both
/// operands parse as doubles, else string comparison.
bool value_satisfies(const std::string& text, const ElementPredicate& pred) {
  if (pred.exists_only) return true;
  return xml::compare_values(text, pred.op, pred.value.to_string());
}

}  // namespace

bool DomMatcher::matches(const xml::Document& doc, const ObjectQuery& query) const {
  for (const AttrQuery& attr : query.attributes()) {
    if (!matches_attr(doc, attr)) return false;
  }
  return true;
}

bool DomMatcher::matches_attr(const xml::Document& doc, const AttrQuery& attr) const {
  if (!doc.root) return false;
  const std::vector<Instance> instances =
      collect_instances(*doc.root, partition_.schema().root());
  for (const Instance& instance : instances) {
    if (instance_matches(instance, attr)) return true;
  }
  return false;
}

std::vector<DomMatcher::Instance> DomMatcher::collect_instances(
    const xml::Node& node, const xml::SchemaNode& schema_node) const {
  std::vector<Instance> out;
  const core::OrderId order = partition_.order_of(schema_node);
  if (const core::AttributeRootInfo* root = partition_.root_at(order)) {
    out.push_back(Instance{root, &node});
    return out;
  }
  for (const xml::Node* child : node.child_elements()) {
    const xml::SchemaNode* child_schema = schema_node.child(child->name());
    if (child_schema == nullptr) continue;  // non-conforming content is unqueryable
    auto sub = collect_instances(*child, *child_schema);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

bool DomMatcher::instance_matches(const Instance& instance, const AttrQuery& attr) const {
  if (!instance.root->queryable) return false;
  if (instance.root->dynamic) {
    // Dynamic instances are identified by the name/source values in the
    // definition container (enttypl/enttypds in LEAD).
    const core::DynamicConvention& c = partition_.convention();
    const xml::Node* container = instance.node->first_child(c.def_container);
    if (container == nullptr) return false;
    if (container->child_text(c.def_name) != attr.name()) return false;
    if (container->child_text(c.def_source) != attr.source()) return false;
    return dynamic_matches(*instance.node, attr);
  }
  // Structural instances are identified by tag; sources do not apply.
  if (instance.root->tag != attr.name() || !attr.source().empty()) return false;
  return structural_matches(*instance.node, attr);
}

bool DomMatcher::structural_matches(const xml::Node& node, const AttrQuery& attr) const {
  for (const ElementPredicate& pred : attr.elements()) {
    if (!element_satisfied_structural(node, pred)) return false;
  }
  for (const AttrQuery& sub : attr.sub_attributes()) {
    bool found = false;
    for (const xml::Node* child : node.child_elements()) {
      // Structural sub-attributes are interior direct children.
      if (child->name() == sub.name() && sub.source().empty() &&
          !child->is_leaf_element() && structural_matches(*child, sub)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool DomMatcher::element_satisfied_structural(const xml::Node& node,
                                              const ElementPredicate& pred) const {
  // Attribute-element: the node itself carries the value.
  if (node.is_leaf_element() && node.name() == pred.name) {
    return value_satisfies(node.text_content(), pred);
  }
  for (const xml::Node* child : node.child_elements()) {
    if (child->name() == pred.name && child->is_leaf_element() &&
        value_satisfies(child->text_content(), pred)) {
      return true;
    }
  }
  return false;
}

bool DomMatcher::dynamic_matches(const xml::Node& node, const AttrQuery& attr) const {
  const core::DynamicConvention& c = partition_.convention();
  for (const ElementPredicate& pred : attr.elements()) {
    if (!element_satisfied_dynamic(node, pred)) return false;
  }
  for (const AttrQuery& sub : attr.sub_attributes()) {
    bool found = false;
    for (const xml::Node* item : node.children_named(c.item_tag)) {
      if (item->child_text(c.item_name) != sub.name()) continue;
      if (!sub.source().empty() && item->child_text(c.item_source) != sub.source()) {
        continue;
      }
      // A sub-attribute is an item that itself contains items.
      if (item->children_named(c.item_tag).empty()) continue;
      if (dynamic_item_matches(*item, sub)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool DomMatcher::dynamic_item_matches(const xml::Node& item, const AttrQuery& attr) const {
  return dynamic_matches(item, attr);
}

bool DomMatcher::element_satisfied_dynamic(const xml::Node& node,
                                           const ElementPredicate& pred) const {
  const core::DynamicConvention& c = partition_.convention();
  for (const xml::Node* item : node.children_named(c.item_tag)) {
    if (item->child_text(c.item_name) != pred.name) continue;
    if (!pred.source.empty() && item->child_text(c.item_source) != pred.source) continue;
    if (!item->children_named(c.item_tag).empty()) continue;  // sub-attribute, not element
    if (value_satisfies(item->child_text(c.item_value), pred)) return true;
  }
  return false;
}

}  // namespace hxrc::baselines
