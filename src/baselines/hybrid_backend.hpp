// The hybrid catalog exposed through the common backend interface, so the
// benches sweep all four storage approaches uniformly.
#pragma once

#include "baselines/backend.hpp"
#include "core/catalog.hpp"

namespace hxrc::baselines {

class HybridBackend final : public MetadataBackend {
 public:
  /// Builds a catalog over the partition's schema and annotations, with
  /// dynamic auto-definition enabled (admin level) so all backends agree on
  /// what is queryable without pre-registration.
  explicit HybridBackend(const core::Partition& partition);

  std::string name() const override { return "hybrid"; }

  ObjectId ingest(const xml::Document& doc, const std::string& owner) override;
  std::vector<ObjectId> query(const core::ObjectQuery& q) const override;
  std::string reconstruct(ObjectId id) const override;
  std::size_t storage_bytes() const override;
  std::size_t object_count() const override { return catalog_.object_count(); }

  core::MetadataCatalog& catalog() noexcept { return catalog_; }
  const core::MetadataCatalog& catalog() const noexcept { return catalog_; }

 private:
  static core::PartitionAnnotations annotations_of(const core::Partition& partition);

  core::MetadataCatalog catalog_;
};

}  // namespace hxrc::baselines
