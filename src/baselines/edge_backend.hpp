// Edge-table baseline (Florescu/Kossmann [17], also [16][18]).
//
// The document is stored as a graph: one row per element in a single table
//   edges(doc, node, parent, ord, tag, value, value_num)
// with leaf text carried in `value`. Queries navigate the graph through
// self-joins (parent/child probes); verifying that a tag occurrence sits at
// the right schema position costs one parent probe per path step, and
// recursive content (dynamic attributes) costs one join round per data
// nesting level — exactly the weaknesses the paper's inverted lists avoid
// (§4, §6). Reconstruction reassembles the tree from the edge rows.
//
// Scope note: metadata documents are data-centric — no mixed content and no
// XML attributes (the LEAD schema declares none) — so an element either has
// element children or a single text value.
#pragma once

#include "baselines/backend.hpp"
#include "rel/database.hpp"

namespace hxrc::baselines {

class EdgeBackend final : public MetadataBackend {
 public:
  explicit EdgeBackend(const core::Partition& partition);

  std::string name() const override { return "edge"; }

  ObjectId ingest(const xml::Document& doc, const std::string& owner) override;
  std::vector<ObjectId> query(const core::ObjectQuery& q) const override;
  std::string reconstruct(ObjectId id) const override;
  std::size_t storage_bytes() const override { return db_.approx_bytes(); }
  std::size_t object_count() const override { return static_cast<std::size_t>(next_doc_); }

  /// Number of parent/child table probes issued by the last query (a proxy
  /// for self-join work; read by the E3 bench).
  std::size_t last_query_probes() const noexcept { return probes_; }

 private:
  struct NodeRef {
    ObjectId doc;
    std::int64_t node;
  };

  std::int64_t insert_subtree(const xml::Node& node, ObjectId doc, std::int64_t parent,
                              std::int64_t ord);

  /// Child rows of `node` (probe on the parent index).
  std::vector<rel::RowId> children_of(std::int64_t node) const;

  bool node_matches_attr(const rel::Row& row, const core::AttrQuery& attr,
                         bool dynamic) const;
  bool structural_matches(std::int64_t node, const core::AttrQuery& attr) const;
  bool dynamic_matches(std::int64_t node, const core::AttrQuery& attr) const;
  std::string child_value(std::int64_t node, const std::string& tag) const;
  bool path_matches(std::int64_t node, const std::string& path) const;

  const core::Partition& partition_;
  rel::Database db_;
  rel::Table* edges_;
  const rel::Index* by_tag_;
  const rel::Index* by_parent_;
  const rel::Index* by_node_;
  const rel::Index* by_doc_;
  ObjectId next_doc_ = 0;
  std::int64_t next_node_ = 0;
  mutable std::size_t probes_ = 0;
};

}  // namespace hxrc::baselines
