#include "baselines/backend.hpp"

#include "baselines/clob_backend.hpp"
#include "baselines/edge_backend.hpp"
#include "baselines/hybrid_backend.hpp"
#include "baselines/inlining_backend.hpp"

namespace hxrc::baselines {

std::string_view to_string(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kHybrid: return "hybrid";
    case BackendKind::kInlining: return "inlining";
    case BackendKind::kEdge: return "edge";
    case BackendKind::kClob: return "clob";
  }
  return "?";
}

std::unique_ptr<MetadataBackend> make_backend(BackendKind kind,
                                              const core::Partition& partition) {
  switch (kind) {
    case BackendKind::kHybrid: return std::make_unique<HybridBackend>(partition);
    case BackendKind::kInlining: return std::make_unique<InliningBackend>(partition);
    case BackendKind::kEdge: return std::make_unique<EdgeBackend>(partition);
    case BackendKind::kClob: return std::make_unique<ClobBackend>(partition);
  }
  return nullptr;
}

}  // namespace hxrc::baselines
