#include "baselines/clob_backend.hpp"

#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::baselines {

ObjectId ClobBackend::ingest(const xml::Document& doc, const std::string& owner) {
  (void)owner;
  return static_cast<ObjectId>(store_.append(xml::write(doc)));
}

std::vector<ObjectId> ClobBackend::query(const core::ObjectQuery& q) const {
  std::vector<ObjectId> out;
  for (std::size_t i = 0; i < store_.count(); ++i) {
    // The cost model of this baseline: parse + evaluate every document.
    const xml::Document doc = xml::parse(store_.get(static_cast<rel::ClobId>(i)));
    if (matcher_.matches(doc, q)) out.push_back(static_cast<ObjectId>(i));
  }
  return out;
}

std::string ClobBackend::reconstruct(ObjectId id) const {
  return store_.get(static_cast<rel::ClobId>(id));
}

}  // namespace hxrc::baselines
