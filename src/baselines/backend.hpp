// Common interface over the four storage approaches compared in the paper:
//
//   hybrid    — the paper's contribution (per-attribute CLOBs + shredded
//               attribute tables + inverted lists + schema-level ordering);
//   inlining  — shared inlining into schema-derived fragment tables
//               (Shanmugasundaram et al. [14][16]);
//   edge      — a single edge table viewing the document as a graph
//               (Florescu/Kossmann [17]);
//   clob      — whole-document CLOBs, queries scan and parse every document
//               (the Xindice-like native/document store of [7]).
//
// All four answer the same metadata-attribute queries (core::ObjectQuery)
// with identical semantics, so benchmarks compare like for like and property
// tests can assert result equality.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/partition.hpp"
#include "core/query.hpp"
#include "xml/dom.hpp"

namespace hxrc::baselines {

using core::ObjectId;

class MetadataBackend {
 public:
  virtual ~MetadataBackend() = default;

  virtual std::string name() const = 0;

  /// Ingests a document; object ids are dense, starting at 0.
  virtual ObjectId ingest(const xml::Document& doc, const std::string& owner) = 0;

  /// Matching object ids, ascending.
  virtual std::vector<ObjectId> query(const core::ObjectQuery& q) const = 0;

  /// Reconstructs the stored document as tagged XML.
  virtual std::string reconstruct(ObjectId id) const = 0;

  /// Approximate storage footprint in bytes (experiment E10).
  virtual std::size_t storage_bytes() const = 0;

  virtual std::size_t object_count() const = 0;
};

/// Backend factory selector used by benches and examples.
enum class BackendKind { kHybrid, kInlining, kEdge, kClob };

std::string_view to_string(BackendKind kind) noexcept;

/// Creates a backend over a partitioned schema. All dynamic definitions are
/// auto-registered on ingest (admin level) so the backends agree on what is
/// queryable.
std::unique_ptr<MetadataBackend> make_backend(BackendKind kind,
                                              const core::Partition& partition);

}  // namespace hxrc::baselines
