// Fortran namelist files — the source of LEAD's dynamic metadata attributes.
//
// ARPS and WRF drive their forecast models with namelist files of detailed
// parameters (§3); scientists add parameters as the models evolve, which is
// why the metadata schema cannot enumerate them. This module parses the
// namelist subset those models use and converts groups into the <detailed>
// dynamic-attribute form of the LEAD schema, exercising the same ingest
// path the paper describes.
//
// Supported syntax:
//   &group_name
//     key = value[, value...],
//     derived%component = value,     ! nesting via derived-type components
//     ...                            ! '!' comments
//   /
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/partition.hpp"
#include "xml/dom.hpp"

namespace hxrc::workload {

class NamelistError : public std::runtime_error {
 public:
  explicit NamelistError(const std::string& message) : std::runtime_error(message) {}
};

struct NamelistEntry {
  /// Full key, possibly with derived-type components ("grid_stretching%dzmin").
  std::string key;
  /// One or more comma-separated values, quotes stripped.
  std::vector<std::string> values;
};

struct NamelistGroup {
  std::string name;
  std::vector<NamelistEntry> entries;
};

/// Parses a namelist file (possibly several groups).
std::vector<NamelistGroup> parse_namelist(std::string_view text);

/// Renders groups back to namelist syntax (round-trips modulo whitespace).
std::string write_namelist(const std::vector<NamelistGroup>& groups);

/// Converts one group into a <detailed> dynamic-attribute element per the
/// convention: the group name becomes the attribute name (enttypl), `model`
/// the source (enttypds); derived-type components become nested
/// sub-attributes; each scalar value becomes a metadata element.
xml::NodePtr namelist_group_to_detailed(const NamelistGroup& group,
                                        const std::string& model,
                                        const core::DynamicConvention& convention = {});

}  // namespace hxrc::workload
