// Million-object scale corpus: tier profiles and streaming ingest.
//
// The scale experiment (EXPERIMENTS.md E14) runs the same schema-faithful
// LEAD corpus at 10k, 100k, and 1M documents. Two properties are deliberate:
// the corpus is STREAMED — each document is generated, ingested, and
// discarded, so corpus size never bounds the experiment — and the per-tier
// value cardinality grows with the document count, so a (parameter, value)
// equality criterion matches a roughly constant ~100 documents at every
// tier. That keeps the indexed-query latency comparison across tiers a
// measurement of index-probe cost, not of result-set size.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "core/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/query_gen.hpp"

namespace hxrc::workload {

struct ScaleTier {
  const char* name;
  std::size_t documents;
  /// Distinct values per dynamic parameter; scaled ~linearly with the
  /// document count so per-(parameter, value) result sets stay constant.
  int value_cardinality;
};

/// The three tiers: "10k", "100k", "1m".
std::span<const ScaleTier> scale_tiers();

/// Tier by name; throws std::invalid_argument when unknown.
const ScaleTier& scale_tier(std::string_view name);

/// Generator settings for a tier: fixed seed, tier cardinality, and the
/// long eaover/eadetcit boilerplate that gives documents their CLOB heft.
GeneratorConfig scale_config(const ScaleTier& tier);

/// Generates and ingests the tier's corpus one document at a time (nothing
/// is materialized). The catalog must auto-define dynamic attributes.
/// `progress`, when set, is called after every `stride` documents.
void ingest_scale_corpus(core::MetadataCatalog& catalog, const ScaleTier& tier,
                         const std::function<void(std::size_t done)>& progress = {},
                         std::size_t stride = 10000);

/// Deterministic indexed point queries (dynamic parameter equality) drawn
/// from the tier's value range, for the latency measurements.
std::vector<core::ObjectQuery> scale_query_mix(const ScaleTier& tier,
                                               std::size_t count);

}  // namespace hxrc::workload
