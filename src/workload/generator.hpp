// Deterministic LEAD-document corpus generator.
//
// The paper's testbed data (LEAD forecast metadata with ARPS/WRF namelist
// parameters) is not available, so the generator synthesizes documents that
// exercise the same code paths: multi-instance theme keywords drawn from
// real CF conventions standard names, FGDC identification boilerplate, and
// dynamic <detailed> attributes with the real ARPS/WRF parameter names,
// nested sub-attributes, and numeric values with controllable spread (the
// selectivity knob for experiment E8).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/prng.hpp"
#include "xml/dom.hpp"

namespace hxrc::workload {

struct GeneratorConfig {
  std::uint64_t seed = 42;

  // keywords
  int themes_min = 1;
  int themes_max = 3;
  int theme_keys_min = 1;
  int theme_keys_max = 4;

  // dynamic attributes
  int detailed_min = 1;
  int detailed_max = 2;
  int params_min = 3;
  int params_max = 8;
  /// Probability that a parameter is a nested sub-attribute group instead
  /// of a scalar element.
  double sub_attr_probability = 0.25;
  /// Maximum sub-attribute nesting depth below a dynamic attribute root.
  int max_nesting = 2;

  /// Numeric parameter values are drawn from `value_cardinality` distinct
  /// values per parameter; lower cardinality = higher query selectivity.
  int value_cardinality = 16;

  /// Include the optional identification attributes (citation, status, ...).
  bool include_idinfo = true;
  bool include_geospatial = true;

  /// Emit multi-kilobyte eaover/eadetcit boilerplate in EVERY document's
  /// overview, drawn from a small pool of distinct paragraphs (the scale
  /// corpus's CLOB heft: the pool is small so the interner dedups the
  /// element values while per-document CLOB payloads stay large). Off, the
  /// overview keeps its occasional short form — existing corpora are
  /// byte-identical.
  bool long_boilerplate = false;
};

/// The shared pool of ~64 distinct 2-5KB boilerplate paragraphs.
std::span<const std::string> boilerplate_pool();

/// Vocabulary pools (exposed so the query generator draws from the same
/// distributions).
std::span<const char* const> cf_standard_names();
std::span<const char* const> model_names();           // {"ARPS", "WRF"}
std::span<const char* const> grid_group_names();      // dynamic attribute names
std::span<const char* const> parameter_names();       // dx, dzmin, ...

/// Deterministic parameter value: the v-th value of parameter `param`
/// (v in [0, value_cardinality)).
double parameter_value(std::string_view param, int v);

class DocumentGenerator {
 public:
  explicit DocumentGenerator(GeneratorConfig config = {});

  /// Generates the i-th document; same (seed, i) => same document.
  xml::Document generate(std::uint64_t index);

  /// Generates documents [0, n).
  std::vector<xml::Document> corpus(std::size_t n);

  const GeneratorConfig& config() const noexcept { return config_; }

 private:
  void add_idinfo(util::Prng& rng, xml::Node& data, std::uint64_t index);
  void add_geospatial(util::Prng& rng, xml::Node& data);
  void add_detailed(util::Prng& rng, xml::Node& eainfo);
  void add_dynamic_items(util::Prng& rng, xml::Node& parent, const std::string& model,
                         int count, int depth);

  GeneratorConfig config_;
};

}  // namespace hxrc::workload
