#include "workload/scale.hpp"

#include <stdexcept>
#include <string>

namespace hxrc::workload {

namespace {

// Default generator: ~5.5 scalar parameters per document over 24 parameter
// names, so a (parameter, value) pair matches about documents * 5.5 / (24 *
// cardinality) objects: ~140 at every tier below.
constexpr ScaleTier kTiers[] = {
    {"10k", 10'000, 16},
    {"100k", 100'000, 160},
    {"1m", 1'000'000, 1600},
};

}  // namespace

std::span<const ScaleTier> scale_tiers() { return kTiers; }

const ScaleTier& scale_tier(std::string_view name) {
  for (const ScaleTier& tier : kTiers) {
    if (name == tier.name) return tier;
  }
  throw std::invalid_argument("unknown scale tier '" + std::string(name) + "'");
}

GeneratorConfig scale_config(const ScaleTier& tier) {
  GeneratorConfig config;
  config.seed = 20060608;  // fixed: every run ingests the identical corpus
  config.value_cardinality = tier.value_cardinality;
  config.long_boilerplate = true;
  return config;
}

void ingest_scale_corpus(core::MetadataCatalog& catalog, const ScaleTier& tier,
                         const std::function<void(std::size_t done)>& progress,
                         std::size_t stride) {
  DocumentGenerator generator(scale_config(tier));
  for (std::size_t i = 0; i < tier.documents; ++i) {
    const xml::Document doc = generator.generate(i);
    catalog.ingest(doc, "lead-" + std::to_string(i), "scale");
    if (progress && stride > 0 && (i + 1) % stride == 0) progress(i + 1);
  }
}

std::vector<core::ObjectQuery> scale_query_mix(const ScaleTier& tier,
                                               std::size_t count) {
  std::vector<core::ObjectQuery> queries;
  queries.reserve(count);
  util::Prng rng(0x5ca1e0 + tier.documents);
  for (std::size_t q = 0; q < count; ++q) {
    const char* group = rng.pick(grid_group_names());
    const char* model = rng.pick(model_names());
    const char* param = rng.pick(parameter_names());
    const int v = static_cast<int>(rng.uniform(0, tier.value_cardinality - 1));
    queries.push_back(
        dynamic_param_query(group, model, param, parameter_value(param, v)));
  }
  return queries;
}

}  // namespace hxrc::workload
