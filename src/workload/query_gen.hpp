// Query workload generation.
//
// Produces metadata-attribute queries drawn from the same vocabulary as the
// document generator, so match probabilities are controllable: canned query
// shapes for the benches (theme keyword lookups, dynamic parameter
// predicates, the paper's §4 grid/grid-stretching example) and random
// queries for the cross-backend property tests.
#pragma once

#include "core/query.hpp"
#include "util/prng.hpp"
#include "workload/generator.hpp"

namespace hxrc::workload {

/// The paper's §4 example: objects with grid dx = <dx> that also have
/// grid-stretching with dzmin = <dzmin> (both from model ARPS).
core::ObjectQuery paper_example_query(double dx = 1000.0, double dzmin = 100.0);

/// Single structural criterion: objects carrying a theme keyword.
core::ObjectQuery theme_keyword_query(const std::string& keyword);

/// Single dynamic criterion: group/model with parameter `param` = value v.
core::ObjectQuery dynamic_param_query(const std::string& group, const std::string& model,
                                      const std::string& param, double value,
                                      core::CompareOp op = core::CompareOp::kEq);

struct QueryGenConfig {
  std::uint64_t seed = 1234;
  /// Probability a generated attribute criterion is dynamic.
  double dynamic_probability = 0.5;
  /// Probability a dynamic criterion nests a sub-attribute.
  double sub_attr_probability = 0.3;
  /// Max element predicates per attribute criterion.
  int elems_max = 2;
  /// Max top-level attribute criteria per query.
  int attrs_max = 2;
  /// Value cardinality must match the document generator's for meaningful
  /// selectivities.
  int value_cardinality = 16;
};

class QueryGenerator {
 public:
  explicit QueryGenerator(QueryGenConfig config = {});

  /// Deterministic i-th random query.
  core::ObjectQuery generate(std::uint64_t index);

 private:
  core::AttrQuery random_structural(util::Prng& rng);
  core::AttrQuery random_dynamic(util::Prng& rng, bool allow_sub);

  QueryGenConfig config_;
};

}  // namespace hxrc::workload
