// The LEAD metadata schema of the paper's Fig. 2 (an FGDC-derived subset),
// built programmatically, plus the attribute-root annotations the paper's
// bolding implies.
//
// Structure (attribute roots marked *, dynamic marked †, repeatable +):
//
//   LEADresource
//     resourceID*                       (attribute-element)
//     data
//       idinfo
//         citation*   { origin, pubdate, title }
//         status*     { progress, update }
//         timeperd*                     (attribute-element)
//         keywords
//           theme*+    { themekt, themekey+ }
//           place*     { placekt, placekey+ }
//           stratum*   { stratkt, stratkey+ }
//           temporal*  { tempkt, tempkey+ }
//         accconst*                     (attribute-element)
//         useconst*                     (attribute-element)
//       geospatial
//         spdom*      { bounding, dsgpoly, spattemp }
//         vertdom*                      (attribute-element)
//         eainfo
//           detailed*+†  { enttyp { enttypl, enttypds, enttypd },
//                          attr+ (recursive) { attrlabl, attrdef, attrdefs,
//                                              attrdomv, attrv } }
//           overview*+   { eaover, eadetcit }
#pragma once

#include "core/partition.hpp"
#include "xml/schema.hpp"

namespace hxrc::workload {

/// Builds the Fig. 2 schema.
xml::Schema lead_schema();

/// The attribute-root annotation set for lead_schema().
core::PartitionAnnotations lead_annotations();

/// The same schema in the compact XML description format (round-trips
/// through xml::load_schema; used by examples and loader tests).
std::string lead_schema_xml();

/// The Fig. 3 example document (two theme attributes, one dynamic "grid"
/// attribute with a nested "grid-stretching" sub-attribute).
std::string fig3_document();

}  // namespace hxrc::workload
