#include "workload/query_gen.hpp"

namespace hxrc::workload {

using core::AttrQuery;
using core::CompareOp;
using core::ObjectQuery;

ObjectQuery paper_example_query(double dx, double dzmin) {
  ObjectQuery query;
  AttrQuery grid("grid", "ARPS");
  grid.add_element("dx", "ARPS", rel::Value(dx), CompareOp::kEq);
  AttrQuery stretching("grid-stretching", "ARPS");
  stretching.add_element("dzmin", rel::Value(dzmin), CompareOp::kEq);
  grid.add_attribute(std::move(stretching));
  query.add_attribute(std::move(grid));
  return query;
}

ObjectQuery theme_keyword_query(const std::string& keyword) {
  ObjectQuery query;
  AttrQuery theme("theme");
  theme.add_element("themekey", rel::Value(keyword), CompareOp::kEq);
  query.add_attribute(std::move(theme));
  return query;
}

ObjectQuery dynamic_param_query(const std::string& group, const std::string& model,
                                const std::string& param, double value,
                                core::CompareOp op) {
  ObjectQuery query;
  AttrQuery attr(group, model);
  attr.add_element(param, model, rel::Value(value), op);
  query.add_attribute(std::move(attr));
  return query;
}

QueryGenerator::QueryGenerator(QueryGenConfig config) : config_(config) {}

ObjectQuery QueryGenerator::generate(std::uint64_t index) {
  util::Prng rng(config_.seed ^ (index * 0x9e3779b97f4a7c15ULL + 17));
  ObjectQuery query;
  const int attrs = static_cast<int>(rng.uniform(1, config_.attrs_max));
  for (int a = 0; a < attrs; ++a) {
    if (rng.chance(config_.dynamic_probability)) {
      query.add_attribute(random_dynamic(rng, /*allow_sub=*/true));
    } else {
      query.add_attribute(random_structural(rng));
    }
  }
  return query;
}

AttrQuery QueryGenerator::random_structural(util::Prng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0: {
      AttrQuery theme("theme");
      theme.add_element("themekey", rel::Value(rng.pick(cf_standard_names())),
                        CompareOp::kEq);
      if (rng.chance(0.3)) {
        theme.add_element("themekt", rel::Value("CF NetCDF"), CompareOp::kEq);
      }
      return theme;
    }
    case 1: {
      AttrQuery status("status");
      status.add_element("progress", rel::Value(rng.chance(0.5) ? "Complete" : "In work"),
                         CompareOp::kEq);
      return status;
    }
    case 2: {
      AttrQuery place("place");
      place.add_element("placekey", rel::Value(rng.chance(0.5) ? "Oklahoma" : "Indiana"),
                        CompareOp::kEq);
      return place;
    }
    default: {
      AttrQuery citation("citation");
      citation.add_element("origin",
                           rel::Value(rng.chance(0.5) ? "LEAD" : "Unidata"),
                           CompareOp::kEq);
      return citation;
    }
  }
}

AttrQuery QueryGenerator::random_dynamic(util::Prng& rng, bool allow_sub) {
  const char* model = rng.pick(model_names());
  AttrQuery attr(rng.pick(grid_group_names()), model);

  const int elems = static_cast<int>(rng.uniform(0, config_.elems_max));
  static constexpr CompareOp kOps[] = {CompareOp::kEq, CompareOp::kLe, CompareOp::kGe,
                                       CompareOp::kLt, CompareOp::kGt};
  for (int e = 0; e < elems; ++e) {
    const char* param = rng.pick(parameter_names());
    const int v = static_cast<int>(rng.uniform(0, config_.value_cardinality - 1));
    attr.add_element(param, model, rel::Value(parameter_value(param, v)),
                     kOps[rng.uniform(0, 4)]);
  }
  if (allow_sub && rng.chance(config_.sub_attr_probability)) {
    static constexpr const char* kSubGroups[] = {"grid-stretching", "damping", "advection",
                                                 "boundary", "filtering"};
    AttrQuery sub(kSubGroups[rng.uniform(0, 4)], model);
    const char* param = rng.pick(parameter_names());
    const int v = static_cast<int>(rng.uniform(0, config_.value_cardinality - 1));
    sub.add_element(param, model, rel::Value(parameter_value(param, v)),
                    kOps[rng.uniform(0, 4)]);
    attr.add_attribute(std::move(sub));
  }
  if (attr.elements().empty() && attr.sub_attributes().empty()) {
    // Never emit a completely empty criterion; require the group to exist
    // with at least one known parameter.
    attr.require_element(rng.pick(parameter_names()), model);
  }
  return attr;
}

}  // namespace hxrc::workload
