#include "workload/generator.hpp"

#include <array>
#include <charconv>

namespace hxrc::workload {

namespace {

// CF conventions standard names (the paper's Fig. 3 uses this vocabulary).
constexpr const char* kCfNames[] = {
    "convective_precipitation_amount",
    "convective_precipitation_flux",
    "air_pressure_at_cloud_base",
    "air_pressure_at_cloud_top",
    "air_temperature",
    "air_potential_temperature",
    "atmosphere_boundary_layer_thickness",
    "cloud_area_fraction",
    "dew_point_temperature",
    "eastward_wind",
    "northward_wind",
    "upward_air_velocity",
    "geopotential_height",
    "relative_humidity",
    "specific_humidity",
    "surface_air_pressure",
    "surface_temperature",
    "tendency_of_air_temperature",
    "wind_speed_of_gust",
    "precipitation_flux",
    "snowfall_amount",
    "soil_temperature",
    "surface_downwelling_shortwave_flux",
    "surface_upward_sensible_heat_flux",
};

constexpr const char* kModels[] = {"ARPS", "WRF"};

// Dynamic attribute (namelist group) names used by the forecast models.
constexpr const char* kGroups[] = {"grid", "initialization", "microphysics",
                                   "radiation", "surface_physics", "nudging"};

// Model parameter names (ARPS/WRF namelist vocabulary).
constexpr const char* kParams[] = {
    "dx",        "dy",        "dz",       "dzmin",     "dtbig",    "dtsml",
    "nx",        "ny",        "nz",       "strhopt",   "zrefsfc",  "dlayer1",
    "dlayer2",   "strhtune",  "zflat",    "ctrlat",    "ctrlon",   "trulat1",
    "trulat2",   "trulon",    "sclfct",   "mapproj",   "tstop",    "thermdiff",
};

// Sub-attribute group names inside dynamic attributes.
constexpr const char* kSubGroups[] = {"grid-stretching", "damping", "advection",
                                      "boundary", "filtering"};

constexpr const char* kProgress[] = {"Complete", "In work", "Planned"};
constexpr const char* kUpdate[] = {"Continually", "As needed", "None planned"};
constexpr const char* kOrigins[] = {"LEAD", "CASA", "Unidata", "NCSA"};

// Sentence fragments for the long-boilerplate paragraphs (FGDC abstract /
// entity-overview prose register).
constexpr const char* kProse[] = {
    "The gridded fields in this resource were produced by an on-demand "
    "forecast run triggered by the LEAD workflow orchestration layer.",
    "Horizontal grid spacing, vertical stretching, and the model time steps "
    "are recorded in the detailed entity sections of this document.",
    "Each output variable follows the CF conventions standard name table "
    "referenced by the theme keywords of the identification section.",
    "Boundary conditions were interpolated from the operational NAM grids "
    "available at forecast initialization time.",
    "Microphysics, radiation, and surface physics options reflect the "
    "namelist values captured when the run was submitted.",
    "Data quality has not been independently assessed; values are model "
    "output and should be treated as guidance rather than observation.",
    "The spatial domain corners are given in the geospatial bounding "
    "element using geographic coordinates referenced to WGS84.",
    "Derived diagnostics were computed during post-processing and carry "
    "the same temporal extent as the prognostic fields.",
    "Storage layout, compression, and access endpoints are governed by the "
    "hosting data repository and may change between reruns.",
    "Citation of this resource should include the originating laboratory, "
    "the publication date, and the forecast run title.",
};

}  // namespace

std::span<const std::string> boilerplate_pool() {
  static const std::vector<std::string> pool = [] {
    std::vector<std::string> paragraphs;
    paragraphs.reserve(64);
    util::Prng rng(0xb011e7010adull);
    for (int p = 0; p < 64; ++p) {
      // 4-10KB of prose per paragraph; distinct lead-in keeps them unique.
      const std::size_t target = 4096 + static_cast<std::size_t>(rng.uniform(0, 6144));
      std::string text = "Overview " + std::to_string(p) + ": ";
      while (text.size() < target) {
        text += rng.pick(std::span<const char* const>(kProse));
        text += ' ';
      }
      paragraphs.push_back(std::move(text));
    }
    return paragraphs;
  }();
  return pool;
}

std::span<const char* const> cf_standard_names() { return kCfNames; }
std::span<const char* const> model_names() { return kModels; }
std::span<const char* const> grid_group_names() { return kGroups; }
std::span<const char* const> parameter_names() { return kParams; }

double parameter_value(std::string_view param, int v) {
  // A stable per-parameter base scaled by the value index, so queries can
  // target "value k of parameter p" and know exactly which documents match.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : param) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  const double base = static_cast<double>(100 + (h % 900));
  return base * (1.0 + static_cast<double>(v));
}

DocumentGenerator::DocumentGenerator(GeneratorConfig config) : config_(config) {}

std::vector<xml::Document> DocumentGenerator::corpus(std::size_t n) {
  std::vector<xml::Document> docs;
  docs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) docs.push_back(generate(i));
  return docs;
}

xml::Document DocumentGenerator::generate(std::uint64_t index) {
  util::Prng rng(config_.seed ^ (index * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));

  xml::Document doc(xml::Node::element("LEADresource"));
  doc.root->add_element("resourceID", "lead-" + std::to_string(index));
  xml::Node* data = doc.root->add_element("data");
  if (config_.include_idinfo) add_idinfo(rng, *data, index);
  if (config_.include_geospatial) add_geospatial(rng, *data);
  return doc;
}

void DocumentGenerator::add_idinfo(util::Prng& rng, xml::Node& data, std::uint64_t index) {
  xml::Node* idinfo = data.add_element("idinfo");

  xml::Node* citation = idinfo->add_element("citation");
  citation->add_element("origin", rng.pick(std::span<const char* const>(kOrigins)));
  citation->add_element("pubdate",
                        "2006-0" + std::to_string(1 + rng.uniform(0, 8)) + "-" +
                            (rng.chance(0.5) ? "15" : "01"));
  citation->add_element("title", "Forecast run " + std::to_string(index));

  xml::Node* status = idinfo->add_element("status");
  status->add_element("progress", rng.pick(std::span<const char* const>(kProgress)));
  status->add_element("update", rng.pick(std::span<const char* const>(kUpdate)));

  idinfo->add_element("timeperd", "2006-06-0" + std::to_string(1 + rng.uniform(0, 8)));

  xml::Node* keywords = idinfo->add_element("keywords");
  const int themes = static_cast<int>(rng.uniform(config_.themes_min, config_.themes_max));
  for (int t = 0; t < themes; ++t) {
    xml::Node* theme = keywords->add_element("theme");
    theme->add_element("themekt", "CF NetCDF");
    const int keys =
        static_cast<int>(rng.uniform(config_.theme_keys_min, config_.theme_keys_max));
    for (int k = 0; k < keys; ++k) {
      theme->add_element("themekey", rng.pick(cf_standard_names()));
    }
  }
  if (rng.chance(0.6)) {
    xml::Node* place = keywords->add_element("place");
    place->add_element("placekt", "GNIS");
    place->add_element("placekey", rng.chance(0.5) ? "Oklahoma" : "Indiana");
  }

  if (rng.chance(0.5)) idinfo->add_element("accconst", "None");
  if (rng.chance(0.5)) idinfo->add_element("useconst", "Research only");
}

void DocumentGenerator::add_geospatial(util::Prng& rng, xml::Node& data) {
  xml::Node* geospatial = data.add_element("geospatial");

  if (rng.chance(0.8)) {
    xml::Node* spdom = geospatial->add_element("spdom");
    spdom->add_element("bounding", "-103.0 33.6 -94.4 37.0");
    if (rng.chance(0.3)) spdom->add_element("dsgpoly", "convex");
  }
  if (rng.chance(0.4)) geospatial->add_element("vertdom", "0 20000");

  xml::Node* eainfo = geospatial->add_element("eainfo");
  const int detaileds =
      static_cast<int>(rng.uniform(config_.detailed_min, config_.detailed_max));
  for (int d = 0; d < detaileds; ++d) {
    add_detailed(rng, *eainfo);
  }
  if (config_.long_boilerplate) {
    const std::span<const std::string> pool = boilerplate_pool();
    xml::Node* overview = eainfo->add_element("overview");
    overview->add_element("eaover", rng.pick(pool));
    overview->add_element("eadetcit", rng.pick(pool));
  } else if (rng.chance(0.3)) {
    xml::Node* overview = eainfo->add_element("overview");
    overview->add_element("eaover", "model output fields");
    overview->add_element("eadetcit", "ARPS User Guide");
  }
}

void DocumentGenerator::add_detailed(util::Prng& rng, xml::Node& eainfo) {
  xml::Node* detailed = eainfo.add_element("detailed");
  const char* model = rng.pick(model_names());
  const char* group = rng.pick(grid_group_names());

  xml::Node* enttyp = detailed->add_element("enttyp");
  enttyp->add_element("enttypl", group);
  enttyp->add_element("enttypds", model);

  const int params = static_cast<int>(rng.uniform(config_.params_min, config_.params_max));
  add_dynamic_items(rng, *detailed, model, params, 0);
}

void DocumentGenerator::add_dynamic_items(util::Prng& rng, xml::Node& parent,
                                          const std::string& model, int count, int depth) {
  for (int i = 0; i < count; ++i) {
    const bool nest = depth < config_.max_nesting && rng.chance(config_.sub_attr_probability);
    xml::Node* item = parent.add_element("attr");
    if (nest) {
      item->add_element("attrlabl",
                        rng.pick(std::span<const char* const>(kSubGroups)));
      item->add_element("attrdefs", model);
      const int children = static_cast<int>(rng.uniform(1, 3));
      add_dynamic_items(rng, *item, model, children, depth + 1);
    } else {
      const char* param = rng.pick(parameter_names());
      const int v = static_cast<int>(rng.uniform(0, config_.value_cardinality - 1));
      char buf[32];
      const auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof buf, parameter_value(param, v));
      (void)ec;
      item->add_element("attrlabl", param);
      item->add_element("attrdefs", model);
      item->add_element("attrv", std::string(buf, ptr));
    }
  }
}

}  // namespace hxrc::workload
