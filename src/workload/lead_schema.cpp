#include "workload/lead_schema.hpp"

#include "xml/schema.hpp"

namespace hxrc::workload {

using xml::LeafType;
using xml::Schema;
using xml::SchemaNode;

Schema lead_schema() {
  Schema schema("LEADresource");
  SchemaNode& root = schema.root();
  root.set_optional(false);

  root.add_child("resourceID").set_leaf_type(LeafType::kString);

  SchemaNode& data = root.add_child("data");
  data.set_optional(false);

  // ---- identification information ----
  SchemaNode& idinfo = data.add_child("idinfo");

  SchemaNode& citation = idinfo.add_child("citation");
  citation.add_child("origin").set_leaf_type(LeafType::kString);
  citation.add_child("pubdate").set_leaf_type(LeafType::kDate);
  citation.add_child("title").set_leaf_type(LeafType::kString);

  SchemaNode& status = idinfo.add_child("status");
  status.add_child("progress").set_leaf_type(LeafType::kString);
  status.add_child("update").set_leaf_type(LeafType::kString);

  idinfo.add_child("timeperd").set_leaf_type(LeafType::kString);

  SchemaNode& keywords = idinfo.add_child("keywords");
  SchemaNode& theme = keywords.add_child("theme");
  theme.set_repeatable(true);
  theme.add_child("themekt").set_leaf_type(LeafType::kString);
  theme.add_child("themekey").set_leaf_type(LeafType::kString).set_repeatable(true);
  SchemaNode& place = keywords.add_child("place");
  place.add_child("placekt").set_leaf_type(LeafType::kString);
  place.add_child("placekey").set_leaf_type(LeafType::kString).set_repeatable(true);
  SchemaNode& stratum = keywords.add_child("stratum");
  stratum.add_child("stratkt").set_leaf_type(LeafType::kString);
  stratum.add_child("stratkey").set_leaf_type(LeafType::kString).set_repeatable(true);
  SchemaNode& temporal = keywords.add_child("temporal");
  temporal.add_child("tempkt").set_leaf_type(LeafType::kString);
  temporal.add_child("tempkey").set_leaf_type(LeafType::kString).set_repeatable(true);

  idinfo.add_child("accconst").set_leaf_type(LeafType::kString);
  idinfo.add_child("useconst").set_leaf_type(LeafType::kString);

  // ---- geospatial information ----
  SchemaNode& geospatial = data.add_child("geospatial");

  SchemaNode& spdom = geospatial.add_child("spdom");
  spdom.add_child("bounding").set_leaf_type(LeafType::kString);
  spdom.add_child("dsgpoly").set_leaf_type(LeafType::kString);
  spdom.add_child("spattemp").set_leaf_type(LeafType::kString);
  geospatial.add_child("vertdom").set_leaf_type(LeafType::kString);

  SchemaNode& eainfo = geospatial.add_child("eainfo");

  SchemaNode& detailed = eainfo.add_child("detailed");
  detailed.set_repeatable(true);
  SchemaNode& enttyp = detailed.add_child("enttyp");
  enttyp.add_child("enttypl").set_leaf_type(LeafType::kString);
  enttyp.add_child("enttypds").set_leaf_type(LeafType::kString);
  enttyp.add_child("enttypd").set_leaf_type(LeafType::kString);
  SchemaNode& attr = detailed.add_child("attr");
  attr.set_repeatable(true).set_recursive(true);
  attr.add_child("attrlabl").set_leaf_type(LeafType::kString);
  attr.add_child("attrdef").set_leaf_type(LeafType::kString);
  attr.add_child("attrdefs").set_leaf_type(LeafType::kString);
  attr.add_child("attrdomv").set_leaf_type(LeafType::kString);
  attr.add_child("attrv").set_leaf_type(LeafType::kString);

  SchemaNode& overview = eainfo.add_child("overview");
  overview.set_repeatable(true);
  overview.add_child("eaover").set_leaf_type(LeafType::kString);
  overview.add_child("eadetcit").set_leaf_type(LeafType::kString);

  return schema;
}

core::PartitionAnnotations lead_annotations() {
  core::PartitionAnnotations annotations;
  auto add = [&](std::string path, bool dynamic = false) {
    annotations.attributes.push_back(core::AttributeAnnotation{std::move(path), dynamic, true});
  };
  add("resourceID");
  add("data/idinfo/citation");
  add("data/idinfo/status");
  add("data/idinfo/timeperd");
  add("data/idinfo/keywords/theme");
  add("data/idinfo/keywords/place");
  add("data/idinfo/keywords/stratum");
  add("data/idinfo/keywords/temporal");
  add("data/idinfo/accconst");
  add("data/idinfo/useconst");
  add("data/geospatial/spdom");
  add("data/geospatial/vertdom");
  add("data/geospatial/eainfo/detailed", /*dynamic=*/true);
  add("data/geospatial/eainfo/overview");
  // annotations.convention defaults already match LEAD (enttyp/attr...).
  return annotations;
}

std::string lead_schema_xml() { return xml::save_schema(lead_schema()); }

std::string fig3_document() {
  return R"(<LEADresource>
  <resourceID>arps-run-42</resourceID>
  <data>
    <idinfo>
      <keywords>
        <theme>
          <themekt>CF NetCDF</themekt>
          <themekey>convective_precipitation_amount</themekey>
          <themekey>convective_precipitation_flux</themekey>
        </theme>
        <theme>
          <themekt>CF NetCDF</themekt>
          <themekey>air_pressure_at_cloud_base</themekey>
          <themekey>air_pressure_at_cloud_top</themekey>
        </theme>
      </keywords>
    </idinfo>
    <geospatial>
      <eainfo>
        <detailed>
          <enttyp>
            <enttypl>grid</enttypl>
            <enttypds>ARPS</enttypds>
          </enttyp>
          <attr>
            <attrlabl>grid-stretching</attrlabl>
            <attrdefs>ARPS</attrdefs>
            <attr>
              <attrlabl>dzmin</attrlabl>
              <attrdefs>ARPS</attrdefs>
              <attrv>100.000</attrv>
            </attr>
            <attr>
              <attrlabl>reference-height</attrlabl>
              <attrdefs>ARPS</attrdefs>
              <attrv>0</attrv>
            </attr>
          </attr>
          <attr>
            <attrlabl>dx</attrlabl>
            <attrdefs>ARPS</attrdefs>
            <attrv>1000.000</attrv>
          </attr>
          <attr>
            <attrlabl>dz</attrlabl>
            <attrdefs>ARPS</attrdefs>
            <attrv>500.000</attrv>
          </attr>
        </detailed>
      </eainfo>
    </geospatial>
  </data>
</LEADresource>)";
}

}  // namespace hxrc::workload
