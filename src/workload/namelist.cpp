#include "workload/namelist.hpp"

#include <map>

#include "util/string_util.hpp"

namespace hxrc::workload {

namespace {

/// Strips a trailing Fortran comment (unquoted '!').
std::string_view strip_comment(std::string_view line) {
  bool in_quote = false;
  char quote = '\0';
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quote) {
      if (c == quote) in_quote = false;
    } else if (c == '\'' || c == '"') {
      in_quote = true;
      quote = c;
    } else if (c == '!') {
      return line.substr(0, i);
    }
  }
  return line;
}

std::vector<std::string> split_values(std::string_view raw) {
  std::vector<std::string> values;
  std::string current;
  bool in_quote = false;
  char quote = '\0';
  auto flush = [&] {
    const std::string_view trimmed = util::trim(current);
    if (!trimmed.empty()) values.emplace_back(trimmed);
    current.clear();
  };
  for (const char c : raw) {
    if (in_quote) {
      if (c == quote) {
        in_quote = false;
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      in_quote = true;
      quote = c;
      continue;
    }
    if (c == ',') {
      flush();
      continue;
    }
    current.push_back(c);
  }
  if (in_quote) throw NamelistError("unterminated quoted value");
  flush();
  return values;
}

}  // namespace

std::vector<NamelistGroup> parse_namelist(std::string_view text) {
  std::vector<NamelistGroup> groups;
  NamelistGroup* current = nullptr;

  for (const std::string_view raw_line : util::split(text, '\n')) {
    const std::string_view line = util::trim(strip_comment(raw_line));
    if (line.empty()) continue;

    if (line.front() == '&') {
      if (current != nullptr) throw NamelistError("nested namelist group");
      groups.push_back(NamelistGroup{std::string(util::trim(line.substr(1))), {}});
      if (groups.back().name.empty()) throw NamelistError("group without a name");
      current = &groups.back();
      continue;
    }
    if (line == "/" || line == "&end" || line == "&END") {
      if (current == nullptr) throw NamelistError("group terminator outside a group");
      current = nullptr;
      continue;
    }
    if (current == nullptr) {
      throw NamelistError("entry outside a namelist group: '" + std::string(line) + "'");
    }
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw NamelistError("expected key = value: '" + std::string(line) + "'");
    }
    NamelistEntry entry;
    entry.key = std::string(util::trim(line.substr(0, eq)));
    if (entry.key.empty()) throw NamelistError("empty key");
    std::string_view value_part = util::trim(line.substr(eq + 1));
    if (!value_part.empty() && value_part.back() == ',') {
      value_part.remove_suffix(1);  // trailing continuation comma
    }
    entry.values = split_values(value_part);
    current->entries.push_back(std::move(entry));
  }
  if (current != nullptr) throw NamelistError("unterminated namelist group");
  return groups;
}

std::string write_namelist(const std::vector<NamelistGroup>& groups) {
  std::string out;
  for (const NamelistGroup& group : groups) {
    out += "&" + group.name + "\n";
    for (const NamelistEntry& entry : group.entries) {
      out += "  " + entry.key + " = ";
      for (std::size_t i = 0; i < entry.values.size(); ++i) {
        if (i > 0) out += ", ";
        const std::string& value = entry.values[i];
        // Quote anything that does not parse as a number.
        if (util::parse_double(value)) {
          out += value;
        } else {
          out += "'" + value + "'";
        }
      }
      out += ",\n";
    }
    out += "/\n";
  }
  return out;
}

xml::NodePtr namelist_group_to_detailed(const NamelistGroup& group,
                                        const std::string& model,
                                        const core::DynamicConvention& c) {
  xml::NodePtr detailed = xml::Node::element("detailed");
  xml::Node* container = detailed->add_element(c.def_container);
  container->add_element(c.def_name, group.name);
  container->add_element(c.def_source, model);

  // Derived-type components ("a%b%c") become nested sub-attribute items; we
  // group entries by their leading components to build the item tree.
  struct ItemTree {
    std::map<std::string, ItemTree> children;
    std::vector<std::pair<std::string, std::string>> elements;  // (name, value)
  };
  ItemTree tree;
  for (const NamelistEntry& entry : group.entries) {
    const auto components = util::split(entry.key, '%');
    ItemTree* node = &tree;
    for (std::size_t i = 0; i + 1 < components.size(); ++i) {
      node = &node->children[std::string(components[i])];
    }
    for (const std::string& value : entry.values) {
      node->elements.emplace_back(std::string(components.back()), value);
    }
  }

  const auto emit = [&](auto&& self, xml::Node& parent, const ItemTree& node) -> void {
    for (const auto& [name, value] : node.elements) {
      xml::Node* item = parent.add_element(c.item_tag);
      item->add_element(c.item_name, name);
      item->add_element(c.item_source, model);
      item->add_element(c.item_value, value);
    }
    for (const auto& [name, child] : node.children) {
      xml::Node* item = parent.add_element(c.item_tag);
      item->add_element(c.item_name, name);
      item->add_element(c.item_source, model);
      self(self, *item, child);
    }
  };
  emit(emit, *detailed, tree);
  return detailed;
}

}  // namespace hxrc::workload
