#include "core/query.hpp"

#include <algorithm>

namespace hxrc::core {

std::size_t AttrQuery::depth() const noexcept {
  std::size_t max_child = 0;
  for (const AttrQuery& sub : sub_attributes_) {
    max_child = std::max(max_child, sub.depth());
  }
  return 1 + max_child;
}

bool ObjectQuery::has_sub_attributes() const noexcept {
  return std::any_of(attributes_.begin(), attributes_.end(),
                     [](const AttrQuery& attr) { return !attr.sub_attributes().empty(); });
}

}  // namespace hxrc::core
