// Identifiers and definition records for the hybrid metadata catalog.
//
// Terminology follows the paper (§2):
//  * metadata attribute    — an interior schema node representing one concept
//                            (e.g. "theme", "status", or the dynamic "grid");
//  * sub-attribute         — an attribute nested inside another attribute;
//  * metadata element      — a leaf carrying a value inside an attribute;
//  * structural attribute  — defined by the schema structure (tag = name);
//  * dynamic attribute     — defined by name + source *values* carried in the
//                            document (LEAD: enttypl/enttypds, attrlabl/attrdefs),
//                            validated against the definition registry.
#pragma once

#include <cstdint>
#include <string>

#include "xml/schema.hpp"

namespace hxrc::core {

using ObjectId = std::int64_t;
using AttrDefId = std::int64_t;
using ElemDefId = std::int64_t;
/// Position in the schema-level global ordering (pre-order, attribute roots
/// and their ancestors only).
using OrderId = std::int64_t;

inline constexpr AttrDefId kNoAttr = -1;
inline constexpr OrderId kNoOrder = -1;

/// Collections model myLEAD's aggregations: objects are files OR
/// aggregations (experiments, ensembles, sessions), and collections nest.
using CollectionId = std::int64_t;
inline constexpr CollectionId kNoCollection = -1;

enum class AttrKind { kStructural, kDynamic };

/// Who can see (and query on) a definition. Admin definitions are shared by
/// the whole catalog; user definitions are private to their owner (§3).
enum class Visibility { kAdmin, kUser };

struct AttributeDef {
  AttrDefId id = kNoAttr;
  std::string name;
  /// Empty for structural attributes; the defining model for dynamic ones
  /// ("ARPS", "WRF", ...). Name + source together identify a definition so
  /// different models may reuse parameter names (§3).
  std::string source;
  AttrKind kind = AttrKind::kStructural;
  /// Parent definition for sub-attributes; kNoAttr for top-level attributes.
  AttrDefId parent = kNoAttr;
  /// Global order of the attribute root in the schema (top-level structural
  /// and dynamic roots only; kNoOrder for sub-attributes and for dynamic
  /// definitions, which live under their dynamic root's order).
  OrderId schema_order = kNoOrder;
  Visibility visibility = Visibility::kAdmin;
  /// Owner for user-visibility definitions; empty for admin definitions.
  std::string owner;
  /// Scientists may exclude attributes from the query tables entirely (§2:
  /// "each metadata attribute does not need to be queryable").
  bool queryable = true;
};

struct ElementDef {
  ElemDefId id = -1;
  std::string name;
  /// Source for dynamic elements (attrdefs); empty for structural ones.
  std::string source;
  /// Owning attribute definition (every element belongs to exactly one, §2).
  AttrDefId attribute = kNoAttr;
  xml::LeafType type = xml::LeafType::kString;
};

}  // namespace hxrc::core
