#include "core/annotated_schema.hpp"

#include <unordered_map>
#include <unordered_set>

#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::core {

namespace {

/// Collects metadata=... annotations from the raw declaration DOM, mirroring
/// the path structure xml::load_schema builds.
void collect_annotations(const xml::Node& decl, const std::string& prefix,
                         PartitionAnnotations& annotations) {
  for (const xml::Node* child : decl.child_elements()) {
    if (child->name() != "element") continue;
    const std::string_view* name = child->attribute("name");
    if (name == nullptr) continue;  // load_schema rejects this separately
    const std::string path =
        prefix.empty() ? std::string(*name) : prefix + "/" + std::string(*name);
    if (const std::string_view* metadata = child->attribute("metadata")) {
      if (*metadata != "attribute" && *metadata != "dynamic") {
        throw xml::SchemaError("metadata annotation must be 'attribute' or 'dynamic', got '" +
                               std::string(*metadata) + "'");
      }
      AttributeAnnotation annotation;
      annotation.path = path;
      annotation.dynamic = (*metadata == "dynamic");
      if (const std::string_view* queryable = child->attribute("queryable")) {
        annotation.queryable = (*queryable != "false");
      }
      annotations.attributes.push_back(std::move(annotation));
    }
    collect_annotations(*child, path, annotations);
  }
}

void read_convention(const xml::Node& root, DynamicConvention& convention) {
  const xml::Node* decl = root.first_child("convention");
  if (decl == nullptr) return;
  const auto assign = [&](const char* attr, std::string& target) {
    if (const std::string_view* value = decl->attribute(attr)) target = *value;
  };
  assign("container", convention.def_container);
  assign("name", convention.def_name);
  assign("source", convention.def_source);
  assign("item", convention.item_tag);
  assign("itemName", convention.item_name);
  assign("itemSource", convention.item_source);
  assign("itemValue", convention.item_value);
}

}  // namespace

AnnotatedSchema load_annotated_schema(std::string_view xml_text) {
  // The structural part reuses the plain schema loader (which ignores the
  // unknown metadata/queryable attributes); the annotations come from a
  // second pass over the same DOM.
  xml::Document doc = xml::parse(xml_text);
  if (doc.root->name() != "schema") {
    throw xml::SchemaError("expected <schema> root");
  }
  AnnotatedSchema out{xml::load_schema(xml_text), PartitionAnnotations{}};
  collect_annotations(*doc.root, "", out.annotations);
  read_convention(*doc.root, out.annotations.convention);
  return out;
}

std::string save_annotated_schema(const xml::Schema& schema,
                                  const PartitionAnnotations& annotations) {
  // Serialize the plain schema, re-parse, and weave the annotations back in
  // by path; then emit. This keeps one source of truth for the layout.
  xml::Document doc = xml::parse(xml::save_schema(schema));

  std::unordered_map<std::string, const AttributeAnnotation*> by_path;
  for (const auto& annotation : annotations.attributes) {
    by_path.emplace(annotation.path, &annotation);
  }

  const auto annotate = [&](auto&& self, xml::Node& decl,
                            const std::string& prefix) -> void {
    for (const auto& child_ptr : decl.children()) {
      if (!child_ptr->is_element() || child_ptr->name() != "element") continue;
      xml::Node& child = *child_ptr;
      const std::string_view* name = child.attribute("name");
      if (name == nullptr) continue;
      const std::string path =
          prefix.empty() ? std::string(*name) : prefix + "/" + std::string(*name);
      const auto it = by_path.find(path);
      if (it != by_path.end()) {
        child.add_attribute("metadata", it->second->dynamic ? "dynamic" : "attribute");
        if (!it->second->queryable) child.add_attribute("queryable", "false");
      }
      self(self, child, path);
    }
  };
  annotate(annotate, *doc.root, "");

  const DynamicConvention defaults;
  const DynamicConvention& c = annotations.convention;
  if (c.def_container != defaults.def_container || c.def_name != defaults.def_name ||
      c.def_source != defaults.def_source || c.item_tag != defaults.item_tag ||
      c.item_name != defaults.item_name || c.item_source != defaults.item_source ||
      c.item_value != defaults.item_value) {
    xml::Node* decl = doc.root->add_element("convention");
    decl->add_attribute("container", c.def_container);
    decl->add_attribute("name", c.def_name);
    decl->add_attribute("source", c.def_source);
    decl->add_attribute("item", c.item_tag);
    decl->add_attribute("itemName", c.item_name);
    decl->add_attribute("itemSource", c.item_source);
    decl->add_attribute("itemValue", c.item_value);
  }

  return xml::write(doc, xml::WriteOptions{.indent = 2});
}

}  // namespace hxrc::core
