// The catalog service protocol: XML requests in, tagged XML responses out.
//
// myLEAD exposes the catalog to the grid as a service; clients exchange XML
// messages (§5: results "are already tagged and can be returned to the
// client"). This module implements that request/response layer, including
// the XML serialization of metadata-attribute queries (the wire form of the
// MyFile/MyAttr API):
//
//   <catalogRequest type="query" user="alice" limit="100" cursor="...">
//     <attribute name="grid" source="ARPS">
//       <element name="dx" source="ARPS" op="eq">1000</element>
//       <attribute name="grid-stretching" source="ARPS">
//         <element name="dzmin" op="eq">100</element>
//       </attribute>
//     </attribute>
//   </catalogRequest>
//
// Request types: ingest, query, queryIds, fetch, addAttribute, define,
// delete, stats. Responses:
//
//   <catalogResponse status="ok" protocol="1" version="N">...</catalogResponse>
//   <catalogResponse status="error" protocol="1" code="...">
//     <message>...</message></catalogResponse>
//
// `protocol` is the wire-protocol major the server speaks (see
// kProtocolMajor); `version` is the catalog epoch the request observed. A
// request may declare its own protocol version (version="MAJOR[.MINOR]" on
// <catalogRequest>) and is refused with code="unsupported_version" when the
// major differs. Error responses
// carry a machine-readable `code` from the enumerated set below plus a
// human-readable <message>. Query/queryIds responses are paginated when the
// request sets `limit`: they carry a <nextCursor> child while more pages
// exist, and `queryIds` ids are always ascending so identical requests
// return identical pages.
//
// handle() never throws: every failure becomes a status="error" response,
// as a service endpoint must behave.
#pragma once

#include <iterator>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/catalog.hpp"
#include "core/query.hpp"
#include "util/metrics.hpp"

namespace hxrc::core {

/// The protocol major version this service speaks. Requests may declare
/// the version they were written against as version="MAJOR[.MINOR]" on
/// <catalogRequest>; an absent attribute means v1 (the original schema,
/// which predates the attribute). A different major is rejected with
/// code="unsupported_version" — minors are additive and never rejected.
/// Responses always carry protocol="MAJOR" on <catalogResponse> so clients
/// can assert the handshake. (`version` on responses is taken: it reports
/// the catalog epoch the request observed.)
inline constexpr int kProtocolMajor = 1;

/// Machine-readable error codes carried on error responses.
enum class ErrorCode {
  kParseError,   // request was not well-formed XML / not a <catalogRequest>
  kUnknownType,  // unrecognized request type attribute
  kValidation,   // request violated protocol or catalog constraints
  kNotFound,     // the referenced object does not exist (or is deleted)
  kTimeout,      // dispatcher: deadline exceeded before/while handling
  kOverloaded,   // dispatcher: admission queue full
  kStaleCursor,  // continuation cursor predates a catalog mutation
  kDraining,     // dispatcher: shutting down, no longer admitting
  kUnsupportedVersion,  // request declared a protocol major we don't speak
  kUnavailable,  // federation: the owning shard is unreachable (no replica)
};

/// One row of the ErrorCode ↔ wire-string table.
struct ErrorCodeName {
  ErrorCode code;
  std::string_view name;
};

/// THE table mapping every ErrorCode to its wire spelling — the single
/// source of truth shared by the service, the dispatcher, and the network
/// front end. Adding an ErrorCode means adding a row here (the
/// static_assert below and the exhaustive round-trip test in
/// test_service_protocol both fail until the table is complete).
inline constexpr ErrorCodeName kErrorCodeNames[] = {
    {ErrorCode::kParseError, "parse_error"},
    {ErrorCode::kUnknownType, "unknown_type"},
    {ErrorCode::kValidation, "validation"},
    {ErrorCode::kNotFound, "not_found"},
    {ErrorCode::kTimeout, "timeout"},
    {ErrorCode::kOverloaded, "overloaded"},
    {ErrorCode::kStaleCursor, "stale_cursor"},
    {ErrorCode::kDraining, "draining"},
    {ErrorCode::kUnsupportedVersion, "unsupported_version"},
    {ErrorCode::kUnavailable, "unavailable"},
};

// kUnavailable is the last enumerator: one table row per code.
static_assert(std::size(kErrorCodeNames) ==
              static_cast<std::size_t>(ErrorCode::kUnavailable) + 1);

std::string_view error_code_name(ErrorCode code) noexcept;

/// Inverse of error_code_name; nullopt for strings outside the table.
std::optional<ErrorCode> error_code_from_name(std::string_view name) noexcept;

/// Thrown inside request handlers to produce a coded error response.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Serializes an error into the wire form — shared by CatalogService and
/// ServiceDispatcher (which must emit timeout/overloaded responses without
/// a service call).
std::string error_response(ErrorCode code, const std::string& message);

/// Serializes a query to its wire form (children of <catalogRequest>, plus
/// limit/cursor attributes when set).
std::string query_to_xml(const ObjectQuery& query);

/// Parses the wire form back into a query. Throws ValidationError on
/// malformed criteria; the message names the failing criterion by its
/// attribute path (e.g. "criterion 'grid/grid-stretching'").
ObjectQuery query_from_xml(const xml::Node& request);

/// The wire request-type names, in protocol order, plus the "other"
/// catch-all — the slot set for a per-request-type MetricsRegistry.
const std::vector<std::string>& service_request_type_names();

/// Light scan of a serialized request's root tag for its type attribute
/// (no DOM build — used by the dispatcher to classify rejected requests).
/// Returns "" when no type is found.
std::string peek_request_type(std::string_view request_xml);

/// Light scan of a serialized request's root tag for an arbitrary
/// attribute (same mechanics as peek_request_type; the federation router
/// routes on objectID= without a DOM build). Returns "" when absent.
std::string peek_request_attr(std::string_view request_xml, std::string_view name);

/// Light scan for the root tag's timeoutMs attribute. Returns a negative
/// value when absent or non-numeric. timeoutMs="0" means "already expired"
/// (deterministic timeout); absence means "no per-request deadline".
long peek_timeout_ms(std::string_view request_xml);

/// Outcome of one handled request, for the dispatcher's metrics.
struct RequestOutcome {
  /// Parsed request type; "other" when the request never yielded one.
  std::string type = "other";
  bool ok = false;
  ErrorCode code = ErrorCode::kValidation;  // valid when !ok
};

class CatalogService {
 public:
  explicit CatalogService(MetadataCatalog& catalog,
                          const util::MetricsRegistry* metrics = nullptr)
      : catalog_(catalog), metrics_(metrics) {}

  /// Handles one serialized request; always returns a <catalogResponse>.
  /// `outcome`, when given, reports the request type and status for
  /// metrics accounting.
  std::string handle(std::string_view request_xml, RequestOutcome* outcome = nullptr);

 private:
  /// `request_xml` rides along as the L2 cache key: read-only handlers
  /// (query/queryIds/fetch) insert their serialized response into the
  /// pinned snapshot's cache segment keyed by the raw request bytes, so an
  /// identical request can later be answered without parsing anything
  /// (ServiceDispatcher::try_cached probes before dispatch).
  std::string handle_parsed(const xml::Node& request, std::string_view request_xml,
                            RequestOutcome* outcome);

  MetadataCatalog& catalog_;
  /// Optional dispatcher metrics, rendered into stats responses. Not owned.
  const util::MetricsRegistry* metrics_;
};

}  // namespace hxrc::core
