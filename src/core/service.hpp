// The catalog service protocol: XML requests in, tagged XML responses out.
//
// myLEAD exposes the catalog to the grid as a service; clients exchange XML
// messages (§5: results "are already tagged and can be returned to the
// client"). This module implements that request/response layer, including
// the XML serialization of metadata-attribute queries (the wire form of the
// MyFile/MyAttr API):
//
//   <catalogRequest type="query" user="alice">
//     <attribute name="grid" source="ARPS">
//       <element name="dx" source="ARPS" op="eq">1000</element>
//       <attribute name="grid-stretching" source="ARPS">
//         <element name="dzmin" op="eq">100</element>
//       </attribute>
//     </attribute>
//   </catalogRequest>
//
// Request types: ingest, query, queryIds, fetch, addAttribute, define,
// delete, stats. Responses:
//
//   <catalogResponse status="ok">...payload...</catalogResponse>
//   <catalogResponse status="error"><message>...</message></catalogResponse>
//
// handle() never throws: every failure becomes a status="error" response,
// as a service endpoint must behave.
#pragma once

#include <string>
#include <string_view>

#include "core/catalog.hpp"
#include "core/query.hpp"

namespace hxrc::core {

/// Serializes a query to its wire form (children of <catalogRequest>).
std::string query_to_xml(const ObjectQuery& query);

/// Parses the wire form back into a query. Throws ValidationError on
/// malformed criteria.
ObjectQuery query_from_xml(const xml::Node& request);

class CatalogService {
 public:
  explicit CatalogService(MetadataCatalog& catalog) : catalog_(catalog) {}

  /// Handles one serialized request; always returns a <catalogResponse>.
  std::string handle(std::string_view request_xml);

 private:
  std::string handle_parsed(const xml::Node& request);

  MetadataCatalog& catalog_;
};

}  // namespace hxrc::core
