// The catalog service protocol: XML requests in, tagged XML responses out.
//
// myLEAD exposes the catalog to the grid as a service; clients exchange XML
// messages (§5: results "are already tagged and can be returned to the
// client"). This module implements that request/response layer, including
// the XML serialization of metadata-attribute queries (the wire form of the
// MyFile/MyAttr API):
//
//   <catalogRequest type="query" user="alice" limit="100" cursor="...">
//     <attribute name="grid" source="ARPS">
//       <element name="dx" source="ARPS" op="eq">1000</element>
//       <attribute name="grid-stretching" source="ARPS">
//         <element name="dzmin" op="eq">100</element>
//       </attribute>
//     </attribute>
//   </catalogRequest>
//
// Request types: ingest, query, queryIds, fetch, addAttribute, define,
// delete, stats. Responses:
//
//   <catalogResponse status="ok" version="N">...payload...</catalogResponse>
//   <catalogResponse status="error" code="..."><message>...</message></catalogResponse>
//
// `version` is the catalog epoch the request observed. Error responses
// carry a machine-readable `code` from the enumerated set below plus a
// human-readable <message>. Query/queryIds responses are paginated when the
// request sets `limit`: they carry a <nextCursor> child while more pages
// exist, and `queryIds` ids are always ascending so identical requests
// return identical pages.
//
// handle() never throws: every failure becomes a status="error" response,
// as a service endpoint must behave.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/catalog.hpp"
#include "core/query.hpp"
#include "util/metrics.hpp"

namespace hxrc::core {

/// Machine-readable error codes carried on error responses.
enum class ErrorCode {
  kParseError,   // request was not well-formed XML / not a <catalogRequest>
  kUnknownType,  // unrecognized request type attribute
  kValidation,   // request violated protocol or catalog constraints
  kNotFound,     // the referenced object does not exist (or is deleted)
  kTimeout,      // dispatcher: deadline exceeded before/while handling
  kOverloaded,   // dispatcher: admission queue full
  kStaleCursor,  // continuation cursor predates a catalog mutation
  kDraining,     // dispatcher: shutting down, no longer admitting
};

std::string_view error_code_name(ErrorCode code) noexcept;

/// Thrown inside request handlers to produce a coded error response.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Serializes an error into the wire form — shared by CatalogService and
/// ServiceDispatcher (which must emit timeout/overloaded responses without
/// a service call).
std::string error_response(ErrorCode code, const std::string& message);

/// Serializes a query to its wire form (children of <catalogRequest>, plus
/// limit/cursor attributes when set).
std::string query_to_xml(const ObjectQuery& query);

/// Parses the wire form back into a query. Throws ValidationError on
/// malformed criteria; the message names the failing criterion by its
/// attribute path (e.g. "criterion 'grid/grid-stretching'").
ObjectQuery query_from_xml(const xml::Node& request);

/// The wire request-type names, in protocol order, plus the "other"
/// catch-all — the slot set for a per-request-type MetricsRegistry.
const std::vector<std::string>& service_request_type_names();

/// Light scan of a serialized request's root tag for its type attribute
/// (no DOM build — used by the dispatcher to classify rejected requests).
/// Returns "" when no type is found.
std::string peek_request_type(std::string_view request_xml);

/// Light scan for the root tag's timeoutMs attribute. Returns a negative
/// value when absent or non-numeric. timeoutMs="0" means "already expired"
/// (deterministic timeout); absence means "no per-request deadline".
long peek_timeout_ms(std::string_view request_xml);

/// Outcome of one handled request, for the dispatcher's metrics.
struct RequestOutcome {
  /// Parsed request type; "other" when the request never yielded one.
  std::string type = "other";
  bool ok = false;
  ErrorCode code = ErrorCode::kValidation;  // valid when !ok
};

class CatalogService {
 public:
  explicit CatalogService(MetadataCatalog& catalog,
                          const util::MetricsRegistry* metrics = nullptr)
      : catalog_(catalog), metrics_(metrics) {}

  /// Handles one serialized request; always returns a <catalogResponse>.
  /// `outcome`, when given, reports the request type and status for
  /// metrics accounting.
  std::string handle(std::string_view request_xml, RequestOutcome* outcome = nullptr);

 private:
  std::string handle_parsed(const xml::Node& request, RequestOutcome* outcome);

  MetadataCatalog& catalog_;
  /// Optional dispatcher metrics, rendered into stats responses. Not owned.
  const util::MetricsRegistry* metrics_;
};

}  // namespace hxrc::core
