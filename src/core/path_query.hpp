// Path-query translation: XPath-style expressions to ObjectQuery (§4).
//
// §4 contrasts the XQuery FLWOR expression a scientist would have to write
// against the metadata-attribute query the catalog actually evaluates
// ("the path to the dynamic metadata attribute is immaterial"). This module
// implements that rewriting for the abbreviated-XPath form of such queries:
// a navigation to a metadata attribute root plus nested predicates.
//
// Grammar:
//   query   := ('//' | '/')? seg ('/' seg)*      final seg names the attribute
//   seg     := NAME pred*
//   pred    := '[' conj ']'
//   conj    := term ('and' term)*
//   term    := rel (op literal)?                 existence or comparison
//   rel     := '.' | NAME pred* ('/' NAME pred*)*
//   op      := = | != | < | <= | > | >=
//
// Structural attributes translate directly: leaf terms become element
// predicates; interior terms become sub-attribute criteria. Dynamic
// attributes translate through the partition's DynamicConvention — exactly
// the §4 example:
//
//   //detailed[enttyp/enttypl='grid' and enttyp/enttypds='ARPS']
//             [attr[attrlabl='dx' and attrdefs='ARPS' and attrv=1000]]
//             [attr[attrlabl='grid-stretching' and attrdefs='ARPS']
//                  [attr[attrlabl='dzmin' and attrv=100]]]
//
// becomes AttrQuery("grid","ARPS"){dx=1000, sub: grid-stretching{dzmin=100}}.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "core/partition.hpp"
#include "core/query.hpp"

namespace hxrc::core {

class PathQueryError : public std::runtime_error {
 public:
  explicit PathQueryError(const std::string& message) : std::runtime_error(message) {}
};

/// Translates one path expression into a single-attribute ObjectQuery.
/// Throws PathQueryError when the expression does not denote a metadata
/// attribute (wrong path, predicates above the attribute root, ambiguous
/// '//' target, malformed dynamic conventions, ...).
ObjectQuery path_to_query(const Partition& partition, std::string_view expression);

/// Conjunction of several path expressions (one AttrQuery each).
ObjectQuery paths_to_query(const Partition& partition,
                           const std::vector<std::string>& expressions);

}  // namespace hxrc::core
