// Materialization of the schema-level global ordering into the database.
//
// The paper stores the global ordering in a table ("tracking for each node
// its order, tag, and the order of its last child") plus an inverted list
// mapping each ordered node to its ancestors (§2, §5). Because the ordering
// is defined at the *schema* level — legal because every repeatable or
// recursive element is contained in a metadata attribute — both tables are
// built once per catalog, not per document. This is the design choice
// benchmarked against per-document ordering in experiment E6.
#pragma once

#include "core/partition.hpp"
#include "rel/database.hpp"

namespace hxrc::core {

/// Table names created by install_ordering.
inline constexpr const char* kSchemaOrderTable = "schema_order";
inline constexpr const char* kOrderAncestorsTable = "order_ancestors";

/// Creates and fills:
///   schema_order(order_id, tag, parent_order, last_child, depth, is_attr)
///   order_ancestors(order_id, anc_order, distance)
/// plus the indexes the query/response pipelines probe.
void install_ordering(rel::Database& db, const Partition& partition);

}  // namespace hxrc::core
