#include "core/catalog.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <istream>
#include <mutex>
#include <ostream>
#include <shared_mutex>

#include "core/ordering.hpp"
#include "core/storage.hpp"
#include "rel/serialize.hpp"
#include "xml/parser.hpp"

namespace hxrc::core {

MetadataCatalog::MetadataCatalog(const xml::Schema& schema,
                                 PartitionAnnotations annotations, CatalogConfig config)
    : schema_(schema),
      config_(config),
      partition_(Partition::build(schema, std::move(annotations))) {
  registry_.install_structural(partition_);
  install_storage(db_);
  install_storage_indexes(db_);
  install_ordering(db_, partition_);
  // Containment tables for collections (aggregations).
  rel::Table& collections = db_.create_table(
      "collections", rel::TableSchema{{"coll_id", rel::Type::kInt},
                                      {"name", rel::Type::kString},
                                      {"owner", rel::Type::kString},
                                      {"parent", rel::Type::kInt}});
  collections.create_hash_index("idx_coll_parent", {"parent"});
  rel::Table& members = db_.create_table(
      "collection_members", rel::TableSchema{{"coll_id", rel::Type::kInt},
                                             {"object_id", rel::Type::kInt}});
  members.create_hash_index("idx_member_coll", {"coll_id"});
  members.create_hash_index("idx_member_pair", {"coll_id", "object_id"});

  shredder_ = std::make_unique<Shredder>(partition_, registry_, db_, config_.shred);
  EngineOptions engine_options = config_.engine;
  if (engine_options.thesaurus == nullptr) engine_options.thesaurus = &thesaurus_;
  engine_ = std::make_unique<QueryEngine>(partition_, registry_, db_, engine_options);
  responder_ = std::make_unique<ResponseBuilder>(partition_, db_);

  // Route index-generation retirement through the epoch manager and publish
  // the empty-catalog snapshot: readers have a snapshot to pin from the
  // first instant.
  db_.set_reclaimer(&epochs_);
  publish_locked();
}

MetadataCatalog::~MetadataCatalog() {
  delete snapshot_.load(std::memory_order_relaxed);
}

void MetadataCatalog::publish_locked() {
  // Bring every index generation up to the committed row counts: readers of
  // the new snapshot never sync (their probes stop at the watermarks, which
  // the generations now cover).
  db_.sync_indexes();

  if (published_defs_ == nullptr ||
      published_attr_count_ != registry_.attribute_count() ||
      published_elem_count_ != registry_.element_count()) {
    published_defs_ = std::make_shared<const DefinitionRegistry>(registry_);
    published_attr_count_ = registry_.attribute_count();
    published_elem_count_ = registry_.element_count();
  }
  if (published_deleted_ == nullptr ||
      published_deleted_->size() != deleted_.size()) {
    published_deleted_ =
        std::make_shared<const std::unordered_set<ObjectId>>(deleted_);
  }

  auto* snap = new CatalogSnapshot;
  snap->epoch = version();
  snap->view = rel::ReadView(db_.watermarks());
  snap->defs = published_defs_;
  snap->deleted = published_deleted_;
  snap->stats = stats_;
  snap->next_object = next_object_.load(std::memory_order_acquire);
  snap->clob_count = db_.clobs().count();
  if (config_.cache.enabled) {
    // A fresh, empty per-generation cache segment: invalidation of the old
    // generation's entries is the retirement below — nothing is scanned.
    snap->cache = std::make_unique<QueryCacheSegment>(config_.cache, &cache_metrics_);
  }

  const CatalogSnapshot* old = snapshot_.exchange(snap, std::memory_order_acq_rel);
  if (old != nullptr) epochs_.retire(old);
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  // Seal the superseded epoch and collect whatever no reader pins anymore.
  epochs_.advance();
  epochs_.reclaim();
}

namespace {

std::uint64_t elapsed_micros(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

}  // namespace

ObjectId MetadataCatalog::ingest(const xml::Document& doc, const std::string& name,
                                 const std::string& owner) {
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock lock(mutex_);
  const ObjectId id = next_object_.fetch_add(1, std::memory_order_acq_rel);
  const ShredStats shred = shredder_->shred(doc, id, name, owner);
  stats_ += shred;
  bump_version();
  ingest_metrics_.record(1, shred.element_rows, shred.attribute_instances,
                         shred.clob_bytes, doc.arena_bytes(), elapsed_micros(start));
  MutationEvent event{MutationEvent::Kind::kIngest};
  event.epoch = version();
  event.object = id;
  event.name = name;
  event.owner = owner;
  event.content = doc.root.get();
  commit_locked(event);
  return id;
}

ObjectId MetadataCatalog::ingest_xml(std::string_view xml_text, const std::string& name,
                                     const std::string& owner) {
  // Parse outside the exclusive section: readers stay unblocked during it.
  // Arena mode: one input copy, pooled nodes, no per-node string churn.
  return ingest(xml::parse_arena(xml_text), name, owner);
}

void MetadataCatalog::add_attribute(ObjectId object, std::string_view attribute_path,
                                    const xml::Node& content, const std::string& owner) {
  std::unique_lock lock(mutex_);
  for (const AttributeRootInfo& root : partition_.attribute_roots()) {
    if (root.path == attribute_path) {
      stats_ += shredder_->shred_additional(content, object, root, owner);
      bump_version();
      MutationEvent event{MutationEvent::Kind::kAddAttribute};
      event.epoch = version();
      event.object = object;
      event.path = attribute_path;
      event.owner = owner;
      event.content = &content;
      commit_locked(event);
      return;
    }
  }
  throw ValidationError("no attribute root at path '" + std::string(attribute_path) + "'");
}

void MetadataCatalog::add_attribute_xml(ObjectId object, std::string_view attribute_path,
                                        std::string_view content_xml,
                                        const std::string& owner) {
  const xml::NodePtr content = xml::parse_fragment(content_xml);
  add_attribute(object, attribute_path, *content, owner);
}

std::vector<ObjectId> MetadataCatalog::ingest_parallel(
    util::ThreadPool& pool, const std::vector<xml::Document>& docs,
    const std::string& owner) {
  // Exclusive for the whole batch: the staging shredders read the shared
  // registry/partition, and the merge mutates every storage table.
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock lock(mutex_);
  // Reserve the id range up front so ids are stable regardless of thread
  // interleaving.
  const ObjectId first =
      next_object_.fetch_add(static_cast<ObjectId>(docs.size()), std::memory_order_acq_rel);

  // Per-thread staging databases: tables without indexes, shredded
  // independently, merged under a single lock at the end.
  const std::size_t shards = std::max<std::size_t>(1, pool.size());
  struct Shard {
    std::unique_ptr<rel::Database> db;
    std::unique_ptr<Shredder> shredder;
    ShredStats stats;
  };
  std::vector<Shard> staged(shards);
  // Staging rows outlive their staging database once merged, so staging
  // shredders must own their strings instead of interning them into the
  // soon-to-die staging interner (see rel/interner.hpp).
  ShredOptions staging_options = config_.shred;
  staging_options.intern_strings = false;
  for (Shard& shard : staged) {
    shard.db = std::make_unique<rel::Database>();
    install_storage(*shard.db);  // no indexes during staging
    shard.shredder =
        std::make_unique<Shredder>(partition_, registry_, *shard.db, staging_options);
  }

  // Note: auto-definition mutates the shared registry; ingest_parallel
  // therefore requires all dynamic definitions to be registered up front.
  if (config_.shred.auto_define_dynamic) {
    throw ValidationError(
        "ingest_parallel requires pre-registered dynamic definitions "
        "(auto_define_dynamic is not thread-safe)");
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    futures.push_back(pool.submit([&, s] {
      Shard& shard = staged[s];
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= docs.size()) break;
        shard.stats += shard.shredder->shred(
            docs[i], first + static_cast<ObjectId>(i),
            "doc-" + std::to_string(first + static_cast<ObjectId>(i)), owner);
      }
    }));
  }
  for (auto& f : futures) f.get();

  // Merge staged rows and CLOBs. Each target table is independent, so the
  // per-table merges run concurrently; CLOB ids are remapped by offsetting
  // with per-shard offsets computed up front.
  std::vector<rel::ClobId> clob_offsets(shards);
  {
    auto offset = static_cast<rel::ClobId>(db_.clobs().count());
    for (std::size_t s = 0; s < shards; ++s) {
      clob_offsets[s] = offset;
      offset += static_cast<rel::ClobId>(staged[s].db->clobs().count());
    }
  }
  std::vector<std::future<void>> merge_tasks;
  merge_tasks.push_back(pool.submit([&] {
    for (Shard& shard : staged) {
      db_.clobs().absorb(shard.db->clobs());
    }
  }));
  for (const char* table_name :
       {kObjectsTable, kAttrInstancesTable, kAttrInvertedTable, kElemDataTable}) {
    merge_tasks.push_back(pool.submit([this, table_name, &staged] {
      rel::Table& target = db_.require_table(table_name);
      for (Shard& shard : staged) {
        target.merge_move_from(shard.db->require_table(table_name));
      }
    }));
  }
  merge_tasks.push_back(pool.submit([this, &staged, &clob_offsets] {
    // attr_clobs needs the clob_id column remapped.
    rel::Table& target = db_.require_table(kAttrClobsTable);
    const std::size_t clob_id_col = target.schema().require("clob_id");
    for (std::size_t s = 0; s < staged.size(); ++s) {
      const rel::Table& source = staged[s].db->require_table(kAttrClobsTable);
      for (rel::Row row : source.rows()) {
        row[clob_id_col] = rel::Value(row[clob_id_col].as_int() + clob_offsets[s]);
        target.append_unchecked(std::move(row));
      }
    }
  }));
  for (auto& task : merge_tasks) task.get();
  ShredStats batch_stats;
  for (Shard& shard : staged) {
    stats_ += shard.stats;
    batch_stats += shard.stats;
    shredder_->absorb_counters(*shard.shredder);
  }
  bump_version();
  std::uint64_t arena_bytes = 0;
  for (const xml::Document& doc : docs) arena_bytes += doc.arena_bytes();
  ingest_metrics_.record(docs.size(), batch_stats.element_rows,
                         batch_stats.attribute_instances, batch_stats.clob_bytes,
                         arena_bytes, elapsed_micros(start));
  try {
    if (observer_) {
      // One event per document, in id order, sharing the batch's epoch —
      // replaying them sequentially reproduces the same id assignment.
      for (std::size_t i = 0; i < docs.size(); ++i) {
        const ObjectId id = first + static_cast<ObjectId>(i);
        MutationEvent event{MutationEvent::Kind::kIngest};
        event.epoch = version();
        event.object = id;
        const std::string doc_name = "doc-" + std::to_string(id);
        event.name = doc_name;
        event.owner = owner;
        event.content = docs[i].root.get();
        notify(event);
      }
    }
  } catch (...) {
    publish_locked();
    throw;
  }
  publish_locked();

  std::vector<ObjectId> ids;
  ids.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    ids.push_back(first + static_cast<ObjectId>(i));
  }
  return ids;
}

AttrDefId MetadataCatalog::define_dynamic_attribute(
    const std::string& name, const std::string& source,
    const std::vector<DynamicElementSpec>& elements, Visibility visibility,
    const std::string& owner) {
  std::unique_lock lock(mutex_);
  // Dynamic top-level definitions anchor at the first dynamic root's order.
  OrderId order = kNoOrder;
  for (const AttributeRootInfo& root : partition_.attribute_roots()) {
    if (root.dynamic) {
      order = root.order;
      break;
    }
  }
  const AttrDefId id = registry_.define_attribute(name, source, AttrKind::kDynamic,
                                                  kNoAttr, order, visibility, owner);
  for (const DynamicElementSpec& elem : elements) {
    registry_.define_element(elem.name, elem.source.empty() ? source : elem.source, id,
                             elem.type);
  }
  bump_version();
  MutationEvent event{MutationEvent::Kind::kDefine};
  event.epoch = version();
  event.attr = id;
  event.parent = kNoAttr;
  event.visibility = visibility;
  event.name = name;
  event.source = source;
  event.owner = owner;
  event.elements = &elements;
  commit_locked(event);
  return id;
}

AttrDefId MetadataCatalog::define_dynamic_sub_attribute(
    AttrDefId parent, const std::string& name, const std::string& source,
    const std::vector<DynamicElementSpec>& elements, Visibility visibility,
    const std::string& owner) {
  std::unique_lock lock(mutex_);
  const AttrDefId id = registry_.define_attribute(name, source, AttrKind::kDynamic,
                                                  parent, kNoOrder, visibility, owner);
  for (const DynamicElementSpec& elem : elements) {
    registry_.define_element(elem.name, elem.source.empty() ? source : elem.source, id,
                             elem.type);
  }
  bump_version();
  MutationEvent event{MutationEvent::Kind::kDefine};
  event.epoch = version();
  event.attr = id;
  event.parent = parent;
  event.visibility = visibility;
  event.name = name;
  event.source = source;
  event.owner = owner;
  event.elements = &elements;
  commit_locked(event);
  return id;
}

CollectionId MetadataCatalog::create_collection(const std::string& name,
                                                const std::string& owner,
                                                CollectionId parent) {
  std::unique_lock lock(mutex_);
  rel::Table& collections = db_.require_table("collections");
  if (parent != kNoCollection &&
      static_cast<std::size_t>(parent) >= collections.row_count()) {
    throw ValidationError("unknown parent collection " + std::to_string(parent));
  }
  const auto id = static_cast<CollectionId>(collections.row_count());
  collections.append(rel::Row{rel::Value(id), rel::Value(name), rel::Value(owner),
                              parent == kNoCollection ? rel::Value::null()
                                                      : rel::Value(parent)});
  bump_version();
  MutationEvent event{MutationEvent::Kind::kCreateCollection};
  event.epoch = version();
  event.collection = id;
  event.parent_collection = parent;
  event.name = name;
  event.owner = owner;
  commit_locked(event);
  return id;
}

void MetadataCatalog::add_to_collection(CollectionId collection, ObjectId object) {
  std::unique_lock lock(mutex_);
  rel::Table& members = db_.require_table("collection_members");
  if (static_cast<std::size_t>(collection) >=
      db_.require_table("collections").row_count()) {
    throw ValidationError("unknown collection " + std::to_string(collection));
  }
  const rel::Index* pair_index = members.index("idx_member_pair");
  if (!pair_index->lookup(rel::Key{{rel::Value(collection), rel::Value(object)}}).empty()) {
    return;  // already a member — no state change, nothing to publish
  }
  members.append(rel::Row{rel::Value(collection), rel::Value(object)});
  bump_version();
  MutationEvent event{MutationEvent::Kind::kAddToCollection};
  event.epoch = version();
  event.collection = collection;
  event.object = object;
  commit_locked(event);
}

std::vector<CollectionId> MetadataCatalog::child_collections_at(
    const CatalogSnapshot& snap, CollectionId collection) const {
  const rel::Table& collections = db_.require_table("collections");
  const rel::Index* by_parent = collections.index("idx_coll_parent");
  std::vector<rel::RowId> scratch;
  snap.view.lookup_into(collections, *by_parent, rel::Key{{rel::Value(collection)}},
                        scratch);
  std::vector<CollectionId> out;
  out.reserve(scratch.size());
  for (const rel::RowId id : scratch) {
    out.push_back(collections.row_unchecked(id)[0].as_int());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CollectionId> MetadataCatalog::child_collections(
    CollectionId collection) const {
  ReadGuard guard(*this);
  return child_collections_at(guard.snapshot(), collection);
}

std::vector<ObjectId> MetadataCatalog::collection_members_at(
    const CatalogSnapshot& snap, CollectionId collection, bool recursive) const {
  const rel::Table& members = db_.require_table("collection_members");
  const rel::Index* by_collection = members.index("idx_member_coll");
  std::vector<rel::RowId> scratch;
  std::vector<ObjectId> out;
  std::vector<CollectionId> frontier{collection};
  while (!frontier.empty()) {
    const CollectionId current = frontier.back();
    frontier.pop_back();
    scratch.clear();
    snap.view.lookup_into(members, *by_collection, rel::Key{{rel::Value(current)}},
                          scratch);
    for (const rel::RowId id : scratch) {
      out.push_back(members.row_unchecked(id)[1].as_int());
    }
    if (recursive) {
      const auto children = child_collections_at(snap, current);
      frontier.insert(frontier.end(), children.begin(), children.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ObjectId> MetadataCatalog::collection_members(CollectionId collection,
                                                          bool recursive) const {
  ReadGuard guard(*this);
  return collection_members_at(guard.snapshot(), collection, recursive);
}

std::vector<ObjectId> MetadataCatalog::query_in_collection(CollectionId collection,
                                                           const ObjectQuery& q,
                                                           bool recursive) const {
  ReadGuard guard(*this);
  const CatalogSnapshot& snap = guard.snapshot();
  const std::vector<ObjectId> scope = collection_members_at(snap, collection, recursive);
  QueryContext ctx;
  ctx.registry = snap.defs.get();
  ctx.view = &snap.view;
  const std::vector<ObjectId> hits = engine_->run(q, nullptr, ctx);
  std::vector<ObjectId> out;
  std::set_intersection(hits.begin(), hits.end(), scope.begin(), scope.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<ObjectId> MetadataCatalog::query_at(const CatalogSnapshot& snap,
                                                const ObjectQuery& q,
                                                QueryPlanInfo* info) const {
  QueryContext ctx;
  ctx.registry = snap.defs.get();
  ctx.view = &snap.view;
  // L1 memo, for plain runs only: plan-info callers want real pipeline
  // counters, not a memoized set. The cached value is the tombstone-
  // filtered set, so a hit skips the filter too.
  std::string key;
  if (info == nullptr && snap.cache != nullptr) {
    key = engine_->canonical_key(q, ctx);
    if (const auto cached = snap.cache->find_ids(key)) return cached->ids;
  }
  std::vector<ObjectId> hits = engine_->run(q, info, ctx);
  if (!snap.deleted->empty()) {
    std::erase_if(hits, [&snap](ObjectId id) { return snap.deleted->count(id) != 0; });
  }
  if (!key.empty()) {
    auto memo = std::make_shared<CachedIdSet>();
    memo->ids = hits;
    snap.cache->insert_ids(std::move(key), std::move(memo));
  }
  return hits;
}

std::vector<ObjectId> MetadataCatalog::query(const ObjectQuery& q,
                                             QueryPlanInfo* info) const {
  ReadGuard guard(*this);
  return query_at(guard.snapshot(), q, info);
}

namespace {

// Continuation cursors are opaque on the wire but versioned inside:
// "HXC1.<version-hex>.<resume-after-id-hex>". The version pin is what makes
// pages coherent without holding a lock between requests — any mutation
// bumps the epoch and invalidates outstanding cursors.
std::string encode_cursor(std::uint64_t version, ObjectId after) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "HXC1.%llx.%llx",
                static_cast<unsigned long long>(version),
                static_cast<unsigned long long>(after));
  return buf;
}

bool decode_cursor(std::string_view cursor, std::uint64_t& version, ObjectId& after) {
  if (cursor.rfind("HXC1.", 0) != 0) return false;
  unsigned long long v = 0, a = 0;
  char tail = 0;
  if (std::sscanf(cursor.data() + 5, "%llx.%llx%c", &v, &a, &tail) != 2) return false;
  version = v;
  after = static_cast<ObjectId>(a);
  return true;
}

}  // namespace

QueryPage MetadataCatalog::query_paged(const ObjectQuery& q, QueryPlanInfo* info) const {
  ReadGuard guard(*this);
  return query_paged_at(guard.snapshot(), q, info);
}

QueryPage MetadataCatalog::query_paged_at(const CatalogSnapshot& snap,
                                          const ObjectQuery& q,
                                          QueryPlanInfo* info) const {
  QueryPage page;
  page.version = snap.epoch;
  // Cursor re-entry lands on the L1 memo inside query_at: the full id-set
  // was cached when page one ran, so later pages slice it without touching
  // the engine.
  std::vector<ObjectId> hits = query_at(snap, q, info);
  if (!std::is_sorted(hits.begin(), hits.end())) {
    std::sort(hits.begin(), hits.end());  // defensive: the engine emits ascending
  }
  if (!q.cursor().empty()) {
    std::uint64_t cursor_version = 0;
    ObjectId after = 0;
    if (!decode_cursor(q.cursor(), cursor_version, after)) {
      throw ValidationError("malformed continuation cursor");
    }
    if (cursor_version != page.version) {
      throw StaleCursorError("cursor was issued at catalog version " +
                             std::to_string(cursor_version) + " but the catalog is at " +
                             std::to_string(page.version));
    }
    hits.erase(hits.begin(), std::upper_bound(hits.begin(), hits.end(), after));
  }
  if (q.limit() > 0 && hits.size() > q.limit()) {
    hits.resize(q.limit());
    page.next_cursor = encode_cursor(page.version, hits.back());
  }
  page.ids = std::move(hits);
  return page;
}

std::string MetadataCatalog::build_response_at(const CatalogSnapshot& snap,
                                               std::span<const ObjectId> ids,
                                               const std::vector<OrderId>* orders) const {
  std::string out = "<results>";
  for (const ObjectId id : ids) {
    if (snap.deleted->count(id) != 0) continue;
    out += "<result objectID=\"" + std::to_string(id) + "\">";
    out += orders == nullptr ? responder_->build_document(id, &snap.view)
                             : responder_->build_document(id, *orders, &snap.view);
    out += "</result>";
  }
  out += "</results>";
  return out;
}

std::string MetadataCatalog::build_response(std::span<const ObjectId> ids) const {
  ReadGuard guard(*this);
  return build_response_at(guard.snapshot(), ids, nullptr);
}

std::string MetadataCatalog::build_response(
    std::span<const ObjectId> ids, const std::vector<std::string>& attribute_paths) const {
  std::vector<OrderId> orders;
  orders.reserve(attribute_paths.size());
  for (const std::string& path : attribute_paths) {
    bool found = false;
    for (const AttributeRootInfo& root : partition_.attribute_roots()) {
      if (root.path == path) {
        orders.push_back(root.order);
        found = true;
        break;
      }
    }
    if (!found) {
      throw ValidationError("no attribute root at path '" + path + "'");
    }
  }
  ReadGuard guard(*this);
  return build_response_at(guard.snapshot(), ids, &orders);
}

void MetadataCatalog::delete_object(ObjectId id) {
  std::unique_lock lock(mutex_);
  if (id < 0 || id >= next_object_.load(std::memory_order_acquire)) {
    throw ValidationError("unknown object " + std::to_string(id));
  }
  deleted_.insert(id);
  bump_version();
  MutationEvent event{MutationEvent::Kind::kDelete};
  event.epoch = version();
  event.object = id;
  commit_locked(event);
}

namespace {

void write_token(std::ostream& out, const std::string& s) {
  out << s.size() << ' ';
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
  out << '\n';
}

std::string read_token(std::istream& in) {
  std::size_t length = 0;
  if (!(in >> length)) throw ValidationError("truncated catalog stream");
  in.get();
  std::string s(length, '\0');
  in.read(s.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::size_t>(in.gcount()) != length) {
    throw ValidationError("truncated catalog stream");
  }
  return s;
}

}  // namespace

void MetadataCatalog::save(std::ostream& out) const {
  std::shared_lock lock(mutex_);
  save_impl(out, /*binary=*/false);
}

void MetadataCatalog::save_binary(std::ostream& out) const {
  std::shared_lock lock(mutex_);
  save_impl(out, /*binary=*/true);
}

void MetadataCatalog::save_binary_unlocked(std::ostream& out) const {
  save_impl(out, /*binary=*/true);
}

void MetadataCatalog::save_impl(std::ostream& out, bool binary) const {
  out << (binary ? "HXRCCAT 2\n" : "HXRCCAT 1\n");
  if (binary) {
    // Format 2 carries the version epoch so recovery restores it; format 1
    // predates epochs and restores by bumping.
    out << "epoch " << version_.load(std::memory_order_acquire) << '\n';
  }
  out << "next_object " << next_object_.load(std::memory_order_acquire) << '\n';

  // Structural definitions are reproduced by the constructor; count them so
  // restore can verify alignment, then write everything after them.
  std::size_t structural_attrs = 0;
  for (const AttributeDef& def : registry_.attributes()) {
    if (def.kind == AttrKind::kStructural) ++structural_attrs;
  }
  std::size_t structural_elems = 0;
  for (const ElementDef& def : registry_.elements()) {
    if (registry_.attribute(def.attribute).kind == AttrKind::kStructural &&
        def.source.empty()) {
      ++structural_elems;
    }
  }
  // Structural defs form the id prefix (they are all created in the ctor).
  out << "attrs " << structural_attrs << ' ' << registry_.attribute_count() << '\n';
  for (std::size_t i = structural_attrs; i < registry_.attribute_count(); ++i) {
    const AttributeDef& def = registry_.attribute(static_cast<AttrDefId>(i));
    write_token(out, def.name);
    write_token(out, def.source);
    out << static_cast<int>(def.kind) << ' ' << def.parent << ' ' << def.schema_order
        << ' ' << static_cast<int>(def.visibility) << ' ';
    write_token(out, def.owner);
    out << (def.queryable ? 1 : 0) << '\n';
  }

  // Element defs: the structural prefix is likewise rebuilt by the ctor.
  std::size_t structural_elem_prefix = 0;
  for (const ElementDef& def : registry_.elements()) {
    if (static_cast<std::size_t>(def.attribute) < structural_attrs) {
      ++structural_elem_prefix;
    } else {
      break;
    }
  }
  (void)structural_elems;
  out << "elems " << structural_elem_prefix << ' ' << registry_.element_count() << '\n';
  for (std::size_t i = structural_elem_prefix; i < registry_.element_count(); ++i) {
    const ElementDef& def = registry_.element(static_cast<ElemDefId>(i));
    write_token(out, def.name);
    write_token(out, def.source);
    out << def.attribute << ' ' << static_cast<int>(def.type) << '\n';
  }

  // Thesaurus.
  const auto synonyms = thesaurus_.items();
  out << "thesaurus " << synonyms.size() << '\n';
  for (const auto& [alias, canonical] : synonyms) {
    write_token(out, alias.name);
    write_token(out, alias.source);
    write_token(out, canonical.name);
    write_token(out, canonical.source);
  }

  out << "deleted " << deleted_.size() << '\n';
  for (const ObjectId id : deleted_) out << id << '\n';

  shredder_->save_counters(out);
  if (binary) {
    rel::save_database_binary(db_, out);
  } else {
    rel::save_database(db_, out);
  }
}

void MetadataCatalog::restore(std::istream& in) {
  std::unique_lock lock(mutex_);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "HXRCCAT" || (version != 1 && version != 2)) {
    throw ValidationError("not an HXRCCAT version-1/2 stream");
  }
  std::string tag;
  std::uint64_t restored_epoch = 0;
  if (version == 2) {
    if (!(in >> tag >> restored_epoch) || tag != "epoch") {
      throw ValidationError("bad epoch line in catalog stream");
    }
  }
  ObjectId restored_next = 0;
  if (!(in >> tag >> restored_next) || tag != "next_object") {
    throw ValidationError("bad catalog header");
  }
  next_object_.store(restored_next, std::memory_order_release);

  // Dynamic attribute definitions (the structural prefix must align with
  // what the constructor rebuilt from the schema).
  std::size_t structural_attrs = 0;
  std::size_t total_attrs = 0;
  if (!(in >> tag >> structural_attrs >> total_attrs) || tag != "attrs") {
    throw ValidationError("bad attrs section");
  }
  std::size_t current_structural = 0;
  for (const AttributeDef& def : registry_.attributes()) {
    if (def.kind == AttrKind::kStructural) ++current_structural;
  }
  if (current_structural != structural_attrs ||
      registry_.attribute_count() != structural_attrs) {
    throw ValidationError(
        "catalog stream was saved against a different schema partition");
  }
  for (std::size_t i = structural_attrs; i < total_attrs; ++i) {
    const std::string name = read_token(in);
    const std::string source = read_token(in);
    int kind = 0;
    AttrDefId parent = kNoAttr;
    OrderId order = kNoOrder;
    int visibility = 0;
    in >> kind >> parent >> order >> visibility;
    const std::string owner = read_token(in);
    int queryable = 1;
    in >> queryable;
    const AttrDefId id = registry_.define_attribute(
        name, source, static_cast<AttrKind>(kind), parent, order,
        static_cast<Visibility>(visibility), owner, queryable != 0);
    if (static_cast<std::size_t>(id) != i) {
      throw ValidationError("definition id drift while restoring attributes");
    }
  }

  std::size_t structural_elem_prefix = 0;
  std::size_t total_elems = 0;
  if (!(in >> tag >> structural_elem_prefix >> total_elems) || tag != "elems") {
    throw ValidationError("bad elems section");
  }
  if (registry_.element_count() != structural_elem_prefix) {
    throw ValidationError(
        "catalog stream was saved against a different structural element set");
  }
  for (std::size_t i = structural_elem_prefix; i < total_elems; ++i) {
    const std::string name = read_token(in);
    const std::string source = read_token(in);
    AttrDefId attribute = kNoAttr;
    int type = 0;
    in >> attribute >> type;
    const ElemDefId id =
        registry_.define_element(name, source, attribute, static_cast<xml::LeafType>(type));
    if (static_cast<std::size_t>(id) != i) {
      throw ValidationError("definition id drift while restoring elements");
    }
  }

  std::size_t synonym_count = 0;
  if (!(in >> tag >> synonym_count) || tag != "thesaurus") {
    throw ValidationError("bad thesaurus section");
  }
  for (std::size_t i = 0; i < synonym_count; ++i) {
    const std::string alias_name = read_token(in);
    const std::string alias_source = read_token(in);
    const std::string canonical_name = read_token(in);
    const std::string canonical_source = read_token(in);
    thesaurus_.add_synonym(alias_name, alias_source, canonical_name, canonical_source);
  }

  std::size_t deleted_count = 0;
  if (!(in >> tag >> deleted_count) || tag != "deleted") {
    throw ValidationError("bad deleted section");
  }
  deleted_.clear();
  for (std::size_t i = 0; i < deleted_count; ++i) {
    ObjectId id = 0;
    in >> id;
    deleted_.insert(id);
  }

  shredder_->load_counters(in);
  if (version == 2) {
    rel::load_database_into_binary(db_, in);
    version_.store(restored_epoch, std::memory_order_release);
  } else {
    rel::load_database_into(db_, in);
    bump_version();
  }
  // The registry and tombstone set were rebuilt wholesale; drop the COW
  // caches so the restored snapshot cannot alias pre-restore contents, then
  // publish the restored state at its epoch.
  published_defs_.reset();
  published_deleted_.reset();
  publish_locked();
}

void MetadataCatalog::restore_version(std::uint64_t epoch) {
  std::unique_lock lock(mutex_);
  version_.store(epoch, std::memory_order_release);
  publish_locked();
}

xml::Document MetadataCatalog::fetch(ObjectId id) const {
  std::string text;
  {
    ReadGuard guard(*this);
    if (guard->deleted->count(id) != 0) {
      throw ValidationError("object " + std::to_string(id) + " has been deleted");
    }
    text = responder_->build_document(id, &guard->view);
  }
  // Parse outside the pinned section: the text is already a private copy.
  if (text.empty()) {
    // An object with no stored attributes reconstructs as an empty root.
    xml::Document doc;
    doc.root = xml::Node::element(schema_.root().name());
    return doc;
  }
  return xml::parse(text);
}

}  // namespace hxrc::core
