// Physical storage layout of the hybrid catalog (§3).
//
// One rel::Database holds everything:
//   objects(object_id, name, owner)
//   attr_instances(object_id, attr_id, seq, top, clob_seq)
//       one row per metadata attribute *instance*; `seq` is the same-sibling
//       sequence id (unique per object+definition); `clob_seq` links top
//       instances to their CLOB (NULL for sub-attribute instances).
//   attr_inverted(object_id, attr_id, seq, anc_attr_id, anc_seq, distance)
//       the inverted list from each sub-attribute instance to every
//       enclosing attribute instance (distance >= 1) — this is what lets
//       queries avoid recursion (§4).
//   elem_data(object_id, attr_id, seq, elem_id, elem_seq, value_str, value_num)
//       one row per metadata element; numeric values are mirrored into
//       value_num so range predicates compare numerically.
//   attr_clobs(object_id, order_id, clob_seq, clob_id)
//       per-attribute CLOBs keyed by the schema global order (§2, §5).
// plus the ordering tables created by install_ordering (ordering.hpp).
#pragma once

#include "rel/database.hpp"

namespace hxrc::core {

inline constexpr const char* kObjectsTable = "objects";
inline constexpr const char* kAttrInstancesTable = "attr_instances";
inline constexpr const char* kAttrInvertedTable = "attr_inverted";
inline constexpr const char* kElemDataTable = "elem_data";
inline constexpr const char* kAttrClobsTable = "attr_clobs";

/// Creates the five storage tables.
void install_storage(rel::Database& db);

/// Creates the secondary indexes the query/response pipelines probe.
/// Split from install_storage so parallel ingest can stage without index
/// maintenance and index once after the merge.
void install_storage_indexes(rel::Database& db);

}  // namespace hxrc::core
