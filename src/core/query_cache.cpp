#include "core/query_cache.hpp"

namespace hxrc::core {

namespace {

util::ShardedCacheConfig level_config(std::size_t shards, std::size_t max_entries,
                                      std::size_t max_bytes) {
  util::ShardedCacheConfig config;
  config.shards = shards;
  config.max_entries = max_entries;
  config.max_bytes = max_bytes;
  return config;
}

}  // namespace

QueryCacheSegment::QueryCacheSegment(const CacheConfig& config,
                                     util::CacheMetrics* metrics)
    : l1_(level_config(config.shards, config.l1_max_entries, config.l1_max_bytes),
          metrics == nullptr ? nullptr : &metrics->l1),
      l2_(level_config(config.shards, config.l2_max_entries, config.l2_max_bytes),
          metrics == nullptr ? nullptr : &metrics->l2) {}

void QueryCacheSegment::insert_ids(std::string key,
                                   std::shared_ptr<const CachedIdSet> ids) {
  // Accounted at payload size: the ids are the dominant term; the key and
  // slot overhead ride inside the entry cap.
  const std::size_t bytes = key.size() + ids->ids.size() * sizeof(ObjectId);
  l1_.insert(std::move(key), std::move(ids), bytes);
}

void QueryCacheSegment::insert_response(std::string key,
                                        std::shared_ptr<const CachedResponse> response) {
  const std::size_t bytes = key.size() + response->body.size();
  l2_.insert(std::move(key), std::move(response), bytes);
}

}  // namespace hxrc::core
