// The definition registry: metadata attribute and element definitions (§2-3).
//
// The catalog tracks a definition for every metadata attribute (unique id,
// schema order, parent attribute for sub-attributes) and every metadata
// element (unique id, owning attribute, data type). Structural definitions
// are derived from the partitioned schema; dynamic definitions are
// registered at administrator or user level, with user-level definitions
// private to their owner. Shredding *validates* documents against this
// registry: elements that do not match a definition stay CLOB-only.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.hpp"
#include "core/partition.hpp"

namespace hxrc::core {

class DefinitionRegistry {
 public:
  /// Registers structural attribute/sub-attribute/element definitions for
  /// every attribute root in the partition.
  void install_structural(const Partition& partition);

  /// Registers a dynamic attribute definition (or sub-attribute when
  /// `parent` is given). Returns the existing id when an identical
  /// definition is already present.
  AttrDefId define_attribute(const std::string& name, const std::string& source,
                             AttrKind kind, AttrDefId parent = kNoAttr,
                             OrderId schema_order = kNoOrder,
                             Visibility visibility = Visibility::kAdmin,
                             const std::string& owner = {}, bool queryable = true);

  /// Registers an element definition under an attribute.
  ElemDefId define_element(const std::string& name, const std::string& source,
                           AttrDefId attribute,
                           xml::LeafType type = xml::LeafType::kString);

  /// Looks up an attribute definition visible to `user` ("" = admin scope
  /// only). Name+source+parent identify a definition; user-level definitions
  /// shadow nothing (admin match wins). Takes views so the shredder's
  /// per-node probes (names are string_views into the parse arena) cost no
  /// string construction — the maps do heterogeneous lookup.
  const AttributeDef* find_attribute(std::string_view name, std::string_view source,
                                     AttrDefId parent,
                                     std::string_view user = {}) const noexcept;

  const ElementDef* find_element(std::string_view name, std::string_view source,
                                 AttrDefId attribute) const noexcept;

  /// The unique element named `name` under `attribute` regardless of
  /// source; nullptr when absent or ambiguous across sources. Backed by a
  /// name-keyed multimap so the engine's loose lookups (queries omitting
  /// the source, §4) cost one hash probe instead of an O(registry) scan.
  const ElementDef* find_element_any_source(const std::string& name,
                                            AttrDefId attribute) const noexcept;

  /// The unique attribute named `name` under `parent` among definitions
  /// visible to `user`; nullptr when absent or ambiguous across sources.
  const AttributeDef* find_attribute_any_source(const std::string& name, AttrDefId parent,
                                                const std::string& user) const noexcept;

  const AttributeDef& attribute(AttrDefId id) const { return attributes_.at(static_cast<std::size_t>(id)); }
  const ElementDef& element(ElemDefId id) const { return elements_.at(static_cast<std::size_t>(id)); }

  std::size_t attribute_count() const noexcept { return attributes_.size(); }
  std::size_t element_count() const noexcept { return elements_.size(); }

  const std::vector<AttributeDef>& attributes() const noexcept { return attributes_; }
  const std::vector<ElementDef>& elements() const noexcept { return elements_; }

  /// Top-level structural definition for an attribute root order.
  std::optional<AttrDefId> structural_for_order(OrderId order) const noexcept;

 private:
  struct DefKey {
    std::string name;
    std::string source;
    AttrDefId parent;
    bool operator==(const DefKey&) const = default;
  };
  /// Borrowed-key twin of DefKey for heterogeneous lookup: probing with
  /// names that are views into a parse arena allocates nothing.
  struct DefKeyView {
    std::string_view name;
    std::string_view source;
    AttrDefId parent;
  };
  struct DefKeyHash {
    using is_transparent = void;
    static std::size_t mix(std::string_view name, std::string_view source,
                           AttrDefId parent) noexcept {
      std::size_t h = std::hash<std::string_view>{}(name);
      h ^= std::hash<std::string_view>{}(source) + 0x9e3779b9 + (h << 6) + (h >> 2);
      h ^= std::hash<std::int64_t>{}(parent) + 0x9e3779b9 + (h << 6) + (h >> 2);
      return h;
    }
    std::size_t operator()(const DefKey& k) const noexcept {
      return mix(k.name, k.source, k.parent);
    }
    std::size_t operator()(const DefKeyView& k) const noexcept {
      return mix(k.name, k.source, k.parent);
    }
  };
  struct DefKeyEqual {
    using is_transparent = void;
    static bool eq(std::string_view an, std::string_view as, AttrDefId ap,
                   std::string_view bn, std::string_view bs, AttrDefId bp) noexcept {
      return ap == bp && an == bn && as == bs;
    }
    bool operator()(const DefKey& a, const DefKey& b) const noexcept {
      return eq(a.name, a.source, a.parent, b.name, b.source, b.parent);
    }
    bool operator()(const DefKey& a, const DefKeyView& b) const noexcept {
      return eq(a.name, a.source, a.parent, b.name, b.source, b.parent);
    }
    bool operator()(const DefKeyView& a, const DefKey& b) const noexcept {
      return eq(a.name, a.source, a.parent, b.name, b.source, b.parent);
    }
  };

  void install_structural_subtree(const xml::SchemaNode& node, AttrDefId parent_def);

  std::vector<AttributeDef> attributes_;
  std::vector<ElementDef> elements_;
  /// Multiple ids per key: the same name/source/parent may be defined at
  /// admin level and privately by several users.
  std::unordered_map<DefKey, std::vector<AttrDefId>, DefKeyHash, DefKeyEqual>
      attribute_lookup_;
  std::unordered_map<DefKey, ElemDefId, DefKeyHash, DefKeyEqual> element_lookup_;
  /// Name-only secondary lookups (keyed with source = "", all sources
  /// bucketed together) backing the *_any_source loose lookups.
  std::unordered_multimap<DefKey, AttrDefId, DefKeyHash, DefKeyEqual> attribute_by_name_;
  std::unordered_multimap<DefKey, ElemDefId, DefKeyHash, DefKeyEqual> element_by_name_;
  std::unordered_map<OrderId, AttrDefId> structural_by_order_;
};

}  // namespace hxrc::core
