#include "core/registry.hpp"

namespace hxrc::core {

void DefinitionRegistry::install_structural(const Partition& partition) {
  for (const AttributeRootInfo& root : partition.attribute_roots()) {
    if (root.dynamic) {
      // Dynamic roots get no structural definition at all: their content is
      // identified by name/source values and registered dynamic
      // definitions, not by the schema structure (§3).
      continue;
    }
    const AttrDefId def = define_attribute(root.tag, /*source=*/"", AttrKind::kStructural,
                                           kNoAttr, root.order, Visibility::kAdmin, {},
                                           root.queryable);
    structural_by_order_[root.order] = def;
    if (root.schema_node->is_leaf()) {
      // Attribute-element: the root itself carries the value.
      define_element(root.tag, "", def, root.schema_node->leaf_type());
      continue;
    }
    for (const auto& child : root.schema_node->children()) {
      install_structural_subtree(*child, def);
    }
  }
}

void DefinitionRegistry::install_structural_subtree(const xml::SchemaNode& node,
                                                    AttrDefId parent_def) {
  if (node.is_leaf()) {
    define_element(node.name(), "", parent_def, node.leaf_type());
    return;
  }
  const AttrDefId sub = define_attribute(node.name(), "", AttrKind::kStructural, parent_def);
  for (const auto& child : node.children()) {
    install_structural_subtree(*child, sub);
  }
}

AttrDefId DefinitionRegistry::define_attribute(const std::string& name,
                                               const std::string& source, AttrKind kind,
                                               AttrDefId parent, OrderId schema_order,
                                               Visibility visibility,
                                               const std::string& owner, bool queryable) {
  // Idempotent: re-defining an identical visible definition returns it.
  if (const AttributeDef* existing = find_attribute(name, source, parent, owner)) {
    if (existing->visibility == visibility && existing->owner == owner) {
      return existing->id;
    }
  }
  AttributeDef def;
  def.id = static_cast<AttrDefId>(attributes_.size());
  def.name = name;
  def.source = source;
  def.kind = kind;
  def.parent = parent;
  def.schema_order = schema_order;
  def.visibility = visibility;
  def.owner = owner;
  def.queryable = queryable;
  attributes_.push_back(def);
  attribute_lookup_[DefKey{name, source, parent}].push_back(def.id);
  attribute_by_name_.emplace(DefKey{name, "", parent}, def.id);
  return def.id;
}

ElemDefId DefinitionRegistry::define_element(const std::string& name,
                                             const std::string& source, AttrDefId attribute,
                                             xml::LeafType type) {
  const DefKey key{name, source, attribute};
  const auto it = element_lookup_.find(key);
  if (it != element_lookup_.end()) return it->second;
  ElementDef def;
  def.id = static_cast<ElemDefId>(elements_.size());
  def.name = name;
  def.source = source;
  def.attribute = attribute;
  def.type = type;
  elements_.push_back(def);
  element_lookup_.emplace(key, def.id);
  element_by_name_.emplace(DefKey{name, "", attribute}, def.id);
  return def.id;
}

const AttributeDef* DefinitionRegistry::find_attribute(std::string_view name,
                                                       std::string_view source,
                                                       AttrDefId parent,
                                                       std::string_view user) const noexcept {
  const auto it = attribute_lookup_.find(DefKeyView{name, source, parent});
  if (it == attribute_lookup_.end()) return nullptr;
  const AttributeDef* user_match = nullptr;
  for (const AttrDefId id : it->second) {
    const AttributeDef& def = attributes_[static_cast<std::size_t>(id)];
    if (def.visibility == Visibility::kAdmin) return &def;  // admin wins
    if (!user.empty() && def.owner == user) user_match = &def;
  }
  return user_match;
}

const ElementDef* DefinitionRegistry::find_element(std::string_view name,
                                                   std::string_view source,
                                                   AttrDefId attribute) const noexcept {
  const auto it = element_lookup_.find(DefKeyView{name, source, attribute});
  return it == element_lookup_.end() ? nullptr
                                     : &elements_[static_cast<std::size_t>(it->second)];
}

const ElementDef* DefinitionRegistry::find_element_any_source(
    const std::string& name, AttrDefId attribute) const noexcept {
  const auto [lo, hi] = element_by_name_.equal_range(DefKey{name, "", attribute});
  const ElementDef* unique = nullptr;
  for (auto it = lo; it != hi; ++it) {
    if (unique != nullptr) return nullptr;  // ambiguous across sources
    unique = &elements_[static_cast<std::size_t>(it->second)];
  }
  return unique;
}

const AttributeDef* DefinitionRegistry::find_attribute_any_source(
    const std::string& name, AttrDefId parent, const std::string& user) const noexcept {
  const auto [lo, hi] = attribute_by_name_.equal_range(DefKey{name, "", parent});
  const AttributeDef* unique = nullptr;
  for (auto it = lo; it != hi; ++it) {
    const AttributeDef& def = attributes_[static_cast<std::size_t>(it->second)];
    if (def.visibility == Visibility::kUser && def.owner != user) continue;
    if (unique != nullptr) return nullptr;  // ambiguous across sources
    unique = &def;
  }
  return unique;
}

std::optional<AttrDefId> DefinitionRegistry::structural_for_order(OrderId order) const noexcept {
  const auto it = structural_by_order_.find(order);
  if (it == structural_by_order_.end()) return std::nullopt;
  return it->second;
}

}  // namespace hxrc::core
