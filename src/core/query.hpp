// The user-facing query model: unordered queries over metadata attributes.
//
// Mirrors the paper's MyFile/MyAttr Java API (§4):
//
//   ObjectQuery q;
//   AttrQuery grid("grid", "ARPS");
//   grid.add_element("dx", "ARPS", 1000.0, CompareOp::kEq);
//   AttrQuery stretching("grid-stretching", "ARPS");
//   stretching.add_element("dzmin", "", 100.0, CompareOp::kEq);
//   grid.add_attribute(std::move(stretching));
//   q.add_attribute(std::move(grid));
//
// The query asks "which objects contain the metadata attributes of interest"
// — paths are immaterial. Sub-attribute criteria match instances at any
// nesting depth below the parent attribute instance (the inverted list in
// the storage layer makes this recursion-free, §4).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rel/value.hpp"
#include "xml/matcher.hpp"  // CompareOp

namespace hxrc::core {

using xml::CompareOp;

/// One criterion on a metadata element within an attribute.
struct ElementPredicate {
  std::string name;
  /// Source for dynamic elements; "" for structural elements.
  std::string source;
  /// When true, only existence of the element is required.
  bool exists_only = false;
  CompareOp op = CompareOp::kEq;
  rel::Value value;
};

/// Criteria on one metadata attribute (possibly nested).
class AttrQuery {
 public:
  AttrQuery(std::string name, std::string source = {})
      : name_(std::move(name)), source_(std::move(source)) {}

  AttrQuery& add_element(std::string name, std::string source, rel::Value value,
                         CompareOp op = CompareOp::kEq) {
    elements_.push_back(ElementPredicate{std::move(name), std::move(source), false, op,
                                         std::move(value)});
    return *this;
  }

  /// Structural-element overload (no source).
  AttrQuery& add_element(std::string name, rel::Value value,
                         CompareOp op = CompareOp::kEq) {
    return add_element(std::move(name), {}, std::move(value), op);
  }

  /// Existence-only criterion.
  AttrQuery& require_element(std::string name, std::string source = {}) {
    elements_.push_back(
        ElementPredicate{std::move(name), std::move(source), true, CompareOp::kEq, {}});
    return *this;
  }

  AttrQuery& add_attribute(AttrQuery sub) {
    sub_attributes_.push_back(std::move(sub));
    return *this;
  }

  const std::string& name() const noexcept { return name_; }
  const std::string& source() const noexcept { return source_; }
  const std::vector<ElementPredicate>& elements() const noexcept { return elements_; }
  const std::vector<AttrQuery>& sub_attributes() const noexcept { return sub_attributes_; }

  /// Depth of the criteria tree rooted here (1 = no sub-attributes).
  std::size_t depth() const noexcept;

 private:
  std::string name_;
  std::string source_;
  std::vector<ElementPredicate> elements_;
  std::vector<AttrQuery> sub_attributes_;
};

/// A full object query: conjunction of top-level attribute criteria.
class ObjectQuery {
 public:
  ObjectQuery& add_attribute(AttrQuery attr) {
    attributes_.push_back(std::move(attr));
    return *this;
  }

  /// The querying user; grants visibility of that user's private dynamic
  /// definitions (§3).
  ObjectQuery& set_user(std::string user) {
    user_ = std::move(user);
    return *this;
  }

  /// Page size for paginated execution (MetadataCatalog::query_paged and
  /// the wire protocol's `limit` attribute); 0 = unlimited.
  ObjectQuery& set_limit(std::size_t limit) {
    limit_ = limit;
    return *this;
  }

  /// Opaque continuation cursor from a previous page's `next_cursor`.
  /// Cursors carry the catalog version they were issued at and go stale on
  /// any mutation (StaleCursorError / code="stale_cursor").
  ObjectQuery& set_cursor(std::string cursor) {
    cursor_ = std::move(cursor);
    return *this;
  }

  const std::vector<AttrQuery>& attributes() const noexcept { return attributes_; }
  const std::string& user() const noexcept { return user_; }
  std::size_t limit() const noexcept { return limit_; }
  const std::string& cursor() const noexcept { return cursor_; }

  bool has_sub_attributes() const noexcept;

 private:
  std::vector<AttrQuery> attributes_;
  std::string user_;
  std::size_t limit_ = 0;
  std::string cursor_;
};

}  // namespace hxrc::core
