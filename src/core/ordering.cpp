#include "core/ordering.hpp"

namespace hxrc::core {

void install_ordering(rel::Database& db, const Partition& partition) {
  using rel::Column;
  using rel::Row;
  using rel::Type;
  using rel::Value;

  rel::Table& order_table = db.create_table(
      kSchemaOrderTable,
      rel::TableSchema{{"order_id", Type::kInt},
                       {"tag", Type::kString},
                       {"parent_order", Type::kInt},
                       {"last_child", Type::kInt},
                       {"depth", Type::kInt},
                       {"is_attr", Type::kInt}});

  rel::Table& ancestors_table = db.create_table(
      kOrderAncestorsTable, rel::TableSchema{{"order_id", Type::kInt},
                                             {"anc_order", Type::kInt},
                                             {"distance", Type::kInt}});

  for (const OrderedNode& node : partition.ordered_nodes()) {
    order_table.append(Row{Value(node.order), Value(node.tag),
                           node.parent == kNoOrder ? Value::null() : Value(node.parent),
                           Value(node.last_child), Value(node.depth),
                           Value(std::int64_t{node.is_attribute_root ? 1 : 0})});
    const auto& ancestors = partition.ancestors_of(node.order);
    for (std::size_t i = 0; i < ancestors.size(); ++i) {
      ancestors_table.append(
          Row{Value(node.order), Value(ancestors[i]), Value(static_cast<std::int64_t>(i + 1))});
    }
  }

  order_table.create_hash_index("idx_order_id", {"order_id"});
  ancestors_table.create_hash_index("idx_anc_by_node", {"order_id"});
}

}  // namespace hxrc::core
