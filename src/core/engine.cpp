#include "core/engine.hpp"

#include <algorithm>

#include "core/storage.hpp"
#include "rel/ops.hpp"
#include "util/string_util.hpp"

namespace hxrc::core {

namespace {

/// One compiled element criterion, evaluated in place against elem_data
/// rows (no Expr tree, no Value temporaries): numeric compare when both
/// operands are numeric, string compare against the criterion text
/// otherwise — the shared comparison semantics used across the code base.
struct CompiledPred {
  bool exists_only = false;
  CompareOp op = CompareOp::kEq;
  bool numeric_rhs = false;
  double rhs_num = 0.0;
  std::string rhs_text;

  static CompiledPred compile(const ElementPredicate& pred) {
    CompiledPred out;
    out.exists_only = pred.exists_only;
    if (pred.exists_only) return out;
    out.op = pred.op;
    out.rhs_text = pred.value.to_string();
    if (const auto num = util::parse_double(out.rhs_text)) {
      out.numeric_rhs = true;
      out.rhs_num = *num;
    }
    return out;
  }

  static bool apply(CompareOp op, int cmp) noexcept {
    switch (op) {
      case CompareOp::kEq: return cmp == 0;
      case CompareOp::kNe: return cmp != 0;
      case CompareOp::kLt: return cmp < 0;
      case CompareOp::kLe: return cmp <= 0;
      case CompareOp::kGt: return cmp > 0;
      case CompareOp::kGe: return cmp >= 0;
    }
    return cmp == 0;
  }

  bool matches(const rel::Row& row, std::size_t str_col, std::size_t num_col) const {
    if (exists_only) return true;
    if (numeric_rhs) {
      // Numeric criterion: numeric compare when the stored value is
      // numeric (value_num mirrors every value that parses as a number).
      const rel::Value& num = row[num_col];
      if (!num.is_null()) {
        const double lhs = num.as_double();
        return apply(op, lhs < rhs_num ? -1 : (lhs > rhs_num ? 1 : 0));
      }
    }
    // String comparison; a NULL stored value matches nothing (SQL NULL).
    const rel::Value& str = row[str_col];
    if (str.is_null()) return false;
    const int cmp = str.as_string_view().compare(rhs_text);
    return apply(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0));
  }
};

/// One resolved element criterion of a query node.
struct ElementCriterion {
  std::size_t qe_id = 0;
  const ElementDef* def = nullptr;
  CompiledPred pred;
};

/// One shredded query-attribute criterion (a "temp table" row, Fig. 4).
struct QueryNode {
  std::size_t qa_id = 0;
  const AttrQuery* query = nullptr;
  std::size_t parent = SIZE_MAX;  // SIZE_MAX = top-level
  std::size_t depth = 0;          // 0 = top-level
  AttrDefId def = kNoAttr;
  std::vector<ElementCriterion> elements;
  std::vector<std::size_t> children;  // qa_ids
};

/// An attribute-instance reference: the pipeline's working currency. Stages
/// exchange sorted-unique vectors of these instead of materialized rows.
struct InstRef {
  std::int64_t object = 0;
  std::int64_t seq = 0;

  friend bool operator==(InstRef a, InstRef b) noexcept {
    return a.object == b.object && a.seq == b.seq;
  }
  friend bool operator<(InstRef a, InstRef b) noexcept {
    return a.object != b.object ? a.object < b.object : a.seq < b.seq;
  }
};

template <typename T>
void sort_unique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// a := a ∩ b; both sorted-unique.
template <typename T>
void intersect_into(std::vector<T>& a, const std::vector<T>& b, std::vector<T>& scratch) {
  scratch.clear();
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(scratch));
  a.swap(scratch);
}

/// Loose element lookup: exact (name, source) first, then a unique match by
/// name alone — the paper's MyAttr.addElement("dzmin", 100, EQ) omits the
/// source when it is unambiguous within the attribute — then the ontology's
/// synonyms (§3). Both fallbacks are hash probes against the registry's
/// name-keyed multimaps.
const ElementDef* find_element_loose(const DefinitionRegistry& registry,
                                     const std::string& name, const std::string& source,
                                     AttrDefId attribute, const Thesaurus* thesaurus) {
  if (const ElementDef* exact = registry.find_element(name, source, attribute)) {
    return exact;
  }
  if (source.empty()) {
    if (const ElementDef* unique = registry.find_element_any_source(name, attribute)) {
      return unique;
    }
  }
  if (thesaurus != nullptr) {
    if (const auto canonical = thesaurus->resolve(name, source)) {
      return registry.find_element(canonical->name, canonical->source, attribute);
    }
  }
  return nullptr;
}

/// Attribute lookup: exact (name, source) first; then, when the source is
/// omitted, a unique match by name among visible definitions with the same
/// parent; then the ontology's synonyms (§3).
const AttributeDef* find_attribute_loose(const DefinitionRegistry& registry,
                                         const std::string& name,
                                         const std::string& source, AttrDefId parent,
                                         const std::string& user,
                                         const Thesaurus* thesaurus) {
  if (const AttributeDef* exact = registry.find_attribute(name, source, parent, user)) {
    return exact;
  }
  if (source.empty()) {
    if (const AttributeDef* unique =
            registry.find_attribute_any_source(name, parent, user)) {
      return unique;
    }
  }
  if (thesaurus != nullptr) {
    if (const auto canonical = thesaurus->resolve(name, source)) {
      return registry.find_attribute(canonical->name, canonical->source, parent, user);
    }
  }
  return nullptr;
}

}  // namespace

struct QueryShredded {
  std::vector<QueryNode> nodes;
  std::vector<std::size_t> tops;
  std::size_t element_count = 0;
  std::size_t max_depth = 0;
  bool resolved = true;  // false when any definition was unknown/invisible
};

QueryEngine::QueryEngine(const Partition& partition, const DefinitionRegistry& registry,
                         const rel::Database& db, EngineOptions options)
    : partition_(partition), registry_(registry), db_(db), options_(options) {}

namespace {

void shred_attr(const DefinitionRegistry& registry, const Thesaurus* thesaurus,
                const std::string& user, const AttrQuery& attr, std::size_t parent,
                std::size_t depth, QueryShredded& out) {
  const AttrDefId parent_def =
      parent == SIZE_MAX ? kNoAttr : out.nodes[parent].def;
  const AttributeDef* def = find_attribute_loose(registry, attr.name(), attr.source(),
                                                 parent_def, user, thesaurus);

  QueryNode node;
  node.qa_id = out.nodes.size();
  node.query = &attr;
  node.parent = parent;
  node.depth = depth;
  out.max_depth = std::max(out.max_depth, depth);
  if (def == nullptr || !def->queryable) {
    out.resolved = false;
    out.nodes.push_back(std::move(node));
    return;
  }
  node.def = def->id;

  node.elements.reserve(attr.elements().size());
  for (const ElementPredicate& pred : attr.elements()) {
    const ElementDef* elem =
        find_element_loose(registry, pred.name, pred.source, def->id, thesaurus);
    if (elem == nullptr) {
      out.resolved = false;
    } else {
      node.elements.push_back(
          ElementCriterion{out.element_count, elem, CompiledPred::compile(pred)});
    }
    ++out.element_count;
  }

  const std::size_t my_index = out.nodes.size();
  out.nodes.push_back(std::move(node));
  if (parent != SIZE_MAX) out.nodes[parent].children.push_back(my_index);
  if (parent == SIZE_MAX) out.tops.push_back(my_index);

  for (const AttrQuery& sub : attr.sub_attributes()) {
    shred_attr(registry, thesaurus, user, sub, my_index, depth + 1, out);
  }
}

/// Shared state of one pipeline run: resolved tables/indexes/columns, the
/// plan counters, and scratch buffers reused across every probe and
/// intersection (allocation discipline: steady-state queries allocate only
/// for result vectors that survive the stage).
struct Pipeline {
  const rel::Table& elem_data;
  const rel::Index& elem_index;
  const rel::Table& instances;
  const rel::Index& inst_index;
  const rel::Table* inverted = nullptr;
  const rel::Index* inv_index = nullptr;
  /// Value-keyed equality indexes ((elem_id, value_str) / (elem_id,
  /// value_num)); nullptr on databases predating them.
  const rel::Index* elem_val_index = nullptr;
  const rel::Index* elem_num_index = nullptr;

  std::size_t elem_obj_col = 0;
  std::size_t elem_seq_col = 0;
  std::size_t str_col = 0;
  std::size_t num_col = 0;
  std::size_t inst_obj_col = 0;
  std::size_t inst_seq_col = 0;
  std::size_t inv_anc_attr_col = 0;
  std::size_t inv_anc_seq_col = 0;

  bool ordered = true;  // apply cardinality ordering
  QueryPlanInfo* info = nullptr;
  /// Snapshot watermarks; nullptr = live (syncing) probes.
  const rel::ReadView* view = nullptr;

  std::vector<rel::RowId> probe_scratch;
  std::vector<InstRef> inst_scratch;
  std::vector<ObjectId> obj_scratch;

  Pipeline(const rel::Database& db, bool ordered_, QueryPlanInfo* info_,
           const rel::ReadView* view_)
      : elem_data(db.require_table(kElemDataTable)),
        elem_index(*elem_data.index("idx_elem_def")),
        instances(db.require_table(kAttrInstancesTable)),
        inst_index(*instances.index("idx_inst_attr")),
        elem_val_index(elem_data.index("idx_elem_val")),
        elem_num_index(elem_data.index("idx_elem_num")),
        ordered(ordered_),
        info(info_),
        view(view_) {
    elem_obj_col = elem_data.schema().require("object_id");
    elem_seq_col = elem_data.schema().require("seq");
    str_col = elem_data.schema().require("value_str");
    num_col = elem_data.schema().require("value_num");
    inst_obj_col = instances.schema().require("object_id");
    inst_seq_col = instances.schema().require("seq");
  }

  void with_inverted(const rel::Database& db) {
    inverted = &db.require_table(kAttrInvertedTable);
    inv_index = inverted->index("idx_inv_child");
    inv_anc_attr_col = inverted->schema().require("anc_attr_id");
    inv_anc_seq_col = inverted->schema().require("anc_seq");
  }

  void count_probe() {
    if (info != nullptr) ++info->index_probes;
  }
  void count_scanned(std::size_t n = 1) {
    if (info != nullptr) info->rows_scanned += n;
  }
  void count_candidates(std::size_t n) {
    if (info != nullptr) info->candidate_rows += n;
  }
  void count_materialized(std::size_t n) {
    if (info != nullptr) info->rows_materialized += n;
  }

  std::size_t bucket(const rel::Index& index, const rel::Key& key) const {
    return view != nullptr ? view->bucket_size(elem_data, index, key)
                           : index.bucket_size(key);
  }

  /// True when `ec` can be answered by the value-keyed equality indexes.
  bool eq_probe_ready(const ElementCriterion& ec) const {
    return elem_val_index != nullptr && elem_num_index != nullptr &&
           !ec.pred.exists_only && ec.pred.op == CompareOp::kEq;
  }

  /// Cheap per-criterion cardinality estimates (index bucket sizes).
  std::size_t element_estimate(const ElementCriterion& ec) const {
    if (eq_probe_ready(ec)) {
      // Exact-bucket estimate: the union of the text bucket and (for a
      // numeric rhs) the numeric bucket bounds the criterion's result.
      std::size_t n = bucket(*elem_val_index, rel::Key{{rel::Value(ec.def->id),
                                                        rel::Value(ec.pred.rhs_text)}});
      if (ec.pred.numeric_rhs) {
        n += bucket(*elem_num_index,
                    rel::Key{{rel::Value(ec.def->id), rel::Value(ec.pred.rhs_num)}});
      }
      return n;
    }
    const rel::Key key{{rel::Value(ec.def->id)}};
    return view != nullptr ? view->bucket_size(elem_data, elem_index, key)
                           : elem_index.bucket_size(key);
  }

  /// Visits every elem_data row satisfying the equality criterion `ec` via
  /// the value-keyed indexes — cost O(matches), not O(element bucket).
  ///
  /// The union of two probes reproduces CompiledPred::matches exactly:
  /// the (elem_id, value_str) bucket yields the rows whose stored text
  /// equals the criterion text, and for a numeric rhs the (elem_id,
  /// value_num) bucket adds the rows that are numerically equal under a
  /// different spelling ("0730" = "730"). Rows in both buckets are emitted
  /// once (the numeric probe skips exact-text matches). `matches` still
  /// runs per visited row, so the semantics cannot drift from the scan
  /// path. Counts as ONE logical index probe — probes == criteria
  /// evaluated, the invariant the plan counters (and their tests) rely on.
  template <typename Fn>
  void for_each_eq_match(const ElementCriterion& ec, Fn&& fn) {
    count_probe();
    rel::for_each_match(
        elem_data, *elem_val_index,
        rel::Key{{rel::Value(ec.def->id), rel::Value(ec.pred.rhs_text)}}, view,
        probe_scratch, [&](const rel::Row& row, rel::RowId id) {
          count_scanned();
          if (ec.pred.matches(row, str_col, num_col)) fn(row, id);
        });
    if (!ec.pred.numeric_rhs) return;
    rel::for_each_match(
        elem_data, *elem_num_index,
        rel::Key{{rel::Value(ec.def->id), rel::Value(ec.pred.rhs_num)}}, view,
        probe_scratch, [&](const rel::Row& row, rel::RowId id) {
          count_scanned();
          const rel::Value& str = row[str_col];
          if (!str.is_null() && str.as_string_view() == ec.pred.rhs_text) return;
          if (ec.pred.matches(row, str_col, num_col)) fn(row, id);
        });
  }
  std::size_t instance_estimate(AttrDefId def) const {
    const rel::Key key{{rel::Value(def)}};
    return view != nullptr ? view->bucket_size(instances, inst_index, key)
                           : inst_index.bucket_size(key);
  }
  /// Estimate for a whole node from its direct criteria only.
  std::size_t node_estimate(const QueryNode& node) const {
    if (node.elements.empty()) return instance_estimate(node.def);
    std::size_t best = SIZE_MAX;
    for (const ElementCriterion& ec : node.elements) {
      best = std::min(best, element_estimate(ec));
    }
    return best;
  }

  /// Index order of `items` by ascending estimate (or identity when
  /// cardinality ordering is disabled).
  template <typename Items, typename Estimator>
  std::vector<std::size_t> evaluation_order(const Items& items, Estimator est) const {
    std::vector<std::size_t> order(items.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (ordered && order.size() > 1) {
      std::vector<std::size_t> cost(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) cost[i] = est(items[i]);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) { return cost[a] < cost[b]; });
    }
    return order;
  }

  /// Instances of `node` satisfying all its direct element criteria —
  /// criteria evaluated in cardinality order, intersecting incrementally
  /// with early exit on empty. Returns a sorted-unique InstRef vector.
  std::vector<InstRef> element_stage(const QueryNode& node) {
    std::vector<InstRef> current;
    if (node.elements.empty()) {
      // Existence of the attribute itself: all instances are candidates.
      count_probe();
      rel::for_each_match(instances, inst_index, rel::Key{{rel::Value(node.def)}},
                          view, probe_scratch, [&](const rel::Row& row, rel::RowId) {
                            count_scanned();
                            current.push_back(InstRef{row[inst_obj_col].as_int(),
                                                      row[inst_seq_col].as_int()});
                          });
      count_candidates(current.size());
      sort_unique(current);
      return current;
    }

    const std::vector<std::size_t> order = evaluation_order(
        node.elements, [&](const ElementCriterion& ec) { return element_estimate(ec); });
    bool first = true;
    for (const std::size_t i : order) {
      const ElementCriterion& ec = node.elements[i];
      if (!first && current.empty()) break;  // early exit: conjunction failed
      std::vector<InstRef>& out = first ? current : inst_scratch;
      out.clear();
      std::size_t matched = 0;
      const auto take = [&](const rel::Row& row) {
        ++matched;
        const InstRef ref{row[elem_obj_col].as_int(), row[elem_seq_col].as_int()};
        if (first || std::binary_search(current.begin(), current.end(), ref)) {
          out.push_back(ref);
        }
      };
      if (eq_probe_ready(ec)) {
        for_each_eq_match(ec, [&](const rel::Row& row, rel::RowId) { take(row); });
      } else {
        count_probe();
        rel::for_each_match(elem_data, elem_index, rel::Key{{rel::Value(ec.def->id)}},
                            view, probe_scratch, [&](const rel::Row& row, rel::RowId) {
                              count_scanned();
                              if (ec.pred.matches(row, str_col, num_col)) take(row);
                            });
      }
      count_candidates(matched);
      sort_unique(out);
      if (!first) current.swap(inst_scratch);
      first = false;
    }
    return current;
  }

  /// Ancestor instances of `parent_def` credited by the satisfied child
  /// instances through the inverted list (distance >= 1: sub-attribute
  /// criteria match at any depth below the parent; the data side needs no
  /// recursion). Sorted-unique.
  std::vector<InstRef> credited_ancestors(const std::vector<InstRef>& child_sat,
                                          AttrDefId child_def, AttrDefId parent_def) {
    std::vector<InstRef> credited;
    for (const InstRef inst : child_sat) {
      count_probe();
      rel::for_each_match(
          *inverted, *inv_index,
          rel::Key{{rel::Value(inst.object), rel::Value(child_def), rel::Value(inst.seq)}},
          view, probe_scratch, [&](const rel::Row& row, rel::RowId) {
            count_scanned();
            if (row[inv_anc_attr_col].as_int() != parent_def) return;
            credited.push_back(InstRef{inst.object, row[inv_anc_seq_col].as_int()});
          });
    }
    sort_unique(credited);
    return credited;
  }

  /// Instances of `node` satisfying its element criteria AND every child
  /// subtree (deepest-first via recursion). Children are evaluated in
  /// cardinality order with early exit.
  std::vector<InstRef> eval_node(const QueryShredded& shredded, const QueryNode& node) {
    std::vector<InstRef> own = element_stage(node);
    if (own.empty() || node.children.empty()) {
      count_materialized(own.size());
      return own;
    }
    const std::vector<std::size_t> order = evaluation_order(
        node.children,
        [&](std::size_t child) { return node_estimate(shredded.nodes[child]); });
    for (const std::size_t i : order) {
      const QueryNode& child = shredded.nodes[node.children[i]];
      const std::vector<InstRef> child_sat = eval_node(shredded, child);
      if (child_sat.empty()) return {};
      const std::vector<InstRef> credited =
          credited_ancestors(child_sat, child.def, node.def);
      intersect_into(own, credited, inst_scratch);
      if (own.empty()) return {};
    }
    count_materialized(own.size());
    return own;
  }
};

}  // namespace

bool QueryEngine::can_fast_path(const QueryShredded& shredded,
                                const DefinitionRegistry& registry) const {
  for (const QueryNode& node : shredded.nodes) {
    if (!node.children.empty()) return false;
    // Single-instance check: structural attributes whose schema node is not
    // repeatable have at most one instance per object. Anything else
    // (repeatable or dynamic) may repeat.
    const AttributeDef& def = registry.attribute(node.def);
    if (def.kind != AttrKind::kStructural) return false;
    if (def.schema_order == kNoOrder) return false;
    const AttributeRootInfo* root = partition_.root_at(def.schema_order);
    if (root == nullptr || root->repeatable) return false;
  }
  return true;
}

std::vector<ObjectId> QueryEngine::run(const ObjectQuery& query,
                                       QueryPlanInfo* info) const {
  return run(query, info, QueryContext{});
}

namespace {

/// Length-prefixes a caller-supplied string before embedding it in a key.
/// Values and unresolved names can contain any byte — including the ';',
/// ':', '{', '}' the key format uses — so raw embedding lets crafted
/// values collide with a differently-structured query (and a colliding
/// key would serve one query's cached id-set to another). The "<len>:"
/// prefix makes the serialization injective: a structural parse skips
/// exactly len bytes and no value byte is ever read as a delimiter.
void append_sized(std::string& out, std::string_view v) {
  out += std::to_string(v.size());
  out += ':';
  out += v;
}

void append_value_key(std::string& out, const rel::Value& value) {
  // Type-tagged so "1000" (string) and 1000 (number) never collide — the
  // predicate compiler treats them differently. Numeric to_string output
  // is delimiter-free, but strings carry arbitrary bytes and must be
  // length-prefixed.
  switch (value.type()) {
    case rel::Type::kNull: out += 'n'; return;
    case rel::Type::kInt: out += 'i'; out += value.to_string(); return;
    case rel::Type::kDouble: out += 'd'; out += value.to_string(); return;
    case rel::Type::kString: out += 's'; append_sized(out, value.to_string()); return;
  }
}

/// One criterion subtree in normal form. Unresolved names key as
/// "u<len>:<name><len>:<source>" — distinct per spelling, and harmlessly
/// so: any unresolved node makes the whole query return the empty set.
std::string attr_canonical_key(const DefinitionRegistry& registry,
                               const Thesaurus* thesaurus, const std::string& user,
                               const AttrQuery& attr, AttrDefId parent) {
  const AttributeDef* def = find_attribute_loose(registry, attr.name(), attr.source(),
                                                 parent, user, thesaurus);
  std::string out = "a";
  if (def == nullptr || !def->queryable) {
    out += 'u';
    append_sized(out, attr.name());
    append_sized(out, attr.source());
  } else {
    out += std::to_string(def->id);
  }
  const AttrDefId my_def = def == nullptr ? kNoAttr : def->id;

  // Sibling criteria sort lexicographically on their serialized form: the
  // query model is an unordered conjunction, so differently-ordered
  // spellings of one query must share a key.
  std::vector<std::string> parts;
  parts.reserve(attr.elements().size() + attr.sub_attributes().size());
  for (const ElementPredicate& pred : attr.elements()) {
    const ElementDef* elem = def == nullptr
                                 ? nullptr
                                 : find_element_loose(registry, pred.name, pred.source,
                                                      my_def, thesaurus);
    std::string part = "e";
    if (elem == nullptr) {
      part += 'u';
      append_sized(part, pred.name);
      append_sized(part, pred.source);
    } else {
      part += std::to_string(elem->id);
    }
    if (pred.exists_only) {
      part += '?';
    } else {
      part += static_cast<char>('0' + static_cast<int>(pred.op));
      append_value_key(part, pred.value);
    }
    parts.push_back(std::move(part));
  }
  for (const AttrQuery& sub : attr.sub_attributes()) {
    parts.push_back(attr_canonical_key(registry, thesaurus, user, sub, my_def));
  }
  std::sort(parts.begin(), parts.end());
  out += '{';
  for (const std::string& part : parts) {
    out += part;
    out += ';';
  }
  out += '}';
  return out;
}

}  // namespace

std::string QueryEngine::canonical_key(const ObjectQuery& query,
                                       const QueryContext& ctx) const {
  const DefinitionRegistry& registry =
      ctx.registry != nullptr ? *ctx.registry : registry_;
  const Thesaurus* thesaurus =
      ctx.thesaurus != nullptr ? ctx.thesaurus : options_.thesaurus;
  // The thesaurus is shared live across snapshots (setup-time mutation
  // only); its mutation counter is the expansion fingerprint so a synonym
  // added — or remapped, which leaves size() unchanged — between publishes
  // cannot revive a key minted under the old map.
  std::string out =
      "T" + std::to_string(thesaurus == nullptr ? 0 : thesaurus->version()) + "|";
  std::vector<std::string> parts;
  parts.reserve(query.attributes().size());
  for (const AttrQuery& attr : query.attributes()) {
    parts.push_back(attr_canonical_key(registry, thesaurus, query.user(), attr, kNoAttr));
  }
  std::sort(parts.begin(), parts.end());
  for (const std::string& part : parts) {
    out += part;
    out += ';';
  }
  return out;
}

std::vector<ObjectId> QueryEngine::run(const ObjectQuery& query, QueryPlanInfo* info,
                                       const QueryContext& ctx) const {
  const DefinitionRegistry& registry =
      ctx.registry != nullptr ? *ctx.registry : registry_;
  const Thesaurus* thesaurus =
      ctx.thesaurus != nullptr ? ctx.thesaurus : options_.thesaurus;
  QueryShredded shredded;
  for (const AttrQuery& attr : query.attributes()) {
    shred_attr(registry, thesaurus, query.user(), attr, SIZE_MAX, 0, shredded);
  }
  if (info != nullptr) {
    info->query_nodes = shredded.nodes.size();
    info->query_elements = shredded.element_count;
    info->rollup_levels = shredded.max_depth;
  }
  if (shredded.nodes.empty() || !shredded.resolved) return {};

  if (options_.enable_fastpath && can_fast_path(shredded, registry)) {
    return run_fast(shredded, info, ctx);
  }
  return run_general(shredded, info, ctx);
}

std::vector<ObjectId> QueryEngine::run_fast(const QueryShredded& shredded,
                                            QueryPlanInfo* info,
                                            const QueryContext& ctx) const {
  if (info != nullptr) info->fast_path = true;
  Pipeline p(db_, !options_.force_query_order, info, ctx.view);

  // One flat criterion list: element predicates plus attribute-existence
  // criteria. Every criterion contributes a set of object ids; the result
  // is their intersection, built smallest-estimated-set first so later
  // (larger) probes only test membership — and are skipped entirely once
  // the running intersection is empty.
  struct FastCriterion {
    const QueryNode* node = nullptr;      // attribute existence
    const ElementCriterion* elem = nullptr;  // or element predicate
  };
  std::vector<FastCriterion> criteria;
  for (const QueryNode& node : shredded.nodes) {
    if (node.elements.empty()) {
      criteria.push_back(FastCriterion{&node, nullptr});
    } else {
      for (const ElementCriterion& ec : node.elements) {
        criteria.push_back(FastCriterion{nullptr, &ec});
      }
    }
  }

  const std::vector<std::size_t> order =
      p.evaluation_order(criteria, [&](const FastCriterion& c) {
        return c.elem != nullptr ? p.element_estimate(*c.elem)
                                 : p.instance_estimate(c.node->def);
      });

  std::vector<ObjectId> current;
  std::vector<ObjectId> next;
  bool first = true;
  for (const std::size_t i : order) {
    const FastCriterion& c = criteria[i];
    if (!first && current.empty()) break;  // early exit: conjunction failed
    std::vector<ObjectId>& out = first ? current : next;
    out.clear();
    std::size_t matched = 0;
    const auto consider = [&](ObjectId object) {
      ++matched;
      if (first || std::binary_search(current.begin(), current.end(), object)) {
        out.push_back(object);
      }
    };
    if (c.elem != nullptr && p.eq_probe_ready(*c.elem)) {
      // for_each_eq_match counts its own (single logical) probe.
      p.for_each_eq_match(*c.elem, [&](const rel::Row& row, rel::RowId) {
        consider(row[p.elem_obj_col].as_int());
      });
    } else if (c.elem != nullptr) {
      p.count_probe();
      rel::for_each_match(p.elem_data, p.elem_index,
                          rel::Key{{rel::Value(c.elem->def->id)}}, p.view,
                          p.probe_scratch, [&](const rel::Row& row, rel::RowId) {
                            p.count_scanned();
                            if (c.elem->pred.matches(row, p.str_col, p.num_col)) {
                              consider(row[p.elem_obj_col].as_int());
                            }
                          });
    } else {
      p.count_probe();
      rel::for_each_match(p.instances, p.inst_index,
                          rel::Key{{rel::Value(c.node->def)}}, p.view,
                          p.probe_scratch, [&](const rel::Row& row, rel::RowId) {
                            p.count_scanned();
                            consider(row[p.inst_obj_col].as_int());
                          });
    }
    p.count_candidates(matched);
    sort_unique(out);
    if (!first) current.swap(next);
    first = false;
  }
  p.count_materialized(current.size());
  return current;  // sorted ascending by construction
}

std::vector<ObjectId> QueryEngine::run_general(const QueryShredded& shredded,
                                               QueryPlanInfo* info,
                                               const QueryContext& ctx) const {
  Pipeline p(db_, !options_.force_query_order, info, ctx.view);
  p.with_inverted(db_);

  // Evaluate one top-level subtree at a time (element criteria, then the
  // deepest-first sub-attribute roll-up via recursion), most selective
  // subtree first, intersecting object-id sets with early exit — an object
  // qualifies when it has a satisfying instance of every top-level
  // criterion.
  const std::vector<std::size_t> order = p.evaluation_order(
      shredded.tops, [&](std::size_t top) { return p.node_estimate(shredded.nodes[top]); });

  std::vector<ObjectId> current;
  bool first = true;
  for (const std::size_t t : order) {
    const std::vector<InstRef> sat = p.eval_node(shredded, shredded.nodes[t]);
    if (sat.empty()) return {};
    std::vector<ObjectId>& objects = p.obj_scratch;
    objects.clear();
    for (const InstRef inst : sat) {
      if (objects.empty() || objects.back() != inst.object) {
        objects.push_back(inst.object);  // sat is sorted by (object, seq)
      }
    }
    if (first) {
      current = objects;
      first = false;
    } else {
      std::vector<ObjectId> merged;
      merged.reserve(std::min(current.size(), objects.size()));
      std::set_intersection(current.begin(), current.end(), objects.begin(),
                            objects.end(), std::back_inserter(merged));
      current.swap(merged);
    }
    if (current.empty()) return {};
  }
  p.count_materialized(current.size());
  return current;  // sorted ascending by construction
}

}  // namespace hxrc::core
