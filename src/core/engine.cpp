#include "core/engine.hpp"

#include <algorithm>

#include "core/storage.hpp"
#include "rel/ops.hpp"
#include "util/string_util.hpp"

namespace hxrc::core {

namespace {

/// One shredded query-attribute criterion (a "temp table" row, Fig. 4).
struct QueryNode {
  std::size_t qa_id = 0;
  const AttrQuery* query = nullptr;
  std::size_t parent = SIZE_MAX;  // SIZE_MAX = top-level
  std::size_t depth = 0;          // 0 = top-level
  AttrDefId def = kNoAttr;
  /// (qe_id, predicate, resolved element definition).
  std::vector<std::tuple<std::size_t, const ElementPredicate*, const ElementDef*>> elements;
  std::vector<std::size_t> children;  // qa_ids
};

/// Loose element lookup: exact (name, source) first, then a unique match by
/// name alone — the paper's MyAttr.addElement("dzmin", 100, EQ) omits the
/// source when it is unambiguous within the attribute — then the ontology's
/// synonyms (§3).
const ElementDef* find_element_loose(const DefinitionRegistry& registry,
                                     const std::string& name, const std::string& source,
                                     AttrDefId attribute, const Thesaurus* thesaurus) {
  if (const ElementDef* exact = registry.find_element(name, source, attribute)) {
    return exact;
  }
  if (source.empty()) {
    const ElementDef* unique = nullptr;
    for (const ElementDef& def : registry.elements()) {
      if (def.attribute == attribute && def.name == name) {
        if (unique != nullptr) {
          unique = nullptr;  // ambiguous
          break;
        }
        unique = &def;
      }
    }
    if (unique != nullptr) return unique;
  }
  if (thesaurus != nullptr) {
    if (const auto canonical = thesaurus->resolve(name, source)) {
      return registry.find_element(canonical->name, canonical->source, attribute);
    }
  }
  return nullptr;
}

/// Attribute lookup: exact (name, source) first; then, when the source is
/// omitted, a unique match by name among visible definitions with the same
/// parent; then the ontology's synonyms (§3).
const AttributeDef* find_attribute_loose(const DefinitionRegistry& registry,
                                         const std::string& name,
                                         const std::string& source, AttrDefId parent,
                                         const std::string& user,
                                         const Thesaurus* thesaurus) {
  if (const AttributeDef* exact = registry.find_attribute(name, source, parent, user)) {
    return exact;
  }
  if (source.empty()) {
    const AttributeDef* unique = nullptr;
    for (const AttributeDef& def : registry.attributes()) {
      if (def.parent != parent || def.name != name) continue;
      if (def.visibility == Visibility::kUser && def.owner != user) continue;
      if (unique != nullptr) {
        unique = nullptr;  // ambiguous across sources
        break;
      }
      unique = &def;
    }
    if (unique != nullptr) return unique;
  }
  if (thesaurus != nullptr) {
    if (const auto canonical = thesaurus->resolve(name, source)) {
      return registry.find_attribute(canonical->name, canonical->source, parent, user);
    }
  }
  return nullptr;
}

/// Builds the value predicate over elem_data rows using the shared
/// comparison semantics: numeric when both operands are numeric (value_num
/// mirrors every value that parses as a number), string otherwise.
rel::ExprPtr predicate_expr(const rel::ResultSet& elem_rows, const ElementPredicate& pred,
                            const ElementDef& def) {
  (void)def;
  if (pred.exists_only) return rel::lit(rel::Value(std::int64_t{1}));

  const std::size_t value_str = elem_rows.column("value_str");
  const std::size_t value_num = elem_rows.column("value_num");

  rel::BinOp op;
  switch (pred.op) {
    case CompareOp::kEq: op = rel::BinOp::kEq; break;
    case CompareOp::kNe: op = rel::BinOp::kNe; break;
    case CompareOp::kLt: op = rel::BinOp::kLt; break;
    case CompareOp::kLe: op = rel::BinOp::kLe; break;
    case CompareOp::kGt: op = rel::BinOp::kGt; break;
    case CompareOp::kGe: op = rel::BinOp::kGe; break;
    default: op = rel::BinOp::kEq; break;
  }

  const std::string rhs_text = pred.value.to_string();
  const auto rhs_num = util::parse_double(rhs_text);
  if (!rhs_num) {
    // Non-numeric criterion: always a string comparison.
    return rel::binary(op, rel::col(value_str, "value_str"), rel::lit(rel::Value(rhs_text)));
  }
  // Numeric criterion: numeric compare when the stored value is numeric,
  // string compare against the criterion text otherwise.
  return rel::or_(
      rel::and_(rel::not_(rel::is_null(rel::col(value_num, "value_num"))),
                rel::binary(op, rel::col(value_num, "value_num"),
                            rel::lit(rel::Value(*rhs_num)))),
      rel::and_(rel::is_null(rel::col(value_num, "value_num")),
                rel::binary(op, rel::col(value_str, "value_str"),
                            rel::lit(rel::Value(rhs_text)))));
}

}  // namespace

struct QueryShredded {
  std::vector<QueryNode> nodes;
  std::vector<std::size_t> tops;
  std::size_t element_count = 0;
  std::size_t max_depth = 0;
  bool resolved = true;  // false when any definition was unknown/invisible
};

QueryEngine::QueryEngine(const Partition& partition, const DefinitionRegistry& registry,
                         const rel::Database& db, EngineOptions options)
    : partition_(partition), registry_(registry), db_(db), options_(options) {}

namespace {

void shred_attr(const DefinitionRegistry& registry, const Thesaurus* thesaurus,
                const std::string& user, const AttrQuery& attr, std::size_t parent,
                std::size_t depth, QueryShredded& out) {
  const AttrDefId parent_def =
      parent == SIZE_MAX ? kNoAttr : out.nodes[parent].def;
  const AttributeDef* def = find_attribute_loose(registry, attr.name(), attr.source(),
                                                 parent_def, user, thesaurus);

  QueryNode node;
  node.qa_id = out.nodes.size();
  node.query = &attr;
  node.parent = parent;
  node.depth = depth;
  out.max_depth = std::max(out.max_depth, depth);
  if (def == nullptr || !def->queryable) {
    out.resolved = false;
    out.nodes.push_back(std::move(node));
    return;
  }
  node.def = def->id;

  for (const ElementPredicate& pred : attr.elements()) {
    const ElementDef* elem =
        find_element_loose(registry, pred.name, pred.source, def->id, thesaurus);
    if (elem == nullptr) {
      out.resolved = false;
    } else {
      node.elements.emplace_back(out.element_count, &pred, elem);
    }
    ++out.element_count;
  }

  const std::size_t my_index = out.nodes.size();
  out.nodes.push_back(std::move(node));
  if (parent != SIZE_MAX) out.nodes[parent].children.push_back(my_index);
  if (parent == SIZE_MAX) out.tops.push_back(my_index);

  for (const AttrQuery& sub : attr.sub_attributes()) {
    shred_attr(registry, thesaurus, user, sub, my_index, depth + 1, out);
  }
}

}  // namespace

bool QueryEngine::can_fast_path(const QueryShredded& shredded) const {
  for (const QueryNode& node : shredded.nodes) {
    if (!node.children.empty()) return false;
    // Single-instance check: structural attributes whose schema node is not
    // repeatable have at most one instance per object. Anything else
    // (repeatable or dynamic) may repeat.
    const AttributeDef& def = registry_.attribute(node.def);
    if (def.kind != AttrKind::kStructural) return false;
    if (def.schema_order == kNoOrder) return false;
    const AttributeRootInfo* root = partition_.root_at(def.schema_order);
    if (root == nullptr || root->repeatable) return false;
  }
  return true;
}

std::vector<ObjectId> QueryEngine::run(const ObjectQuery& query,
                                       QueryPlanInfo* info) const {
  QueryShredded shredded;
  for (const AttrQuery& attr : query.attributes()) {
    shred_attr(registry_, options_.thesaurus, query.user(), attr, SIZE_MAX, 0, shredded);
  }
  if (info != nullptr) {
    info->query_nodes = shredded.nodes.size();
    info->query_elements = shredded.element_count;
    info->rollup_levels = shredded.max_depth;
  }
  if (shredded.nodes.empty() || !shredded.resolved) return {};

  if (options_.enable_fastpath && can_fast_path(shredded)) {
    return run_fast(shredded, info);
  }
  return run_general(shredded, info);
}

std::vector<ObjectId> QueryEngine::run_fast(const QueryShredded& shredded,
                                            QueryPlanInfo* info) const {
  if (info != nullptr) info->fast_path = true;

  const rel::Table& elem_data = db_.require_table(kElemDataTable);
  const rel::Index* elem_index = elem_data.index("idx_elem_def");
  const rel::Table& instances = db_.require_table(kAttrInstancesTable);
  const rel::Index* inst_index = instances.index("idx_inst_attr");

  // One pass: every criterion contributes (object_id, criterion_id) rows;
  // an object qualifies when it satisfied all criteria.
  rel::ResultSet hits;
  hits.schema = rel::TableSchema{{"object_id", rel::Type::kInt},
                                 {"criterion", rel::Type::kInt}};
  std::int64_t criterion = 0;
  std::int64_t total = 0;
  for (const QueryNode& node : shredded.nodes) {
    if (node.elements.empty()) {
      // Existence of the attribute itself.
      rel::ResultSet inst = rel::index_scan(instances, *inst_index,
                                            rel::Key{{rel::Value(node.def)}});
      const std::size_t object_col = inst.column("object_id");
      const std::int64_t this_criterion = criterion++;
      ++total;
      for (const rel::Row& row : inst.rows) {
        hits.rows.push_back(rel::Row{row[object_col], rel::Value(this_criterion)});
      }
      continue;
    }
    for (const auto& [qe_id, pred, elem] : node.elements) {
      (void)qe_id;
      rel::ResultSet rows = rel::index_scan(elem_data, *elem_index,
                                            rel::Key{{rel::Value(elem->id)}});
      rows = rel::filter(std::move(rows), *predicate_expr(rows, *pred, *elem));
      const std::size_t object_col = rows.column("object_id");
      const std::int64_t this_criterion = criterion++;
      ++total;
      for (const rel::Row& row : rows.rows) {
        hits.rows.push_back(rel::Row{row[object_col], rel::Value(this_criterion)});
      }
    }
  }
  if (info != nullptr) info->candidate_rows = hits.rows.size();

  rel::ResultSet grouped = rel::group_by(
      hits, {0},
      {rel::Aggregate{rel::Aggregate::Fn::kCountDistinct, 1, "matched"}});
  std::vector<ObjectId> out;
  for (const rel::Row& row : grouped.rows) {
    if (row[1].as_int() == total) out.push_back(row[0].as_int());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ObjectId> QueryEngine::run_general(const QueryShredded& shredded,
                                               QueryPlanInfo* info) const {
  const rel::Table& elem_data = db_.require_table(kElemDataTable);
  const rel::Index* elem_index = elem_data.index("idx_elem_def");
  const rel::Table& instances = db_.require_table(kAttrInstancesTable);
  const rel::Index* inst_index = instances.index("idx_inst_attr");
  const rel::Table& inverted = db_.require_table(kAttrInvertedTable);

  // ---- Stages 1-2: candidate instances per query node ----
  // sat[qa] holds (object_id, seq) of instances satisfying the node's
  // *direct element* criteria (sub-attribute roll-up comes after).
  std::vector<rel::ResultSet> sat(shredded.nodes.size());
  std::size_t candidate_rows = 0;

  const rel::TableSchema instance_schema{{"object_id", rel::Type::kInt},
                                         {"seq", rel::Type::kInt}};
  for (const QueryNode& node : shredded.nodes) {
    if (node.elements.empty()) {
      // All instances of the definition are candidates.
      rel::ResultSet inst = rel::index_scan(instances, *inst_index,
                                            rel::Key{{rel::Value(node.def)}});
      sat[node.qa_id] = rel::project(inst, {"object_id", "seq"});
      candidate_rows += sat[node.qa_id].rows.size();
      continue;
    }
    // (object_id, seq, qe) matches, then count distinct qe per instance.
    rel::ResultSet matches;
    matches.schema = rel::TableSchema{{"object_id", rel::Type::kInt},
                                      {"seq", rel::Type::kInt},
                                      {"qe", rel::Type::kInt}};
    for (const auto& [qe_id, pred, elem] : node.elements) {
      rel::ResultSet rows = rel::index_scan(elem_data, *elem_index,
                                            rel::Key{{rel::Value(elem->id)}});
      rows = rel::filter(std::move(rows), *predicate_expr(rows, *pred, *elem));
      const std::size_t object_col = rows.column("object_id");
      const std::size_t seq_col = rows.column("seq");
      for (const rel::Row& row : rows.rows) {
        matches.rows.push_back(rel::Row{row[object_col], row[seq_col],
                                        rel::Value(static_cast<std::int64_t>(qe_id))});
      }
    }
    candidate_rows += matches.rows.size();
    rel::ResultSet grouped = rel::group_by(
        matches, {0, 1},
        {rel::Aggregate{rel::Aggregate::Fn::kCountDistinct, 2, "matched"}});
    const auto required = static_cast<std::int64_t>(node.elements.size());
    rel::ResultSet satisfied;
    satisfied.schema = instance_schema;
    for (const rel::Row& row : grouped.rows) {
      if (row[2].as_int() == required) {
        satisfied.rows.push_back(rel::Row{row[0], row[1]});
      }
    }
    sat[node.qa_id] = std::move(satisfied);
  }
  if (info != nullptr) info->candidate_rows = candidate_rows;

  // ---- Stage 3: roll sub-attribute criteria up, deepest level first ----
  for (std::size_t depth = shredded.max_depth; depth-- > 0;) {
    for (const QueryNode& node : shredded.nodes) {
      if (node.depth != depth || node.children.empty()) continue;
      if (sat[node.qa_id].empty()) continue;

      // child_hits: (object_id, anc_seq, qc) — each satisfied child
      // instance credits every enclosing instance of this node's def via
      // the inverted list (distance >= 1: sub-attribute criteria match at
      // any depth below the parent; the data side needs no recursion).
      rel::ResultSet child_hits;
      child_hits.schema = rel::TableSchema{{"object_id", rel::Type::kInt},
                                           {"anc_seq", rel::Type::kInt},
                                           {"qc", rel::Type::kInt}};
      bool child_failed = false;
      for (const std::size_t child_id : node.children) {
        const QueryNode& child = shredded.nodes[child_id];
        if (sat[child_id].empty()) {
          child_failed = true;
          break;
        }
        // Join satisfied child instances with the inverted list.
        rel::ResultSet augmented = sat[child_id];
        // add the child's definition id as a join column
        augmented.schema.add(rel::Column{"attr_id", rel::Type::kInt});
        for (rel::Row& row : augmented.rows) row.push_back(rel::Value(child.def));
        const rel::Index* inv_index = inverted.index("idx_inv_child");
        rel::ResultSet joined =
            rel::index_join(augmented, {0, 2, 1}, inverted, *inv_index);
        const std::size_t anc_attr = joined.column("anc_attr_id");
        const std::size_t anc_seq = joined.column("anc_seq");
        const std::size_t object_col = 0;  // from the left side
        for (const rel::Row& row : joined.rows) {
          if (row[anc_attr].as_int() != node.def) continue;
          child_hits.rows.push_back(
              rel::Row{row[object_col], row[anc_seq],
                       rel::Value(static_cast<std::int64_t>(child_id))});
        }
      }
      if (child_failed) {
        sat[node.qa_id].rows.clear();
        continue;
      }

      // Keep candidates credited by every child criterion.
      rel::ResultSet credited = rel::group_by(
          child_hits, {0, 1},
          {rel::Aggregate{rel::Aggregate::Fn::kCountDistinct, 2, "matched"}});
      const auto required = static_cast<std::int64_t>(node.children.size());
      rel::ResultSet full;
      full.schema = instance_schema;
      for (const rel::Row& row : credited.rows) {
        if (row[2].as_int() == required) full.rows.push_back(rel::Row{row[0], row[1]});
      }
      // Intersect with the node's own element-satisfied instances.
      sat[node.qa_id] =
          rel::distinct(rel::hash_join(sat[node.qa_id], {0, 1}, full, {0, 1}));
      sat[node.qa_id] = rel::project(sat[node.qa_id], {"object_id", "seq"});
    }
  }

  // ---- Stage 4: object-level counting over top-level criteria ----
  rel::ResultSet top_hits;
  top_hits.schema = rel::TableSchema{{"object_id", rel::Type::kInt},
                                     {"qa", rel::Type::kInt}};
  for (const std::size_t top : shredded.tops) {
    for (const rel::Row& row : sat[top].rows) {
      top_hits.rows.push_back(
          rel::Row{row[0], rel::Value(static_cast<std::int64_t>(top))});
    }
  }
  rel::ResultSet grouped = rel::group_by(
      top_hits, {0},
      {rel::Aggregate{rel::Aggregate::Fn::kCountDistinct, 1, "matched"}});
  const auto required = static_cast<std::int64_t>(shredded.tops.size());
  std::vector<ObjectId> out;
  for (const rel::Row& row : grouped.rows) {
    if (row[1].as_int() == required) out.push_back(row[0].as_int());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hxrc::core
