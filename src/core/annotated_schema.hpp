// Annotated schemas: the framework the paper's §7 proposes.
//
// "The approach used in myLEAD can be used to create a framework for
//  metadata catalogs that would be based on an annotated schema to indicate
//  which schema elements are structural or dynamic metadata attributes and
//  elements."
//
// This module extends the compact schema-description format with partition
// annotations carried directly on the element declarations, so a whole
// catalog is configured from one document:
//
//   <schema root="LEADresource">
//     <element name="resourceID" type="string" metadata="attribute"/>
//     <element name="data">
//       ...
//       <element name="theme" maxOccurs="unbounded" metadata="attribute"/>
//       <element name="detailed" maxOccurs="unbounded" metadata="dynamic"
//                queryable="true"/>
//       ...
//     </element>
//     <convention item="attr" itemName="attrlabl" itemSource="attrdefs"
//                 itemValue="attrv" container="enttyp" name="enttypl"
//                 source="enttypds"/>
//   </schema>
//
// metadata="attribute"  marks a structural metadata attribute root;
// metadata="dynamic"    marks a dynamic attribute root;
// queryable="false"     keeps an attribute CLOB-only (§2);
// <convention .../>     overrides the dynamic-attribute conventions.
#pragma once

#include <string>
#include <string_view>

#include "core/partition.hpp"
#include "xml/schema.hpp"

namespace hxrc::core {

struct AnnotatedSchema {
  xml::Schema schema;
  PartitionAnnotations annotations;
};

/// Parses an annotated schema description; throws xml::SchemaError /
/// xml::ParseError on malformed input. The returned annotations are NOT yet
/// validated against the §2 rules — Partition::build does that.
AnnotatedSchema load_annotated_schema(std::string_view xml_text);

/// Serializes a schema plus its annotations back to the annotated format
/// (round-trips through load_annotated_schema).
std::string save_annotated_schema(const xml::Schema& schema,
                                  const PartitionAnnotations& annotations);

}  // namespace hxrc::core
