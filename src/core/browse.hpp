// Catalog browsing support (§4).
//
// "…there is a GUI query tool available that prompts the user with the
//  available attributes and elements and allows them to build a query
//  graphically."
//
// The browser answers exactly the questions such a tool asks: which
// attribute definitions are visible to this user (with instance counts),
// which elements does an attribute carry, and which values does an element
// take (for dropdowns / selectivity hints). It also provides sorted,
// paginated query results — a catalog server returns pages ordered by a
// metadata element (e.g. publication date), not raw id sets.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/query.hpp"
#include "core/registry.hpp"
#include "rel/database.hpp"

namespace hxrc::core {

class MetadataCatalog;

/// One row of the attribute listing.
struct AttributeSummary {
  AttrDefId id = kNoAttr;
  std::string name;
  std::string source;
  AttrKind kind = AttrKind::kStructural;
  AttrDefId parent = kNoAttr;
  std::size_t instances = 0;  // stored instances across all objects
};

/// One row of the element listing.
struct ElementSummary {
  ElemDefId id = -1;
  std::string name;
  std::string source;
  xml::LeafType type = xml::LeafType::kString;
  std::size_t values = 0;           // stored value rows
  std::size_t distinct_values = 0;  // distinct stored values
};

/// A distinct element value with its frequency.
struct ValueCount {
  std::string value;
  std::size_t count = 0;
};

/// Result ordering for sorted queries.
struct ResultOrder {
  /// Order hits by this element's value (objects lacking it sort last).
  std::string attribute_name;
  std::string attribute_source;
  std::string element_name;
  std::string element_source;
  bool descending = false;
};

class CatalogBrowser {
 public:
  explicit CatalogBrowser(const MetadataCatalog& catalog) : catalog_(catalog) {}

  /// Attribute definitions visible to `user` (admin + the user's private
  /// ones), with instance counts; sorted by name then source.
  std::vector<AttributeSummary> attributes(const std::string& user = {}) const;

  /// Elements of one attribute definition, with value statistics.
  std::vector<ElementSummary> elements(AttrDefId attribute) const;

  /// Most frequent distinct values of an element (for query-builder
  /// dropdowns), most frequent first; at most `limit`.
  std::vector<ValueCount> top_values(ElemDefId element, std::size_t limit = 16) const;

  /// Runs a query and returns one page of hits ordered by a metadata
  /// element value. `offset`/`limit` paginate the ordered hit list.
  std::vector<ObjectId> query_sorted(const ObjectQuery& q, const ResultOrder& order,
                                     std::size_t offset = 0,
                                     std::size_t limit = SIZE_MAX) const;

 private:
  const MetadataCatalog& catalog_;
};

}  // namespace hxrc::core
