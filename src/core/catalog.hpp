// MetadataCatalog: the public facade of the hybrid XML-relational catalog.
//
// Wires together the partitioned schema, the definition registry, the
// relational database (shredded tables + ordering tables + CLOB store), the
// shredder, the Fig. 4 query engine, and the §5 response builder.
//
// Typical use:
//
//   xml::Schema schema = workload::lead_schema();
//   MetadataCatalog catalog(schema, workload::lead_annotations());
//   catalog.define_dynamic_attribute("grid", "ARPS", {{"dx", LeafType::kDouble}, ...});
//   ObjectId id = catalog.ingest_xml(document_text, "run-042", "alice");
//   auto ids = catalog.query(query);
//   std::string response = catalog.build_response(ids);
//
// Concurrency: MVCC snapshot reads. Mutations (ingest/add_attribute/define/
// delete/collection writes/restore) serialize on an exclusive commit lock,
// apply their rows to pointer-stable storage, sync the index generations,
// and publish an immutable CatalogSnapshot (epoch, per-table watermarks,
// definition registry copy, tombstone set, stats) through one atomic
// pointer. Reads (query/query_paged/fetch/build_response/browse/stats/
// collection reads) pin an epoch in a reclamation slot, load the snapshot,
// and run entirely against that frozen state — they NEVER take a lock and
// never block behind a writer. Superseded snapshots and index generations
// are reclaimed once no reader pins their epoch (util::EpochManager).
// Continuation cursors carry the epoch they were issued at and go stale on
// any mutation. The accessors that hand out raw internals (database(),
// registry(), thesaurus()) are NOT snapshot-isolated — confine their use to
// single-threaded setup/teardown or hold read_lock() (which pauses writers
// but not other readers).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/engine.hpp"
#include "core/model.hpp"
#include "core/partition.hpp"
#include "core/query.hpp"
#include "core/query_cache.hpp"
#include "core/registry.hpp"
#include "core/response.hpp"
#include "core/shredder.hpp"
#include "rel/database.hpp"
#include "rel/read_view.hpp"
#include "util/epoch.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "xml/dom.hpp"
#include "xml/schema.hpp"

namespace hxrc::core {

struct CatalogConfig {
  ShredOptions shred;
  EngineOptions engine;
  /// Snapshot-keyed query cache (core/query_cache.hpp). Enabled by default;
  /// each published snapshot owns an empty per-generation segment.
  CacheConfig cache;
};

/// A continuation cursor named a catalog version that no longer exists: a
/// mutation (ingest, add_attribute, define, delete, ...) happened between
/// pages. Clients must restart the query; the service layer maps this to
/// `<catalogResponse status="error" code="stale_cursor">`.
class StaleCursorError : public ValidationError {
 public:
  using ValidationError::ValidationError;
};

/// One page of paginated query results (see MetadataCatalog::query_paged).
struct QueryPage {
  /// Matching ids, ascending, at most the query's limit.
  std::vector<ObjectId> ids;
  /// Opaque continuation cursor; empty when this is the last page.
  std::string next_cursor;
  /// Catalog version (epoch) the page was computed at.
  std::uint64_t version = 0;
};

/// Declaration of one element of a dynamic attribute definition.
struct DynamicElementSpec {
  std::string name;
  xml::LeafType type = xml::LeafType::kString;
  /// Defaults to the attribute's source when empty.
  std::string source;
};

/// One catalog mutation, as seen by the durability layer. Emitted by every
/// state-changing method while the exclusive commit lock is still held,
/// after the in-memory mutation succeeded and the version epoch was bumped
/// but BEFORE the snapshot is published — so an observer (the WAL appender)
/// sees mutations in exactly the order a recovery replay must reapply them,
/// and a mutation is durable before any reader can observe it. Views/
/// pointers are valid only for the duration of the callback.
struct MutationEvent {
  enum class Kind {
    kIngest,
    kDefine,
    kAddAttribute,
    kDelete,
    kCreateCollection,
    kAddToCollection,
  };
  Kind kind;
  /// Catalog version after the mutation (a parallel-ingest batch shares one).
  std::uint64_t epoch = 0;
  ObjectId object = -1;          ///< ingest / addAttribute / delete / addToCollection
  AttrDefId attr = kNoAttr;      ///< define: the assigned definition id
  AttrDefId parent = kNoAttr;    ///< define: parent definition (kNoAttr = top-level)
  CollectionId collection = kNoCollection;
  CollectionId parent_collection = kNoCollection;
  Visibility visibility = Visibility::kAdmin;
  std::string_view name;         ///< ingest doc name / define name / collection name
  std::string_view source;       ///< define source
  std::string_view owner;
  std::string_view path;         ///< addAttribute schema path
  const xml::Node* content = nullptr;  ///< ingest root / addAttribute subtree
  const std::vector<DynamicElementSpec>* elements = nullptr;  ///< define
};

/// Observer invoked under the exclusive commit lock; see MutationEvent. A
/// throwing observer propagates to the mutating caller — the in-memory
/// mutation has already been applied (and is published on the way out), so
/// the durability layer treats that as a poisoned log (the process keeps
/// serving memory but must surface the I/O failure).
using MutationObserver = std::function<void(const MutationEvent&)>;

/// The immutable state one commit published: everything a reader needs to
/// answer any read at that epoch. Shared members (registry copy, tombstone
/// set) are reference-counted and shared across snapshots that did not
/// change them; the struct itself is freed by epoch reclamation once no
/// reader pins it.
struct CatalogSnapshot {
  std::uint64_t epoch = 0;
  /// Per-table row-count watermarks: rows at or above them are invisible.
  rel::ReadView view;
  /// Frozen definition registry (re-copied only by commits that define).
  std::shared_ptr<const DefinitionRegistry> defs;
  /// Frozen tombstone set (re-copied only by commits that delete).
  std::shared_ptr<const std::unordered_set<ObjectId>> deleted;
  ShredStats stats;
  ObjectId next_object = 0;
  std::size_t clob_count = 0;
  /// This generation's query-cache segment (nullptr when caching is off).
  /// Readers reach it only through their pinned snapshot, so an entry can
  /// never be observed by a reader of a different generation; the segment
  /// is reclaimed with the snapshot once no reader pins the epoch.
  std::unique_ptr<QueryCacheSegment> cache;
};

enum class ObjectState { kUnknown, kLive, kDeleted };

class MetadataCatalog {
 public:
  /// The schema is partitioned with the given annotations (see
  /// Partition::build); pass Partition::infer(schema) to auto-annotate.
  /// The schema must outlive the catalog.
  MetadataCatalog(const xml::Schema& schema, PartitionAnnotations annotations,
                  CatalogConfig config = {});
  ~MetadataCatalog();

  // ---- ingest ----

  /// Ingests a parsed document; returns the new object id.
  ObjectId ingest(const xml::Document& doc, const std::string& name,
                  const std::string& owner);

  /// Parses and ingests serialized XML.
  ObjectId ingest_xml(std::string_view xml_text, const std::string& name,
                      const std::string& owner);

  /// Adds one attribute instance to an existing object (§5: "as metadata
  /// attributes were inserted later"). `attribute_path` is the schema path
  /// of the attribute root (e.g. "data/idinfo/keywords/theme"); `content`
  /// is the attribute subtree (its root tag must match). The instance
  /// sequences after the object's existing siblings in rebuilt responses.
  void add_attribute(ObjectId object, std::string_view attribute_path,
                     const xml::Node& content, const std::string& owner = {});
  void add_attribute_xml(ObjectId object, std::string_view attribute_path,
                         std::string_view content_xml, const std::string& owner = {});

  /// Shreds documents in parallel into per-thread staging databases, then
  /// merges. Returns the assigned ids (in input order). Index maintenance
  /// happens once, after the merge.
  std::vector<ObjectId> ingest_parallel(util::ThreadPool& pool,
                                        const std::vector<xml::Document>& docs,
                                        const std::string& owner);

  // ---- definitions ----

  /// Registers a dynamic attribute (admin level by default) with its
  /// elements. Returns the attribute definition id.
  AttrDefId define_dynamic_attribute(const std::string& name, const std::string& source,
                                     const std::vector<DynamicElementSpec>& elements = {},
                                     Visibility visibility = Visibility::kAdmin,
                                     const std::string& owner = {});

  /// Registers a dynamic sub-attribute under an existing definition.
  AttrDefId define_dynamic_sub_attribute(AttrDefId parent, const std::string& name,
                                         const std::string& source,
                                         const std::vector<DynamicElementSpec>& elements = {},
                                         Visibility visibility = Visibility::kAdmin,
                                         const std::string& owner = {});

  // ---- collections (containment context, §1/§7) ----

  /// Creates a (possibly nested) collection owned by `owner`.
  CollectionId create_collection(const std::string& name, const std::string& owner,
                                 CollectionId parent = kNoCollection);

  /// Adds an object to a collection (idempotent).
  void add_to_collection(CollectionId collection, ObjectId object);

  /// Member objects; with `recursive`, members of nested collections too.
  std::vector<ObjectId> collection_members(CollectionId collection,
                                           bool recursive = true) const;

  /// Direct child collections.
  std::vector<CollectionId> child_collections(CollectionId collection) const;

  /// Runs a metadata query scoped to a collection's (recursive) members —
  /// the containment-context query of §7.
  std::vector<ObjectId> query_in_collection(CollectionId collection, const ObjectQuery& q,
                                            bool recursive = true) const;

  // ---- query & response ----

  std::vector<ObjectId> query(const ObjectQuery& q, QueryPlanInfo* info = nullptr) const;

  /// Paginated query: honors the query's `limit` and continuation `cursor`.
  /// Cursors are opaque, carry the catalog version they were issued at, and
  /// are validated here: a cursor issued before any later mutation throws
  /// StaleCursorError; a syntactically bad cursor throws ValidationError.
  /// Each page is recomputed from the engine (ids are ascending, so the
  /// cursor is a resume-after id — O(log n) to apply).
  QueryPage query_paged(const ObjectQuery& q, QueryPlanInfo* info = nullptr) const;

  /// Full tagged-XML response for a set of object ids (§5).
  std::string build_response(std::span<const ObjectId> ids) const;

  /// Projected response: only the attributes at the given schema paths
  /// (e.g. {"data/idinfo/keywords/theme"}) are returned for each object.
  std::string build_response(std::span<const ObjectId> ids,
                             const std::vector<std::string>& attribute_paths) const;

  /// One object's reconstructed document, parsed back to a DOM.
  /// Throws ValidationError for deleted objects.
  xml::Document fetch(ObjectId id) const;

  // ---- deletion ----

  /// Tombstones an object: it stops matching queries and can no longer be
  /// fetched. Storage is reclaimed lazily (the tables are append-only).
  void delete_object(ObjectId id);

  bool is_deleted(ObjectId id) const {
    ReadGuard guard(*this);
    return guard->deleted->count(id) != 0;
  }
  std::size_t deleted_count() const {
    ReadGuard guard(*this);
    return guard->deleted->size();
  }

  /// Snapshot-consistent liveness: unknown / live / deleted as of one
  /// published epoch (the service fetch/delete handlers use this so the
  /// existence check and the tombstone check cannot straddle a commit).
  ObjectState object_state(ObjectId id) const {
    ReadGuard guard(*this);
    if (id < 0 || id >= guard->next_object) return ObjectState::kUnknown;
    return guard->deleted->count(id) != 0 ? ObjectState::kDeleted : ObjectState::kLive;
  }

  // ---- persistence ----

  /// Serializes the whole catalog state: object counter, dynamic
  /// definitions, thesaurus, same-sibling counters, and the database
  /// (shredded tables, ordering tables, collections, CLOBs).
  void save(std::ostream& out) const;

  /// Like save(), but writes the format-2 stream: it carries the version
  /// epoch and serializes the tables/CLOBs in the stable binary form
  /// (rel::save_database_binary) — the snapshot format of the durability
  /// subsystem. Interned columns serialize by content, so a stream is
  /// independent of interner pointer identity.
  void save_binary(std::ostream& out) const;

  /// save_binary without taking the write-pause lock — for the durability
  /// layer's checkpoint, which already holds read_lock() so that no
  /// mutation can slip between the snapshot and the WAL rotation.
  void save_binary_unlocked(std::ostream& out) const;

  /// Restores state saved by save() or save_binary() (both format versions
  /// are detected). The catalog must have been constructed with the same
  /// schema and annotations (the structural definitions and ordering tables
  /// are rebuilt by the constructor and verified here). Existing ingested
  /// data is discarded. Format 2 restores the version epoch it recorded;
  /// format 1 bumps the current epoch. Requires quiescence (no concurrent
  /// readers): row storage and index generations are freed in place, and
  /// the rebuilt catalog republishes a clean snapshot at the restored epoch.
  void restore(std::istream& in);

  /// Overwrites the version epoch and republishes the snapshot at it.
  /// Recovery only: replay re-applies logged mutations (each bumping the
  /// epoch) and then pins the epoch to the value the original process had
  /// recorded, plus a final bump so every pre-crash cursor is stale. Not
  /// for general use — epochs must stay monotonic for cursor validation to
  /// be sound.
  void restore_version(std::uint64_t epoch);

  // ---- durability hooks ----

  /// Installs (or clears, with nullptr) the mutation observer. Install
  /// during single-threaded open/recovery, before concurrent traffic: the
  /// pointer swap itself is not synchronized against in-flight mutations.
  void set_mutation_observer(MutationObserver observer) {
    observer_ = std::move(observer);
  }

  /// Durability counters rendered by the service `stats` request; owned by
  /// the durability layer, which must outlive the catalog's use of them.
  void set_durability_metrics(const util::DurabilityMetrics* metrics) noexcept {
    durability_metrics_ = metrics;
  }
  const util::DurabilityMetrics* durability_metrics() const noexcept {
    return durability_metrics_;
  }

  /// Network-backpressure counters rendered by the service `stats` request;
  /// owned by the server (net::ServerStats), which must outlive the
  /// catalog's use of them. Wire during single-threaded startup.
  void set_server_pauses(const util::ServerPauses* pauses) noexcept {
    server_pauses_ = pauses;
  }
  const util::ServerPauses* server_pauses() const noexcept { return server_pauses_; }

  /// Replication watermarks rendered by the service `stats` request; owned
  /// by the replication apply loop (fed::ReplicationListener), which must
  /// outlive the catalog's use of them. Wire during single-threaded startup.
  void set_replication_state(const util::ReplicationState* state) noexcept {
    replication_state_ = state;
  }
  const util::ReplicationState* replication_state() const noexcept {
    return replication_state_;
  }

  // ---- concurrency ----

  /// Current catalog version (epoch). Bumped by every mutation; readable
  /// without a lock. Continuation cursors embed the version they were
  /// issued at and are rejected once it moves.
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Write-pause lock: holds writers out (they take mutex_ exclusively)
  /// while readers keep running lock-free. For external code that must walk
  /// raw internals (database()/registry(), the durability checkpoint)
  /// coherently. The catalog's own read methods are snapshot-isolated and
  /// never touch this lock — holding it around them is safe but pointless.
  std::shared_lock<std::shared_mutex> read_lock() const {
    return std::shared_lock(mutex_);
  }

  /// An RAII pinned snapshot: pins the current epoch in a reclamation slot
  /// and loads the published CatalogSnapshot. Every read through the guard
  /// sees exactly the pinned epoch's state, concurrent commits and
  /// reclamation notwithstanding. Cheap (two atomic ops to pin, one to
  /// unpin); hold only for the duration of a read.
  class ReadGuard {
   public:
    explicit ReadGuard(const MetadataCatalog& catalog)
        : catalog_(&catalog),
          pin_(catalog.epochs_),
          snap_(catalog.snapshot_.load(std::memory_order_acquire)) {}

    const CatalogSnapshot& snapshot() const noexcept { return *snap_; }
    const CatalogSnapshot* operator->() const noexcept { return snap_; }
    std::uint64_t epoch() const noexcept { return snap_->epoch; }

    /// Query against the pinned snapshot (tombstones of that epoch applied).
    std::vector<ObjectId> query(const ObjectQuery& q,
                                QueryPlanInfo* info = nullptr) const {
      return catalog_->query_at(*snap_, q, info);
    }
    /// Paginated query against the pinned snapshot: cursor validation, id
    /// slicing, and the L1 memo all run at one epoch, so the service layer
    /// can compute a page AND serialize it from the same snapshot.
    QueryPage query_paged(const ObjectQuery& q) const {
      return catalog_->query_paged_at(*snap_, q, nullptr);
    }
    /// Tagged-XML response from the pinned snapshot.
    std::string build_response(std::span<const ObjectId> ids) const {
      return catalog_->build_response_at(*snap_, ids, nullptr);
    }

   private:
    const MetadataCatalog* catalog_;
    util::EpochPin pin_;
    const CatalogSnapshot* snap_;
  };

  /// Pins and returns a read guard (convenience for expression use).
  ReadGuard read_guard() const { return ReadGuard(*this); }

  /// MVCC observability for the service `stats` surface.
  util::MvccStats mvcc_stats() const noexcept {
    util::MvccStats stats;
    stats.epoch = version();
    stats.pinned_readers = epochs_.pinned_readers();
    stats.retired_pending = epochs_.retired_pending();
    stats.reclamations = epochs_.reclaimed_total();
    stats.snapshots_published = snapshots_published_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Blocks until every retired snapshot/generation has been reclaimed —
  /// i.e. until all readers that pinned an old epoch have unpinned. The
  /// dispatcher calls this from drain() after its workers go idle so a
  /// shutdown cannot leak retired generations.
  void quiesce_epochs() const { epochs_.quiesce(); }

  /// Republishes the current state as a fresh snapshot (same epoch). For
  /// single-threaded setup that mutated internals directly — registry()
  /// imports, thesaurus edits — and wants snapshot readers to see them
  /// without a committing mutation.
  void publish() {
    std::unique_lock lock(mutex_);
    publish_locked();
  }

  // ---- introspection ----

  const Partition& partition() const noexcept { return partition_; }
  const DefinitionRegistry& registry() const noexcept { return registry_; }
  /// Mutable registry access for bulk definition import (e.g. replicating
  /// definitions between catalogs before parallel ingest). Single-threaded
  /// setup only; the next commit publishes the imported definitions.
  DefinitionRegistry& registry() noexcept { return registry_; }

  /// The catalog's ontology (§3): synonyms added here are consulted when a
  /// query criterion does not match a definition directly. Setup-time
  /// mutation only (snapshots share the live thesaurus).
  Thesaurus& thesaurus() noexcept { return thesaurus_; }
  const Thesaurus& thesaurus() const noexcept { return thesaurus_; }
  const rel::Database& database() const noexcept { return db_; }
  rel::Database& database() noexcept { return db_; }
  /// Unlocked reference — single-threaded use only; concurrent callers
  /// want stats_snapshot().
  const ShredStats& total_stats() const noexcept { return stats_; }
  /// Copy of the aggregate shred stats from the published snapshot.
  ShredStats stats_snapshot() const {
    ReadGuard guard(*this);
    return guard->stats;
  }
  std::size_t object_count() const noexcept {
    return static_cast<std::size_t>(next_object_.load(std::memory_order_acquire));
  }

  /// Cumulative ingest-path observability (docs/s, rows/s, arena bytes).
  /// Lock-free to read; see util::IngestMetrics.
  const util::IngestMetrics& ingest_metrics() const noexcept { return ingest_metrics_; }

  /// Query-cache observability: counters aggregated across every snapshot
  /// generation's segment (hits/misses/inserts/evictions plus resident
  /// bytes/entries gauges). Lock-free to read; see util::CacheMetrics.
  const util::CacheMetrics& cache_metrics() const noexcept { return cache_metrics_; }
  /// Mutable form for the dispatcher's bypass / inline-served accounting.
  util::CacheMetrics& cache_metrics() noexcept { return cache_metrics_; }
  bool cache_enabled() const noexcept { return config_.cache.enabled; }

 private:
  friend class ReadGuard;

  std::vector<CollectionId> child_collections_at(const CatalogSnapshot& snap,
                                                 CollectionId collection) const;
  std::vector<ObjectId> collection_members_at(const CatalogSnapshot& snap,
                                              CollectionId collection,
                                              bool recursive) const;
  std::string build_response_at(const CatalogSnapshot& snap, std::span<const ObjectId> ids,
                                const std::vector<OrderId>* orders) const;
  /// Engine run + tombstone filter against one snapshot, ids ascending.
  /// Plain runs (info == nullptr) go through the snapshot's L1 memo.
  std::vector<ObjectId> query_at(const CatalogSnapshot& snap, const ObjectQuery& q,
                                 QueryPlanInfo* info) const;
  /// query_paged against one snapshot (see query_paged).
  QueryPage query_paged_at(const CatalogSnapshot& snap, const ObjectQuery& q,
                           QueryPlanInfo* info) const;
  void save_impl(std::ostream& out, bool binary) const;
  void bump_version() noexcept {
    version_.fetch_add(1, std::memory_order_acq_rel);
  }
  /// Hands a mutation to the observer (if any); caller holds mutex_.
  void notify(const MutationEvent& event) const {
    if (observer_) observer_(event);
  }
  /// Builds and atomically publishes a fresh CatalogSnapshot of the current
  /// state, retires the superseded one, and advances the reclamation epoch.
  /// Caller holds mutex_ exclusively (or is single-threaded: ctor/restore).
  void publish_locked();
  /// notify + publish: publishes even when the observer throws, so memory
  /// keeps serving the applied mutation while the I/O failure propagates.
  void commit_locked(const MutationEvent& event) {
    try {
      notify(event);
    } catch (...) {
      publish_locked();
      throw;
    }
    publish_locked();
  }

  const xml::Schema& schema_;
  CatalogConfig config_;
  Partition partition_;
  DefinitionRegistry registry_;
  Thesaurus thesaurus_;
  /// Declared before epochs_ so it outlives every retired snapshot: a
  /// reclaimed generation's cache segment drains its resident-byte gauges
  /// into these counters from its destructor.
  util::CacheMetrics cache_metrics_;
  /// Declared before db_ so it is destroyed after it: retired index
  /// generations are freed by ~EpochManager with their deleters intact.
  mutable util::EpochManager epochs_;
  rel::Database db_;
  std::unique_ptr<Shredder> shredder_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<ResponseBuilder> responder_;
  std::atomic<ObjectId> next_object_{0};
  ShredStats stats_;
  util::IngestMetrics ingest_metrics_;
  std::unordered_set<ObjectId> deleted_;
  /// Exclusive for mutations (the commit lock); shared acquisition is the
  /// write-pause read_lock(). Guards db_, registry_, thesaurus_, stats_,
  /// deleted_, the shredder counters, and snapshot publication. MVCC
  /// readers never touch it.
  mutable std::shared_mutex mutex_;
  std::atomic<std::uint64_t> version_{0};
  /// The published snapshot; never null after construction.
  std::atomic<const CatalogSnapshot*> snapshot_{nullptr};
  /// Commit-lock-guarded caches so unchanged registries/tombstone sets are
  /// shared across snapshots instead of re-copied per commit.
  std::shared_ptr<const DefinitionRegistry> published_defs_;
  std::size_t published_attr_count_ = 0;
  std::size_t published_elem_count_ = 0;
  std::shared_ptr<const std::unordered_set<ObjectId>> published_deleted_;
  std::atomic<std::uint64_t> snapshots_published_{0};
  MutationObserver observer_;
  const util::DurabilityMetrics* durability_metrics_ = nullptr;
  const util::ServerPauses* server_pauses_ = nullptr;
  const util::ReplicationState* replication_state_ = nullptr;
};

}  // namespace hxrc::core
