#include "core/shredder.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <utility>

#include "util/string_util.hpp"
#include "xml/writer.hpp"

namespace hxrc::core {

void install_storage(rel::Database& db) {
  using rel::Type;
  db.create_table(kObjectsTable, rel::TableSchema{{"object_id", Type::kInt},
                                                  {"name", Type::kString},
                                                  {"owner", Type::kString}});
  db.create_table(kAttrInstancesTable, rel::TableSchema{{"object_id", Type::kInt},
                                                        {"attr_id", Type::kInt},
                                                        {"seq", Type::kInt},
                                                        {"top", Type::kInt},
                                                        {"clob_seq", Type::kInt}});
  db.create_table(kAttrInvertedTable, rel::TableSchema{{"object_id", Type::kInt},
                                                       {"attr_id", Type::kInt},
                                                       {"seq", Type::kInt},
                                                       {"anc_attr_id", Type::kInt},
                                                       {"anc_seq", Type::kInt},
                                                       {"distance", Type::kInt}});
  db.create_table(kElemDataTable, rel::TableSchema{{"object_id", Type::kInt},
                                                   {"attr_id", Type::kInt},
                                                   {"seq", Type::kInt},
                                                   {"elem_id", Type::kInt},
                                                   {"elem_seq", Type::kInt},
                                                   {"value_str", Type::kString},
                                                   {"value_num", Type::kDouble}});
  db.create_table(kAttrClobsTable, rel::TableSchema{{"object_id", Type::kInt},
                                                    {"order_id", Type::kInt},
                                                    {"clob_seq", Type::kInt},
                                                    {"clob_id", Type::kInt}});
}

void install_storage_indexes(rel::Database& db) {
  db.require_table(kObjectsTable).create_hash_index("idx_objects_id", {"object_id"});
  rel::Table& instances = db.require_table(kAttrInstancesTable);
  instances.create_hash_index("idx_inst_attr", {"attr_id"});
  instances.create_hash_index("idx_inst_object", {"object_id"});
  rel::Table& inverted = db.require_table(kAttrInvertedTable);
  inverted.create_hash_index("idx_inv_child", {"object_id", "attr_id", "seq"});
  rel::Table& elements = db.require_table(kElemDataTable);
  elements.create_hash_index("idx_elem_def", {"elem_id"});
  rel::Table& clobs = db.require_table(kAttrClobsTable);
  clobs.create_hash_index("idx_clob_object", {"object_id"});
}

ShredStats& ShredStats::operator+=(const ShredStats& other) noexcept {
  attribute_instances += other.attribute_instances;
  sub_attribute_instances += other.sub_attribute_instances;
  element_rows += other.element_rows;
  clobs += other.clobs;
  clob_bytes += other.clob_bytes;
  unshredded_dynamic += other.unshredded_dynamic;
  untyped_values += other.untyped_values;
  return *this;
}

/// Per-document shredding state (same-sibling sequence counters are
/// catalog-persistent members of the Shredder, not per-document).
struct Shredder::DocState {
  ObjectId object_id = 0;
  std::string owner;
  ShredStats stats;
  /// Element sequence counters per attribute instance (def, seq).
  std::map<std::pair<AttrDefId, std::int64_t>, std::int64_t> elem_seq;
};

Shredder::Shredder(const Partition& partition, DefinitionRegistry& registry,
                   rel::Database& db, ShredOptions options)
    : partition_(partition),
      registry_(registry),
      db_(db),
      options_(options),
      objects_(&db.require_table(kObjectsTable)),
      instances_(&db.require_table(kAttrInstancesTable)),
      inverted_(&db.require_table(kAttrInvertedTable)),
      elements_(&db.require_table(kElemDataTable)),
      clobs_(&db.require_table(kAttrClobsTable)) {}

ShredStats Shredder::shred(const xml::Document& doc, ObjectId object_id,
                           const std::string& name, const std::string& owner) {
  if (!doc.root) throw ValidationError("empty document");
  const xml::SchemaNode& schema_root = partition_.schema().root();
  if (doc.root->name() != schema_root.name()) {
    throw ValidationError("document root <" + doc.root->name() +
                          "> does not match schema root <" + schema_root.name() + ">");
  }
  DocState state;
  state.object_id = object_id;
  state.owner = owner;

  objects_->append(rel::Row{rel::Value(object_id), rel::Value(name), rel::Value(owner)});
  walk_ordered(state, *doc.root, schema_root);
  return state.stats;
}

ShredStats Shredder::shred_additional(const xml::Node& attribute_content,
                                      ObjectId object_id, const AttributeRootInfo& root,
                                      const std::string& owner) {
  if (attribute_content.name() != root.tag) {
    throw ValidationError("attribute content <" + attribute_content.name() +
                          "> does not match attribute root <" + root.tag + ">");
  }
  DocState state;
  state.object_id = object_id;
  state.owner = owner;

  // Same-sibling counters are persistent catalog state, so the new
  // instance continues the object's sequences without scanning its rows.
  if (!root.repeatable && clob_seq_[{object_id, root.order}] >= 1) {
    throw ValidationError("attribute <" + root.tag +
                          "> is single-instance and the object already has one");
  }

  handle_attribute(state, attribute_content, root);
  return state.stats;
}

void Shredder::absorb_counters(const Shredder& other) {
  for (const auto& [key, seq] : other.instance_seq_) {
    auto& counter = instance_seq_[key];
    counter = std::max(counter, seq);
  }
  for (const auto& [key, seq] : other.clob_seq_) {
    auto& counter = clob_seq_[key];
    counter = std::max(counter, seq);
  }
}

void Shredder::save_counters(std::ostream& out) const {
  out << "counters " << instance_seq_.size() << ' ' << clob_seq_.size() << '\n';
  for (const auto& [key, seq] : instance_seq_) {
    out << key.first << ' ' << key.second << ' ' << seq << '\n';
  }
  for (const auto& [key, seq] : clob_seq_) {
    out << key.first << ' ' << key.second << ' ' << seq << '\n';
  }
}

void Shredder::load_counters(std::istream& in) {
  std::string tag;
  std::size_t instances = 0;
  std::size_t clobs = 0;
  if (!(in >> tag >> instances >> clobs) || tag != "counters") {
    throw ValidationError("bad counters section in catalog stream");
  }
  instance_seq_.clear();
  clob_seq_.clear();
  for (std::size_t i = 0; i < instances; ++i) {
    ObjectId object = 0;
    AttrDefId def = 0;
    std::int64_t seq = 0;
    in >> object >> def >> seq;
    instance_seq_[{object, def}] = seq;
  }
  for (std::size_t i = 0; i < clobs; ++i) {
    ObjectId object = 0;
    OrderId order = 0;
    std::int64_t seq = 0;
    in >> object >> order >> seq;
    clob_seq_[{object, order}] = seq;
  }
  if (!in) throw ValidationError("truncated counters section");
}

void Shredder::walk_ordered(DocState& state, const xml::Node& node,
                            const xml::SchemaNode& schema_node) {
  const OrderId order = partition_.order_of(schema_node);
  if (const AttributeRootInfo* root = partition_.root_at(order)) {
    handle_attribute(state, node, *root);
    return;
  }
  // Ancestor node: descend matching children against the schema.
  for (const xml::Node* child : node.child_elements()) {
    const xml::SchemaNode* child_schema = schema_node.child(child->name());
    if (child_schema == nullptr) {
      throw ValidationError("unexpected element <" + child->name() + "> under <" +
                            schema_node.name() + ">");
    }
    walk_ordered(state, *child, *child_schema);
  }
}

void Shredder::handle_attribute(DocState& state, const xml::Node& node,
                                const AttributeRootInfo& root) {
  // Store the CLOB with its global order and same-sibling sequence (§3).
  const std::int64_t clob_seq = ++clob_seq_[{state.object_id, root.order}];
  std::string serialized = xml::write(node);
  state.stats.clob_bytes += serialized.size();
  ++state.stats.clobs;
  const rel::ClobId clob_id = db_.clobs().append(std::move(serialized));
  clobs_->append(rel::Row{rel::Value(state.object_id), rel::Value(root.order),
                          rel::Value(clob_seq), rel::Value(clob_id)});

  if (!root.queryable) return;
  if (root.dynamic) {
    shred_dynamic(state, node, root, clob_seq);
  } else {
    shred_structural(state, node, root, clob_seq);
  }
}

std::int64_t Shredder::next_seq(DocState& state, AttrDefId def) {
  return ++instance_seq_[{state.object_id, def}];
}

void Shredder::append_inverted(DocState& state, AttrDefId def, std::int64_t seq,
                               const std::vector<std::pair<AttrDefId, std::int64_t>>& path) {
  // path holds the enclosing instances from the top attribute downward; the
  // nearest enclosing instance is at distance 1.
  const std::int64_t n = static_cast<std::int64_t>(path.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& [anc_def, anc_seq] = path[static_cast<std::size_t>(i)];
    inverted_->append(rel::Row{rel::Value(state.object_id), rel::Value(def), rel::Value(seq),
                               rel::Value(anc_def), rel::Value(anc_seq),
                               rel::Value(n - i)});
  }
}

void Shredder::append_element_row(DocState& state, AttrDefId attr, std::int64_t seq,
                                  const ElementDef& elem, std::int64_t elem_seq,
                                  const std::string& raw_value) {
  // value_num mirrors any value that parses as a number, so predicates can
  // compare numerically exactly when both operands are numeric (the shared
  // comparison semantics; see baselines/dom_matcher.cpp). The declared type
  // is used only to flag validation failures.
  rel::Value numeric = rel::Value::null();
  if (const auto v = util::parse_double(raw_value)) {
    numeric = rel::Value(*v);
  }
  if ((elem.type == xml::LeafType::kInt && !util::parse_int(raw_value)) ||
      (elem.type == xml::LeafType::kDouble && numeric.is_null())) {
    ++state.stats.untyped_values;
  }
  elements_->append(rel::Row{rel::Value(state.object_id), rel::Value(attr), rel::Value(seq),
                             rel::Value(elem.id), rel::Value(elem_seq),
                             rel::Value(raw_value), std::move(numeric)});
  ++state.stats.element_rows;
}

void Shredder::shred_structural(DocState& state, const xml::Node& node,
                                const AttributeRootInfo& root, std::int64_t clob_seq) {
  const auto def_opt = registry_.structural_for_order(root.order);
  if (!def_opt) return;  // not installed -> treated as non-queryable
  const AttrDefId def = *def_opt;
  const std::int64_t seq = next_seq(state, def);
  instances_->append(rel::Row{rel::Value(state.object_id), rel::Value(def), rel::Value(seq),
                              rel::Value(std::int64_t{1}), rel::Value(clob_seq)});
  ++state.stats.attribute_instances;

  std::vector<std::pair<AttrDefId, std::int64_t>> path{{def, seq}};
  shred_structural_children(state, node, *root.schema_node, def, seq, path);
}

void Shredder::shred_structural_children(
    DocState& state, const xml::Node& node, const xml::SchemaNode& schema_node,
    AttrDefId def, std::int64_t seq,
    std::vector<std::pair<AttrDefId, std::int64_t>>& path) {
  std::int64_t elem_seq = 0;

  // Attribute-element: the node itself carries the value.
  if (schema_node.is_leaf()) {
    if (const ElementDef* elem = registry_.find_element(schema_node.name(), "", def)) {
      append_element_row(state, def, seq, *elem, ++elem_seq, node.text_content());
    }
    return;
  }

  for (const xml::Node* child : node.child_elements()) {
    const xml::SchemaNode* child_schema = schema_node.child(child->name());
    if (child_schema == nullptr) {
      throw ValidationError("unexpected element <" + child->name() + "> inside attribute <" +
                            schema_node.name() + ">");
    }
    if (child_schema->is_leaf()) {
      const ElementDef* elem = registry_.find_element(child->name(), "", def);
      if (elem == nullptr) {
        throw ValidationError("no element definition for <" + child->name() + "> in <" +
                              schema_node.name() + ">");
      }
      append_element_row(state, def, seq, *elem, ++elem_seq, child->text_content());
      continue;
    }
    // Structural sub-attribute.
    const AttributeDef* sub = registry_.find_attribute(child->name(), "", def);
    if (sub == nullptr) {
      throw ValidationError("no sub-attribute definition for <" + child->name() + ">");
    }
    const std::int64_t sub_seq = next_seq(state, sub->id);
    instances_->append(rel::Row{rel::Value(state.object_id), rel::Value(sub->id),
                                rel::Value(sub_seq), rel::Value(std::int64_t{0}),
                                rel::Value::null()});
    ++state.stats.sub_attribute_instances;
    append_inverted(state, sub->id, sub_seq, path);
    path.emplace_back(sub->id, sub_seq);
    shred_structural_children(state, *child, *child_schema, sub->id, sub_seq, path);
    path.pop_back();
  }
}

void Shredder::shred_dynamic(DocState& state, const xml::Node& node,
                             const AttributeRootInfo& root, std::int64_t clob_seq) {
  const DynamicConvention& c = partition_.convention();

  // Identity comes from values, not tags (§3): enttypl/enttypds in LEAD.
  const xml::Node* container = node.first_child(c.def_container);
  if (container == nullptr) {
    ++state.stats.unshredded_dynamic;
    return;
  }
  const std::string name = container->child_text(c.def_name);
  const std::string source = container->child_text(c.def_source);
  if (name.empty()) {
    ++state.stats.unshredded_dynamic;
    return;
  }

  // Hold the id, not the pointer: auto-definition below may grow the
  // registry's definition vector and invalidate definition references.
  AttrDefId def_id = kNoAttr;
  if (const AttributeDef* def = registry_.find_attribute(name, source, kNoAttr, state.owner)) {
    def_id = def->id;
  } else {
    if (!options_.auto_define_dynamic) {
      // Validation failed: keep the CLOB, skip the query tables (§3).
      ++state.stats.unshredded_dynamic;
      return;
    }
    def_id = registry_.define_attribute(
        name, source, AttrKind::kDynamic, kNoAttr, root.order,
        options_.auto_define_visibility,
        options_.auto_define_visibility == Visibility::kUser ? state.owner : std::string{});
  }

  const std::int64_t seq = next_seq(state, def_id);
  instances_->append(rel::Row{rel::Value(state.object_id), rel::Value(def_id),
                              rel::Value(seq), rel::Value(std::int64_t{1}),
                              rel::Value(clob_seq)});
  ++state.stats.attribute_instances;

  std::vector<std::pair<AttrDefId, std::int64_t>> path{{def_id, seq}};
  for (const xml::Node* item : node.children_named(c.item_tag)) {
    shred_dynamic_item(state, *item, def_id, path, state.owner);
  }
}

void Shredder::shred_dynamic_item(DocState& state, const xml::Node& item,
                                  AttrDefId parent_def,
                                  std::vector<std::pair<AttrDefId, std::int64_t>>& path,
                                  const std::string& owner) {
  const DynamicConvention& c = partition_.convention();
  const std::string name = item.child_text(c.item_name);
  const std::string source = item.child_text(c.item_source);
  if (name.empty()) {
    ++state.stats.unshredded_dynamic;
    return;
  }

  const std::vector<const xml::Node*> sub_items = item.children_named(c.item_tag);
  const bool is_sub_attribute = !sub_items.empty();

  if (is_sub_attribute) {
    // Hold the id, not a pointer — recursive auto-definition may reallocate
    // the registry's definition vector.
    AttrDefId sub_id = kNoAttr;
    if (const AttributeDef* sub = registry_.find_attribute(name, source, parent_def, owner)) {
      sub_id = sub->id;
    } else {
      if (!options_.auto_define_dynamic) {
        ++state.stats.unshredded_dynamic;
        return;
      }
      sub_id = registry_.define_attribute(
          name, source, AttrKind::kDynamic, parent_def, kNoOrder,
          options_.auto_define_visibility,
          options_.auto_define_visibility == Visibility::kUser ? owner : std::string{});
    }
    const std::int64_t sub_seq = next_seq(state, sub_id);
    instances_->append(rel::Row{rel::Value(state.object_id), rel::Value(sub_id),
                                rel::Value(sub_seq), rel::Value(std::int64_t{0}),
                                rel::Value::null()});
    ++state.stats.sub_attribute_instances;
    append_inverted(state, sub_id, sub_seq, path);
    path.emplace_back(sub_id, sub_seq);
    for (const xml::Node* sub_item : sub_items) {
      shred_dynamic_item(state, *sub_item, sub_id, path, owner);
    }
    path.pop_back();
    return;
  }

  // Metadata element: value carried by the item_value child.
  const std::string raw_value = item.child_text(c.item_value);
  const ElementDef* elem = registry_.find_element(name, source, parent_def);
  if (elem == nullptr) {
    if (!options_.auto_define_dynamic) {
      ++state.stats.unshredded_dynamic;
      return;
    }
    // Infer the value type from the first observed value.
    xml::LeafType type = xml::LeafType::kString;
    if (util::parse_int(raw_value)) {
      type = xml::LeafType::kInt;
    } else if (util::parse_double(raw_value)) {
      type = xml::LeafType::kDouble;
    }
    const ElemDefId id = registry_.define_element(name, source, parent_def, type);
    elem = &registry_.element(id);
  }
  const auto& [attr_def, attr_seq] = path.back();
  // Element sequence: local order within this attribute instance.
  const std::int64_t elem_seq = ++state.elem_seq[{attr_def, attr_seq}];
  append_element_row(state, attr_def, attr_seq, *elem, elem_seq, raw_value);
}

}  // namespace hxrc::core
