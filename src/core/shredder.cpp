#include "core/shredder.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "util/string_util.hpp"
#include "xml/writer.hpp"

namespace hxrc::core {

void install_storage(rel::Database& db) {
  using rel::Type;
  db.create_table(kObjectsTable, rel::TableSchema{{"object_id", Type::kInt},
                                                  {"name", Type::kString},
                                                  {"owner", Type::kString}});
  db.create_table(kAttrInstancesTable, rel::TableSchema{{"object_id", Type::kInt},
                                                        {"attr_id", Type::kInt},
                                                        {"seq", Type::kInt},
                                                        {"top", Type::kInt},
                                                        {"clob_seq", Type::kInt}});
  db.create_table(kAttrInvertedTable, rel::TableSchema{{"object_id", Type::kInt},
                                                       {"attr_id", Type::kInt},
                                                       {"seq", Type::kInt},
                                                       {"anc_attr_id", Type::kInt},
                                                       {"anc_seq", Type::kInt},
                                                       {"distance", Type::kInt}});
  db.create_table(kElemDataTable, rel::TableSchema{{"object_id", Type::kInt},
                                                   {"attr_id", Type::kInt},
                                                   {"seq", Type::kInt},
                                                   {"elem_id", Type::kInt},
                                                   {"elem_seq", Type::kInt},
                                                   {"value_str", Type::kString},
                                                   {"value_num", Type::kDouble}});
  db.create_table(kAttrClobsTable, rel::TableSchema{{"object_id", Type::kInt},
                                                    {"order_id", Type::kInt},
                                                    {"clob_seq", Type::kInt},
                                                    {"clob_id", Type::kInt}});
}

void install_storage_indexes(rel::Database& db) {
  db.require_table(kObjectsTable).create_hash_index("idx_objects_id", {"object_id"});
  rel::Table& instances = db.require_table(kAttrInstancesTable);
  instances.create_hash_index("idx_inst_attr", {"attr_id"});
  instances.create_hash_index("idx_inst_object", {"object_id"});
  rel::Table& inverted = db.require_table(kAttrInvertedTable);
  inverted.create_hash_index("idx_inv_child", {"object_id", "attr_id", "seq"});
  rel::Table& elements = db.require_table(kElemDataTable);
  elements.create_hash_index("idx_elem_def", {"elem_id"});
  // Value-keyed equality indexes: an equality criterion probes the exact
  // (element, value) bucket instead of scanning the whole element-definition
  // bucket — O(result) instead of O(corpus) per criterion, which is what
  // keeps p99 flat from 10k to 1M objects (BENCH_scale). Two indexes because
  // the engine's comparison semantics are two-track: value_num carries every
  // value that parses numerically ("0730" == "730"), value_str the exact
  // text. See Pipeline::for_each_eq_match in core/engine.cpp.
  elements.create_hash_index("idx_elem_val", {"elem_id", "value_str"});
  elements.create_hash_index("idx_elem_num", {"elem_id", "value_num"});
  rel::Table& clobs = db.require_table(kAttrClobsTable);
  clobs.create_hash_index("idx_clob_object", {"object_id"});
}

ShredStats& ShredStats::operator+=(const ShredStats& other) noexcept {
  attribute_instances += other.attribute_instances;
  sub_attribute_instances += other.sub_attribute_instances;
  element_rows += other.element_rows;
  clobs += other.clobs;
  clob_bytes += other.clob_bytes;
  unshredded_dynamic += other.unshredded_dynamic;
  untyped_values += other.untyped_values;
  return *this;
}

namespace {

/// Strings at or below this length fit std::string's in-place buffer on
/// every mainstream ABI, so dictionary-encoding them saves no heap.
constexpr std::size_t kInternMinLength = 15;

/// Builds a Row in place, avoiding the extra Value copies an initializer
/// list would make.
template <typename... Vs>
rel::Row make_row(Vs&&... vs) {
  rel::Row row;
  row.reserve(sizeof...(Vs));
  (row.emplace_back(std::forward<Vs>(vs)), ...);
  return row;
}

/// Raises dense[idx] to at least seq, growing the vector on demand.
void bump_to(std::vector<std::int64_t>& dense, std::int64_t idx, std::int64_t seq) {
  const auto i = static_cast<std::size_t>(idx);
  if (i >= dense.size()) dense.resize(i + 1, 0);
  if (seq > dense[i]) dense[i] = seq;
}

}  // namespace

void Shredder::DocState::reset(ObjectId id, const std::string& owner_name) {
  object_id = id;
  owner = owner_name;
  stats = ShredStats{};
  inst_seq.assign(inst_seq.size(), 0);
  clob_seq.assign(clob_seq.size(), 0);
  instance_rows.clear();
  inverted_rows.clear();
  element_rows.clear();
  clob_rows.clear();
  path.clear();
}

Shredder::Shredder(const Partition& partition, DefinitionRegistry& registry,
                   rel::Database& db, ShredOptions options)
    : partition_(partition),
      registry_(registry),
      db_(db),
      options_(options),
      objects_(&db.require_table(kObjectsTable)),
      instances_(&db.require_table(kAttrInstancesTable)),
      inverted_(&db.require_table(kAttrInvertedTable)),
      elements_(&db.require_table(kElemDataTable)),
      clobs_(&db.require_table(kAttrClobsTable)) {}

rel::Value Shredder::string_value(std::string_view s) {
  // Short strings fit a std::string's in-place (SSO) buffer, so storing
  // them owned costs no heap and no dictionary probe — the interner only
  // earns its hash lookup on strings long enough to share heap storage.
  if (options_.intern_strings && s.size() > kInternMinLength) {
    return rel::Value::interned(db_.interner().intern(s));
  }
  return rel::Value(std::string(s));
}

void Shredder::flush(DocState& state) {
  // Unchecked: every row is built by make_row with types fixed at the call
  // site, matching the schemas installed above.
  if (!state.instance_rows.empty()) {
    instances_->append_batch_unchecked(std::move(state.instance_rows));
  }
  if (!state.inverted_rows.empty()) {
    inverted_->append_batch_unchecked(std::move(state.inverted_rows));
  }
  if (!state.element_rows.empty()) {
    elements_->append_batch_unchecked(std::move(state.element_rows));
  }
  if (!state.clob_rows.empty()) clobs_->append_batch_unchecked(std::move(state.clob_rows));
}

ShredStats Shredder::shred(const xml::Document& doc, ObjectId object_id,
                           const std::string& name, const std::string& owner) {
  if (!doc.root) throw ValidationError("empty document");
  const xml::SchemaNode& schema_root = partition_.schema().root();
  if (doc.root->name() != schema_root.name()) {
    throw ValidationError("document root <" + std::string(doc.root->name()) +
                          "> does not match schema root <" + schema_root.name() + ">");
  }
  DocState& state = scratch_;
  state.reset(object_id, owner);
  // Fresh object ids (the ingest hot path) start every sequence at zero and
  // pay only two O(1) probes here; an id with prior state (re-ingest after
  // inserts, merged shards) continues its sequences exactly.
  if (object_has_state(object_id)) seed_counters(state);

  walk_ordered(state, *doc.root, schema_root);
  // The object row and the batches land only after the whole document
  // validated — a ValidationError mid-walk leaves the query tables clean.
  objects_->append(make_row(rel::Value(object_id), string_value(name),
                            string_value(owner)));
  flush(state);
  return state.stats;
}

ShredStats Shredder::shred_additional(const xml::Node& attribute_content,
                                      ObjectId object_id, const AttributeRootInfo& root,
                                      const std::string& owner) {
  if (attribute_content.name() != root.tag) {
    throw ValidationError("attribute content <" + std::string(attribute_content.name()) +
                          "> does not match attribute root <" + root.tag + ">");
  }
  DocState& state = scratch_;
  state.reset(object_id, owner);
  // Continue the object's sequences: derived from its stored rows, with any
  // continued-counter cache entries layered on top.
  seed_counters(state);

  if (!root.repeatable) {
    const auto order = static_cast<std::size_t>(root.order);
    if (order < state.clob_seq.size() && state.clob_seq[order] >= 1) {
      throw ValidationError("attribute <" + root.tag +
                            "> is single-instance and the object already has one");
    }
  }

  handle_attribute(state, attribute_content, root);
  flush(state);
  store_continued(state);
  return state.stats;
}

bool Shredder::object_has_state(ObjectId id) const {
  if (continued_.count(id) != 0) return true;
  const rel::Key key{{rel::Value(id)}};
  const auto has_rows = [&](const rel::Table& table, const char* index_name) {
    if (const rel::Index* index = table.index(index_name)) {
      return index->bucket_size(key) != 0;
    }
    for (rel::RowId row = 0; row < table.row_count(); ++row) {
      if (table.row(row)[0] == key.parts[0]) return true;
    }
    return false;
  };
  // A successfully shredded object always has an objects row; clob rows
  // cover objects holding only unqueryable content after a table merge.
  return has_rows(*objects_, "idx_objects_id") || has_rows(*clobs_, "idx_clob_object");
}

void Shredder::seed_counters(DocState& state) const {
  const rel::Value object_value(state.object_id);
  const rel::Key key{{object_value}};
  std::vector<rel::RowId> ids;
  // Both tables lay out (object_id, <dense id>, <seq>, ...) in their first
  // three columns, so one helper seeds either dense counter vector.
  const auto seed_from = [&](const rel::Table& table, const char* index_name,
                             std::vector<std::int64_t>& dense) {
    ids.clear();
    if (const rel::Index* index = table.index(index_name)) {
      index->lookup_into(key, ids);
    } else {
      for (rel::RowId row = 0; row < table.row_count(); ++row) {
        if (table.row(row)[0] == object_value) ids.push_back(row);
      }
    }
    for (const rel::RowId row_id : ids) {
      const rel::Row& row = table.row(row_id);
      bump_to(dense, row[1].as_int(), row[2].as_int());
    }
  };
  seed_from(*instances_, "idx_inst_object", state.inst_seq);
  seed_from(*clobs_, "idx_clob_object", state.clob_seq);
  if (const auto it = continued_.find(state.object_id); it != continued_.end()) {
    for (const auto& [def, seq] : it->second.instance) bump_to(state.inst_seq, def, seq);
    for (const auto& [order, seq] : it->second.clob) bump_to(state.clob_seq, order, seq);
  }
}

void Shredder::store_continued(const DocState& state) {
  SiblingCounters& counters = continued_[state.object_id];
  for (std::size_t def = 0; def < state.inst_seq.size(); ++def) {
    if (state.inst_seq[def] != 0) {
      counters.instance[static_cast<std::int64_t>(def)] = state.inst_seq[def];
    }
  }
  for (std::size_t order = 0; order < state.clob_seq.size(); ++order) {
    if (state.clob_seq[order] != 0) {
      counters.clob[static_cast<std::int64_t>(order)] = state.clob_seq[order];
    }
  }
}

void Shredder::absorb_counters(const Shredder& other) {
  continued_.reserve(continued_.size() + other.continued_.size());
  for (const auto& [object, theirs] : other.continued_) {
    SiblingCounters& mine = continued_[object];
    mine.instance.reserve(mine.instance.size() + theirs.instance.size());
    for (const auto& [def, seq] : theirs.instance) {
      auto& counter = mine.instance[def];
      counter = std::max(counter, seq);
    }
    mine.clob.reserve(mine.clob.size() + theirs.clob.size());
    for (const auto& [order, seq] : theirs.clob) {
      auto& counter = mine.clob[order];
      counter = std::max(counter, seq);
    }
  }
}

void Shredder::save_counters(std::ostream& out) const {
  // The counters live in hash maps; sort the keys so saves stay
  // byte-deterministic.
  using Entry = std::pair<std::pair<std::int64_t, std::int64_t>, std::int64_t>;
  std::vector<Entry> instances;
  std::vector<Entry> clobs;
  for (const auto& [object, counters] : continued_) {
    for (const auto& [def, seq] : counters.instance) instances.push_back({{object, def}, seq});
    for (const auto& [order, seq] : counters.clob) clobs.push_back({{object, order}, seq});
  }
  std::sort(instances.begin(), instances.end());
  std::sort(clobs.begin(), clobs.end());
  out << "counters " << instances.size() << ' ' << clobs.size() << '\n';
  for (const auto& [key, seq] : instances) {
    out << key.first << ' ' << key.second << ' ' << seq << '\n';
  }
  for (const auto& [key, seq] : clobs) {
    out << key.first << ' ' << key.second << ' ' << seq << '\n';
  }
}

void Shredder::load_counters(std::istream& in) {
  std::string tag;
  std::size_t instances = 0;
  std::size_t clobs = 0;
  if (!(in >> tag >> instances >> clobs) || tag != "counters") {
    throw ValidationError("bad counters section in catalog stream");
  }
  continued_.clear();
  for (std::size_t i = 0; i < instances; ++i) {
    ObjectId object = 0;
    AttrDefId def = 0;
    std::int64_t seq = 0;
    in >> object >> def >> seq;
    continued_[object].instance[def] = seq;
  }
  for (std::size_t i = 0; i < clobs; ++i) {
    ObjectId object = 0;
    OrderId order = 0;
    std::int64_t seq = 0;
    in >> object >> order >> seq;
    continued_[object].clob[order] = seq;
  }
  if (!in) throw ValidationError("truncated counters section");
}

void Shredder::walk_ordered(DocState& state, const xml::Node& node,
                            const xml::SchemaNode& schema_node) {
  const OrderId order = partition_.order_of(schema_node);
  if (const AttributeRootInfo* root = partition_.root_at(order)) {
    handle_attribute(state, node, *root);
    return;
  }
  // Ancestor node: descend matching children against the schema.
  for (const xml::Node* child : node.children()) {
    if (!child->is_element()) continue;
    const xml::SchemaNode* child_schema = schema_node.child(child->name());
    if (child_schema == nullptr) {
      throw ValidationError("unexpected element <" + std::string(child->name()) +
                            "> under <" + schema_node.name() + ">");
    }
    walk_ordered(state, *child, *child_schema);
  }
}

void Shredder::handle_attribute(DocState& state, const xml::Node& node,
                                const AttributeRootInfo& root) {
  // Store the CLOB with its global order and same-sibling sequence (§3).
  const std::int64_t clob_seq = next_clob_seq(state, root.order);
  // Serialize into the reused per-document buffer, then copy once (exact
  // size) into the store — cheaper than growing a fresh string per CLOB.
  state.clob_scratch.clear();
  xml::write_into(state.clob_scratch, node);
  state.stats.clob_bytes += state.clob_scratch.size();
  ++state.stats.clobs;
  const rel::ClobId clob_id = db_.clobs().append(state.clob_scratch);
  state.clob_rows.push_back(make_row(rel::Value(state.object_id), rel::Value(root.order),
                                     rel::Value(clob_seq), rel::Value(clob_id)));

  if (!root.queryable) return;
  if (root.dynamic) {
    shred_dynamic(state, node, root, clob_seq);
  } else {
    shred_structural(state, node, root, clob_seq);
  }
}

std::int64_t Shredder::next_seq(DocState& state, AttrDefId def) {
  const auto idx = static_cast<std::size_t>(def);
  if (idx >= state.inst_seq.size()) state.inst_seq.resize(idx + 1, 0);
  return ++state.inst_seq[idx];
}

std::int64_t Shredder::next_clob_seq(DocState& state, OrderId order) {
  const auto idx = static_cast<std::size_t>(order);
  if (idx >= state.clob_seq.size()) state.clob_seq.resize(idx + 1, 0);
  return ++state.clob_seq[idx];
}

void Shredder::append_inverted(DocState& state, AttrDefId def, std::int64_t seq) {
  // state.path holds the enclosing instances from the top attribute
  // downward; the nearest enclosing instance is at distance 1.
  const std::int64_t n = static_cast<std::int64_t>(state.path.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const PathFrame& frame = state.path[static_cast<std::size_t>(i)];
    state.inverted_rows.push_back(
        make_row(rel::Value(state.object_id), rel::Value(def), rel::Value(seq),
                 rel::Value(frame.def), rel::Value(frame.seq), rel::Value(n - i)));
  }
}

void Shredder::append_element_row(DocState& state, AttrDefId attr, std::int64_t seq,
                                  const ElementDef& elem, std::int64_t elem_seq,
                                  std::string_view raw_value) {
  // value_num mirrors any value that parses as a number, so predicates can
  // compare numerically exactly when both operands are numeric (the shared
  // comparison semantics; see baselines/dom_matcher.cpp). The declared type
  // is used only to flag validation failures.
  rel::Value numeric = rel::Value::null();
  if (const auto v = util::parse_double(raw_value)) {
    numeric = rel::Value(*v);
  }
  if ((elem.type == xml::LeafType::kInt && !util::parse_int(raw_value)) ||
      (elem.type == xml::LeafType::kDouble && numeric.is_null())) {
    ++state.stats.untyped_values;
  }
  state.element_rows.push_back(make_row(rel::Value(state.object_id), rel::Value(attr),
                                        rel::Value(seq), rel::Value(elem.id),
                                        rel::Value(elem_seq), string_value(raw_value),
                                        std::move(numeric)));
  ++state.stats.element_rows;
}

void Shredder::shred_structural(DocState& state, const xml::Node& node,
                                const AttributeRootInfo& root, std::int64_t clob_seq) {
  const auto def_opt = registry_.structural_for_order(root.order);
  if (!def_opt) return;  // not installed -> treated as non-queryable
  const AttrDefId def = *def_opt;
  const std::int64_t seq = next_seq(state, def);
  state.instance_rows.push_back(make_row(rel::Value(state.object_id), rel::Value(def),
                                         rel::Value(seq), rel::Value(std::int64_t{1}),
                                         rel::Value(clob_seq)));
  ++state.stats.attribute_instances;

  state.path.clear();
  state.path.push_back(PathFrame{def, seq});
  shred_structural_children(state, node, *root.schema_node, def, seq);
}

void Shredder::shred_structural_children(DocState& state, const xml::Node& node,
                                         const xml::SchemaNode& schema_node,
                                         AttrDefId def, std::int64_t seq) {
  std::int64_t elem_seq = 0;
  std::string scratch;

  // Attribute-element: the node itself carries the value.
  if (schema_node.is_leaf()) {
    if (const ElementDef* elem = registry_.find_element(schema_node.name(), "", def)) {
      append_element_row(state, def, seq, *elem, ++elem_seq, node.text_view(scratch));
    }
    return;
  }

  for (const xml::Node* child : node.children()) {
    if (!child->is_element()) continue;
    const xml::SchemaNode* child_schema = schema_node.child(child->name());
    if (child_schema == nullptr) {
      throw ValidationError("unexpected element <" + std::string(child->name()) +
                            "> inside attribute <" + schema_node.name() + ">");
    }
    if (child_schema->is_leaf()) {
      const ElementDef* elem = registry_.find_element(child->name(), "", def);
      if (elem == nullptr) {
        throw ValidationError("no element definition for <" + std::string(child->name()) +
                              "> in <" + schema_node.name() + ">");
      }
      append_element_row(state, def, seq, *elem, ++elem_seq, child->text_view(scratch));
      continue;
    }
    // Structural sub-attribute.
    const AttributeDef* sub = registry_.find_attribute(child->name(), "", def);
    if (sub == nullptr) {
      throw ValidationError("no sub-attribute definition for <" +
                            std::string(child->name()) + ">");
    }
    const std::int64_t sub_seq = next_seq(state, sub->id);
    state.instance_rows.push_back(make_row(rel::Value(state.object_id),
                                           rel::Value(sub->id), rel::Value(sub_seq),
                                           rel::Value(std::int64_t{0}),
                                           rel::Value::null()));
    ++state.stats.sub_attribute_instances;
    append_inverted(state, sub->id, sub_seq);
    state.path.push_back(PathFrame{sub->id, sub_seq});
    shred_structural_children(state, *child, *child_schema, sub->id, sub_seq);
    state.path.pop_back();
  }
}

void Shredder::shred_dynamic(DocState& state, const xml::Node& node,
                             const AttributeRootInfo& root, std::int64_t clob_seq) {
  const DynamicConvention& c = partition_.convention();

  // Identity comes from values, not tags (§3): enttypl/enttypds in LEAD.
  const xml::Node* container = node.first_child(c.def_container);
  if (container == nullptr) {
    ++state.stats.unshredded_dynamic;
    return;
  }
  std::string name_scratch;
  std::string source_scratch;
  const std::string_view name = container->child_text_view(c.def_name, name_scratch);
  const std::string_view source = container->child_text_view(c.def_source, source_scratch);
  if (name.empty()) {
    ++state.stats.unshredded_dynamic;
    return;
  }

  // Hold the id, not the pointer: auto-definition below may grow the
  // registry's definition vector and invalidate definition references.
  AttrDefId def_id = kNoAttr;
  if (const AttributeDef* def = registry_.find_attribute(name, source, kNoAttr, state.owner)) {
    def_id = def->id;
  } else {
    if (!options_.auto_define_dynamic) {
      // Validation failed: keep the CLOB, skip the query tables (§3).
      ++state.stats.unshredded_dynamic;
      return;
    }
    def_id = registry_.define_attribute(
        std::string(name), std::string(source), AttrKind::kDynamic, kNoAttr, root.order,
        options_.auto_define_visibility,
        options_.auto_define_visibility == Visibility::kUser ? state.owner : std::string{});
  }

  const std::int64_t seq = next_seq(state, def_id);
  state.instance_rows.push_back(make_row(rel::Value(state.object_id), rel::Value(def_id),
                                         rel::Value(seq), rel::Value(std::int64_t{1}),
                                         rel::Value(clob_seq)));
  ++state.stats.attribute_instances;

  state.path.clear();
  state.path.push_back(PathFrame{def_id, seq});
  for (const xml::Node* item : node.children()) {
    if (item->is_element() && item->name() == c.item_tag) {
      shred_dynamic_item(state, *item, def_id, state.owner);
    }
  }
}

void Shredder::shred_dynamic_item(DocState& state, const xml::Node& item,
                                  AttrDefId parent_def, const std::string& owner) {
  const DynamicConvention& c = partition_.convention();
  // One pass over the item's children collects everything the convention
  // names — four separate first_child scans here were a measurable slice of
  // dynamic shredding.
  const xml::Node* name_node = nullptr;
  const xml::Node* source_node = nullptr;
  const xml::Node* value_node = nullptr;
  bool has_sub_items = false;
  for (const xml::Node* child : item.children()) {
    if (!child->is_element()) continue;
    const std::string_view tag = child->name();
    if (tag == c.item_tag) has_sub_items = true;
    if (name_node == nullptr && tag == c.item_name) name_node = child;
    if (source_node == nullptr && tag == c.item_source) source_node = child;
    if (value_node == nullptr && tag == c.item_value) value_node = child;
  }
  std::string name_scratch;
  std::string source_scratch;
  const std::string_view name =
      name_node ? name_node->text_view(name_scratch) : std::string_view{};
  const std::string_view source =
      source_node ? source_node->text_view(source_scratch) : std::string_view{};
  if (name.empty()) {
    ++state.stats.unshredded_dynamic;
    return;
  }

  if (has_sub_items) {
    // Hold the id, not a pointer — recursive auto-definition may reallocate
    // the registry's definition vector.
    AttrDefId sub_id = kNoAttr;
    if (const AttributeDef* sub = registry_.find_attribute(name, source, parent_def, owner)) {
      sub_id = sub->id;
    } else {
      if (!options_.auto_define_dynamic) {
        ++state.stats.unshredded_dynamic;
        return;
      }
      sub_id = registry_.define_attribute(
          std::string(name), std::string(source), AttrKind::kDynamic, parent_def, kNoOrder,
          options_.auto_define_visibility,
          options_.auto_define_visibility == Visibility::kUser ? owner : std::string{});
    }
    const std::int64_t sub_seq = next_seq(state, sub_id);
    state.instance_rows.push_back(make_row(rel::Value(state.object_id),
                                           rel::Value(sub_id), rel::Value(sub_seq),
                                           rel::Value(std::int64_t{0}),
                                           rel::Value::null()));
    ++state.stats.sub_attribute_instances;
    append_inverted(state, sub_id, sub_seq);
    state.path.push_back(PathFrame{sub_id, sub_seq});
    for (const xml::Node* sub_item : item.children()) {
      if (sub_item->is_element() && sub_item->name() == c.item_tag) {
        shred_dynamic_item(state, *sub_item, sub_id, owner);
      }
    }
    state.path.pop_back();
    return;
  }

  // Metadata element: value carried by the item_value child.
  std::string value_scratch;
  const std::string_view raw_value =
      value_node ? value_node->text_view(value_scratch) : std::string_view{};
  const ElementDef* elem = registry_.find_element(name, source, parent_def);
  if (elem == nullptr) {
    if (!options_.auto_define_dynamic) {
      ++state.stats.unshredded_dynamic;
      return;
    }
    // Infer the value type from the first observed value.
    xml::LeafType type = xml::LeafType::kString;
    if (util::parse_int(raw_value)) {
      type = xml::LeafType::kInt;
    } else if (util::parse_double(raw_value)) {
      type = xml::LeafType::kDouble;
    }
    const ElemDefId id = registry_.define_element(std::string(name), std::string(source),
                                                  parent_def, type);
    elem = &registry_.element(id);
  }
  // Element sequence: local order within the innermost enclosing instance,
  // counted directly in its path frame.
  PathFrame& frame = state.path.back();
  append_element_row(state, frame.def, frame.seq, *elem, ++frame.elem_seq, raw_value);
}

}  // namespace hxrc::core
