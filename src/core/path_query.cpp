#include "core/path_query.hpp"

#include <cctype>
#include <optional>
#include <vector>

namespace hxrc::core {

namespace {

// ---- parse tree ----

struct Term;

struct Pred {
  std::vector<Term> terms;  // the 'and' conjunction
};

/// One relative path step inside a predicate, with its own predicates.
struct RelStep {
  std::string name;  // "." means the context node's own text
  std::vector<Pred> preds;
};

struct Term {
  std::vector<RelStep> rel;  // the relative path
  bool has_cmp = false;
  CompareOp op = CompareOp::kEq;
  std::string literal;
};

struct Seg {
  std::string name;
  std::vector<Pred> preds;
};

struct ParsedQuery {
  bool descendant = false;  // started with '//'
  std::vector<Seg> segs;
};

class PathParser {
 public:
  explicit PathParser(std::string_view input) : input_(input) {}

  ParsedQuery parse() {
    ParsedQuery query;
    if (consume("//")) {
      query.descendant = true;
    } else {
      consume("/");
    }
    for (;;) {
      query.segs.push_back(parse_seg());
      if (!consume("/")) break;
    }
    skip_space();
    if (!at_end()) fail("trailing characters");
    if (query.segs.empty()) fail("empty path");
    return query;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw PathQueryError(message + " at offset " + std::to_string(pos_) + " in '" +
                         std::string(input_) + "'");
  }

  bool at_end() const noexcept { return pos_ >= input_.size(); }
  char peek() const { return at_end() ? '\0' : input_[pos_]; }

  bool consume(std::string_view token) noexcept {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void skip_space() noexcept {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  static bool is_name_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
           c == ':';
  }

  std::string parse_name() {
    skip_space();
    const std::size_t start = pos_;
    while (!at_end() && is_name_char(peek())) ++pos_;
    if (pos_ == start) fail("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Seg parse_seg() {
    Seg seg;
    seg.name = parse_name();
    while (!at_end() && peek() == '[') seg.preds.push_back(parse_pred());
    return seg;
  }

  Pred parse_pred() {
    Pred pred;
    if (!consume("[")) fail("expected '['");
    for (;;) {
      pred.terms.push_back(parse_term());
      skip_space();
      if (consume("and")) continue;
      break;
    }
    skip_space();
    if (!consume("]")) fail("expected ']'");
    return pred;
  }

  Term parse_term() {
    Term term;
    skip_space();
    if (consume(".")) {
      term.rel.push_back(RelStep{".", {}});
    } else {
      for (;;) {
        RelStep step;
        step.name = parse_name();
        while (!at_end() && peek() == '[') step.preds.push_back(parse_pred());
        term.rel.push_back(std::move(step));
        if (!consume("/")) break;
      }
    }
    skip_space();
    static constexpr std::pair<std::string_view, CompareOp> kOps[] = {
        {"!=", CompareOp::kNe}, {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
        {"=", CompareOp::kEq},  {"<", CompareOp::kLt},  {">", CompareOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      if (consume(text)) {
        term.has_cmp = true;
        term.op = op;
        term.literal = parse_literal();
        return term;
      }
    }
    return term;  // existence only
  }

  std::string parse_literal() {
    skip_space();
    if (at_end()) fail("expected a literal");
    const char c = peek();
    if (c == '\'' || c == '"') {
      ++pos_;
      const std::size_t start = pos_;
      while (!at_end() && peek() != c) ++pos_;
      if (at_end()) fail("unterminated string literal");
      std::string value(input_.substr(start, pos_ - start));
      ++pos_;
      return value;
    }
    const std::size_t start = pos_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
                         peek() == '-' || peek() == '+' || peek() == 'e' || peek() == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a literal");
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

// ---- translation ----

rel::Value literal_value(const std::string& text) { return rel::Value(text); }

/// Translates predicates on a STRUCTURAL attribute into criteria.
void translate_structural_preds(const std::vector<Pred>& preds, const std::string& self_tag,
                                AttrQuery& out) {
  for (const Pred& pred : preds) {
    for (const Term& term : pred.terms) {
      if (term.rel.empty()) throw PathQueryError("empty predicate term");
      if (term.rel.size() == 1 && term.rel[0].name == ".") {
        // Attribute-element self comparison.
        if (!term.has_cmp) continue;
        out.add_element(self_tag, literal_value(term.literal), term.op);
        continue;
      }
      // Nested relative path a/b/c: a chain of sub-attributes ending at an
      // element. A single leaf name is an element predicate.
      if (term.rel.size() == 1 && term.rel[0].preds.empty()) {
        if (term.has_cmp) {
          out.add_element(term.rel[0].name, literal_value(term.literal), term.op);
        } else {
          out.require_element(term.rel[0].name);
        }
        continue;
      }
      // Multi-step or predicated step: build nested sub-attribute criteria.
      // Walk all steps but the last as sub-attributes.
      std::vector<AttrQuery> subs;
      subs.reserve(term.rel.size());
      for (std::size_t i = 0; i + 1 < term.rel.size(); ++i) {
        AttrQuery sub(term.rel[i].name);
        translate_structural_preds(term.rel[i].preds, term.rel[i].name, sub);
        subs.push_back(std::move(sub));
      }
      const RelStep& last = term.rel.back();
      if (!last.preds.empty()) {
        // The last step is itself a sub-attribute with its own predicates.
        AttrQuery sub(last.name);
        translate_structural_preds(last.preds, last.name, sub);
        if (term.has_cmp) {
          throw PathQueryError("comparison on an interior step '" + last.name + "'");
        }
        subs.push_back(std::move(sub));
      }
      // Fold the chain from the innermost outward.
      if (subs.empty()) {
        // last is a plain leaf under a chain of subs — handled above only
        // when rel.size()==1; here rel.size()>1 and subs holds the chain.
        throw PathQueryError("unsupported predicate shape");
      }
      // If the last step was a leaf (no preds) and there are chain subs,
      // attach the element predicate to the innermost sub.
      if (last.preds.empty() && term.rel.size() > 1) {
        AttrQuery& innermost = subs.back();
        if (term.has_cmp) {
          innermost.add_element(last.name, literal_value(term.literal), term.op);
        } else {
          innermost.require_element(last.name);
        }
      }
      for (std::size_t i = subs.size(); i-- > 1;) {
        subs[i - 1].add_attribute(std::move(subs[i]));
      }
      out.add_attribute(std::move(subs[0]));
    }
  }
}

/// Translates the predicates of one dynamic item (an <attr> step) into an
/// AttrQuery (sub-attribute) or element criteria on `parent`.
void translate_dynamic_item(const RelStep& item, const DynamicConvention& c,
                            AttrQuery& parent);

/// Extracts name/source/value terms from an item's predicate list.
struct ItemFacts {
  std::string name;
  std::string source;
  bool has_value = false;
  CompareOp op = CompareOp::kEq;
  std::string value;
  std::vector<const RelStep*> nested_items;
};

ItemFacts item_facts(const RelStep& item, const DynamicConvention& c) {
  ItemFacts facts;
  for (const Pred& pred : item.preds) {
    for (const Term& term : pred.terms) {
      if (term.rel.empty()) throw PathQueryError("empty dynamic predicate term");
      const RelStep& head = term.rel[0];
      if (head.name == c.item_name && term.has_cmp && term.op == CompareOp::kEq) {
        facts.name = term.literal;
        continue;
      }
      if (head.name == c.item_source && term.has_cmp && term.op == CompareOp::kEq) {
        facts.source = term.literal;
        continue;
      }
      if (head.name == c.item_value) {
        facts.has_value = true;
        if (term.has_cmp) {
          facts.op = term.op;
          facts.value = term.literal;
        }
        continue;
      }
      if (head.name == c.item_tag) {
        facts.nested_items.push_back(&head);
        continue;
      }
      throw PathQueryError("unsupported dynamic item term '" + head.name + "'");
    }
  }
  if (facts.name.empty()) {
    throw PathQueryError("dynamic item predicate must constrain " + c.item_name);
  }
  return facts;
}

void translate_dynamic_item(const RelStep& item, const DynamicConvention& c,
                            AttrQuery& parent) {
  const ItemFacts facts = item_facts(item, c);
  if (!facts.nested_items.empty()) {
    AttrQuery sub(facts.name, facts.source);
    if (facts.has_value) {
      throw PathQueryError("a dynamic item cannot be both sub-attribute and element");
    }
    for (const RelStep* nested : facts.nested_items) {
      translate_dynamic_item(*nested, c, sub);
    }
    parent.add_attribute(std::move(sub));
    return;
  }
  if (facts.has_value && !facts.value.empty()) {
    parent.add_element(facts.name, facts.source, literal_value(facts.value), facts.op);
  } else {
    parent.require_element(facts.name, facts.source);
  }
}

AttrQuery translate_dynamic(const Seg& seg, const DynamicConvention& c) {
  // Identity comes from def_container/def_name + def_source terms.
  std::string name;
  std::string source;
  std::vector<const RelStep*> items;
  for (const Pred& pred : seg.preds) {
    for (const Term& term : pred.terms) {
      if (term.rel.empty()) throw PathQueryError("empty dynamic predicate term");
      const RelStep& head = term.rel[0];
      if (head.name == c.def_container && term.rel.size() == 2 && term.has_cmp &&
          term.op == CompareOp::kEq) {
        if (term.rel[1].name == c.def_name) {
          name = term.literal;
          continue;
        }
        if (term.rel[1].name == c.def_source) {
          source = term.literal;
          continue;
        }
      }
      if (head.name == c.item_tag && term.rel.size() == 1) {
        items.push_back(&head);
        continue;
      }
      throw PathQueryError("unsupported predicate on dynamic attribute root");
    }
  }
  if (name.empty()) {
    throw PathQueryError("dynamic attribute query must constrain " + c.def_container +
                         "/" + c.def_name);
  }
  AttrQuery attr(name, source);
  for (const RelStep* item : items) {
    translate_dynamic_item(*item, c, attr);
  }
  return attr;
}

AttrQuery translate(const Partition& partition, const ParsedQuery& parsed) {
  // Locate the attribute root the path denotes.
  const AttributeRootInfo* root = nullptr;
  if (parsed.descendant && parsed.segs.size() == 1) {
    // '//name': unique attribute root with that tag.
    for (const AttributeRootInfo& candidate : partition.attribute_roots()) {
      if (candidate.tag != parsed.segs[0].name) continue;
      if (root != nullptr) {
        throw PathQueryError("'//" + parsed.segs[0].name + "' is ambiguous");
      }
      root = &candidate;
    }
  } else {
    // Explicit path; intermediate steps must be bare ancestors. The leading
    // schema-root segment may be included or omitted.
    std::string path;
    std::size_t start = 0;
    if (parsed.segs[0].name == partition.schema().root().name()) start = 1;
    for (std::size_t i = start; i < parsed.segs.size(); ++i) {
      if (i + 1 < parsed.segs.size() && !parsed.segs[i].preds.empty()) {
        throw PathQueryError("predicates are only supported on the metadata attribute ('" +
                             parsed.segs[i].name + "')");
      }
      if (!path.empty()) path.push_back('/');
      path += parsed.segs[i].name;
    }
    for (const AttributeRootInfo& candidate : partition.attribute_roots()) {
      if (candidate.path == path) root = &candidate;
    }
  }
  if (root == nullptr) {
    throw PathQueryError("path does not denote a metadata attribute");
  }

  const Seg& attr_seg = parsed.segs.back();
  if (root->dynamic) {
    return translate_dynamic(attr_seg, partition.convention());
  }
  AttrQuery attr(root->tag);
  translate_structural_preds(attr_seg.preds, root->tag, attr);
  return attr;
}

}  // namespace

ObjectQuery path_to_query(const Partition& partition, std::string_view expression) {
  PathParser parser(expression);
  ObjectQuery query;
  query.add_attribute(translate(partition, parser.parse()));
  return query;
}

ObjectQuery paths_to_query(const Partition& partition,
                           const std::vector<std::string>& expressions) {
  ObjectQuery query;
  for (const std::string& expression : expressions) {
    PathParser parser(expression);
    query.add_attribute(translate(partition, parser.parse()));
  }
  return query;
}

}  // namespace hxrc::core
