// Schema partitioning: identifying metadata attributes (§2).
//
// The paper partitions the community schema into metadata attributes using
// five rules. The partitioner accepts an *annotated* partition (the list of
// schema paths that are attribute roots, plus which of them host dynamic
// attributes) — mirroring the paper's proposed "annotated schema" — and
// validates the five rules, producing diagnostics for violations. It can
// also *infer* an annotation from the schema as a convenience.
//
// The result also fixes each schema node's role:
//   kAncestor         interior node above every attribute root (ordered);
//   kAttributeRoot    a metadata attribute (ordered; CLOB granularity);
//   kSubAttribute     interior node inside an attribute;
//   kElement          leaf inside an attribute;
//   kAttributeElement a leaf that is both attribute root and element.
#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.hpp"
#include "xml/schema.hpp"

namespace hxrc::core {

enum class NodeRole {
  kAncestor,
  kAttributeRoot,
  kSubAttribute,
  kElement,
  kAttributeElement,
};

std::string_view to_string(NodeRole role) noexcept;

/// Conventions for locating dynamic-attribute names/sources/values inside a
/// dynamic attribute root. Defaults match the LEAD/FGDC "detailed" subtree.
struct DynamicConvention {
  /// Child element of the dynamic root holding the definition identity.
  std::string def_container = "enttyp";
  /// ...its children carrying the dynamic attribute's name and source.
  std::string def_name = "enttypl";
  std::string def_source = "enttypds";
  /// The recursive item element and its name/source/value children.
  std::string item_tag = "attr";
  std::string item_name = "attrlabl";
  std::string item_source = "attrdefs";
  std::string item_value = "attrv";
};

/// One attribute-root annotation.
struct AttributeAnnotation {
  /// Slash-separated path below the schema root, e.g.
  /// "data/idinfo/keywords/theme".
  std::string path;
  /// The subtree hosts dynamic attributes (identified by name+source values
  /// rather than the schema structure).
  bool dynamic = false;
  /// Included in the shredded query tables (§2: queryable attributes).
  bool queryable = true;
};

struct PartitionAnnotations {
  std::vector<AttributeAnnotation> attributes;
  DynamicConvention convention;
};

/// A rule-violation diagnostic.
struct PartitionDiagnostic {
  std::string path;
  std::string message;
};

class PartitionError : public std::runtime_error {
 public:
  PartitionError(std::string message, std::vector<PartitionDiagnostic> diagnostics)
      : std::runtime_error(std::move(message)), diagnostics_(std::move(diagnostics)) {}

  const std::vector<PartitionDiagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  std::vector<PartitionDiagnostic> diagnostics_;
};

/// A node in the global ordering (ancestors and attribute roots only).
struct OrderedNode {
  OrderId order = kNoOrder;
  std::string tag;
  OrderId parent = kNoOrder;
  /// Order of the last ordered node in this subtree; equals `order` for
  /// attribute roots (§2: "for metadata attribute nodes ... the node order").
  OrderId last_child = kNoOrder;
  std::int64_t depth = 0;
  bool is_attribute_root = false;
  const xml::SchemaNode* schema_node = nullptr;
};

/// Per-attribute-root partition facts.
struct AttributeRootInfo {
  std::string path;
  std::string tag;
  OrderId order = kNoOrder;
  bool dynamic = false;
  bool queryable = true;
  bool repeatable = false;
  const xml::SchemaNode* schema_node = nullptr;
};

/// The computed partition: roles, the global ordering, and the ancestor
/// inverted list (§5).
class Partition {
 public:
  const xml::Schema& schema() const noexcept { return *schema_; }
  const DynamicConvention& convention() const noexcept { return convention_; }

  const std::vector<OrderedNode>& ordered_nodes() const noexcept { return ordered_; }
  const std::vector<AttributeRootInfo>& attribute_roots() const noexcept { return roots_; }

  /// Role of a schema node; nodes below attribute roots report
  /// kSubAttribute / kElement.
  NodeRole role(const xml::SchemaNode& node) const;

  /// Order id of a schema node in the ordered region; kNoOrder for nodes
  /// inside attributes.
  OrderId order_of(const xml::SchemaNode& node) const noexcept;

  /// Attribute-root info for an ordered node; nullptr when not a root.
  const AttributeRootInfo* root_at(OrderId order) const noexcept;

  /// Ancestor order ids of an ordered node, nearest first (excludes self).
  const std::vector<OrderId>& ancestors_of(OrderId order) const;

  /// True when the annotated path set satisfies all five §2 rules.
  static std::vector<PartitionDiagnostic> check_rules(
      const xml::Schema& schema, const PartitionAnnotations& annotations);

  /// Builds a partition; throws PartitionError when the rules are violated.
  static Partition build(const xml::Schema& schema, PartitionAnnotations annotations);

  /// Infers an annotation from the schema: the highest interior node whose
  /// subtree contains any repeatable/recursive/XML-attributed node becomes
  /// an attribute root; concept nodes with only leaf children become roots;
  /// stray leaves become attribute-elements. Recursive subtrees are marked
  /// dynamic.
  static PartitionAnnotations infer(const xml::Schema& schema);

 private:
  const xml::Schema* schema_ = nullptr;
  DynamicConvention convention_;
  std::vector<OrderedNode> ordered_;
  std::vector<AttributeRootInfo> roots_;
  /// schema node -> role/order, keyed by node pointer.
  std::unordered_map<const xml::SchemaNode*, NodeRole> roles_;
  std::unordered_map<const xml::SchemaNode*, OrderId> orders_;
  std::unordered_map<OrderId, std::size_t> root_by_order_;
  std::vector<std::vector<OrderId>> ancestors_;
};

}  // namespace hxrc::core
