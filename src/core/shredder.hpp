// Document shredding under the hybrid approach (§3).
//
// Each metadata attribute instance in an ingested document is stored BOTH
// ways: serialized to a CLOB (keyed by the attribute root's global order and
// a same-sibling clob sequence) for response building, and shredded into the
// attribute-instance / element / inverted-list tables for querying.
//
// Structural attributes resolve definitions by element tag; dynamic
// attributes resolve by the name/source *values* carried in the document
// (LEAD: enttypl/enttypds for the attribute, attrlabl/attrdefs for items).
// Dynamic content that matches no registered definition stays CLOB-only —
// the validation behaviour the paper requires — unless auto-definition is
// enabled.
//
// Ingest hot path: the walk accumulates rows per document in reused scratch
// buffers and flushes each table once per document (Table::append_batch,
// index-at-a-time maintenance). Registry probes take string_views straight
// out of the DOM (no temporary strings), and string columns are
// dictionary-encoded through the database's Interner when `intern_strings`
// is on — off for parallel-ingest staging shredders, whose rows outlive
// their staging database (see rel/interner.hpp).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "core/partition.hpp"
#include "core/registry.hpp"
#include "core/storage.hpp"
#include "xml/dom.hpp"

namespace hxrc::core {

class ValidationError : public std::runtime_error {
 public:
  explicit ValidationError(const std::string& message) : std::runtime_error(message) {}
};

struct ShredOptions {
  /// Register unseen dynamic attribute/element definitions on the fly
  /// instead of leaving them CLOB-only.
  bool auto_define_dynamic = false;
  /// Visibility of auto-defined definitions (kUser makes them private to
  /// the ingesting owner).
  Visibility auto_define_visibility = Visibility::kAdmin;
  /// Dictionary-encode string columns (object name/owner, element values)
  /// through the database's Interner. Must be OFF for staging shredders
  /// whose rows are merged into a different, longer-lived database.
  bool intern_strings = true;
};

struct ShredStats {
  std::size_t attribute_instances = 0;   // top-level instances shredded
  std::size_t sub_attribute_instances = 0;
  std::size_t element_rows = 0;
  std::size_t clobs = 0;
  std::size_t clob_bytes = 0;
  std::size_t unshredded_dynamic = 0;    // CLOB-only dynamic content
  std::size_t untyped_values = 0;        // values that failed typed parsing

  ShredStats& operator+=(const ShredStats& other) noexcept;
};

class Shredder {
 public:
  /// The registry is mutated only when auto_define_dynamic is set.
  Shredder(const Partition& partition, DefinitionRegistry& registry, rel::Database& db,
           ShredOptions options = {});

  /// Shreds one document as object `object_id` owned by `owner`.
  /// Throws ValidationError when the document does not conform to the
  /// schema's ordered region. On validation failure no rows reach the query
  /// tables (the per-document batch is discarded unflushed).
  ShredStats shred(const xml::Document& doc, ObjectId object_id,
                   const std::string& name, const std::string& owner);

  /// Inserts one additional attribute instance into an existing object
  /// ("as metadata attributes were inserted later", §5). Same-sibling
  /// sequence counters continue from the object's stored instances, so the
  /// new CLOB lands after its existing siblings in rebuilt responses.
  ShredStats shred_additional(const xml::Node& attribute_content, ObjectId object_id,
                              const AttributeRootInfo& root, const std::string& owner);

  /// Imports another shredder's continued-object counters (used when merging
  /// parallel staging shredders). Linear in the other shredder's counter
  /// count. Counters for plain-ingested objects need no merging at all:
  /// they are derived from the object's stored rows on demand.
  void absorb_counters(const Shredder& other);

  /// Persistence of the continued-object counters (catalog save/restore).
  /// Output is key-sorted, so saves are byte-deterministic regardless of
  /// hash-map iteration order.
  void save_counters(std::ostream& out) const;
  void load_counters(std::istream& in);

 private:
  /// One enclosing attribute instance on the shred path. The element
  /// sequence counter lives in the frame because element rows are always
  /// appended against the innermost enclosing instance (path.back()) — no
  /// per-element map lookup.
  struct PathFrame {
    AttrDefId def = kNoAttr;
    std::int64_t seq = 0;
    std::int64_t elem_seq = 0;
  };

  /// Per-document scratch, owned by the shredder and reused across
  /// documents so steady-state ingest allocates only when a document is
  /// larger than any seen before.
  struct DocState {
    ObjectId object_id = 0;
    std::string owner;
    ShredStats stats;
    /// Dense same-sibling counters for THIS document: instance sequence per
    /// definition id, CLOB sequence per attribute-root order. Definition and
    /// order ids are dense small ints, so a flat vector replaces a hash map
    /// on the per-instance hot path. Zeroed per document; seeded from stored
    /// rows only when the object id has prior state (see seed_counters).
    std::vector<std::int64_t> inst_seq;
    std::vector<std::int64_t> clob_seq;
    /// Row batches, flushed once per document.
    std::vector<rel::Row> instance_rows;
    std::vector<rel::Row> inverted_rows;
    std::vector<rel::Row> element_rows;
    std::vector<rel::Row> clob_rows;
    /// Enclosing instances, top attribute downward.
    std::vector<PathFrame> path;
    /// Reused serialization buffer for attribute CLOBs.
    std::string clob_scratch;

    void reset(ObjectId id, const std::string& owner_name);
  };

  void walk_ordered(DocState& state, const xml::Node& node,
                    const xml::SchemaNode& schema_node);
  void handle_attribute(DocState& state, const xml::Node& node,
                        const AttributeRootInfo& root);
  void shred_structural(DocState& state, const xml::Node& node,
                        const AttributeRootInfo& root, std::int64_t clob_seq);
  void shred_structural_children(DocState& state, const xml::Node& node,
                                 const xml::SchemaNode& schema_node, AttrDefId def,
                                 std::int64_t seq);
  void shred_dynamic(DocState& state, const xml::Node& node, const AttributeRootInfo& root,
                     std::int64_t clob_seq);
  void shred_dynamic_item(DocState& state, const xml::Node& item, AttrDefId parent_def,
                          const std::string& owner);

  void append_element_row(DocState& state, AttrDefId attr, std::int64_t seq,
                          const ElementDef& elem, std::int64_t elem_seq,
                          std::string_view raw_value);
  std::int64_t next_seq(DocState& state, AttrDefId def);
  std::int64_t next_clob_seq(DocState& state, OrderId order);
  /// True when `id` already has any stored row (objects/instances/clobs) or
  /// a continued-counter entry — i.e. its sequences must not start at zero.
  bool object_has_state(ObjectId id) const;
  /// Seeds the document's dense counters with the object's current maxima,
  /// derived from its stored rows (the source of truth) plus any
  /// continued-counter overrides.
  void seed_counters(DocState& state) const;
  /// Caches the document's final counters for the object (shred_additional
  /// only), so repeated inserts skip the row re-derivation.
  void store_continued(const DocState& state);
  void append_inverted(DocState& state, AttrDefId def, std::int64_t seq);
  /// STRING Value for a row: interned (pointer-sized, dictionary-backed) or
  /// owned, per options_.intern_strings.
  rel::Value string_value(std::string_view s);
  /// Flushes the per-document batches into the tables (one append_batch per
  /// non-empty batch), leaving the scratch capacity in place.
  void flush(DocState& state);

  const Partition& partition_;
  DefinitionRegistry& registry_;
  rel::Database& db_;
  ShredOptions options_;
  rel::Table* objects_;
  rel::Table* instances_;
  rel::Table* inverted_;
  rel::Table* elements_;
  rel::Table* clobs_;

  DocState scratch_;

  /// Same-sibling counters for "continued" objects only — those touched by
  /// shred_additional or restored by load_counters. Plain ingest never
  /// writes here: a fresh object's sequences start at zero, and an existing
  /// object's maxima are derivable from its stored rows, so keeping one map
  /// entry per (object × definition) forever would be pure overhead on the
  /// ingest hot path (it dominated the shred profile before this cache).
  struct SiblingCounters {
    std::unordered_map<std::int64_t, std::int64_t> instance;  // def id -> max seq
    std::unordered_map<std::int64_t, std::int64_t> clob;      // order id -> max seq
  };
  std::unordered_map<std::int64_t, SiblingCounters> continued_;
};

}  // namespace hxrc::core
