// Document shredding under the hybrid approach (§3).
//
// Each metadata attribute instance in an ingested document is stored BOTH
// ways: serialized to a CLOB (keyed by the attribute root's global order and
// a same-sibling clob sequence) for response building, and shredded into the
// attribute-instance / element / inverted-list tables for querying.
//
// Structural attributes resolve definitions by element tag; dynamic
// attributes resolve by the name/source *values* carried in the document
// (LEAD: enttypl/enttypds for the attribute, attrlabl/attrdefs for items).
// Dynamic content that matches no registered definition stays CLOB-only —
// the validation behaviour the paper requires — unless auto-definition is
// enabled.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/model.hpp"
#include "core/partition.hpp"
#include "core/registry.hpp"
#include "core/storage.hpp"
#include "xml/dom.hpp"

namespace hxrc::core {

class ValidationError : public std::runtime_error {
 public:
  explicit ValidationError(const std::string& message) : std::runtime_error(message) {}
};

struct ShredOptions {
  /// Register unseen dynamic attribute/element definitions on the fly
  /// instead of leaving them CLOB-only.
  bool auto_define_dynamic = false;
  /// Visibility of auto-defined definitions (kUser makes them private to
  /// the ingesting owner).
  Visibility auto_define_visibility = Visibility::kAdmin;
};

struct ShredStats {
  std::size_t attribute_instances = 0;   // top-level instances shredded
  std::size_t sub_attribute_instances = 0;
  std::size_t element_rows = 0;
  std::size_t clobs = 0;
  std::size_t clob_bytes = 0;
  std::size_t unshredded_dynamic = 0;    // CLOB-only dynamic content
  std::size_t untyped_values = 0;        // values that failed typed parsing

  ShredStats& operator+=(const ShredStats& other) noexcept;
};

class Shredder {
 public:
  /// The registry is mutated only when auto_define_dynamic is set.
  Shredder(const Partition& partition, DefinitionRegistry& registry, rel::Database& db,
           ShredOptions options = {});

  /// Shreds one document as object `object_id` owned by `owner`.
  /// Throws ValidationError when the document does not conform to the
  /// schema's ordered region.
  ShredStats shred(const xml::Document& doc, ObjectId object_id,
                   const std::string& name, const std::string& owner);

  /// Inserts one additional attribute instance into an existing object
  /// ("as metadata attributes were inserted later", §5). Same-sibling
  /// sequence counters continue from the object's stored instances, so the
  /// new CLOB lands after its existing siblings in rebuilt responses.
  ShredStats shred_additional(const xml::Node& attribute_content, ObjectId object_id,
                              const AttributeRootInfo& root, const std::string& owner);

  /// Imports another shredder's same-sibling counters (used when merging
  /// parallel staging shredders, so later shred_additional calls continue
  /// the right sequences).
  void absorb_counters(const Shredder& other);

  /// Persistence of the same-sibling counters (catalog save/restore).
  void save_counters(std::ostream& out) const;
  void load_counters(std::istream& in);

 private:
  struct DocState;

  void walk_ordered(DocState& state, const xml::Node& node,
                    const xml::SchemaNode& schema_node);
  void handle_attribute(DocState& state, const xml::Node& node,
                        const AttributeRootInfo& root);
  void shred_structural(DocState& state, const xml::Node& node,
                        const AttributeRootInfo& root, std::int64_t clob_seq);
  void shred_structural_children(DocState& state, const xml::Node& node,
                                 const xml::SchemaNode& schema_node, AttrDefId def,
                                 std::int64_t seq,
                                 std::vector<std::pair<AttrDefId, std::int64_t>>& path);
  void shred_dynamic(DocState& state, const xml::Node& node, const AttributeRootInfo& root,
                     std::int64_t clob_seq);
  void shred_dynamic_item(DocState& state, const xml::Node& item, AttrDefId parent_def,
                          std::vector<std::pair<AttrDefId, std::int64_t>>& path,
                          const std::string& owner);

  void append_element_row(DocState& state, AttrDefId attr, std::int64_t seq,
                          const ElementDef& elem, std::int64_t elem_seq,
                          const std::string& raw_value);
  std::int64_t next_seq(DocState& state, AttrDefId def);
  void append_inverted(DocState& state, AttrDefId def, std::int64_t seq,
                       const std::vector<std::pair<AttrDefId, std::int64_t>>& path);

  const Partition& partition_;
  DefinitionRegistry& registry_;
  rel::Database& db_;
  ShredOptions options_;
  rel::Table* objects_;
  rel::Table* instances_;
  rel::Table* inverted_;
  rel::Table* elements_;
  rel::Table* clobs_;

  /// Persistent same-sibling counters (the catalog's "sequence table"):
  /// instance sequence per (object, definition) and CLOB sequence per
  /// (object, attribute-root order). Kept in the shredder so later inserts
  /// (shred_additional) continue an object's sequences in O(log n).
  std::map<std::pair<ObjectId, AttrDefId>, std::int64_t> instance_seq_;
  std::map<std::pair<ObjectId, OrderId>, std::int64_t> clob_seq_;
};

}  // namespace hxrc::core
