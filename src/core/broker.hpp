// RequestBroker: the request-handling seam behind the TCP front end.
//
// net::CatalogServer only moves framed <catalogRequest> bodies in and
// <catalogResponse> bodies out; everything it needs from "the thing that
// answers requests" is this interface. Two implementations exist:
//
//   * core::ServiceDispatcher — the single-node worker pool over one
//     MetadataCatalog (the original, direct wiring);
//   * fed::FederationRouter — the scatter-gather front end that routes the
//     same requests across N shard catalogs over the wire.
//
// The split is what lets a router process reuse the server (epoll loops,
// pipelining, backpressure, graceful drain) unchanged: to a client, a
// router port and a catalog port speak the identical protocol.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "util/metrics.hpp"

namespace hxrc::core {

struct CachedResponse;

class RequestBroker {
 public:
  virtual ~RequestBroker() = default;

  /// Admits one serialized request; `done` is invoked exactly once with the
  /// serialized <catalogResponse> — on an internal worker thread for handled
  /// requests, or synchronously on the calling thread when admission is
  /// refused (overloaded / draining). `probe_cache = false` tells an
  /// implementation with a synchronous response cache that the caller
  /// already probed (so a miss is not double-counted); implementations
  /// without one ignore it.
  virtual void submit_async(std::string request_xml,
                            std::function<void(std::string)> done,
                            bool probe_cache) = 0;

  /// Synchronous fast path: answer a request from a response cache without
  /// a worker hop, or nullptr when there is no such answer (miss,
  /// non-cacheable request, no cache at all). The returned buffer is
  /// immutable and stays valid for the life of the shared_ptr.
  virtual std::shared_ptr<const CachedResponse> try_cached(std::string_view request_xml) = 0;

  /// Requests admitted and not yet completed — the server's backpressure
  /// watermarks pause socket reads against max_queue() using this.
  virtual std::size_t queue_depth() const noexcept = 0;
  virtual std::size_t max_queue() const noexcept = 0;

  /// Closes the admission gate without waiting (later submissions resolve
  /// to code="draining") / quiesces until every admitted request completed.
  /// Both idempotent; draining is permanent.
  virtual void begin_drain() = 0;
  virtual void drain() = 0;
  virtual bool draining() const noexcept = 0;

  /// Cache counters to charge for try_cached hits the *caller* serves
  /// (the event loop's inline path); nullptr when the implementation has no
  /// cache, in which case try_cached never hits and nothing is charged.
  virtual util::CacheMetrics* cache_metrics_hook() noexcept { return nullptr; }
};

}  // namespace hxrc::core
