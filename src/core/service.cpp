#include "core/service.hpp"

#include <algorithm>
#include <memory>

#include "util/string_util.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::core {

namespace {

std::string_view op_name(CompareOp op) noexcept {
  switch (op) {
    case CompareOp::kEq: return "eq";
    case CompareOp::kNe: return "ne";
    case CompareOp::kLt: return "lt";
    case CompareOp::kLe: return "le";
    case CompareOp::kGt: return "gt";
    case CompareOp::kGe: return "ge";
  }
  return "eq";
}

CompareOp op_from_name(std::string_view name) {
  if (name == "eq") return CompareOp::kEq;
  if (name == "ne") return CompareOp::kNe;
  if (name == "lt") return CompareOp::kLt;
  if (name == "le") return CompareOp::kLe;
  if (name == "gt") return CompareOp::kGt;
  if (name == "ge") return CompareOp::kGe;
  throw ValidationError("unknown comparison operator '" + std::string(name) + "'");
}

void serialize_attr(std::string& out, const AttrQuery& attr) {
  out += "<attribute name=\"" + xml::escape_attribute(attr.name()) + "\"";
  if (!attr.source().empty()) {
    out += " source=\"" + xml::escape_attribute(attr.source()) + "\"";
  }
  out += ">";
  for (const ElementPredicate& pred : attr.elements()) {
    out += "<element name=\"" + xml::escape_attribute(pred.name) + "\"";
    if (!pred.source.empty()) {
      out += " source=\"" + xml::escape_attribute(pred.source) + "\"";
    }
    if (pred.exists_only) {
      out += " exists=\"true\"/>";
    } else {
      out += " op=\"" + std::string(op_name(pred.op)) + "\">";
      out += xml::escape_text(pred.value.to_string());
      out += "</element>";
    }
  }
  for (const AttrQuery& sub : attr.sub_attributes()) {
    serialize_attr(out, sub);
  }
  out += "</attribute>";
}

/// `context` is the criterion path so far ("grid/grid-stretching"), so a
/// failed parse names exactly which criterion was at fault.
AttrQuery parse_attr(const xml::Node& node, const std::string& context) {
  const std::string_view* name = node.attribute("name");
  if (name == nullptr) {
    throw ValidationError("criterion '" + (context.empty() ? "<top-level>" : context) +
                          "': <attribute> missing name");
  }
  const std::string path =
      context.empty() ? std::string(*name) : context + "/" + std::string(*name);
  const std::string_view* source = node.attribute("source");
  AttrQuery attr(std::string(*name),
                 source == nullptr ? std::string{} : std::string(*source));

  for (const xml::Node* child : node.child_elements()) {
    if (child->name() == "element") {
      const std::string_view* elem_name = child->attribute("name");
      if (elem_name == nullptr) {
        throw ValidationError("criterion '" + path + "': <element> missing name");
      }
      const std::string_view* elem_source = child->attribute("source");
      const std::string src =
          elem_source == nullptr ? std::string{} : std::string(*elem_source);
      if (const std::string_view* exists = child->attribute("exists");
          exists != nullptr && *exists == "true") {
        attr.require_element(std::string(*elem_name), src);
        continue;
      }
      const std::string_view* op = child->attribute("op");
      const std::string text = child->text_content();
      // Values travel as text; numeric-looking values become numbers so
      // comparisons behave identically to the in-process API.
      rel::Value value;
      if (const auto num = util::parse_double(text)) {
        value = rel::Value(*num);
      } else {
        value = rel::Value(text);
      }
      try {
        attr.add_element(std::string(*elem_name), src, std::move(value),
                         op == nullptr ? CompareOp::kEq : op_from_name(*op));
      } catch (const ValidationError& e) {
        throw ValidationError("criterion '" + path + "/" + std::string(*elem_name) +
                              "': " + e.what());
      }
      continue;
    }
    if (child->name() == "attribute") {
      attr.add_attribute(parse_attr(*child, path));
      continue;
    }
    throw ValidationError("criterion '" + path + "': unexpected <" +
                          std::string(child->name()) + "> in query criteria");
  }
  return attr;
}

}  // namespace

std::string_view error_code_name(ErrorCode code) noexcept {
  for (const ErrorCodeName& entry : kErrorCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "validation";
}

std::optional<ErrorCode> error_code_from_name(std::string_view name) noexcept {
  for (const ErrorCodeName& entry : kErrorCodeNames) {
    if (entry.name == name) return entry.code;
  }
  return std::nullopt;
}

std::string error_response(ErrorCode code, const std::string& message) {
  return "<catalogResponse status=\"error\" protocol=\"" +
         std::to_string(kProtocolMajor) + "\" code=\"" +
         std::string(error_code_name(code)) + "\"><message>" +
         xml::escape_text(message) + "</message></catalogResponse>";
}

const std::vector<std::string>& service_request_type_names() {
  static const std::vector<std::string> names{"ingest", "query",  "queryIds",
                                              "fetch",  "addAttribute", "define",
                                              "delete", "stats",  "other"};
  return names;
}

namespace {

/// Attribute scan restricted to the root tag of a serialized request: finds
/// `name="value"` before the first '>'. Lightweight by design — the
/// dispatcher calls this on the admission path, before any DOM exists.
std::string_view peek_root_attribute(std::string_view xml, std::string_view name) {
  const std::size_t tag_end = xml.find('>');
  const std::string_view tag = xml.substr(0, tag_end);
  const std::string needle = std::string(name) + "=\"";
  const std::size_t at = tag.find(needle);
  if (at == std::string_view::npos) return {};
  const std::size_t begin = at + needle.size();
  const std::size_t end = tag.find('"', begin);
  if (end == std::string_view::npos) return {};
  return tag.substr(begin, end - begin);
}

std::string ok_response(std::uint64_t version, const std::string& payload) {
  return "<catalogResponse status=\"ok\" protocol=\"" + std::to_string(kProtocolMajor) +
         "\" version=\"" + std::to_string(version) + "\">" + payload +
         "</catalogResponse>";
}

/// L2 insert: files the serialized response under the raw request bytes in
/// the segment of the snapshot that computed it. Entries inserted into a
/// superseded generation are harmless — only readers still pinned at that
/// epoch can find them.
void cache_response(const CatalogSnapshot& snap, std::string_view request_xml,
                    const std::string& response, bool ok, ErrorCode code) {
  if (snap.cache == nullptr) return;
  auto value = std::make_shared<CachedResponse>();
  value->body = response;
  value->ok = ok;
  value->error_code = static_cast<int>(code);
  snap.cache->insert_response(std::string(request_xml), std::move(value));
}

/// Enforces the version handshake on a parsed request root. Absent =
/// v1 (requests predating the attribute); "MAJOR" or "MAJOR.MINOR" with a
/// foreign major is refused, unknown minors under our major are fine.
void check_protocol_version(const xml::Node& request) {
  const std::string_view* declared = request.attribute("version");
  if (declared == nullptr) return;
  const std::string_view text = *declared;
  const std::size_t dot = text.find('.');
  const auto major = util::parse_int(std::string(text.substr(0, dot)));
  if (!major || *major < 1 ||
      (dot != std::string_view::npos &&
       !util::parse_int(std::string(text.substr(dot + 1))))) {
    throw ServiceError(ErrorCode::kValidation,
                       "malformed protocol version '" + std::string(text) + "'");
  }
  if (*major != kProtocolMajor) {
    throw ServiceError(ErrorCode::kUnsupportedVersion,
                       "protocol version " + std::string(text) +
                           " not supported (server speaks " +
                           std::to_string(kProtocolMajor) + ".x)");
  }
}

}  // namespace

std::string peek_request_type(std::string_view request_xml) {
  return std::string(peek_root_attribute(request_xml, "type"));
}

std::string peek_request_attr(std::string_view request_xml, std::string_view name) {
  return std::string(peek_root_attribute(request_xml, name));
}

long peek_timeout_ms(std::string_view request_xml) {
  const std::string_view text = peek_root_attribute(request_xml, "timeoutMs");
  if (text.empty()) return -1;
  const auto value = util::parse_int(std::string(text));
  return value && *value >= 0 ? static_cast<long>(*value) : -1;
}

std::string query_to_xml(const ObjectQuery& query) {
  std::string out = "<catalogRequest type=\"query\"";
  if (!query.user().empty()) {
    out += " user=\"" + xml::escape_attribute(query.user()) + "\"";
  }
  if (query.limit() > 0) {
    out += " limit=\"" + std::to_string(query.limit()) + "\"";
  }
  if (!query.cursor().empty()) {
    out += " cursor=\"" + xml::escape_attribute(query.cursor()) + "\"";
  }
  out += ">";
  for (const AttrQuery& attr : query.attributes()) {
    serialize_attr(out, attr);
  }
  out += "</catalogRequest>";
  return out;
}

ObjectQuery query_from_xml(const xml::Node& request) {
  ObjectQuery query;
  if (const std::string_view* user = request.attribute("user")) {
    query.set_user(std::string(*user));
  }
  if (const std::string_view* limit = request.attribute("limit")) {
    const auto value = util::parse_int(*limit);
    if (!value || *value < 0) {
      throw ValidationError("bad limit attribute '" + std::string(*limit) + "'");
    }
    query.set_limit(static_cast<std::size_t>(*value));
  }
  if (const std::string_view* cursor = request.attribute("cursor")) {
    query.set_cursor(std::string(*cursor));
  }
  for (const xml::Node* child : request.child_elements()) {
    if (child->name() != "attribute") continue;
    query.add_attribute(parse_attr(*child, {}));
  }
  return query;
}

std::string CatalogService::handle(std::string_view request_xml, RequestOutcome* outcome) {
  RequestOutcome local;
  if (outcome == nullptr) outcome = &local;
  try {
    const xml::Document doc = xml::parse(request_xml);
    if (doc.root->name() != "catalogRequest") {
      throw ServiceError(ErrorCode::kParseError, "expected <catalogRequest>");
    }
    std::string response = handle_parsed(*doc.root, request_xml, outcome);
    outcome->ok = true;
    return response;
  } catch (const ServiceError& e) {
    outcome->code = e.code();
    return error_response(e.code(), e.what());
  } catch (const xml::ParseError& e) {
    outcome->code = ErrorCode::kParseError;
    return error_response(ErrorCode::kParseError, e.what());
  } catch (const StaleCursorError& e) {
    outcome->code = ErrorCode::kStaleCursor;
    return error_response(ErrorCode::kStaleCursor, e.what());
  } catch (const std::exception& e) {
    outcome->code = ErrorCode::kValidation;
    return error_response(ErrorCode::kValidation, e.what());
  }
}

std::string CatalogService::handle_parsed(const xml::Node& request,
                                          std::string_view request_xml,
                                          RequestOutcome* outcome) {
  check_protocol_version(request);
  const std::string_view* type = request.attribute("type");
  if (type == nullptr) {
    throw ServiceError(ErrorCode::kParseError, "<catalogRequest> missing type");
  }
  if (std::find(service_request_type_names().begin(), service_request_type_names().end(),
                *type) != service_request_type_names().end()) {
    outcome->type = *type;
  }
  const std::string_view* user_attr = request.attribute("user");
  const std::string user = user_attr == nullptr ? std::string{} : std::string(*user_attr);

  if (*type == "ingest") {
    const auto children = request.child_elements();
    if (children.size() != 1) {
      throw ServiceError(ErrorCode::kValidation, "ingest expects exactly one document");
    }
    const std::string_view* name = request.attribute("name");
    xml::Document doc;
    doc.root = children.front()->clone();
    const ObjectId id = catalog_.ingest(
        doc, name == nullptr ? std::string("unnamed") : std::string(*name), user);
    return ok_response(catalog_.version(),
                       "<objectID>" + std::to_string(id) + "</objectID>");
  }

  if (*type == "query" || *type == "queryIds") {
    const ObjectQuery query = query_from_xml(request);
    // One pinned snapshot for page computation AND serialization, so the L2
    // entry lands in the segment of the generation that produced it (and the
    // two can't straddle a concurrent commit).
    const MetadataCatalog::ReadGuard guard(catalog_);
    const QueryPage page = guard.query_paged(query);
    std::string payload;
    if (*type == "queryIds") {
      // Ids are ascending (query_paged guarantees it), so identical
      // requests return identical, stably-ordered pages.
      payload = "<objectIDs>";
      for (const ObjectId id : page.ids) {
        payload += "<objectID>" + std::to_string(id) + "</objectID>";
      }
      payload += "</objectIDs>";
    } else {
      payload = guard.build_response(page.ids);
    }
    if (!page.next_cursor.empty()) {
      payload += "<nextCursor>" + xml::escape_text(page.next_cursor) + "</nextCursor>";
    }
    std::string response = ok_response(page.version, payload);
    cache_response(guard.snapshot(), request_xml, response, true, ErrorCode::kValidation);
    return response;
  }

  if (*type == "fetch") {
    const std::string_view* id_text = request.attribute("objectID");
    if (id_text == nullptr) {
      throw ServiceError(ErrorCode::kValidation, "fetch requires objectID");
    }
    const auto id = util::parse_int(*id_text);
    if (!id) throw ServiceError(ErrorCode::kValidation, "bad objectID");
    // One pinned snapshot for the existence check AND the response: the
    // two cannot straddle a concurrent delete or ingest.
    const MetadataCatalog::ReadGuard guard(catalog_);
    if (*id < 0 || *id >= guard->next_object || guard->deleted->count(*id) != 0) {
      const std::string message = "object " + std::string(*id_text) + " does not exist";
      // Negative caching: the not_found response is a fact about this
      // snapshot too — repeated probes for a missing id short-circuit.
      cache_response(guard.snapshot(), request_xml,
                     error_response(ErrorCode::kNotFound, message), false,
                     ErrorCode::kNotFound);
      throw ServiceError(ErrorCode::kNotFound, message);
    }
    const std::vector<ObjectId> ids{*id};
    std::string response = ok_response(guard.epoch(), guard.build_response(ids));
    cache_response(guard.snapshot(), request_xml, response, true, ErrorCode::kValidation);
    return response;
  }

  if (*type == "addAttribute") {
    const std::string_view* id_text = request.attribute("objectID");
    const std::string_view* path = request.attribute("path");
    const auto children = request.child_elements();
    if (id_text == nullptr || path == nullptr || children.size() != 1) {
      throw ServiceError(ErrorCode::kValidation,
                         "addAttribute requires objectID, path, and one element");
    }
    const auto id = util::parse_int(*id_text);
    if (!id) throw ServiceError(ErrorCode::kValidation, "bad objectID");
    if (*id < 0 || static_cast<std::size_t>(*id) >= catalog_.object_count()) {
      throw ServiceError(ErrorCode::kNotFound,
                         "object " + std::string(*id_text) + " does not exist");
    }
    catalog_.add_attribute(*id, *path, *children.front(), user);
    return ok_response(catalog_.version(), "<added/>");
  }

  if (*type == "define") {
    const std::string_view* name = request.attribute("name");
    const std::string_view* source = request.attribute("source");
    if (name == nullptr || source == nullptr) {
      throw ServiceError(ErrorCode::kValidation, "define requires name and source");
    }
    std::vector<DynamicElementSpec> elements;
    for (const xml::Node* child : request.child_elements()) {
      if (child->name() != "element") continue;
      const std::string_view* elem_name = child->attribute("name");
      if (elem_name == nullptr) {
        throw ServiceError(ErrorCode::kValidation, "<element> missing name");
      }
      DynamicElementSpec spec;
      spec.name = *elem_name;
      if (const std::string_view* elem_type = child->attribute("type")) {
        spec.type = xml::leaf_type_from_string(*elem_type);
      }
      elements.push_back(std::move(spec));
    }
    const bool is_private = user_attr != nullptr;
    const AttrDefId id = catalog_.define_dynamic_attribute(
        std::string(*name), std::string(*source), elements,
        is_private ? Visibility::kUser : Visibility::kAdmin, user);
    return ok_response(catalog_.version(),
                       "<attributeID>" + std::to_string(id) + "</attributeID>");
  }

  if (*type == "delete") {
    const std::string_view* id_text = request.attribute("objectID");
    if (id_text == nullptr) {
      throw ServiceError(ErrorCode::kValidation, "delete requires objectID");
    }
    const auto id = util::parse_int(*id_text);
    if (!id) throw ServiceError(ErrorCode::kValidation, "bad objectID");
    if (catalog_.object_state(*id) == ObjectState::kUnknown) {
      throw ServiceError(ErrorCode::kNotFound,
                         "object " + std::string(*id_text) + " does not exist");
    }
    catalog_.delete_object(*id);
    return ok_response(catalog_.version(), "<deleted/>");
  }

  if (*type == "stats") {
    // One pinned snapshot for every catalog-derived figure: the counts are
    // mutually consistent at one epoch, and no lock is taken. The guard is
    // held while the MVCC counters render, so pinned_readers is >= 1 here.
    const MetadataCatalog::ReadGuard guard(catalog_);
    const ShredStats& stats = guard->stats;
    std::string payload = "<stats";
    payload += " objects=\"" + std::to_string(guard->next_object) + "\"";
    payload += " attributes=\"" + std::to_string(stats.attribute_instances) + "\"";
    payload += " elements=\"" + std::to_string(stats.element_rows) + "\"";
    payload += " clobs=\"" + std::to_string(stats.clobs) + "\"";
    payload += " definitions=\"" + std::to_string(guard->defs->attribute_count()) + "\"";
    payload += " deleted=\"" + std::to_string(guard->deleted->size()) + "\"";
    payload += " version=\"" + std::to_string(guard.epoch()) + "\"";
    payload += ">";
    {
      const util::MvccStats mvcc = catalog_.mvcc_stats();
      payload += "<mvcc epoch=\"" + std::to_string(mvcc.epoch) + "\"";
      payload += " pinned_readers=\"" + std::to_string(mvcc.pinned_readers) + "\"";
      payload += " retired_pending=\"" + std::to_string(mvcc.retired_pending) + "\"";
      payload += " reclamations=\"" + std::to_string(mvcc.reclamations) + "\"";
      payload += " snapshots=\"" + std::to_string(mvcc.snapshots_published) + "\"";
      payload += "/>";
    }
    {
      const util::IngestMetrics& ingest = catalog_.ingest_metrics();
      const std::uint64_t docs = ingest.documents.load(std::memory_order_relaxed);
      const std::uint64_t rows = ingest.element_rows.load(std::memory_order_relaxed);
      const std::uint64_t micros = ingest.micros.load(std::memory_order_relaxed);
      payload += "<ingest documents=\"" + std::to_string(docs) + "\"";
      payload += " element_rows=\"" + std::to_string(rows) + "\"";
      payload += " attribute_instances=\"" +
                 std::to_string(ingest.attribute_instances.load(std::memory_order_relaxed)) +
                 "\"";
      payload += " clob_bytes=\"" +
                 std::to_string(ingest.clob_bytes.load(std::memory_order_relaxed)) + "\"";
      payload += " arena_bytes=\"" +
                 std::to_string(ingest.arena_bytes.load(std::memory_order_relaxed)) + "\"";
      payload += " micros=\"" + std::to_string(micros) + "\"";
      payload += " docs_per_sec=\"" +
                 std::to_string(util::IngestMetrics::per_second(docs, micros)) + "\"";
      payload += " rows_per_sec=\"" +
                 std::to_string(util::IngestMetrics::per_second(rows, micros)) + "\"";
      payload += "/>";
    }
    if (const util::DurabilityMetrics* wal = catalog_.durability_metrics()) {
      payload += "<durability";
      payload += " wal_records=\"" +
                 std::to_string(wal->wal_records.load(std::memory_order_relaxed)) + "\"";
      payload += " wal_bytes=\"" +
                 std::to_string(wal->wal_bytes.load(std::memory_order_relaxed)) + "\"";
      payload += " wal_fsyncs=\"" +
                 std::to_string(wal->wal_fsyncs.load(std::memory_order_relaxed)) + "\"";
      payload += " snapshots=\"" +
                 std::to_string(wal->snapshots.load(std::memory_order_relaxed)) + "\"";
      payload += " snapshot_bytes=\"" +
                 std::to_string(wal->snapshot_bytes.load(std::memory_order_relaxed)) + "\"";
      payload += " replayed_records=\"" +
                 std::to_string(wal->replayed_records.load(std::memory_order_relaxed)) +
                 "\"";
      payload += " torn_tail_truncations=\"" +
                 std::to_string(wal->torn_tail_truncations.load(std::memory_order_relaxed)) +
                 "\"";
      payload += " recovery_ms=\"" +
                 std::to_string(wal->recovery_micros.load(std::memory_order_relaxed) / 1000) +
                 "\"";
      payload += "/>";
    }
    if (const util::ReplicationState* repl = catalog_.replication_state()) {
      payload += "<replication";
      payload += " wal_seq=\"" +
                 std::to_string(repl->wal_seq.load(std::memory_order_relaxed)) + "\"";
      payload += " applied_lsn=\"" +
                 std::to_string(repl->applied_lsn.load(std::memory_order_relaxed)) + "\"";
      payload += " applied_epoch=\"" +
                 std::to_string(repl->applied_epoch.load(std::memory_order_relaxed)) + "\"";
      payload += " records_applied=\"" +
                 std::to_string(repl->records_applied.load(std::memory_order_relaxed)) +
                 "\"";
      payload += " chunks_applied=\"" +
                 std::to_string(repl->chunks_applied.load(std::memory_order_relaxed)) + "\"";
      payload += " bootstraps=\"" +
                 std::to_string(repl->bootstraps.load(std::memory_order_relaxed)) + "\"";
      payload += " connections=\"" +
                 std::to_string(repl->connections.load(std::memory_order_relaxed)) + "\"";
      payload += "/>";
    }
    if (catalog_.cache_enabled()) {
      const util::CacheMetrics& cache = catalog_.cache_metrics();
      const auto level_attrs = [](const util::CacheLevelMetrics& level) {
        std::string out;
        out += " hits=\"" + std::to_string(level.hits.load(std::memory_order_relaxed)) + "\"";
        out += " misses=\"" + std::to_string(level.misses.load(std::memory_order_relaxed)) +
               "\"";
        out += " inserts=\"" + std::to_string(level.inserts.load(std::memory_order_relaxed)) +
               "\"";
        out += " evictions=\"" +
               std::to_string(level.evictions.load(std::memory_order_relaxed)) + "\"";
        out += " entries=\"" + std::to_string(level.entries.load(std::memory_order_relaxed)) +
               "\"";
        out += " bytes=\"" + std::to_string(level.bytes.load(std::memory_order_relaxed)) +
               "\"";
        return out;
      };
      payload += "<cache bypass=\"" +
                 std::to_string(cache.bypass.load(std::memory_order_relaxed)) + "\"";
      payload += " inline_served=\"" +
                 std::to_string(cache.inline_served.load(std::memory_order_relaxed)) + "\">";
      payload += "<l1" + level_attrs(cache.l1) + "/>";
      payload += "<l2" + level_attrs(cache.l2) + "/>";
      payload += "</cache>";
    }
    if (const util::ServerPauses* pauses = catalog_.server_pauses()) {
      payload += "<server read_pauses=\"" +
                 std::to_string(pauses->read_pauses.load(std::memory_order_relaxed)) + "\"";
      payload += " write_pauses=\"" +
                 std::to_string(pauses->write_pauses.load(std::memory_order_relaxed)) +
                 "\"/>";
    }
    if (metrics_ == nullptr) {
      payload += "</stats>";
    } else {
      payload += "<requests>";
      for (std::size_t i = 0; i < metrics_->size(); ++i) {
        const util::RequestStats& slot = metrics_->at(i);
        const std::uint64_t handled = slot.handled.load(std::memory_order_relaxed);
        const std::uint64_t rejected = slot.rejected.load(std::memory_order_relaxed);
        if (handled == 0 && rejected == 0) continue;
        payload += "<request type=\"" + metrics_->name(i) + "\"";
        payload += " handled=\"" + std::to_string(handled) + "\"";
        payload += " ok=\"" + std::to_string(slot.ok.load(std::memory_order_relaxed)) + "\"";
        payload +=
            " errors=\"" + std::to_string(slot.errors.load(std::memory_order_relaxed)) + "\"";
        payload += " timeouts=\"" +
                   std::to_string(slot.timeouts.load(std::memory_order_relaxed)) + "\"";
        payload += " rejected=\"" + std::to_string(rejected) + "\"";
        payload += " mean_us=\"" + std::to_string(slot.latency.mean_micros()) + "\"";
        payload += " p50_us=\"" + std::to_string(slot.latency.percentile_micros(0.50)) + "\"";
        payload += " p99_us=\"" + std::to_string(slot.latency.percentile_micros(0.99)) + "\"";
        payload += " max_us=\"" + std::to_string(slot.latency.max_micros()) + "\"";
        payload += "/>";
      }
      payload += "</requests></stats>";
    }
    return ok_response(guard.epoch(), payload);
  }

  throw ServiceError(ErrorCode::kUnknownType,
                     "unknown request type '" + std::string(*type) + "'");
}

}  // namespace hxrc::core
