#include "core/service.hpp"

#include "util/string_util.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::core {

namespace {

std::string_view op_name(CompareOp op) noexcept {
  switch (op) {
    case CompareOp::kEq: return "eq";
    case CompareOp::kNe: return "ne";
    case CompareOp::kLt: return "lt";
    case CompareOp::kLe: return "le";
    case CompareOp::kGt: return "gt";
    case CompareOp::kGe: return "ge";
  }
  return "eq";
}

CompareOp op_from_name(std::string_view name) {
  if (name == "eq") return CompareOp::kEq;
  if (name == "ne") return CompareOp::kNe;
  if (name == "lt") return CompareOp::kLt;
  if (name == "le") return CompareOp::kLe;
  if (name == "gt") return CompareOp::kGt;
  if (name == "ge") return CompareOp::kGe;
  throw ValidationError("unknown comparison operator '" + std::string(name) + "'");
}

void serialize_attr(std::string& out, const AttrQuery& attr) {
  out += "<attribute name=\"" + xml::escape_attribute(attr.name()) + "\"";
  if (!attr.source().empty()) {
    out += " source=\"" + xml::escape_attribute(attr.source()) + "\"";
  }
  out += ">";
  for (const ElementPredicate& pred : attr.elements()) {
    out += "<element name=\"" + xml::escape_attribute(pred.name) + "\"";
    if (!pred.source.empty()) {
      out += " source=\"" + xml::escape_attribute(pred.source) + "\"";
    }
    if (pred.exists_only) {
      out += " exists=\"true\"/>";
    } else {
      out += " op=\"" + std::string(op_name(pred.op)) + "\">";
      out += xml::escape_text(pred.value.to_string());
      out += "</element>";
    }
  }
  for (const AttrQuery& sub : attr.sub_attributes()) {
    serialize_attr(out, sub);
  }
  out += "</attribute>";
}

AttrQuery parse_attr(const xml::Node& node) {
  const std::string* name = node.attribute("name");
  if (name == nullptr) throw ValidationError("<attribute> missing name");
  const std::string* source = node.attribute("source");
  AttrQuery attr(*name, source == nullptr ? std::string{} : *source);

  for (const xml::Node* child : node.child_elements()) {
    if (child->name() == "element") {
      const std::string* elem_name = child->attribute("name");
      if (elem_name == nullptr) throw ValidationError("<element> missing name");
      const std::string* elem_source = child->attribute("source");
      const std::string src = elem_source == nullptr ? std::string{} : *elem_source;
      if (const std::string* exists = child->attribute("exists");
          exists != nullptr && *exists == "true") {
        attr.require_element(*elem_name, src);
        continue;
      }
      const std::string* op = child->attribute("op");
      const std::string text = child->text_content();
      // Values travel as text; numeric-looking values become numbers so
      // comparisons behave identically to the in-process API.
      rel::Value value;
      if (const auto num = util::parse_double(text)) {
        value = rel::Value(*num);
      } else {
        value = rel::Value(text);
      }
      attr.add_element(*elem_name, src, std::move(value),
                       op == nullptr ? CompareOp::kEq : op_from_name(*op));
      continue;
    }
    if (child->name() == "attribute") {
      attr.add_attribute(parse_attr(*child));
      continue;
    }
    throw ValidationError("unexpected <" + child->name() + "> in query criteria");
  }
  return attr;
}

std::string ok_response(const std::string& payload) {
  return "<catalogResponse status=\"ok\">" + payload + "</catalogResponse>";
}

std::string error_response(const std::string& message) {
  return "<catalogResponse status=\"error\"><message>" + xml::escape_text(message) +
         "</message></catalogResponse>";
}

}  // namespace

std::string query_to_xml(const ObjectQuery& query) {
  std::string out = "<catalogRequest type=\"query\"";
  if (!query.user().empty()) {
    out += " user=\"" + xml::escape_attribute(query.user()) + "\"";
  }
  out += ">";
  for (const AttrQuery& attr : query.attributes()) {
    serialize_attr(out, attr);
  }
  out += "</catalogRequest>";
  return out;
}

ObjectQuery query_from_xml(const xml::Node& request) {
  ObjectQuery query;
  if (const std::string* user = request.attribute("user")) {
    query.set_user(*user);
  }
  for (const xml::Node* child : request.child_elements()) {
    if (child->name() != "attribute") continue;
    query.add_attribute(parse_attr(*child));
  }
  return query;
}

std::string CatalogService::handle(std::string_view request_xml) {
  try {
    const xml::Document doc = xml::parse(request_xml);
    if (doc.root->name() != "catalogRequest") {
      return error_response("expected <catalogRequest>");
    }
    return handle_parsed(*doc.root);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

std::string CatalogService::handle_parsed(const xml::Node& request) {
  const std::string* type = request.attribute("type");
  if (type == nullptr) return error_response("<catalogRequest> missing type");
  const std::string* user_attr = request.attribute("user");
  const std::string user = user_attr == nullptr ? std::string{} : *user_attr;

  if (*type == "ingest") {
    const auto children = request.child_elements();
    if (children.size() != 1) {
      return error_response("ingest expects exactly one document");
    }
    const std::string* name = request.attribute("name");
    xml::Document doc;
    doc.root = children.front()->clone();
    const ObjectId id =
        catalog_.ingest(doc, name == nullptr ? "unnamed" : *name, user);
    return ok_response("<objectID>" + std::to_string(id) + "</objectID>");
  }

  if (*type == "query" || *type == "queryIds") {
    const ObjectQuery query = query_from_xml(request);
    const auto ids = catalog_.query(query);
    if (*type == "queryIds") {
      std::string payload = "<objectIDs>";
      for (const ObjectId id : ids) {
        payload += "<objectID>" + std::to_string(id) + "</objectID>";
      }
      payload += "</objectIDs>";
      return ok_response(payload);
    }
    return ok_response(catalog_.build_response(ids));
  }

  if (*type == "fetch") {
    const std::string* id_text = request.attribute("objectID");
    if (id_text == nullptr) return error_response("fetch requires objectID");
    const auto id = util::parse_int(*id_text);
    if (!id) return error_response("bad objectID");
    const std::vector<ObjectId> ids{*id};
    return ok_response(catalog_.build_response(ids));
  }

  if (*type == "addAttribute") {
    const std::string* id_text = request.attribute("objectID");
    const std::string* path = request.attribute("path");
    const auto children = request.child_elements();
    if (id_text == nullptr || path == nullptr || children.size() != 1) {
      return error_response("addAttribute requires objectID, path, and one element");
    }
    const auto id = util::parse_int(*id_text);
    if (!id) return error_response("bad objectID");
    catalog_.add_attribute(*id, *path, *children.front(), user);
    return ok_response("<added/>");
  }

  if (*type == "define") {
    const std::string* name = request.attribute("name");
    const std::string* source = request.attribute("source");
    if (name == nullptr || source == nullptr) {
      return error_response("define requires name and source");
    }
    std::vector<DynamicElementSpec> elements;
    for (const xml::Node* child : request.child_elements()) {
      if (child->name() != "element") continue;
      const std::string* elem_name = child->attribute("name");
      if (elem_name == nullptr) return error_response("<element> missing name");
      DynamicElementSpec spec;
      spec.name = *elem_name;
      if (const std::string* elem_type = child->attribute("type")) {
        spec.type = xml::leaf_type_from_string(*elem_type);
      }
      elements.push_back(std::move(spec));
    }
    const bool is_private = user_attr != nullptr;
    const AttrDefId id = catalog_.define_dynamic_attribute(
        *name, *source, elements,
        is_private ? Visibility::kUser : Visibility::kAdmin, user);
    return ok_response("<attributeID>" + std::to_string(id) + "</attributeID>");
  }

  if (*type == "delete") {
    const std::string* id_text = request.attribute("objectID");
    if (id_text == nullptr) return error_response("delete requires objectID");
    const auto id = util::parse_int(*id_text);
    if (!id) return error_response("bad objectID");
    catalog_.delete_object(*id);
    return ok_response("<deleted/>");
  }

  if (*type == "stats") {
    const ShredStats& stats = catalog_.total_stats();
    std::string payload = "<stats";
    payload += " objects=\"" + std::to_string(catalog_.object_count()) + "\"";
    payload += " attributes=\"" + std::to_string(stats.attribute_instances) + "\"";
    payload += " elements=\"" + std::to_string(stats.element_rows) + "\"";
    payload += " clobs=\"" + std::to_string(stats.clobs) + "\"";
    payload += " definitions=\"" + std::to_string(catalog_.registry().attribute_count()) +
               "\"";
    payload += "/>";
    return ok_response(payload);
  }

  return error_response("unknown request type '" + *type + "'");
}

}  // namespace hxrc::core
