// Query-response construction (§5).
//
// Given the object ids produced by the query process, the response builder
// reassembles fully tagged XML documents entirely with set operations:
//
//   1. fetch the attr_clobs rows for the objects (CLOB payloads untouched);
//   2. join with the order_ancestors inverted list to find the *distinct*
//      ancestor nodes each object actually needs (most attributes are
//      optional, so absent subtrees contribute no tags);
//   3. join the required ancestors with schema_order to obtain tags and
//      last-child orders, from which both opening and closing tag events are
//      generated — no external "tagger" pass (§5, contrasting [24]);
//   4. sort events by (position, phase, depth) and concatenate, touching
//      the CLOB payloads only in this final step.
//
// This works only because the global ordering is per-schema: the ancestor
// inverted list would be per-document otherwise (§5).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/partition.hpp"
#include "rel/database.hpp"
#include "rel/read_view.hpp"

namespace hxrc::core {

class ResponseBuilder {
 public:
  ResponseBuilder(const Partition& partition, const rel::Database& db);

  /// Reassembles one object's document ("" when the object has no CLOBs).
  /// With a ReadView, the attr_clobs probe sees only snapshot-visible rows
  /// and never syncs — the MVCC fetch path. (The ordering tables are frozen
  /// at setup, so only the CLOB probe needs a watermark.)
  std::string build_document(ObjectId object,
                             const rel::ReadView* view = nullptr) const;

  /// Projected response: only the attributes whose root order is in
  /// `attribute_orders` are included (with exactly the ancestors those
  /// attributes require — the same distinct-ancestor machinery as the full
  /// response). Scientists typically want the matching attributes, not the
  /// whole record.
  std::string build_document(ObjectId object, std::span<const OrderId> attribute_orders,
                             const rel::ReadView* view = nullptr) const;

  /// Builds the full response: each object's document concatenated inside a
  /// <results> wrapper, in the id order given.
  std::string build_response(std::span<const ObjectId> objects,
                             const rel::ReadView* view = nullptr) const;

 private:
  std::string assemble(const rel::ResultSet& clob_rows) const;

  const Partition& partition_;
  const rel::Database& db_;
};

}  // namespace hxrc::core
