#include "core/partition.hpp"

#include <algorithm>
#include <unordered_set>

namespace hxrc::core {

std::string_view to_string(NodeRole role) noexcept {
  switch (role) {
    case NodeRole::kAncestor: return "ancestor";
    case NodeRole::kAttributeRoot: return "attribute";
    case NodeRole::kSubAttribute: return "sub-attribute";
    case NodeRole::kElement: return "element";
    case NodeRole::kAttributeElement: return "attribute-element";
  }
  return "?";
}

namespace {

std::string path_of(const xml::SchemaNode& node) {
  std::vector<std::string_view> segments;
  for (const xml::SchemaNode* n = &node; n->parent() != nullptr; n = n->parent()) {
    segments.push_back(n->name());
  }
  std::string path;
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    if (!path.empty()) path.push_back('/');
    path += *it;
  }
  return path;
}

/// True when any node in the subtree (excluding the root of the subtree)
/// violates containment: repeatable, recursive, or XML-attributed nodes.
bool subtree_needs_containment(const xml::SchemaNode& node) {
  if (node.repeatable() || node.recursive() || !node.xml_attributes().empty()) return true;
  for (const auto& child : node.children()) {
    if (subtree_needs_containment(*child)) return true;
  }
  return false;
}

}  // namespace

std::vector<PartitionDiagnostic> Partition::check_rules(
    const xml::Schema& schema, const PartitionAnnotations& annotations) {
  std::vector<PartitionDiagnostic> diagnostics;

  // Resolve annotated paths.
  std::unordered_set<const xml::SchemaNode*> roots;
  for (const auto& annotation : annotations.attributes) {
    const xml::SchemaNode* node = schema.find(annotation.path);
    if (node == nullptr) {
      diagnostics.push_back({annotation.path, "annotated path does not exist in the schema"});
      continue;
    }
    if (node->parent() == nullptr) {
      diagnostics.push_back({annotation.path, "the schema root cannot be a metadata attribute"});
      continue;
    }
    roots.insert(node);
  }

  // Single attribute per root-to-leaf path (§6): roots form an antichain.
  for (const xml::SchemaNode* root : roots) {
    for (const xml::SchemaNode* up = root->parent(); up != nullptr; up = up->parent()) {
      if (roots.count(up) != 0) {
        diagnostics.push_back(
            {path_of(*root), "attribute root is nested inside attribute root '" +
                                 path_of(*up) + "' (only one attribute per path)"});
      }
    }
  }

  // Walk the schema classifying nodes; check rules 2-5.
  struct Walker {
    const std::unordered_set<const xml::SchemaNode*>& roots;
    std::vector<PartitionDiagnostic>& diagnostics;

    void walk(const xml::SchemaNode& node, bool inside_attribute) {
      const bool is_root_here = roots.count(&node) != 0;
      const bool covered = inside_attribute || is_root_here;

      if (!covered) {
        // Rule: repeatable elements must be contained within an attribute.
        if (node.repeatable() && node.parent() != nullptr) {
          diagnostics.push_back(
              {path_of(node), "repeatable element is not contained in a metadata attribute"});
        }
        // Rule: elements with XML attribute nodes must be (in) an attribute.
        if (!node.xml_attributes().empty()) {
          diagnostics.push_back(
              {path_of(node),
               "element declares XML attributes but is not (in) a metadata attribute"});
        }
        // Rule: recursion must be contained within an attribute.
        if (node.recursive()) {
          diagnostics.push_back(
              {path_of(node), "recursive element is not contained in a metadata attribute"});
        }
        // Rule: every leaf must be contained within an attribute.
        if (node.is_leaf() && node.parent() != nullptr) {
          diagnostics.push_back(
              {path_of(node), "leaf element is not covered by any metadata attribute"});
        }
      }
      for (const auto& child : node.children()) {
        walk(*child, covered);
      }
    }
  };
  Walker{roots, diagnostics}.walk(schema.root(), false);

  return diagnostics;
}

Partition Partition::build(const xml::Schema& schema, PartitionAnnotations annotations) {
  std::vector<PartitionDiagnostic> diagnostics = check_rules(schema, annotations);
  if (!diagnostics.empty()) {
    std::string message = "schema partition violates the metadata-attribute rules:";
    for (const auto& d : diagnostics) {
      message += "\n  [" + d.path + "] " + d.message;
    }
    throw PartitionError(std::move(message), std::move(diagnostics));
  }

  Partition partition;
  partition.schema_ = &schema;
  partition.convention_ = annotations.convention;

  // Resolve annotations to nodes.
  std::unordered_map<const xml::SchemaNode*, const AttributeAnnotation*> root_nodes;
  for (const auto& annotation : annotations.attributes) {
    root_nodes.emplace(schema.find(annotation.path), &annotation);
  }

  // Pre-order walk assigning global order ids to the ordered region
  // (ancestors + attribute roots); the walk does not descend into
  // attributes (§2: elements within the CLOB are inherently ordered).
  struct Builder {
    Partition& partition;
    const std::unordered_map<const xml::SchemaNode*, const AttributeAnnotation*>& root_nodes;
    OrderId next = 0;

    OrderId walk_ordered(const xml::SchemaNode& node, OrderId parent, std::int64_t depth) {
      const OrderId order = next++;
      const auto root_it = root_nodes.find(&node);
      const bool is_root = root_it != root_nodes.end();

      OrderedNode ordered;
      ordered.order = order;
      ordered.tag = node.name();
      ordered.parent = parent;
      ordered.depth = depth;
      ordered.is_attribute_root = is_root;
      ordered.schema_node = &node;
      partition.ordered_.push_back(ordered);
      partition.orders_[&node] = order;

      if (is_root) {
        const AttributeAnnotation& annotation = *root_it->second;
        partition.roles_[&node] = node.is_leaf() ? NodeRole::kAttributeElement
                                                 : NodeRole::kAttributeRoot;
        AttributeRootInfo info;
        info.path = annotation.path;
        info.tag = node.name();
        info.order = order;
        info.dynamic = annotation.dynamic;
        info.queryable = annotation.queryable;
        info.repeatable = node.repeatable();
        info.schema_node = &node;
        partition.root_by_order_[order] = partition.roots_.size();
        partition.roots_.push_back(std::move(info));
        classify_inside(node);
        partition.ordered_[static_cast<std::size_t>(order)].last_child = order;
        return order;
      }

      partition.roles_[&node] = NodeRole::kAncestor;
      OrderId last = order;
      for (const auto& child : node.children()) {
        last = walk_ordered(*child, order, depth + 1);
      }
      partition.ordered_[static_cast<std::size_t>(order)].last_child = last;
      return last;
    }

    /// Classifies nodes inside an attribute root (not ordered).
    void classify_inside(const xml::SchemaNode& attribute_root) {
      for (const auto& child : attribute_root.children()) {
        classify_subtree(*child);
      }
    }

    void classify_subtree(const xml::SchemaNode& node) {
      partition.roles_[&node] =
          node.is_leaf() ? NodeRole::kElement : NodeRole::kSubAttribute;
      for (const auto& child : node.children()) {
        classify_subtree(*child);
      }
    }
  };
  Builder{partition, root_nodes}.walk_ordered(schema.root(), kNoOrder, 0);

  // Ancestor inverted list (§5), nearest ancestor first.
  partition.ancestors_.resize(partition.ordered_.size());
  for (const OrderedNode& node : partition.ordered_) {
    std::vector<OrderId>& ancestors = partition.ancestors_[static_cast<std::size_t>(node.order)];
    for (OrderId up = node.parent; up != kNoOrder;
         up = partition.ordered_[static_cast<std::size_t>(up)].parent) {
      ancestors.push_back(up);
    }
  }

  return partition;
}

NodeRole Partition::role(const xml::SchemaNode& node) const {
  const auto it = roles_.find(&node);
  if (it == roles_.end()) {
    throw PartitionError("node '" + node.name() + "' is not part of this partition", {});
  }
  return it->second;
}

OrderId Partition::order_of(const xml::SchemaNode& node) const noexcept {
  const auto it = orders_.find(&node);
  return it == orders_.end() ? kNoOrder : it->second;
}

const AttributeRootInfo* Partition::root_at(OrderId order) const noexcept {
  const auto it = root_by_order_.find(order);
  return it == root_by_order_.end() ? nullptr : &roots_[it->second];
}

const std::vector<OrderId>& Partition::ancestors_of(OrderId order) const {
  return ancestors_.at(static_cast<std::size_t>(order));
}

PartitionAnnotations Partition::infer(const xml::Schema& schema) {
  PartitionAnnotations annotations;

  struct Inferrer {
    PartitionAnnotations& annotations;

    void mark(const xml::SchemaNode& node, bool dynamic) {
      AttributeAnnotation annotation;
      annotation.path = path_of(node);
      annotation.dynamic = dynamic;
      annotations.attributes.push_back(std::move(annotation));
    }

    /// Returns true when the subtree was fully covered by attribute roots.
    void walk(const xml::SchemaNode& node) {
      for (const auto& child : node.children()) {
        decide(*child);
      }
    }

    void decide(const xml::SchemaNode& node) {
      const bool hot = node.repeatable() || node.recursive() || !node.xml_attributes().empty();
      if (hot) {
        // The containment rules force this node inside an attribute; make it
        // the root here (the highest legal point). Recursion marks dynamic.
        mark(node, subtree_has_recursion(node));
        return;
      }
      if (node.is_leaf()) {
        // A stray leaf becomes an attribute-element.
        mark(node, false);
        return;
      }
      // An interior node whose children are all "calm" leaves is a concept
      // grouping (e.g. status{progress, update}).
      const bool all_calm_leaves = std::all_of(
          node.children().begin(), node.children().end(), [](const auto& child) {
            return child->is_leaf() && !child->repeatable() && !child->recursive() &&
                   child->xml_attributes().empty();
          });
      if (all_calm_leaves) {
        mark(node, false);
        return;
      }
      if (subtree_needs_containment(node)) {
        walk(node);  // stay an ancestor; descend
        return;
      }
      // Calm interior subtree with mixed depth: treat as one concept.
      mark(node, false);
    }

    static bool subtree_has_recursion(const xml::SchemaNode& node) {
      if (node.recursive()) return true;
      for (const auto& child : node.children()) {
        if (subtree_has_recursion(*child)) return true;
      }
      return false;
    }
  };
  Inferrer{annotations}.walk(schema.root());
  return annotations;
}

}  // namespace hxrc::core
